//! Online-auction search: the paper's e-bay motivation ("where time to
//! completion and the current bid can be used to rank results", §1).
//!
//! Listings are ranked by `Agg(s1, s2) = s1 + 50000/s2`: the current bid
//! plus an urgency bonus for auctions about to close. Every bid and every
//! clock tick is a structured update; the index keeps search results
//! ordered by the live auction state.
//!
//! Run with: `cargo run --release --example auction_house`

use svr::{IndexConfig, MethodKind, QueryMode, SvrEngine};
use svr_relation::schema::{ColumnType, Schema};
use svr_relation::{AggExpr, ScoreComponent, SvrSpec, Value};

fn main() -> svr::Result<()> {
    let mut engine = SvrEngine::new();
    engine.create_table(Schema::new(
        "listings",
        &[("lid", ColumnType::Int), ("title", ColumnType::Text)],
        0,
    ))?;
    engine.create_table(Schema::new(
        "auction_state",
        &[
            ("lid", ColumnType::Int),
            ("current_bid", ColumnType::Int),
            // Hours until the auction closes.
            ("hours_left", ColumnType::Int),
        ],
        0,
    ))?;

    let listings = [
        (1, "vintage omega watch with leather strap", 120, 90),
        (2, "omega speedmaster chronograph watch", 2_400, 48),
        (3, "art deco mantel clock restored", 340, 2),
        (4, "antique pocket watch gold plated", 95, 1),
        (5, "mid century wall clock teak", 60, 200),
    ];
    for (lid, title, bid, hours) in listings {
        engine.insert_row("listings", vec![Value::Int(lid), Value::Text(title.into())])?;
        engine.insert_row(
            "auction_state",
            vec![Value::Int(lid), Value::Int(bid), Value::Int(hours)],
        )?;
    }

    // Score = current bid + urgency (50000 / hours_left).
    let spec = SvrSpec::new(
        vec![
            ScoreComponent::ColumnOf {
                table: "auction_state".into(),
                key_col: "lid".into(),
                val_col: "current_bid".into(),
            },
            ScoreComponent::ColumnOf {
                table: "auction_state".into(),
                key_col: "lid".into(),
                val_col: "hours_left".into(),
            },
        ],
        AggExpr::parse("s1 + 50000 / s2").expect("valid Agg"),
    );
    engine.create_text_index(
        "auction_search",
        "listings",
        "title",
        spec,
        MethodKind::Chunk,
        IndexConfig {
            min_chunk_docs: 1,
            ..IndexConfig::default()
        },
    )?;

    let show = |engine: &mut SvrEngine, label: &str, keywords: &str, mode: QueryMode| {
        println!("{label}");
        let hits = engine.search("auction_search", keywords, 5, mode).unwrap();
        for h in &hits {
            println!(
                "  #{:<2} {:<45} score {:>8.0}",
                h.row[0],
                h.row[1].to_string(),
                h.score
            );
        }
        hits
    };

    show(
        &mut engine,
        "watches, ranked by bid + urgency:",
        "watch",
        QueryMode::Conjunctive,
    );

    // A bidding war erupts on the pocket watch as its clock runs out.
    println!("\n-- #4 gets bid up to $900 with 1 hour left --\n");
    engine.update_row(
        "auction_state",
        Value::Int(4),
        &[("current_bid".into(), Value::Int(900))],
    )?;
    let hits = show(
        &mut engine,
        "same query, live auction state:",
        "watch",
        QueryMode::Conjunctive,
    );
    assert_eq!(
        hits[0].row[0],
        Value::Int(4),
        "the closing auction must lead"
    );

    // Time passes: listing 3 closes (delete), a new lot appears (insert).
    println!("\n-- lot 3 closes; lot 6 (a cuckoo clock) is listed --\n");
    engine.delete_row("listings", Value::Int(3))?;
    engine.insert_row(
        "listings",
        vec![
            Value::Int(6),
            Value::Text("black forest cuckoo clock working".into()),
        ],
    )?;
    engine.insert_row(
        "auction_state",
        vec![Value::Int(6), Value::Int(25), Value::Int(72)],
    )?;

    let hits = show(
        &mut engine,
        "clocks OR watches (disjunctive):",
        "clock watch",
        QueryMode::Disjunctive,
    );
    assert!(
        hits.iter().all(|h| h.row[0] != Value::Int(3)),
        "closed lots must vanish"
    );
    assert!(
        hits.iter().any(|h| h.row[0] == Value::Int(6)),
        "new lots must appear"
    );

    println!("\nauction search stays consistent with live bids, closings and new lots.");
    Ok(())
}
