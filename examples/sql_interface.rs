//! The paper's SQL framework end to end (§3.1 + Figure 1), through the
//! `svr-sql` front end: SQL-bodied scoring functions, `CREATE TEXT INDEX
//! ... SCORE WITH ... AGGREGATE WITH`, and the SQL/MM-style ranked query
//! `SELECT ... ORDER BY score(col, "keywords") FETCH TOP k RESULTS ONLY`.
//!
//! Run with: `cargo run --release --example sql_interface`

use svr::SqlSession;

fn run(session: &mut SqlSession, sql: &str) {
    println!(
        "svr> {}",
        sql.trim()
            .lines()
            .map(str::trim)
            .collect::<Vec<_>>()
            .join(" ")
    );
    match session.execute(sql) {
        Ok(result) => println!("{result}"),
        Err(e) => println!("ERROR: {e}\n"),
    }
}

fn main() {
    let mut session = SqlSession::new();

    // Schema + scoring spec: verbatim from the paper's §3.1 (modulo type
    // spellings).
    session
        .execute_script(
            r#"
            CREATE TABLE movies (mid INT PRIMARY KEY, name TEXT, description TEXT);
            CREATE TABLE reviews (rid INT PRIMARY KEY, mid INT, rating FLOAT);
            CREATE TABLE statistics (mid INT PRIMARY KEY, nvisit INT, ndownload INT);

            CREATE FUNCTION S1 (id INTEGER) RETURNS FLOAT
                RETURN SELECT avg(R.rating) FROM reviews R WHERE R.mid = id;
            CREATE FUNCTION S2 (id INTEGER) RETURNS FLOAT
                RETURN SELECT S.nvisit FROM statistics S WHERE S.mid = id;
            CREATE FUNCTION S3 (id INTEGER) RETURNS FLOAT
                RETURN SELECT S.ndownload FROM statistics S WHERE S.mid = id;
            CREATE FUNCTION Agg (s1 FLOAT, s2 FLOAT, s3 FLOAT) RETURNS FLOAT
                RETURN (s1*100 + s2/2 + s3);

            CREATE TEXT INDEX movie_search ON movies(description)
                SCORE WITH (S1, S2, S3) AGGREGATE WITH Agg
                USING METHOD CHUNK
                OPTIONS (min_chunk_docs = 2, chunk_ratio = 2.0);

            INSERT INTO movies VALUES
                (1, 'American Thrift', 'a 1962 tour across the golden gate bridge'),
                (2, 'Amateur Film',    'home footage near the golden gate in fog'),
                (3, 'City Symphony',   'city life, traffic and trains');
            INSERT INTO reviews VALUES
                (100, 1, 4.5), (101, 1, 5.0), (102, 2, 2.0);
            INSERT INTO statistics VALUES
                (1, 5000, 120), (2, 40, 3), (3, 900, 50);
            "#,
        )
        .expect("setup script");
    println!("-- schema, scoring functions and text index created --\n");

    // Figure 1's query: the popular, well-reviewed movie wins.
    run(
        &mut session,
        r#"SELECT name FROM movies m
           ORDER BY score(m.description, "golden gate")
           FETCH TOP 10 RESULTS ONLY"#,
    );

    // A flash crowd hits Amateur Film; the ranking flips on the very next
    // query — SVR ranks by the *latest* structured values.
    run(
        &mut session,
        "UPDATE statistics SET nvisit = 2000000 WHERE mid = 2",
    );
    run(
        &mut session,
        r#"SELECT name FROM movies m
           ORDER BY score(m.description, "golden gate")
           FETCH TOP 10 RESULTS ONLY"#,
    );

    // Content updates re-index the text column (Appendix A).
    run(
        &mut session,
        "UPDATE movies SET description = 'golden gate at dawn, the city wakes' WHERE mid = 3",
    );
    run(
        &mut session,
        r#"SELECT name FROM movies
           WHERE CONTAINS(description, 'golden gate', ALL)
           ORDER BY SCORE(description, 'golden gate') DESC
           FETCH FIRST 10 ROWS ONLY"#,
    );

    // Transactions: BEGIN queues DML invisibly; COMMIT applies it as one
    // atomic WriteBatch — and a failing operation rolls the whole batch
    // back, leaving no trace in tables, views or rankings.
    run(&mut session, "BEGIN");
    run(
        &mut session,
        "INSERT INTO movies VALUES (4, 'Bridge Builders', 'building the golden gate')",
    );
    run(
        &mut session,
        "UPDATE statistics SET nvisit = 4000000 WHERE mid = 1",
    );
    println!("-- queued DML is invisible until COMMIT (deferred visibility) --");
    run(
        &mut session,
        r#"SELECT name FROM movies m
           ORDER BY score(m.description, "golden gate")
           FETCH TOP 10 RESULTS ONLY"#,
    );
    run(&mut session, "COMMIT");
    run(
        &mut session,
        r#"SELECT name FROM movies m
           ORDER BY score(m.description, "golden gate")
           FETCH TOP 10 RESULTS ONLY"#,
    );

    // A transaction that would half-apply instead applies not at all: the
    // duplicate key aborts the COMMIT and the visit-count update rolls
    // back with it.
    run(&mut session, "BEGIN");
    run(
        &mut session,
        "UPDATE statistics SET nvisit = 1 WHERE mid = 1",
    );
    run(
        &mut session,
        "INSERT INTO movies VALUES (4, 'Duplicate', 'golden gate again')",
    );
    run(&mut session, "COMMIT"); // errors: duplicate key 4, batch rolled back
    run(
        &mut session,
        r#"SELECT name FROM movies m
           ORDER BY score(m.description, "golden gate")
           FETCH TOP 1 RESULTS ONLY"#, // American Thrift keeps its spike
    );

    // Offline maintenance folds the short lists back into the long lists.
    run(&mut session, "MERGE TEXT INDEX movie_search");
    run(
        &mut session,
        r#"SELECT name FROM movies m
           ORDER BY score(m.description, "golden gate")
           FETCH TOP 3 RESULTS ONLY"#,
    );

    // Plain relational access still works.
    run(&mut session, "SELECT mid, name FROM movies WHERE mid = 2");
}
