//! Side-by-side comparison of all six index methods on one workload —
//! a miniature of the paper's evaluation (§5), printing per-method update
//! and query costs plus long-list sizes (Table 1's metric).
//!
//! Run with: `cargo run --release --example method_comparison`

use std::time::Instant;

use svr::core::store_names;
use svr::core::types::QueryMode;
use svr::workload::{QueryClass, QueryWorkload, SynthConfig, UpdateConfig, UpdateWorkload};
use svr::{build_index, IndexConfig, MethodKind};

fn main() -> svr::Result<()> {
    let dataset = SynthConfig {
        num_docs: 1_500,
        vocab_size: 8_000,
        tokens_per_doc: 120,
        ..SynthConfig::default()
    }
    .generate();
    let ranked_terms = dataset.terms_by_frequency();
    let ranked_docs = dataset.docs_by_score();
    println!(
        "corpus: {} docs, {} distinct terms\n",
        dataset.docs.len(),
        ranked_terms.len()
    );
    println!(
        "{:<17} {:>12} {:>14} {:>14} {:>12}",
        "method", "long MB", "upd us/op", "qry ms/op", "qry pages"
    );

    for kind in MethodKind::ALL {
        let config = IndexConfig {
            term_weight: if kind.uses_term_scores() {
                50_000.0
            } else {
                0.0
            },
            ..IndexConfig::default()
        };
        let index = build_index(kind, &dataset.docs, &dataset.scores, &config)?;

        // 2000 score updates.
        let mut updates = UpdateWorkload::new(
            ranked_docs.clone(),
            dataset.scores.clone(),
            UpdateConfig {
                mean_step: 1_000.0,
                ..UpdateConfig::default()
            },
        );
        let batch = updates.take(2_000);
        let t0 = Instant::now();
        for (doc, score) in &batch {
            index.update_score(*doc, *score)?;
        }
        let upd_us = t0.elapsed().as_micros() as f64 / batch.len() as f64;

        // 30 cold-cache conjunctive top-10 queries on frequent keywords.
        let mut queries = QueryWorkload::new(
            ranked_terms.clone(),
            QueryClass::Frequent,
            2,
            QueryMode::Conjunctive,
            7,
        );
        let long_store = index.env().store(store_names::LONG).expect("long store");
        let mut total_ms = 0.0;
        let mut total_pages = 0;
        let n_queries = 30;
        for q in queries.take(n_queries, 10) {
            index.clear_long_cache()?;
            let before = long_store.io_stats();
            let t = Instant::now();
            index.query(&q)?;
            total_ms += t.elapsed().as_secs_f64() * 1e3;
            total_pages += long_store.io_stats().since(&before).pages_read;
        }

        println!(
            "{:<17} {:>12.2} {:>14.1} {:>14.3} {:>12.1}",
            kind.name(),
            index.long_list_bytes() as f64 / 1e6,
            upd_us,
            total_ms / n_queries as f64,
            total_pages as f64 / n_queries as f64,
        );
    }

    println!(
        "\nExpected shape (paper §5): Score's updates are orders of magnitude\n\
         slower; ID scans everything on every query; Chunk gets both cheap\n\
         updates and small query footprints; the TermScore variants pay a\n\
         modest size/time premium for relevance-aware ranking."
    );
    Ok(())
}
