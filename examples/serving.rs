//! Network serving end to end: a durable engine with the group-commit
//! write amortizations behind the `svr_server` TCP front end, driven by
//! the line-protocol client.
//!
//! The server multiplexes every connection onto one shared engine —
//! per-connection SQL sessions, named cursors with TTL sweeping,
//! admission control and load shedding — while the engine amortizes the
//! write side: one fsync absorbs a window of commit markers
//! (`wal_sync_interval_ms`) and one writer-lock hold drains the score
//! refreshes queued by concurrent writers (`group_refresh`).
//!
//! Run with: `cargo run --release --example serving`

use svr::server::{Client, Server, ServerConfig};
use svr::{EngineConfig, SvrEngine};

fn main() {
    let dir = std::env::temp_dir().join(format!("svr-serving-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // A file-backed engine in the serving configuration: commit markers
    // are acknowledged when logged and fsynced at most once per 10ms
    // (the durability window), and score refreshes group-commit.
    let engine = SvrEngine::open_path_with(
        &dir,
        EngineConfig {
            wal_sync_interval_ms: 10,
            group_refresh: true,
            ..EngineConfig::default()
        },
    )
    .expect("open engine");

    let mut handle = Server::start(
        engine,
        ServerConfig {
            cursor_ttl: Some(std::time::Duration::from_secs(30)),
            ..ServerConfig::default()
        },
    )
    .expect("bind server");
    println!("serving on {}", handle.addr());

    // Schema over the wire: the paper's movies/statistics running example.
    let mut client = Client::connect(handle.addr()).expect("connect");
    for stmt in [
        "CREATE TABLE movies (mid INT PRIMARY KEY, name TEXT, description TEXT)",
        "CREATE TABLE statistics (mid INT PRIMARY KEY, nvisit INT)",
        "CREATE FUNCTION S2 (id INTEGER) RETURNS FLOAT \
         RETURN SELECT S.nvisit FROM statistics S WHERE S.mid = id",
        "CREATE TEXT INDEX movie_search ON movies(description) \
         SCORE WITH (S2) USING METHOD CHUNK OPTIONS (min_chunk_docs = 2)",
    ] {
        client.exec(stmt).expect("schema");
    }
    let phrases = [
        "golden gate bridge footage",
        "golden retriever documentary",
        "bridge engineering at the gate",
        "city life beyond the golden hills",
        "gate repair tutorial golden tools",
    ];
    for mid in 0..20i64 {
        client
            .exec(&format!(
                "INSERT INTO movies VALUES ({mid}, 'movie {mid}', '{}')",
                phrases[mid as usize % phrases.len()]
            ))
            .expect("insert movie");
        client
            .exec(&format!("INSERT INTO statistics VALUES ({mid}, {mid})"))
            .expect("insert stats");
    }

    // Concurrent writers storm score updates through their own
    // connections — each acknowledged update rides the group-sync window
    // and its index refresh group-commits with its peers'.
    std::thread::scope(|scope| {
        for w in 0..4i64 {
            let addr = handle.addr();
            scope.spawn(move || {
                let mut writer = Client::connect(addr).expect("connect writer");
                for round in 0..25i64 {
                    let mid = (w * 5 + round) % 20;
                    writer
                        .exec(&format!(
                            "UPDATE statistics SET nvisit = {} WHERE mid = {mid}",
                            mid * 1_000 + round
                        ))
                        .expect("update");
                }
                writer.close().expect("close writer");
            });
        }
    });

    // Ranked retrieval over the wire sees the freshest scores.
    let ranked = client
        .query(
            "SELECT name FROM movies m \
             ORDER BY SCORE(m.description, 'golden gate') FETCH TOP 5 RESULTS ONLY",
        )
        .expect("ranked query");
    println!("\ntop-5 for 'golden gate':");
    for (row, score) in ranked.rows.iter().zip(&ranked.scores) {
        println!("  {:<10} score {score}", row[0].as_str().unwrap_or("?"));
    }

    // Named cursors paginate a ranked enumeration across round trips.
    client
        .exec(
            "DECLARE walk CURSOR FOR SELECT name FROM movies m \
             ORDER BY SCORE(m.description, 'golden')",
        )
        .expect("declare");
    let page = client.fetch("walk", 3).expect("fetch");
    println!("\nfirst cursor page: {} rows", page.rows.len());

    // The Info command surfaces the amortization counters: 'skips' are
    // commit markers that rode a peer's fsync, 'applied' are refresh
    // batches drained under shared lock holds.
    let info = client.info().expect("info");
    let wal = info.get("wal").expect("wal stats");
    let refresh = info.get("refresh").expect("refresh stats");
    println!(
        "\ngroup-commit counters: {} fsyncs, {} skipped markers, {} refreshes applied",
        wal.get("syncs").and_then(|j| j.as_u64()).unwrap_or(0),
        wal.get("sync_skips").and_then(|j| j.as_u64()).unwrap_or(0),
        refresh.get("applied").and_then(|j| j.as_u64()).unwrap_or(0),
    );

    client.close().expect("close");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    println!("\nserver drained and shut down");
}
