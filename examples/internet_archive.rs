//! Internet-Archive-style workload: flash crowds on a movie archive.
//!
//! Recreates the paper's motivating deployment (§1): an archive whose
//! review ratings, visit and download counts are updated constantly, with
//! "flash crowd" items that suddenly gain popularity. The Chunk index keeps
//! queries answering against the *latest* scores while absorbing the update
//! stream; the example also reports how little of the long lists a top-k
//! query touches compared to a full scan.
//!
//! Run with: `cargo run --release --example internet_archive`

use svr::core::store_names;
use svr::core::types::QueryMode;
use svr::workload::{ArchiveConfig, UpdateConfig, UpdateWorkload};
use svr::{build_index, IndexConfig, MethodKind, Query};

fn main() -> svr::Result<()> {
    // A scaled-down archive (the paper replicates its 10MB real set x10;
    // distributions match DESIGN.md §4).
    let dataset = ArchiveConfig {
        num_movies: 800,
        replication: 4,
        ..ArchiveConfig::default()
    }
    .generate();
    println!(
        "archive: {} movies, {} distinct terms",
        dataset.docs.len(),
        dataset.terms_by_frequency().len()
    );

    let config = IndexConfig::default();
    let index = build_index(MethodKind::Chunk, &dataset.docs, &dataset.scores, &config)?;

    // Update stream: Zipf towards popular movies; a 1% focus set of newly
    // hot items receives strictly increasing attention.
    let mut updates = UpdateWorkload::new(
        dataset.docs_by_score(),
        dataset.scores.clone(),
        UpdateConfig {
            mean_step: 500.0,
            focus_update_fraction: 0.3,
            ..UpdateConfig::default()
        },
    );

    let frequent_terms = dataset.terms_by_frequency();
    let query = Query::new(frequent_terms[..2].to_vec(), 10, QueryMode::Conjunctive);

    // Before the storm: remember the current champion.
    let before = index.query(&query)?;
    println!("\ntop-10 before the update storm (query on 2 frequent terms):");
    for hit in &before {
        println!("  movie {:>5}  score {:>12.1}", hit.doc.0, hit.score);
    }

    // The storm: 20k score updates.
    for _ in 0..20_000 {
        let (doc, new_score) = updates.next_update();
        index.update_score(doc, new_score)?;
    }

    index.clear_long_cache()?; // cold long lists, like the paper measures
    let long_store = index.env().store(store_names::LONG).expect("long store");
    let io_before = long_store.io_stats();
    let after = index.query(&query)?;
    let pages_touched = long_store.io_stats().since(&io_before).pages_read;
    let total_pages = long_store.disk().num_pages();

    println!("\ntop-10 after 20000 score updates:");
    for hit in &after {
        println!("  movie {:>5}  score {:>12.1}", hit.doc.0, hit.score);
    }
    println!(
        "\nlong-list pages read by that query: {pages_touched} of {total_pages} \
         ({:.1}% — early termination at a chunk boundary)",
        100.0 * pages_touched as f64 / total_pages as f64
    );

    // Every reported score is the live one.
    for hit in &after {
        assert_eq!(index.current_score(hit.doc)?, hit.score);
    }

    // Focus-set items rose: at least one of the hot movies should now be in
    // the top-10 even though it may have started obscure.
    let focus: std::collections::HashSet<_> = updates.focus_set().iter().copied().collect();
    let hot_in_top = after.iter().filter(|h| focus.contains(&h.doc)).count();
    println!("flash-crowd movies now in the top-10: {hot_in_top}");

    // Offline maintenance merges the short lists back and re-chunks.
    index.merge_short_lists()?;
    let merged = index.query(&query)?;
    assert_eq!(
        merged.iter().map(|h| h.doc).collect::<Vec<_>>(),
        after.iter().map(|h| h.doc).collect::<Vec<_>>(),
        "offline merge must not change answers"
    );
    println!("offline merge done; answers unchanged.");
    Ok(())
}
