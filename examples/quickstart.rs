//! Quickstart: the paper's introductory example (§1, Figure 1).
//!
//! Two movies both mention "golden gate"; TF-IDF can't tell them apart, but
//! Structured Value Ranking orders them by review ratings, visits and
//! downloads — and keeps the ranking fresh as those values change.
//!
//! Run with: `cargo run --release --example quickstart`

use svr::{IndexConfig, MethodKind, QueryMode, SvrEngine};
use svr_relation::schema::{ColumnType, Schema};
use svr_relation::{AggExpr, ScoreComponent, SvrSpec, Value};

fn main() -> svr::Result<()> {
    // The engine is a cheap cloneable handle: every method below takes
    // &self, and clones share one internally synchronized state — see the
    // multi-threaded finale.
    let engine = SvrEngine::new();

    // The schema of Figure 1: Movies, Reviews, Statistics.
    engine.create_table(Schema::new(
        "movies",
        &[
            ("mid", ColumnType::Int),
            ("name", ColumnType::Text),
            ("desc", ColumnType::Text),
        ],
        0,
    ))?;
    engine.create_table(Schema::new(
        "reviews",
        &[
            ("rid", ColumnType::Int),
            ("mid", ColumnType::Int),
            ("rating", ColumnType::Float),
        ],
        0,
    ))?;
    engine.create_table(Schema::new(
        "statistics",
        &[
            ("mid", ColumnType::Int),
            ("nvisit", ColumnType::Int),
            ("ndownload", ColumnType::Int),
        ],
        0,
    ))?;

    engine.insert_row(
        "movies",
        vec![
            Value::Int(1),
            Value::Text("American Thrift".into()),
            Value::Text("A 1962 tour across the golden gate bridge and beyond".into()),
        ],
    )?;
    engine.insert_row(
        "movies",
        vec![
            Value::Int(2),
            Value::Text("Amateur Film".into()),
            Value::Text("Home footage near the golden gate in fog".into()),
        ],
    )?;

    // §3.1: S1 = avg rating, S2 = visits, S3 = downloads;
    //        Agg = s1*100 + s2/2 + s3.
    let spec = SvrSpec::new(
        vec![
            ScoreComponent::AvgOf {
                table: "reviews".into(),
                fk_col: "mid".into(),
                val_col: "rating".into(),
            },
            ScoreComponent::ColumnOf {
                table: "statistics".into(),
                key_col: "mid".into(),
                val_col: "nvisit".into(),
            },
            ScoreComponent::ColumnOf {
                table: "statistics".into(),
                key_col: "mid".into(),
                val_col: "ndownload".into(),
            },
        ],
        AggExpr::parse("s1*100 + s2/2 + s3").expect("valid Agg expression"),
    );
    engine.create_text_index(
        "movie_search",
        "movies",
        "desc",
        spec,
        MethodKind::Chunk,
        IndexConfig::default(),
    )?;

    // American Thrift is the popular one.
    engine.insert_row(
        "reviews",
        vec![Value::Int(100), Value::Int(1), Value::Float(4.5)],
    )?;
    engine.insert_row(
        "reviews",
        vec![Value::Int(101), Value::Int(1), Value::Float(5.0)],
    )?;
    engine.insert_row(
        "reviews",
        vec![Value::Int(102), Value::Int(2), Value::Float(2.0)],
    )?;
    engine.insert_row(
        "statistics",
        vec![Value::Int(1), Value::Int(5000), Value::Int(1200)],
    )?;
    engine.insert_row(
        "statistics",
        vec![Value::Int(2), Value::Int(40), Value::Int(3)],
    )?;

    println!("SELECT * FROM Movies ORDER BY score(desc, \"golden gate\") FETCH TOP 2:");
    for hit in engine.search("movie_search", "golden gate", 2, QueryMode::Conjunctive)? {
        println!(
            "  {:<18} score = {:>10.1}",
            hit.row[1].to_string(),
            hit.score
        );
    }

    // A flash crowd hits Amateur Film: an award announcement sends visits
    // through the roof. The materialized view updates the score, the index
    // absorbs it, and the next query reflects it immediately.
    println!("\n-- Amateur Film goes viral (nVisit = 500000) --\n");
    engine.update_row(
        "statistics",
        Value::Int(2),
        &[("nvisit".into(), Value::Int(500_000))],
    )?;

    println!("Same query, latest scores:");
    for hit in engine.search("movie_search", "golden gate", 2, QueryMode::Conjunctive)? {
        println!(
            "  {:<18} score = {:>10.1}",
            hit.row[1].to_string(),
            hit.score
        );
    }

    let amateur = engine.score_of("movie_search", 2)?;
    assert!(amateur > engine.score_of("movie_search", 1)?);
    println!("\nAmateur Film now scores {amateur:.1} and ranks first.");

    // The serving pattern: clone the handle into reader threads — queries
    // take &self and run concurrently — while this thread keeps mutating.
    println!("\n-- Serving the same query from 4 threads during an update burst --\n");
    std::thread::scope(|scope| {
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let reader = engine.clone();
                scope.spawn(move || {
                    let mut served = 0;
                    for _ in 0..200 {
                        let hits = reader
                            .search("movie_search", "golden gate", 2, QueryMode::Conjunctive)
                            .expect("concurrent search");
                        assert_eq!(hits.len(), 2);
                        served += 1;
                    }
                    served
                })
            })
            .collect();
        for visits in (510_000..520_000).step_by(500) {
            engine
                .update_row(
                    "statistics",
                    Value::Int(2),
                    &[("nvisit".into(), Value::Int(visits))],
                )
                .expect("update during serving");
        }
        let total: usize = readers.into_iter().map(|r| r.join().expect("reader")).sum();
        println!("served {total} concurrent queries while visits kept climbing");
    });
    let final_score = engine.score_of("movie_search", 2)?;
    println!("final Amateur Film score: {final_score:.1} (latest update, no stale reads)");
    Ok(())
}
