//! The durable engine lifecycle: crash a fully populated engine and
//! recover **everything** with `SvrEngine::open` — catalog, vocabulary,
//! score views and index structures — with zero re-indexing from base
//! rows.
//!
//! The paper runs every SVR structure on BerkeleyDB precisely so that an
//! update-intensive index survives restarts. This example does the same
//! end to end: an engine is created in a durable environment, populated
//! through SQL (tables, a text index, an update storm), and then loses its
//! buffer pools mid-flight — the crash model under which only the disks
//! and write-ahead logs survive. `SvrEngine::open` replays the logs, reads
//! the system catalogs, reattaches every table and index shard, and serves
//! the exact same rankings.
//!
//! Run with: `cargo run --release --example durable_index`

use std::sync::Arc;

use svr::storage::StorageEnv;
use svr::{QueryMode, SqlSession, SvrEngine};

fn top3(engine: &SvrEngine) -> Vec<(String, f64)> {
    engine
        .search("movie_idx", "golden gate", 3, QueryMode::Conjunctive)
        .expect("search")
        .into_iter()
        .map(|r| (r.row[1].as_text().unwrap_or_default().to_string(), r.score))
        .collect()
}

fn main() {
    // A durable environment: every store in it is write-ahead logged.
    // (StorageEnv::open_dir — or SvrEngine::open_path — gives the same
    // lifecycle over real files; see `tests/durable_sql.rs`.)
    let env = Arc::new(StorageEnv::new_durable(4096));
    let engine = SvrEngine::create(env.clone()).expect("create engine");

    // Populate entirely through SQL.
    let session = SqlSession::with_engine(engine.clone());
    session
        .execute_script(
            r#"
            CREATE TABLE movies (mid INT PRIMARY KEY, name TEXT, description TEXT);
            CREATE TABLE statistics (mid INT PRIMARY KEY, nvisit INT);
            CREATE FUNCTION visits (id INT) RETURNS FLOAT
                RETURN SELECT s.nvisit FROM statistics s WHERE s.mid = id;
            CREATE TEXT INDEX movie_idx ON movies(description)
                SCORE WITH (visits) USING METHOD CHUNK
                OPTIONS (min_chunk_docs = 2, chunk_ratio = 2.0, shards = 2);
            INSERT INTO movies VALUES
                (1, 'American Thrift', 'classic golden gate commute footage'),
                (2, 'Amateur Film',    'amateur shots around the golden gate bridge'),
                (3, 'Fog Rolls In',    'fog over the golden gate at dawn'),
                (4, 'Night Crossing',  'golden gate crossing by night');
            INSERT INTO statistics VALUES (1, 50), (2, 50), (3, 50), (4, 50);
        "#,
        )
        .expect("populate");

    // An update-intensive stream: 5,000 score changes flowing through the
    // materialized view into the index, no flush anywhere.
    for i in 0..5_000u32 {
        let mid = i64::from(i % 4) + 1;
        session
            .execute(&format!(
                "UPDATE statistics SET nvisit = {} WHERE mid = {mid}",
                i + 10
            ))
            .expect("update");
    }
    let before = top3(&engine);
    println!("before crash: top-3 for \"golden gate\" = {before:?}");

    // Power cut. Buffer pools (dirty pages included) are gone; the disks
    // and the write-ahead logs survive. Nothing was checkpointed by hand.
    drop(session);
    drop(engine);
    env.crash();
    println!("crash! every buffer pool dropped");

    // Recovery: replay the logs, read the catalogs, reattach everything.
    // No base row is re-scanned, no document re-tokenized.
    let t0 = std::time::Instant::now();
    let engine = SvrEngine::open(env).expect("open");
    println!(
        "reopened in {:.1}ms: tables={:?}, indexes={:?}",
        t0.elapsed().as_secs_f64() * 1e3,
        {
            let mut t = engine.db().table_names();
            t.sort();
            t
        },
        engine.index_names(),
    );

    let after = top3(&engine);
    println!("after reopen: top-3 for \"golden gate\" = {after:?}");
    assert_eq!(before, after, "rankings must be identical across the crash");

    // The reopened engine serves the full write path: SQL sessions attach
    // unchanged and new updates reorder results as always.
    let session = SqlSession::with_engine(engine.clone());
    session
        .execute("UPDATE statistics SET nvisit = 1000000 WHERE mid = 1")
        .expect("post-recovery update");
    let new_top = top3(&engine);
    assert_eq!(new_top[0].0, "American Thrift");
    println!("post-recovery update storms to the top: {new_top:?}");
    println!("identical rankings across crash + reopen, zero re-indexing — OK");
}
