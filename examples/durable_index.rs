//! Durability below the index: the storage engine's write-ahead log.
//!
//! The paper runs everything on BerkeleyDB, whose B-trees survive crashes
//! through a redo log. Our BerkeleyDB stand-in implements the same
//! discipline; this example drives a Score table (doc → score B+-tree, the
//! structure every SVR method updates on *every* score change) through a
//! crash, losing the buffer pool mid-stream, and recovers it from the log.
//!
//! Run with: `cargo run --release --example durable_index`

use std::sync::Arc;

use svr::storage::{BTree, MemDisk, Store, Wal};

fn main() {
    let wal = Arc::new(Wal::new());
    let store = Arc::new(Store::new_logged(Arc::new(MemDisk::new(4096)), 64, wal));
    let scores = BTree::create_durable(store.clone()).expect("create");
    let meta = scores.meta_page().expect("durable tree has a meta page");

    // An update-intensive stream: 5,000 score updates, no flush anywhere.
    for i in 0..5_000u32 {
        let doc = i % 1_000;
        let score = f64::from(i) * 3.7;
        scores
            .put(&doc.to_be_bytes(), &score.to_le_bytes())
            .expect("put");
    }
    let stats = store.wal().unwrap().stats();
    println!(
        "before crash: {} entries, log = {:.1} MB / {} records ({} uncommitted)",
        scores.len(),
        stats.bytes as f64 / 1e6,
        stats.records,
        stats.uncommitted,
    );

    // Power cut. Every dirty page in the buffer pool is gone; the disk and
    // the log survive.
    store.crash();
    println!("crash! buffer pool dropped (dirty pages lost)");

    // Recovery replays the committed log batches onto the disk...
    store.recover().expect("recover");
    // ...and the tree handle is reopened from its persisted metadata page.
    let recovered = BTree::reopen(store.clone(), meta).expect("reopen");
    println!("recovered: {} entries", recovered.len());

    assert_eq!(recovered.len(), 1_000);
    // Every document's final score must be the last one written.
    for doc in 0..1_000u32 {
        let expect = f64::from(4_000 + doc) * 3.7;
        let raw = recovered
            .get(&doc.to_be_bytes())
            .expect("get")
            .expect("present");
        let got = f64::from_le_bytes(raw.try_into().expect("8 bytes"));
        assert_eq!(got, expect, "doc {doc}");
    }
    println!("all 1,000 final scores verified against the update stream");

    // A checkpoint bounds future recovery work.
    store.checkpoint().expect("checkpoint");
    println!(
        "after checkpoint: log = {} bytes (disk image is the new baseline)",
        store.wal().unwrap().stats().bytes,
    );
}
