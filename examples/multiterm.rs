//! Multi-term search: `CONTAINS ALL/ANY`, multi-keyword `RANK BY`, and
//! block-max WAND skipping.
//!
//! A trail-guide site ranks hiking trails by visitor clicks. Searches are
//! rarely one keyword: "granite vista ridge" should require all three
//! (`CONTAINS ALL` / conjunctive `RANK BY`), or any of them (`CONTAINS
//! ANY`), and still rank by the live structured score. On the doc-ordered
//! methods these queries run the block-max WAND executor: whole 128-posting
//! blocks whose `(max doc, max tscore)` metadata cannot beat the current
//! top-k threshold are skipped without being decoded — `EXPLAIN` shows the
//! per-query block counts. Unknown keywords are forgiving: `CONTAINS ALL`
//! with a term nobody ever wrote matches nothing (no error), while `ANY`
//! and `RANK BY` simply drop it.
//!
//! Run with: `cargo run --release --example multiterm`

use svr::{SqlResult, SqlSession};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = SqlSession::new();
    session.execute_script(
        r#"
        CREATE TABLE trails (tid INT PRIMARY KEY, description TEXT);
        CREATE TABLE clicks (tid INT, hits FLOAT);

        CREATE FUNCTION popularity (id INT) RETURNS FLOAT
            RETURN SELECT AVG(c.hits) FROM clicks c WHERE c.tid = id;
    "#,
    )?;

    // 2000 trail descriptions. Everything is a "trail"; "ridge" and "vista"
    // are common (their posting lists span many 128-posting blocks);
    // "granite" appears only in occasional bursts, so a 3-term conjunction
    // leapfrogs whole blocks of the dense lists without decoding them.
    for tid in 0..2000 {
        let mut words = vec!["trail", "loop"];
        if tid % 2 == 0 {
            words.push("ridge");
        }
        if tid % 3 == 0 {
            words.push("vista");
        }
        if (tid / 32) % 16 == 0 {
            words.push("granite");
        }
        let description = words.join(" ");
        session.execute(&format!(
            "INSERT INTO trails VALUES ({tid}, '{description}')"
        ))?;
        session.execute(&format!(
            "INSERT INTO clicks VALUES ({tid}, {})",
            (tid * 37) % 5000
        ))?;
    }

    // TFIDF() adds per-term scores, which is what gives the WAND executor a
    // term-score upper bound to prune with; varint picks a block codec so
    // the long lists carry per-block skip metadata.
    session.execute(
        "CREATE TEXT INDEX trail_search ON trails(description)
             SCORE WITH (popularity, TFIDF())
             USING METHOD ID_TERMSCORE
             OPTIONS (codec = varint)",
    )?;

    // ---- Multi-keyword ranking ---------------------------------------
    println!("== RANK BY: all three keywords, ranked by clicks ==");
    let top = session.execute(
        r#"SELECT tid FROM trails
               WHERE description CONTAINS ALL ('granite', 'vista', 'ridge')
               RANK BY description ('granite', 'vista', 'ridge')
               FETCH TOP 5 RESULTS ONLY"#,
    )?;
    println!("{top}");

    println!("== CONTAINS ANY: any of the three ==");
    let any = session.execute(
        r#"SELECT tid FROM trails
               WHERE description CONTAINS ANY ('granite', 'vista', 'ridge')
               RANK BY description ('granite', 'vista', 'ridge')
               LIMIT 5"#,
    )?;
    println!("{any}");

    // ---- What the executor actually did ------------------------------
    println!("== EXPLAIN: the block-max WAND evaluation ==");
    let plan = session.execute(
        r#"EXPLAIN SELECT tid FROM trails
               WHERE description CONTAINS ALL ('granite', 'vista', 'ridge')
               RANK BY description ('granite', 'vista', 'ridge')
               FETCH TOP 5 RESULTS ONLY"#,
    )?;
    if let SqlResult::Plan(lines) = &plan {
        for line in lines {
            println!("{line}");
        }
    }

    // ---- Unknown keywords --------------------------------------------
    let none = session.execute(
        r#"SELECT tid FROM trails
               WHERE description CONTAINS ALL ('granite', 'yeti') LIMIT 5"#,
    )?;
    let dropped = session.execute(
        r#"SELECT tid FROM trails
               RANK BY description ('granite', 'yeti') LIMIT 5"#,
    )?;
    println!(
        "CONTAINS ALL with unknown 'yeti' -> {} rows; RANK BY drops it -> {} rows",
        none.row_count(),
        dropped.row_count()
    );

    // ---- Multi-term queries paginate like single-term ones ------------
    println!("\n== paging a 3-term query through a named cursor ==");
    session.execute(
        r#"DECLARE scroll CURSOR FOR SELECT tid FROM trails
               WHERE description CONTAINS ALL ('granite', 'vista', 'ridge')
               RANK BY description ('granite', 'vista', 'ridge')"#,
    )?;
    for page in 1..=3 {
        let rows = session.execute("FETCH 4 FROM scroll")?;
        println!(
            "FETCH 4 FROM scroll (page {page}) -> {} rows",
            rows.row_count()
        );
    }
    session.execute("CLOSE scroll")?;
    Ok(())
}
