//! Stock-news search ranked by live trade volume + text relevance.
//!
//! The paper names stock databases as a natural SVR deployment ("where
//! volume of trade can be used to rank results", §1). Here a news archive
//! is ranked by the combined function of §4.3.3 — SVR (the ticker's rolling
//! trade volume) plus TF-IDF-style term scores — using the Chunk-TermScore
//! method, with both conjunctive and disjunctive queries.
//!
//! Run with: `cargo run --release --example stock_ticker`

use std::collections::HashMap;

use svr::core::types::{DocId, Document, QueryMode};
use svr::{build_index, IndexConfig, MethodKind, Query, ScoreMap};
use svr_text::Vocabulary;

const HEADLINES: &[(&str, &str)] = &[
    ("ACME", "acme surges on record quarterly earnings beat"),
    ("ACME", "acme unveils merger talks with rival conglomerate"),
    ("GLOBO", "globo earnings miss sends shares tumbling"),
    ("GLOBO", "globo announces dividend and buyback program"),
    (
        "INITECH",
        "initech earnings preview analysts expect strong cloud growth",
    ),
    (
        "INITECH",
        "initech recalls flagship product after defect reports",
    ),
    ("HOOLI", "hooli merger with nucleus approved by regulators"),
    (
        "HOOLI",
        "hooli earnings call highlights advertising slowdown",
    ),
];

fn main() -> svr::Result<()> {
    let mut vocab = Vocabulary::new();
    let mut docs: Vec<Document> = Vec::new();
    let mut tickers: Vec<&str> = Vec::new();
    for (i, (ticker, headline)) in HEADLINES.iter().enumerate() {
        docs.push(Document::from_text(DocId(i as u32), headline, &mut vocab));
        tickers.push(ticker);
    }

    // Initial trade volumes (the SVR score of each story = its ticker's
    // volume).
    let mut volume: HashMap<&str, f64> = [
        ("ACME", 1_000.0),
        ("GLOBO", 8_000.0),
        ("INITECH", 3_000.0),
        ("HOOLI", 2_000.0),
    ]
    .into_iter()
    .collect();
    let scores: ScoreMap = docs
        .iter()
        .enumerate()
        .map(|(i, d)| (d.id, volume[tickers[i]]))
        .collect();

    // Combined ranking: f = volume + 5000 * sum(idf * tf_norm).
    let config = IndexConfig {
        term_weight: 5_000.0,
        fancy_size: 4,
        ..IndexConfig::default()
    };
    let index = build_index(MethodKind::ChunkTermScore, &docs, &scores, &config)?;

    fn term(vocab: &Vocabulary, word: &str) -> svr::core::types::TermId {
        vocab.get(word).expect("word in corpus")
    }
    let show = |label: &str, hits: &[svr::core::SearchHit]| {
        println!("{label}");
        for h in hits {
            let (ticker, headline) = HEADLINES[h.doc.0 as usize];
            println!("  [{:<7}] {:>9.0}  {}", ticker, h.score, headline);
        }
    };

    let earnings = Query::new([term(&vocab, "earnings")], 3, QueryMode::Conjunctive);
    show(
        "top 'earnings' stories by volume + relevance:",
        &index.query(&earnings)?,
    );

    // The market moves: ACME volume explodes on the merger rumor.
    println!("\n-- ACME volume spikes to 90000 --\n");
    volume.insert("ACME", 90_000.0);
    for (i, d) in docs.iter().enumerate() {
        if tickers[i] == "ACME" {
            index.update_score(d.id, volume["ACME"])?;
        }
    }
    show("same query, live volumes:", &index.query(&earnings)?);

    // Disjunctive query: stories about mergers OR recalls.
    let broad = Query::new(
        [term(&vocab, "merger"), term(&vocab, "recalls")],
        4,
        QueryMode::Disjunctive,
    );
    show(
        "\n'merger OR recalls' (disjunctive):",
        &index.query(&broad)?,
    );

    // A new headline arrives mid-session (Appendix A insertion).
    let breaking = Document::from_text(
        DocId(100),
        "acme merger confirmed record premium for shareholders",
        &mut vocab,
    );
    index.insert_document(&breaking, volume["ACME"])?;
    let merger_q = Query::new([term(&vocab, "merger")], 3, QueryMode::Conjunctive);
    let hits = index.query(&merger_q)?;
    assert!(
        hits.iter().any(|h| h.doc == DocId(100)),
        "breaking story must be searchable"
    );
    println!(
        "\nbreaking story indexed and ranked at volume {:.0}.",
        volume["ACME"]
    );
    Ok(())
}
