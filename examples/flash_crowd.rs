//! The paper's motivating scenario (§1), served concurrently: a *flash
//! crowd* while the engine is under live query traffic.
//!
//! "Frequently, these changes are due to 'flash crowds' on the Internet,
//! where an item suddenly gains popularity due to some external event such
//! as an award announcement." An obscure document's score explodes past
//! everything else; users expect the very next top-k query to surface it.
//!
//! This example exercises the shared-engine API end to end: one
//! [`SvrEngine`] handle is cloned into four reader threads that serve
//! ranked queries non-stop, while a writer thread storms the focus set
//! with score updates — singles and [`WriteBatch`]es. When the storm
//! quiesces, the promoted documents rank first, and every mid-storm result
//! was already consistent (sorted, live documents only).
//!
//! Run with: `cargo run --release --example flash_crowd`

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

use svr::{IndexConfig, MethodKind, QueryMode, SvrEngine, WriteBatch};
use svr_relation::schema::{ColumnType, Schema};
use svr_relation::{ScoreComponent, SvrSpec, Value};

const DOCS: i64 = 2_000;
const FOCUS: i64 = 20; // the 1% that goes viral
const READERS: usize = 4;

fn main() -> svr::Result<()> {
    let engine = SvrEngine::new();
    engine.create_table(Schema::new(
        "movies",
        &[("mid", ColumnType::Int), ("desc", ColumnType::Text)],
        0,
    ))?;
    engine.create_table(Schema::new(
        "stats",
        &[("mid", ColumnType::Int), ("nvisit", ColumnType::Int)],
        0,
    ))?;

    // Bulk load through the batched path: one writer-lock acquisition per
    // table, coalesced score propagation.
    engine.insert_rows(
        "movies",
        (0..DOCS)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Text(format!("archive footage reel {i} of the golden gate")),
                ]
            })
            .collect(),
    )?;
    engine.create_text_index(
        "movie_search",
        "movies",
        "desc",
        SvrSpec::single(ScoreComponent::ColumnOf {
            table: "stats".into(),
            key_col: "mid".into(),
            val_col: "nvisit".into(),
        }),
        MethodKind::Chunk,
        IndexConfig::default(),
    )?;
    engine.insert_rows(
        "stats",
        (0..DOCS)
            .map(|i| vec![Value::Int(i), Value::Int(DOCS - i)])
            .collect(),
    )?;

    let before: Vec<i64> = top_ids(&engine, 10)?;
    println!("corpus: {DOCS} docs; flash crowd hits the last {FOCUS} (least popular)\n");
    println!("top-3 before the storm: {:?}", &before[..3]);

    // The storm: four reader threads serve queries continuously while the
    // writer pushes the focus documents' visit counts through the roof.
    let stop = AtomicBool::new(false);
    let served = AtomicUsize::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..READERS {
            let reader = engine.clone();
            let (stop, served) = (&stop, &served);
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let hits = reader
                        .search("movie_search", "golden gate", 10, QueryMode::Conjunctive)
                        .expect("search never fails mid-storm");
                    // Mid-storm consistency: sorted, finite, live.
                    for w in hits.windows(2) {
                        assert!(w[0].score >= w[1].score);
                    }
                    served.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        let writer = engine.clone();
        let stop = &stop;
        scope.spawn(move || {
            // 40 wavefronts of strictly increasing popularity, batched: the
            // coalescing WriteBatch path turns each 20-update wave into at
            // most 20 index score updates with final values.
            for wave in 1..=40i64 {
                let mut batch = WriteBatch::new();
                for doc in DOCS - FOCUS..DOCS {
                    batch.update(
                        "stats",
                        Value::Int(doc),
                        vec![("nvisit".into(), Value::Int(wave * 50_000 + doc))],
                    );
                }
                writer.apply(batch).expect("storm batch applies");
            }
            stop.store(true, Ordering::Relaxed);
        });
    });
    let elapsed = start.elapsed();

    let after = top_ids(&engine, 10)?;
    let promoted = after.iter().filter(|d| **d >= DOCS - FOCUS).count();
    println!("top-3 after the storm:  {:?}", &after[..3]);
    println!(
        "\n{} queries served by {READERS} readers during the {:.0} ms storm \
         ({:.0} queries/s, all consistent)",
        served.load(Ordering::Relaxed),
        elapsed.as_secs_f64() * 1e3,
        served.load(Ordering::Relaxed) as f64 / elapsed.as_secs_f64(),
    );
    println!("{promoted}/10 of the top-10 are freshly promoted focus documents");
    assert_eq!(promoted, 10, "the very next query surfaces the flash crowd");

    // Freshness oracle: the ranking agrees with the materialized view.
    for hit in engine.search("movie_search", "golden gate", 10, QueryMode::Conjunctive)? {
        let mid = hit.row[0].as_i64().expect("integer pk");
        assert_eq!(hit.score, engine.score_of("movie_search", mid)?);
    }
    println!("post-quiesce scores match the materialized Score view exactly.");
    Ok(())
}

fn top_ids(engine: &SvrEngine, k: usize) -> svr::Result<Vec<i64>> {
    Ok(engine
        .search("movie_search", "golden gate", k, QueryMode::Conjunctive)?
        .iter()
        .map(|h| h.row[0].as_i64().expect("integer pk"))
        .collect())
}
