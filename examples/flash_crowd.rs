//! The paper's motivating scenario (§1): a *flash crowd*.
//!
//! "Frequently, these changes are due to 'flash crowds' on the Internet,
//! where an item suddenly gains popularity due to some external event such
//! as an award announcement." An obscure document's score explodes past
//! everything else; users expect the very next top-k query to surface it.
//!
//! This example builds a skewed corpus, storms the focus set with strictly
//! increasing updates, and shows — for the ID, Score-Threshold and Chunk
//! methods — that (a) the freshly promoted documents appear in the next
//! query's results, and (b) what each method paid for that freshness in
//! update work and query I/O.
//!
//! Run with: `cargo run --release --example flash_crowd`

use std::time::Instant;

use svr::core::store_names;
use svr::core::types::{DocId, Query};
use svr::workload::{FocusDirection, SynthConfig, UpdateConfig, UpdateWorkload};
use svr::{build_index, IndexConfig, MethodKind};

fn main() -> svr::Result<()> {
    let dataset = SynthConfig {
        num_docs: 2_000,
        vocab_size: 6_000,
        tokens_per_doc: 150,
        ..SynthConfig::default()
    }
    .generate();
    let ranked_docs = dataset.docs_by_score();
    let ranked_terms = dataset.terms_by_frequency();
    // Query the three most frequent terms disjunctively: a large share of
    // the collection matches, so ranking (not matching) decides the answer.
    let query = Query::disjunctive([ranked_terms[0], ranked_terms[1], ranked_terms[2]], 10);

    println!("corpus: {} docs; flash crowd hits 1% of them\n", dataset.docs.len());
    println!(
        "{:<17} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "method", "upd µs/op", "qry ms", "qry pages", "fresh top-k", "overlap"
    );

    for kind in [MethodKind::Id, MethodKind::ScoreThreshold, MethodKind::Chunk] {
        let config = IndexConfig::default();
        let index = build_index(kind, &dataset.docs, &dataset.scores, &config)?;

        // Baseline top-k before the crowd arrives.
        let before: Vec<DocId> = index.query(&query)?.iter().map(|h| h.doc).collect();

        // The storm: 20_000 updates, 80% of them strictly-increasing hits
        // on the 1% focus set (UpdateConfig's focus machinery is the
        // paper's §5.1 workload model).
        let mut workload = UpdateWorkload::new(
            ranked_docs.clone(),
            dataset.scores.clone(),
            UpdateConfig {
                mean_step: 20_000.0,
                focus_set_fraction: 0.01,
                focus_update_fraction: 0.8,
                focus_direction: FocusDirection::Increasing,
                ..UpdateConfig::default()
            },
        );
        let updates = workload.take(20_000);
        let focus: Vec<DocId> = workload.focus_set().to_vec();

        let start = Instant::now();
        for &(doc, new_score) in &updates {
            index.update_score(doc, new_score)?;
        }
        let upd_us = start.elapsed().as_micros() as f64 / updates.len() as f64;

        // Cold long-list cache, as the paper measures queries.
        index.clear_long_cache()?;
        let io_before = index.env().total_io();
        let start = Instant::now();
        let hits = index.query(&query)?;
        let qry_ms = start.elapsed().as_secs_f64() * 1e3;
        let pages = index.env().total_io().since(&io_before).pages_read;

        // Freshness check: every returned score must equal the live score.
        for hit in &hits {
            let live = index.current_score(hit.doc)?;
            assert!(
                (hit.score - live).abs() < 1e-9,
                "{kind}: stale score for {:?}",
                hit.doc
            );
        }
        let after: Vec<DocId> = hits.iter().map(|h| h.doc).collect();
        let promoted = after.iter().filter(|d| focus.contains(d)).count();
        let overlap = after.iter().filter(|d| before.contains(d)).count();

        println!(
            "{:<17} {:>10.1} {:>12.3} {:>12} {:>12} {:>9}/{}",
            kind.name(),
            upd_us,
            qry_ms,
            pages,
            promoted,
            overlap,
            query.k,
        );
        let _ = store_names::LONG; // (re-exported for store inspection)
    }

    println!(
        "\nAll three methods return the *latest* ranking (freshness asserted above);\n\
         they differ in what they pay: ID scans every posting on each query,\n\
         Score-Threshold and Chunk bound the scan but occasionally rewrite short\n\
         lists on updates. See `paper_experiments` for the full evaluation."
    );
    Ok(())
}
