//! Pagination: resumable ranked search through the cursor API.
//!
//! A newspaper front end serves an "infinite scroll" of articles ranked by
//! live popularity. The one-shot `search` API would re-run the whole top-k
//! query for every page; [`svr::SvrEngine::open_query`] returns a
//! [`svr::SearchCursor`] that *resumes* instead — each page costs only the
//! incremental inverted-list traversal, both through the Rust API and
//! through SQL's `DECLARE`/`FETCH`/`CLOSE` and `LIMIT k OFFSET m`.
//!
//! Run with: `cargo run --release --example pagination`

use svr::{IndexConfig, MethodKind, QueryRequest, SqlSession, SvrEngine};
use svr_relation::schema::{ColumnType, Schema};
use svr_relation::{ScoreComponent, SvrSpec, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = SvrEngine::new();

    engine.create_table(Schema::new(
        "articles",
        &[("aid", ColumnType::Int), ("body", ColumnType::Text)],
        0,
    ))?;
    engine.create_table(Schema::new(
        "clicks",
        &[("aid", ColumnType::Int), ("count", ColumnType::Int)],
        0,
    ))?;

    // 300 articles about the harbor bridge, ranked by click count.
    engine.insert_rows(
        "articles",
        (0..300)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Text(format!("harbor bridge report issue {i}")),
                ]
            })
            .collect(),
    )?;
    engine.create_text_index(
        "article_search",
        "articles",
        "body",
        SvrSpec::single(ScoreComponent::ColumnOf {
            table: "clicks".into(),
            key_col: "aid".into(),
            val_col: "count".into(),
        }),
        MethodKind::Chunk,
        IndexConfig {
            // Document-partitioned write shards: clicks stream in from
            // many threads while readers scroll.
            num_shards: 4,
            min_chunk_docs: 16,
            ..IndexConfig::default()
        },
    )?;
    engine.insert_rows(
        "clicks",
        (0..300)
            .map(|i| vec![Value::Int(i), Value::Int((i * 131) % 10_000)])
            .collect(),
    )?;

    // ---- Infinite scroll through the Rust API -------------------------
    println!("== scrolling 'harbor bridge' by popularity ==");
    let request = QueryRequest::new("article_search", "harbor bridge");
    let mut cursor = engine.open_query(&request)?;
    for page in 1..=3 {
        // Each batch resumes the suspended traversal: ranks 11..20 do not
        // re-pay ranks 1..10.
        let rows = cursor.next_batch(10)?;
        let first = rows.first().map(|r| r.score).unwrap_or(0.0);
        let last = rows.last().map(|r| r.score).unwrap_or(0.0);
        println!(
            "page {page}: {} rows, scores {first:.0} … {last:.0}",
            rows.len()
        );
    }

    // Writers churn scores while the cursor is open: batches keep flowing
    // (each one snapshot-consistent), and the cursor reports how many
    // write epochs it is behind so the caller can re-open when it matters.
    engine.update_row(
        "clicks",
        Value::Int(7),
        &[("count".into(), Value::Int(999_999))],
    )?;
    println!(
        "after a click storm: cursor staleness = {} epoch(s); page 4 still flows",
        cursor.staleness()
    );
    let page4 = cursor.next_batch(10)?;
    println!("page 4: {} rows (stale-but-graceful ordering)", page4.len());

    // A fresh cursor observes the new ranking immediately.
    let fresh = engine.open_query(&request)?.next_batch(1)?;
    println!(
        "fresh cursor top hit: article {:?} (the click-storm winner)\n",
        fresh[0].row[0]
    );

    // ---- The same, in SQL ---------------------------------------------
    let session = SqlSession::with_engine(engine);
    println!("== the same through SQL ==");
    // Page 2 without a cursor: OFFSET plans onto one, skipping rank 1..10
    // in a single traversal.
    let page2 = session.execute(
        r#"SELECT aid FROM articles ORDER BY SCORE(body, "harbor bridge") LIMIT 10 OFFSET 10"#,
    )?;
    println!("LIMIT 10 OFFSET 10 -> {} rows", page2.row_count());

    // Named cursor: the session keeps the suspended enumeration between
    // statements, so no FETCH recomputes the pages before it.
    session.execute(r#"DECLARE scroll CURSOR FOR SELECT aid FROM articles ORDER BY SCORE(body, "harbor bridge")"#)?;
    for page in 1..=3 {
        let rows = session.execute("FETCH 10 FROM scroll")?;
        println!(
            "FETCH 10 FROM scroll (page {page}) -> {} rows",
            rows.row_count()
        );
    }
    session.execute("CLOSE scroll")?;
    println!("CLOSE scroll -> done");
    Ok(())
}
