//! Offline stand-in for the `criterion` crate.
//!
//! Benchmarks compile and run (`cargo bench`), each measured with a simple
//! fixed-budget timing loop and reported as `<group>/<id>: <time>/iter`.
//! There is no statistical analysis, HTML reporting, or command-line
//! filtering — just enough for the workspace's `harness = false` bench
//! targets to build and produce useful numbers without network access.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Black-box hint: prevents the optimizer from deleting a computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (recorded, displayed alongside results).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter (used when the group names the function).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// The per-benchmark timing driver passed to `iter` closures.
pub struct Bencher {
    measurement_time: Duration,
    /// (total elapsed, iterations) of the measured run.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Measure `routine` repeatedly within the time budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: one run to estimate cost.
        let calib_start = Instant::now();
        black_box(routine());
        let per_iter = calib_start.elapsed().max(Duration::from_nanos(1));

        let target = self.measurement_time;
        let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.result = Some((start.elapsed(), iters));
    }
}

fn render_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// A named group of benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Accepted for compatibility; the stand-in has no warm-up phase.
    pub fn warm_up_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; sampling is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Record the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            measurement_time: self.measurement_time,
            result: None,
        };
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Run one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            measurement_time: self.measurement_time,
            result: None,
        };
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        let Some((elapsed, iters)) = bencher.result else {
            println!(
                "{}/{}: no measurement (iter was not called)",
                self.name, id.label
            );
            return;
        };
        let per_iter = elapsed / iters.max(1) as u32;
        let mut line = format!(
            "{}/{}: {}/iter ({} iters)",
            self.name,
            id.label,
            render_duration(per_iter),
            iters
        );
        if let Some(Throughput::Elements(n)) = self.throughput {
            let per_sec = n as f64 * iters as f64 / elapsed.as_secs_f64();
            line.push_str(&format!(", {per_sec:.0} elem/s"));
        }
        if let Some(Throughput::Bytes(n)) = self.throughput {
            let per_sec = n as f64 * iters as f64 / elapsed.as_secs_f64();
            line.push_str(&format!(", {:.1} MiB/s", per_sec / (1024.0 * 1024.0)));
        }
        println!("{line}");
    }

    /// Finish the group (prints nothing; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: Duration::from_millis(300),
            throughput: None,
            _criterion: self,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn id_renders() {
        assert_eq!(BenchmarkId::new("q", 10).label, "q/10");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
