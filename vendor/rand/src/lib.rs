//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Implements the traits and types this workspace uses: [`RngCore`],
//! [`Rng`] (with `gen`, `gen_range`, `gen_bool`), [`SeedableRng`] and
//! [`rngs::StdRng`]. The generator is a small splitmix64/xorshift-style
//! PRNG — deterministic per seed, which is all the workloads and property
//! tests require (statistical quality is more than adequate for Zipf
//! sampling and shuffles; this is not a cryptographic generator).

use std::ops::{Range, RangeInclusive};

/// Error type for fallible `RngCore` operations (never produced by the
/// generators in this crate; exists for API compatibility).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
    /// Fallible fill (infallible here).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A value type `gen` can produce.
pub trait Standard: Sized {
    /// Sample a uniformly random value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty : $m:ident),+) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.$m() as $t
            }
        }
    )+};
}

standard_int!(u8: next_u32, u16: next_u32, u32: next_u32, i8: next_u32, i16: next_u32, i32: next_u32);
standard_int!(u64: next_u64, i64: next_u64, usize: next_u64, isize: next_u64, u128: next_u64, i128: next_u64);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range form `gen_range` accepts.
pub trait SampleRange<T> {
    /// Sample a value uniformly from the range. Panics when empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )+};
}

sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_range_float {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample from empty range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )+};
}

sample_range_float!(f32, f64);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: splitmix64-initialized
    /// xoshiro256++ core.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(0u8..=255);
            let _ = i;
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(42);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn usize_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(rng.gen_range(0usize..5));
        }
        assert_eq!(seen.len(), 5);
    }
}
