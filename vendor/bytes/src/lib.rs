//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`]: an immutable, cheaply cloneable (`Arc`-backed)
//! contiguous byte buffer with the subset of the real crate's API this
//! workspace uses.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Cloning is O(1).
#[derive(Clone, Default, Eq, Ord, PartialOrd)]
pub struct Bytes(Arc<[u8]>);

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0[..].hash(state);
    }
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes(Arc::from(&[][..]))
    }

    /// A buffer borrowing nothing: static data is copied once on creation.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes(Arc::from(bytes))
    }

    /// Copy `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copy a sub-range into a new buffer.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.0.len(),
        };
        Bytes(Arc::from(&self.0[start..end]))
    }

    /// Copy the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::from(v))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes(Arc::from(v))
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(v: &'static [u8; N]) -> Bytes {
        Bytes(Arc::from(&v[..]))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.0[..] == other.0[..]
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.0[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.0[..] == other[..]
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_eq() {
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b, Bytes::copy_from_slice(&[1, 2, 3]));
        assert_eq!(&b[1..], &[2, 3][..]);
        assert_eq!(b.slice(1..3), Bytes::from_static(&[2, 3]));
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clone_is_shallow() {
        let b = Bytes::from(vec![9; 1024]);
        let c = b.clone();
        assert_eq!(b.as_ptr(), c.as_ptr());
    }

    #[test]
    fn debug_escapes() {
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\x00")), "b\"a\\x00\"");
    }
}
