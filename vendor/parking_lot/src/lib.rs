//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access, so this crate provides the
//! subset of the `parking_lot` API this workspace uses, implemented on
//! `std::sync`. Semantics match `parking_lot` where they differ from `std`:
//! locks are not poisoned by panics (a poisoned `std` lock is transparently
//! recovered with `into_inner`).

use std::sync;

/// The guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// The guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// The guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock. Unlike `std::sync::Mutex`, `lock` never fails:
/// poisoning is ignored.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock. Unlike `std::sync::RwLock`, `read`/`write` never
/// fail: poisoning is ignored.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a reader-writer lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Try to acquire the write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(7));
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
    }

    #[test]
    fn poison_is_ignored() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
