//! Collection strategies: `vec`, `btree_map`, `btree_set`.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.max <= self.min + 1 {
            return self.min;
        }
        self.min + rng.below(self.max - self.min)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// `Vec`s of `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone, Copy)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `BTreeMap`s with up to `size` entries (key collisions may yield fewer).
pub fn btree_map<K, V>(keys: K, values: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        keys,
        values,
        size: size.into(),
    }
}

/// The strategy returned by [`btree_map`].
#[derive(Debug, Clone, Copy)]
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let len = self.size.sample(rng);
        (0..len)
            .map(|_| (self.keys.generate(rng), self.values.generate(rng)))
            .collect()
    }
}

/// `BTreeSet`s with up to `size` elements (collisions may yield fewer).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`btree_set`].
#[derive(Debug, Clone, Copy)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_in_range() {
        let mut rng = TestRng::from_seed(7);
        let strat = vec(0u8..10, 2..5);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn maps_and_sets_respect_bounds() {
        let mut rng = TestRng::from_seed(8);
        let m = btree_map(0u32..100, 0u8..3, 0..12).generate(&mut rng);
        assert!(m.len() < 12);
        let s = btree_set(0u32..5, 10).generate(&mut rng);
        assert!(s.len() <= 5, "collisions collapse; {} unique", s.len());
    }

    #[test]
    fn exact_size() {
        let mut rng = TestRng::from_seed(9);
        assert_eq!(vec(0u8..=255, 7).generate(&mut rng).len(), 7);
    }
}
