//! Per-type `ANY` strategies mirroring `proptest::num::<type>::ANY`.

macro_rules! num_module {
    ($($m:ident : $t:ty),+) => {$(
        pub mod $m {
            use crate::strategy::Strategy;
            use crate::test_runner::TestRng;

            /// The full-range strategy type for this integer width.
            #[derive(Debug, Clone, Copy)]
            pub struct Any;

            /// The full-range strategy value.
            pub const ANY: Any = Any;

            impl Strategy for Any {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        }
    )+};
}

num_module!(u8: u8, u16: u16, u32: u32, u64: u64, usize: usize, i8: i8, i16: i16, i32: i32, i64: i64, isize: isize);

pub mod f64 {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The unit-interval strategy type for `f64`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform over [0, 1) (full-range floats are rarely useful; real
    /// proptest generates specials too, which the tests here don't rely
    /// on).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn any_generates_full_width() {
        let mut rng = TestRng::from_seed(11);
        let mut max = 0u64;
        for _ in 0..1000 {
            max = max.max(super::u64::ANY.generate(&mut rng));
        }
        assert!(max > u64::MAX / 2);
        let b = super::u8::ANY.generate(&mut rng);
        let _ = b;
    }
}
