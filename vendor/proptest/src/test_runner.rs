//! Test configuration and the deterministic generator driving case
//! generation.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for compatibility; unused (this stand-in never shrinks).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// The deterministic PRNG strategies draw from (xoshiro256++ seeded from
/// the test name, so every test has its own reproducible stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// A generator seeded from `seed`.
    pub fn from_seed(seed: u64) -> TestRng {
        let mut state = seed;
        TestRng {
            s: [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ],
        }
    }

    /// The generator for a named test: FNV-1a over the name.
    pub fn for_test(name: &str) -> TestRng {
        let mut hash: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
        TestRng::from_seed(hash)
    }

    /// Next 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform usize in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty sampling bound");
        (self.next_u64() % bound as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_test_streams_differ() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("beta");
        assert_ne!(a.next_u64(), b.next_u64());
        let mut a2 = TestRng::for_test("alpha");
        assert_eq!(TestRng::for_test("alpha").next_u64(), a2.next_u64());
    }

    #[test]
    fn config_with_cases() {
        assert_eq!(ProptestConfig::with_cases(12).cases, 12);
        assert_eq!(ProptestConfig::default().cases, 256);
    }
}
