//! `any::<T>()`: full-range strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::{AnyStrategy, Strategy};
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Generate a uniformly random value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.next_f64() as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        crate::string::random_char(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_covers_small_domains() {
        let mut rng = TestRng::from_seed(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(any::<bool>().generate(&mut rng));
        }
        assert_eq!(seen.len(), 2);
        let bytes: std::collections::HashSet<u8> =
            (0..2000).map(|_| any::<u8>().generate(&mut rng)).collect();
        assert!(bytes.len() > 200);
    }
}
