//! Generation of strings matching the small regex subset the workspace's
//! property tests use as string strategies.
//!
//! Supported syntax: literal characters, `.` (any char except newline),
//! character classes `[a-z0-9_]` (ranges + singletons, no negation), and
//! quantifiers `{m}`, `{m,n}`, `?`, `*`, `+` applying to the preceding
//! atom. This covers patterns like `".{0,200}"` and `"[ -~]{0,120}"`.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    /// `.`: anything but newline, with a bias towards printable ASCII and a
    /// tail of multi-byte scalars so char-boundary handling gets exercised.
    AnyChar,
    Literal(char),
    /// Inclusive char ranges; singletons are `(c, c)`.
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// A random unicode scalar, biased towards printable ASCII.
pub fn random_char(rng: &mut TestRng) -> char {
    match rng.next_u64() % 100 {
        0..=64 => (0x20 + rng.below(0x5f)) as u8 as char,
        65..=74 => ['\t', '\r', '\u{0}', '\u{1b}', '\u{7f}'][rng.below(5)],
        75..=89 => char::from_u32(0xA0 + rng.below(0x2000) as u32).unwrap_or('¿'),
        _ => {
            // Anywhere in the scalar space, skipping surrogates.
            let v = rng.below(0x10FFFF) as u32;
            char::from_u32(v).unwrap_or('\u{FFFD}')
        }
    }
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::AnyChar
            }
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(
                    i < chars.len(),
                    "unterminated character class in '{pattern}'"
                );
                i += 1; // consume ']'
                Atom::Class(ranges)
            }
            '\\' => {
                i += 1;
                let c = chars[i];
                i += 1;
                Atom::Literal(match c {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                })
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..].iter().position(|&c| c == '}').expect("'}'") + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("repetition bound"),
                            hi.trim().parse().expect("repetition bound"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("repetition count");
                            (n, n)
                        }
                    }
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '*' => {
                    i += 1;
                    (0, 16)
                }
                '+' => {
                    i += 1;
                    (1, 16)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn generate_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::AnyChar => {
            let c = random_char(rng);
            if c == '\n' {
                ' '
            } else {
                c
            }
        }
        Atom::Class(ranges) => {
            let total: u32 = ranges
                .iter()
                .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                .sum();
            let mut pick = rng.below(total as usize) as u32;
            for &(lo, hi) in ranges {
                let span = hi as u32 - lo as u32 + 1;
                if pick < span {
                    return char::from_u32(lo as u32 + pick).unwrap_or(lo);
                }
                pick -= span;
            }
            unreachable!("class spans sum correctly")
        }
    }
}

/// Generate a string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let count = if piece.max > piece.min {
            piece.min + rng.below(piece.max - piece.min + 1)
        } else {
            piece.min
        };
        for _ in 0..count {
            out.push(generate_atom(&piece.atom, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn printable_class() {
        let mut rng = TestRng::from_seed(21);
        for _ in 0..500 {
            let s = generate_matching("[ -~]{0,120}", &mut rng);
            assert!(s.len() <= 120);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn dot_never_newline_and_lengths_bounded() {
        let mut rng = TestRng::from_seed(22);
        for _ in 0..500 {
            let s = generate_matching(".{0,200}", &mut rng);
            assert!(s.chars().count() <= 200);
            assert!(!s.contains('\n'));
        }
    }

    #[test]
    fn literals_and_quantifiers() {
        let mut rng = TestRng::from_seed(23);
        assert_eq!(generate_matching("abc", &mut rng), "abc");
        let s = generate_matching("a{3}[0-9]{2}", &mut rng);
        assert_eq!(s.len(), 5);
        assert!(s.starts_with("aaa"));
        assert!(s[3..].chars().all(|c| c.is_ascii_digit()));
        let opt = generate_matching("x?", &mut rng);
        assert!(opt.len() <= 1);
    }
}
