//! The [`Strategy`] trait and the basic combinators.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Discard generated values failing `f` (regenerating; gives up after a
    /// bounded number of attempts).
    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

/// Box a strategy (used by `prop_oneof!` so element types unify).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// The result of [`Strategy::prop_filter`].
#[derive(Debug, Clone, Copy)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let value = self.inner.generate(rng);
            if (self.f)(&value) {
                return value;
            }
        }
        panic!("prop_filter rejected 1000 consecutive candidates");
    }
}

/// Weighted choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` pairs.
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(
            total > 0,
            "prop_oneof! requires at least one positive weight"
        );
        Union { options, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (weight, strat) in &self.options {
            if pick < *weight as u64 {
                return strat.generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weights sum correctly")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )+};
}

float_range_strategy!(f32, f64);

/// String patterns (`"[ -~]{0,120}"`, `".{0,200}"`, ...) are strategies
/// generating matching strings; see [`crate::string`].
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $i:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// `any::<T>()`-style full-range strategy; see [`crate::arbitrary`].
pub struct AnyStrategy<T>(pub(crate) PhantomData<T>);

impl<T> std::fmt::Debug for AnyStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AnyStrategy")
    }
}

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for AnyStrategy<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..500 {
            let v = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let doubled = (0u8..10).prop_map(|x| x * 2).generate(&mut rng);
            assert!(doubled % 2 == 0 && doubled < 20);
            let (a, b) = (0u8..4, Just("x")).generate(&mut rng);
            assert!(a < 4);
            assert_eq!(b, "x");
        }
    }

    #[test]
    fn union_respects_weights() {
        let mut rng = TestRng::from_seed(2);
        let u = Union::new(vec![(9, boxed(Just(1u8))), (1, boxed(Just(2u8)))]);
        let ones = (0..1000).filter(|_| u.generate(&mut rng) == 1).count();
        assert!(ones > 800, "got {ones}");
    }

    #[test]
    fn filter_regenerates() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..100 {
            let v = (0u32..100)
                .prop_filter("even", |v| v % 2 == 0)
                .generate(&mut rng);
            assert_eq!(v % 2, 0);
        }
    }
}
