//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this crate implements
//! the subset of proptest's API that this workspace's property tests use:
//! the [`Strategy`] trait with `prop_map`, ranges / tuples / `Just` /
//! regex-ish string patterns as strategies, `collection::{vec, btree_map,
//! btree_set}`, `num::*::ANY`, [`arbitrary::any`], `prop_oneof!`, and the
//! [`proptest!`] test macro driven by [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed per test (derived from the test name), and failing
//! cases are **not shrunk** — the failing case index is reported and the
//! panic is propagated as-is.

pub mod arbitrary;
pub mod collection;
pub mod num;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! Module alias mirroring `proptest::prelude::prop`.
        pub use crate::collection;
        pub use crate::num;
        pub use crate::strategy;
    }
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Choose between strategies, optionally weighted:
/// `prop_oneof![a, b]` or `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

/// Define property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..100, v in prop::collection::vec(any::<u8>(), 0..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        move || $body
                    ));
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest: '{}' failed at case {} of {} (deterministic seed; \
                             re-run reproduces it)",
                            stringify!($name), case, config.cases
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
