//! Top-level error type.

use std::fmt;

/// Errors from the integrated engine.
#[derive(Debug)]
pub enum SvrError {
    Relation(svr_relation::RelationError),
    Index(svr_core::CoreError),
    /// Configuration / usage errors (unknown index, wrong column type...).
    Engine(String),
}

impl fmt::Display for SvrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SvrError::Relation(e) => write!(f, "relational error: {e}"),
            SvrError::Index(e) => write!(f, "index error: {e}"),
            SvrError::Engine(msg) => write!(f, "engine error: {msg}"),
        }
    }
}

impl std::error::Error for SvrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SvrError::Relation(e) => Some(e),
            SvrError::Index(e) => Some(e),
            SvrError::Engine(_) => None,
        }
    }
}

impl From<svr_relation::RelationError> for SvrError {
    fn from(e: svr_relation::RelationError) -> Self {
        SvrError::Relation(e)
    }
}

impl From<svr_core::CoreError> for SvrError {
    fn from(e: svr_core::CoreError) -> Self {
        SvrError::Index(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, SvrError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_wraps_sources() {
        let e = SvrError::from(svr_core::CoreError::Unsupported("x"));
        assert!(e.to_string().contains("index error"));
        let e = SvrError::Engine("bad".into());
        assert!(e.to_string().contains("bad"));
    }
}
