//! The integrated SVR engine: the architecture of the paper's Figure 2.
//!
//! [`SvrEngine`] owns the relational [`Database`], the text vocabulary and
//! one [`SearchIndex`] per indexed text column. Structured-data mutations
//! flow through the materialized Score view, whose change notifications
//! drive the index's score updates *synchronously inside the mutating
//! call*; text mutations flow through the Appendix-A content operations.
//! Keyword queries return ranked rows.
//!
//! ## Concurrency model
//!
//! The engine is a cheap cloneable handle (`Clone` = `Arc` bump) over
//! shared, internally synchronized state:
//!
//! * **reads scale** — [`SvrEngine::search`], [`SvrEngine::score_of`],
//!   [`SvrEngine::index`], [`SvrEngine::text_index_on`] and the plain
//!   relational reads all take `&self` and run concurrently from any
//!   number of threads;
//! * **writes serialize per table** — [`SvrEngine::insert_row`],
//!   [`SvrEngine::update_row`] and [`SvrEngine::delete_row`] take a
//!   per-table writer lock for the whole mutation (base table + view
//!   maintenance + index maintenance), so writers of *different* tables
//!   proceed in parallel while same-table writers queue;
//! * **score propagation is synchronous** — the view listener pushes the
//!   new score straight into [`SearchIndex::update_score`] (the index is
//!   internally locked), so a query issued the moment a mutation returns
//!   sees the new ranking;
//! * **batches coalesce** — [`SvrEngine::apply`] /
//!   [`SvrEngine::insert_rows`] buffer view notifications and fire one
//!   score update per touched document with its *final* score.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use svr_core::types::{DocId, Document, Query, QueryMode};
use svr_core::{build_index, IndexConfig, MethodKind, SearchIndex};
use svr_relation::{Database, Schema, SvrSpec, Value};
use svr_text::Vocabulary;

use crate::error::{Result, SvrError};

/// A ranked search result: the matching row and its latest SVR score.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedRow {
    pub row: Vec<Value>,
    pub score: f64,
}

/// One DML operation inside a [`WriteBatch`].
#[derive(Debug, Clone, PartialEq)]
pub enum WriteOp {
    Insert {
        table: String,
        row: Vec<Value>,
    },
    Update {
        table: String,
        pk: Value,
        sets: Vec<(String, Value)>,
    },
    Delete {
        table: String,
        pk: Value,
    },
}

impl WriteOp {
    fn table(&self) -> &str {
        match self {
            WriteOp::Insert { table, .. }
            | WriteOp::Update { table, .. }
            | WriteOp::Delete { table, .. } => table,
        }
    }
}

/// A batch of row mutations applied with one writer-lock acquisition per
/// involved table and coalesced score propagation; build with the helpers
/// and hand to [`SvrEngine::apply`].
///
/// ```
/// # use svr_engine::WriteBatch;
/// # use svr_relation::Value;
/// let mut batch = WriteBatch::new();
/// batch.insert("stats", vec![Value::Int(1), Value::Int(10)]);
/// batch.update("stats", Value::Int(1), vec![("nvisit".into(), Value::Int(500))]);
/// assert_eq!(batch.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WriteBatch {
    ops: Vec<WriteOp>,
}

impl WriteBatch {
    /// An empty batch.
    pub fn new() -> WriteBatch {
        WriteBatch::default()
    }

    /// Queue a row insert.
    pub fn insert(&mut self, table: &str, row: Vec<Value>) -> &mut Self {
        self.ops.push(WriteOp::Insert {
            table: table.to_string(),
            row,
        });
        self
    }

    /// Queue a column update of the row with primary key `pk`.
    pub fn update(&mut self, table: &str, pk: Value, sets: Vec<(String, Value)>) -> &mut Self {
        self.ops.push(WriteOp::Update {
            table: table.to_string(),
            pk,
            sets,
        });
        self
    }

    /// Queue a row deletion.
    pub fn delete(&mut self, table: &str, pk: Value) -> &mut Self {
        self.ops.push(WriteOp::Delete {
            table: table.to_string(),
            pk,
        });
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// One text index: immutable wiring plus the shared index structure.
struct TextIndex {
    table: String,
    text_col: usize,
    pk_col: usize,
    view: String,
    index: Arc<dyn SearchIndex>,
}

/// The shared, internally synchronized engine state.
struct EngineShared {
    db: Database,
    /// Term dictionary shared by every index: interning happens under the
    /// write lock on mutation paths, query-side lookups take read locks.
    vocab: RwLock<Vocabulary>,
    /// Read-mostly index registry.
    indexes: RwLock<HashMap<String, Arc<TextIndex>>>,
    /// Per-table writer locks serializing the whole mutation path (base
    /// table + views + indexes). Writers of different tables run in
    /// parallel.
    write_locks: Mutex<HashMap<String, Arc<Mutex<()>>>>,
    /// Errors raised inside synchronous score listeners (which cannot
    /// return a `Result` through the relational layer); the mutating call
    /// that triggered them picks them up on its way out.
    listener_errors: Arc<Mutex<Vec<String>>>,
}

/// The integrated engine. Cloning is cheap (`Arc` bump) and every clone
/// addresses the same shared state, so one engine can serve queries from
/// many threads while writers mutate it — see the [module docs](self) for
/// the locking rules and `examples/flash_crowd.rs` for the pattern in
/// action.
#[derive(Clone)]
pub struct SvrEngine {
    shared: Arc<EngineShared>,
}

impl Default for SvrEngine {
    fn default() -> Self {
        SvrEngine::new()
    }
}

impl SvrEngine {
    /// Create an empty engine.
    pub fn new() -> SvrEngine {
        SvrEngine {
            shared: Arc::new(EngineShared {
                db: Database::new(),
                vocab: RwLock::new(Vocabulary::new()),
                indexes: RwLock::new(HashMap::new()),
                write_locks: Mutex::new(HashMap::new()),
                listener_errors: Arc::new(Mutex::new(Vec::new())),
            }),
        }
    }

    /// The underlying relational database (read access).
    pub fn db(&self) -> &Database {
        &self.shared.db
    }

    /// The writer lock for `table` (created on first use).
    fn write_lock(&self, table: &str) -> Arc<Mutex<()>> {
        self.shared
            .write_locks
            .lock()
            .entry(table.to_string())
            .or_insert_with(|| Arc::new(Mutex::new(())))
            .clone()
    }

    /// Report errors raised inside synchronous score listeners while the
    /// current mutating call ran.
    fn check_listener_errors(&self) -> Result<()> {
        let mut sink = self.shared.listener_errors.lock();
        match sink.pop() {
            None => Ok(()),
            Some(msg) => {
                sink.clear();
                Err(SvrError::Engine(format!("score propagation failed: {msg}")))
            }
        }
    }

    /// Create a table.
    pub fn create_table(&self, schema: Schema) -> Result<()> {
        Ok(self.shared.db.create_table(schema)?)
    }

    /// Drop a table. Fails while a text index (or raw score view) depends
    /// on it: drop the index first.
    pub fn drop_table(&self, table: &str) -> Result<()> {
        if let Some(index) = self
            .shared
            .indexes
            .read()
            .iter()
            .find_map(|(name, ti)| (ti.table == table).then(|| name.clone()))
        {
            return Err(SvrError::Engine(format!(
                "cannot drop table '{table}': text index '{index}' is built on it \
                 (DROP TEXT INDEX {index} first)"
            )));
        }
        let write_lock = self.write_lock(table);
        let _write = write_lock.lock();
        Ok(self.shared.db.drop_table(table)?)
    }

    /// Create a text index with SVR ranking on `table.text_col`.
    ///
    /// This is the engine form of the paper's "create text index ... with
    /// score specification": it materializes the Score view for `spec`,
    /// builds the chosen inverted-list `method` over the existing rows, and
    /// wires view notifications *synchronously* into index score updates.
    pub fn create_text_index(
        &self,
        name: &str,
        table: &str,
        text_col: &str,
        spec: SvrSpec,
        method: MethodKind,
        config: IndexConfig,
    ) -> Result<()> {
        if self.shared.indexes.read().contains_key(name) {
            return Err(SvrError::Engine(format!(
                "text index '{name}' already exists"
            )));
        }
        let table_ref = self.shared.db.table(table)?;
        let schema = table_ref.schema();
        let text_idx = schema.column_index(text_col)?;
        let pk_idx = schema.pk;

        // Block writers of the indexed table while the view + index are
        // built and wired, so no row slips between the scan and the wiring.
        let write_lock = self.write_lock(table);
        let _write = write_lock.lock();

        self.shared.db.create_score_view(name, table, spec)?;

        // Tokenize the existing rows.
        let rows = table_ref.scan()?;
        let mut docs = Vec::with_capacity(rows.len());
        {
            let mut vocab = self.shared.vocab.write();
            for row in &rows {
                let pk = row[pk_idx]
                    .as_i64()
                    .ok_or_else(|| SvrError::Engine("text index requires integer keys".into()))?;
                let text = row[text_idx].as_text().unwrap_or("");
                docs.push(Document::from_text(doc_id(pk)?, text, &mut vocab));
            }
        }
        let scores: svr_core::ScoreMap = self
            .shared
            .db
            .all_scores(name)?
            .into_iter()
            .map(|(pk, s)| Ok((doc_id(pk)?, s)))
            .collect::<Result<_>>()?;

        let index: Arc<dyn SearchIndex> = Arc::from(build_index(method, &docs, &scores, &config)?);

        // Synchronous propagation: the view pushes each new score straight
        // into the (internally locked) index. A row mid-insert is not in
        // the index yet — the UnknownDocument case — and gets its score
        // from the insert path instead. Anything else is a real fault and
        // is surfaced through the listener error sink.
        let listener_index = index.clone();
        let errors = self.shared.listener_errors.clone();
        let index_name = name.to_string();
        self.shared.db.set_score_listener(
            name,
            Box::new(move |pk, score| {
                let push = || -> std::result::Result<(), String> {
                    let doc = u32::try_from(pk)
                        .map(DocId)
                        .map_err(|_| format!("primary key {pk} out of document-id range"))?;
                    match listener_index.update_score(doc, score) {
                        Ok(()) | Err(svr_core::CoreError::UnknownDocument(_)) => Ok(()),
                        Err(e) => Err(e.to_string()),
                    }
                };
                if let Err(msg) = push() {
                    errors.lock().push(format!("index '{index_name}': {msg}"));
                }
            }),
        )?;

        let mut indexes = self.shared.indexes.write();
        if indexes.contains_key(name) {
            let _ = self.shared.db.drop_score_view(name);
            return Err(SvrError::Engine(format!(
                "text index '{name}' already exists"
            )));
        }
        indexes.insert(
            name.to_string(),
            Arc::new(TextIndex {
                table: table.to_string(),
                text_col: text_idx,
                pk_col: pk_idx,
                view: name.to_string(),
                index,
            }),
        );
        Ok(())
    }

    /// Drop a text index and its backing score view.
    pub fn drop_text_index(&self, name: &str) -> Result<()> {
        let removed = self
            .shared
            .indexes
            .write()
            .remove(name)
            .ok_or_else(|| SvrError::Engine(format!("unknown text index '{name}'")))?;
        let write_lock = self.write_lock(&removed.table);
        let _write = write_lock.lock();
        self.shared.db.drop_score_view(&removed.view)?;
        Ok(())
    }

    /// Look up a text index entry.
    fn entry(&self, name: &str) -> Result<Arc<TextIndex>> {
        self.shared
            .indexes
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| SvrError::Engine(format!("unknown text index '{name}'")))
    }

    /// The indexes covering `table`, if any.
    fn entries_on(&self, table: &str) -> Vec<Arc<TextIndex>> {
        self.shared
            .indexes
            .read()
            .values()
            .filter(|ti| ti.table == table)
            .cloned()
            .collect()
    }

    /// Insert a row, maintaining views and text indexes.
    pub fn insert_row(&self, table: &str, row: Vec<Value>) -> Result<()> {
        let write_lock = self.write_lock(table);
        let _write = write_lock.lock();
        self.insert_row_locked(table, row)
    }

    /// [`SvrEngine::insert_row`] body, with the caller holding the table's
    /// writer lock.
    fn insert_row_locked(&self, table: &str, row: Vec<Value>) -> Result<()> {
        // Extract what the text indexes need *before* the row moves into
        // the database — no full-row clone.
        let entries = self.entries_on(table);
        let mut inserts = Vec::with_capacity(entries.len());
        for ti in &entries {
            let pk = row
                .get(ti.pk_col)
                .and_then(Value::as_i64)
                .ok_or_else(|| SvrError::Engine("integer key required".into()))?;
            let text = row
                .get(ti.text_col)
                .and_then(|v| v.as_text())
                .unwrap_or("")
                .to_string();
            inserts.push((ti.clone(), pk, text));
        }
        self.shared.db.insert_row(table, row)?;
        for (ti, pk, text) in inserts {
            let doc = Document::from_text(doc_id(pk)?, &text, &mut self.shared.vocab.write());
            let score = self.shared.db.score_of(&ti.view, pk).unwrap_or(0.0);
            ti.index.insert_document(&doc, score)?;
        }
        self.check_listener_errors()
    }

    /// Insert many rows into one table under a single writer-lock
    /// acquisition, with coalesced score propagation — the bulk-load path.
    pub fn insert_rows(&self, table: &str, rows: Vec<Vec<Value>>) -> Result<usize> {
        let inserted = rows.len();
        let write_lock = self.write_lock(table);
        let _write = write_lock.lock();
        let bracket = self.shared.db.buffer_score_notifications();
        for row in rows {
            self.insert_row_locked(table, row)?;
        }
        drop(bracket);
        self.check_listener_errors()?;
        Ok(inserted)
    }

    /// Apply a [`WriteBatch`]: one writer-lock acquisition per involved
    /// table (taken in sorted order, so concurrent batches cannot
    /// deadlock), coalesced view notifications, and one score update per
    /// touched document. Returns the number of operations applied.
    ///
    /// The batch is *not* atomic: an error aborts the remaining
    /// operations, but operations already applied stay applied.
    pub fn apply(&self, batch: WriteBatch) -> Result<usize> {
        let mut tables: Vec<&str> = batch.ops.iter().map(WriteOp::table).collect();
        tables.sort_unstable();
        tables.dedup();
        let locks: Vec<_> = tables.iter().map(|t| self.write_lock(t)).collect();
        let _guards: Vec<_> = locks.iter().map(|l| l.lock()).collect();

        let bracket = self.shared.db.buffer_score_notifications();
        let applied = batch.ops.len();
        for op in batch.ops {
            match op {
                WriteOp::Insert { table, row } => self.insert_row_locked(&table, row)?,
                WriteOp::Update { table, pk, sets } => self.update_row_locked(&table, pk, &sets)?,
                WriteOp::Delete { table, pk } => self.delete_row_locked(&table, pk)?,
            }
        }
        drop(bracket);
        self.check_listener_errors()?;
        Ok(applied)
    }

    /// Update a row, maintaining views and text indexes (text-column changes
    /// become Appendix-A content updates).
    pub fn update_row(&self, table: &str, pk: Value, updates: &[(String, Value)]) -> Result<()> {
        let write_lock = self.write_lock(table);
        let _write = write_lock.lock();
        self.update_row_locked(table, pk, updates)
    }

    fn update_row_locked(&self, table: &str, pk: Value, updates: &[(String, Value)]) -> Result<()> {
        self.shared.db.update_row(table, pk.clone(), updates)?;
        let entries = self.entries_on(table);
        if !entries.is_empty() {
            let schema = self.shared.db.table(table)?.schema().clone();
            for ti in entries {
                let text_col_name = &schema.columns[ti.text_col].0;
                if let Some((_, new_text)) = updates.iter().find(|(c, _)| c == text_col_name) {
                    let pk_int = pk
                        .as_i64()
                        .ok_or_else(|| SvrError::Engine("integer key required".into()))?;
                    let doc = Document::from_text(
                        doc_id(pk_int)?,
                        new_text.as_text().unwrap_or(""),
                        &mut self.shared.vocab.write(),
                    );
                    ti.index.update_content(&doc)?;
                }
            }
        }
        self.check_listener_errors()
    }

    /// Delete a row, maintaining views and text indexes.
    pub fn delete_row(&self, table: &str, pk: Value) -> Result<()> {
        let write_lock = self.write_lock(table);
        let _write = write_lock.lock();
        self.delete_row_locked(table, pk)
    }

    fn delete_row_locked(&self, table: &str, pk: Value) -> Result<()> {
        self.shared.db.delete_row(table, pk.clone())?;
        for ti in self.entries_on(table) {
            let pk_int = pk
                .as_i64()
                .ok_or_else(|| SvrError::Engine("integer key required".into()))?;
            ti.index.delete_document(doc_id(pk_int)?)?;
        }
        self.check_listener_errors()
    }

    /// Keyword-search the indexed text column, returning the top-k rows
    /// ranked by the *latest* SVR scores — the engine form of the paper's
    /// `SELECT * FROM Movies ORDER BY score(desc, "golden gate") FETCH TOP
    /// k`. Takes `&self`: any number of threads can search one shared
    /// engine while writers run.
    pub fn search(
        &self,
        index: &str,
        keywords: &str,
        k: usize,
        mode: QueryMode,
    ) -> Result<Vec<RankedRow>> {
        let ti = self.entry(index)?;
        let mut terms = Vec::new();
        {
            let vocab = self.shared.vocab.read();
            for token in svr_text::tokenize(keywords) {
                match vocab.get(&token) {
                    Some(t) => terms.push(t),
                    // A keyword that appears nowhere: conjunctive queries
                    // can return nothing; disjunctive queries ignore it.
                    None if mode == QueryMode::Conjunctive => return Ok(Vec::new()),
                    None => {}
                }
            }
        }
        if terms.is_empty() {
            return Ok(Vec::new());
        }
        let hits = ti.index.query(&Query::new(terms, k, mode))?;
        let table = self.shared.db.table(&ti.table)?;
        let mut rows = Vec::with_capacity(hits.len());
        let mut key = Vec::with_capacity(9);
        for hit in hits {
            // One reused key buffer instead of a Value + Vec per hit.
            Value::Int(hit.doc.0 as i64).encode_key_into(&mut key);
            let row = table.get_raw(&key)?.ok_or_else(|| {
                SvrError::Engine(format!("index points at missing row {}", hit.doc))
            })?;
            rows.push(RankedRow {
                row,
                score: hit.score,
            });
        }
        Ok(rows)
    }

    /// Name of the text index covering `table.text_col`, if one exists.
    /// This is how a `SELECT ... ORDER BY score(m.desc, "...")` query finds
    /// the index to use.
    pub fn text_index_on(&self, table: &str, text_col: &str) -> Option<String> {
        let schema = self.shared.db.table(table).ok()?.schema().clone();
        self.shared.indexes.read().iter().find_map(|(name, ti)| {
            (ti.table == table && schema.columns[ti.text_col].0 == text_col).then(|| name.clone())
        })
    }

    /// Names of all text indexes (unordered).
    pub fn index_names(&self) -> Vec<String> {
        self.shared.indexes.read().keys().cloned().collect()
    }

    /// Direct access to an index (statistics, maintenance).
    pub fn index(&self, name: &str) -> Result<Arc<dyn SearchIndex>> {
        Ok(self.entry(name)?.index.clone())
    }

    /// Run the offline short-list merge on an index. Serializes with the
    /// indexed table's writers (merge restructures the lists the content
    /// operations append to).
    pub fn run_maintenance(&self, name: &str) -> Result<()> {
        let ti = self.entry(name)?;
        let write_lock = self.write_lock(&ti.table);
        let _write = write_lock.lock();
        Ok(ti.index.merge_short_lists()?)
    }

    /// The materialized view's score for a row (for assertions and demos).
    pub fn score_of(&self, index: &str, pk: i64) -> Result<f64> {
        let ti = self.entry(index)?;
        Ok(self.shared.db.score_of(&ti.view, pk)?)
    }
}

fn doc_id(pk: i64) -> Result<DocId> {
    u32::try_from(pk)
        .map(DocId)
        .map_err(|_| SvrError::Engine(format!("primary key {pk} out of document-id range")))
}
