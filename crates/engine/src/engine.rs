//! The integrated SVR engine: the architecture of the paper's Figure 2.
//!
//! [`SvrEngine`] owns the relational [`Database`], the text vocabulary and
//! one [`SearchIndex`] per indexed text column. Structured-data mutations
//! flow through the materialized Score view into the index's score
//! updates before the mutating call returns; text mutations flow through
//! the Appendix-A content operations. Keyword queries return ranked rows.
//!
//! ## Concurrency model: the lock-rank table
//!
//! The engine is a cheap cloneable handle (`Clone` = `Arc` bump) over
//! shared, internally synchronized state. Every lock the write path can
//! hold belongs to a **ranked class** ([`svr_storage::sync::LockClass`]),
//! and a thread may only acquire a lock whose rank is **≥** the highest
//! rank it already holds:
//!
//! | rank | class        | guards                                         |
//! |------|--------------|------------------------------------------------|
//! | 0    | `Table`      | the per-table writer lock (tier 1)             |
//! | 1    | `Shard`      | a shard's index refresh lock (tier 2)          |
//! | 2    | `Checkpoint` | a store's checkpoint section                   |
//! | 3    | `Wal`        | a WAL's append/commit mutex                    |
//!
//! Rank order `Table → Shard → Checkpoint → Wal` is *descending
//! generality*: the coarse outer sections acquire the fine inner ones,
//! never the reverse, so no cycle between classes can form. Equal-rank
//! acquisitions are legal and ordered deterministically instead
//! ([`SvrEngine::apply`] sorts its table locks by name; batch refreshes
//! walk shards in ascending order).
//!
//! The table is **enforced three ways**, not promised in prose:
//!
//! 1. **at runtime in debug builds** — every guard pushes its rank onto a
//!    thread-local stack and panics on an out-of-rank acquisition
//!    (`cargo test` runs with `debug_assertions`, so the whole stress and
//!    proptest suite doubles as a lock-order validator);
//! 2. **statically** — `svr-lint`'s `lock-order` rule flags any source
//!    line that takes a tier-1 table lock while a shard refresh guard is
//!    live (see `crates/lint`);
//! 3. **observably in release builds** — every class counts acquisitions,
//!    contended acquisitions, wait and hold nanoseconds
//!    ([`SvrEngine::contention_stats`], the server `Info` payload, the
//!    `locks:` line of SQL `EXPLAIN`, and the bench artifacts).
//!
//! Writes go through **two of those lock tiers** so that same-table
//! writers overlap on the expensive part of the write path:
//!
//! * **tier 1 — the per-table writer lock** is held only for the row/view
//!   mutation: the base-table write, materialized-view maintenance, and
//!   any *structural* index operation of the same row (document insert,
//!   delete, content update — these must stay ordered with the row they
//!   describe). Score-change notifications raised by the view are only
//!   *recorded*, not applied; view listeners run synchronously on the
//!   mutating thread, so the record is a thread-local capture private to
//!   the call — no other writer can take over (or race) this call's
//!   refresh work.
//! * **tier 2 — the per-shard index locks**: after the table lock is
//!   released, the call's recorded keys are refreshed through
//!   [`SearchIndex::refresh_scores`], which groups them by index shard and
//!   applies each group under that shard's writer lock only (in parallel
//!   for batches). The refresh *re-reads* the view score under the shard
//!   lock, so when two writers race on one document the last applier
//!   always writes a value at least as fresh as every committed change —
//!   deferred propagation cannot resurrect a stale score.
//!
//! Consequences:
//!
//! * **reads scale** — [`SvrEngine::search`], [`SvrEngine::open_query`],
//!   [`SvrEngine::score_of`], [`SvrEngine::index`],
//!   [`SvrEngine::text_index_on`] and the plain relational reads all take
//!   `&self` and run concurrently from any number of threads;
//! * **reads resume** — the read path is cursor-based:
//!   [`SvrEngine::open_query`] returns a [`SearchCursor`] whose batches
//!   each run under one shard read lock and whose suspended state holds no
//!   lock at all, so a paginating client never blocks writers between
//!   pages and never re-pays the traversal of earlier pages
//!   ([`SvrEngine::search`] is an opened cursor drained once). Each index
//!   keeps a write epoch; a cursor compares it against the value captured
//!   at open to report cross-batch staleness ([`SearchCursor::staleness`]);
//! * **same-table writers overlap** — two [`SvrEngine::update_row`] calls
//!   on one table serialize only through the short tier-1 section; their
//!   index score maintenance (the hot part under the paper's
//!   update-intensive workloads) runs concurrently whenever the touched
//!   documents hash to different shards (`IndexConfig::num_shards`);
//! * **writers of different tables** never share a tier-1 lock and proceed
//!   in parallel end-to-end;
//! * **score propagation completes before the call returns** — a query
//!   issued the moment a mutation returns sees the new ranking;
//! * **batches coalesce and fan out** — [`SvrEngine::apply`] /
//!   [`SvrEngine::insert_rows`] buffer view notifications, record one
//!   refresh per touched document, and apply the refreshes grouped by
//!   shard in parallel;
//! * **writes are all-or-nothing** — every write path runs as a
//!   transaction: each applied piece records its inverse (captured
//!   pre-image row for updates/deletes, primary key for inserts, old
//!   content / revival entries for the index structural ops) into an undo
//!   log, and an error replays the log in reverse under the still-held
//!   table locks while the score views restore their captured pre-batch
//!   state — a failed [`SvrEngine::apply`] leaves no observable trace in
//!   tables, views or rankings. The WAL commits of the involved table
//!   stores are bracketed into one recoverable batch per transaction, so
//!   a *crash* mid-batch also recovers to the pre-batch state;
//! * **maintenance is per shard** — [`SvrEngine::run_maintenance`] no
//!   longer takes the table lock at all: each shard's merge excludes only
//!   that shard's writers ([`SvrEngine::run_shard_maintenance`] merges a
//!   single shard).
//!
//! The refresh tier takes shard locks only: nothing acquires a table lock
//! (rank 0) while holding a shard lock (rank 1), which is exactly the
//! rank rule above — a violation panics in debug builds and fails
//! `svr-lint` statically. [`SvrEngine::apply`] takes its table locks in
//! sorted order so equal-rank acquisitions cannot deadlock either.
//!
//! DDL is coarser: `create_text_index` blocks the indexed table's writers
//! for the whole build. `DROP TABLE` retires the table's tier-1 lock
//! entry under the lock itself, and every acquisition re-validates that
//! the lock it got is still the registered one — so a writer racing a
//! drop + re-create can never mutate the new incarnation under the old
//! lock (it re-acquires the current lock, or errors on the missing
//! table).
//!
//! ## Durability & recovery
//!
//! An engine has two lifecycles. [`SvrEngine::new`] is the in-memory
//! special case: nothing survives the process. [`SvrEngine::create`]
//! bootstraps a **durable** engine inside a durable
//! [`StorageEnv`] (`StorageEnv::new_durable` under the repository's
//! whole-process crash model, `StorageEnv::open_dir` /
//! [`SvrEngine::open_path`] over real files), and [`SvrEngine::open`]
//! recovers the complete engine from that environment after a crash or
//! restart:
//!
//! * **every store is write-ahead logged** — tables (since PR 4) *and* the
//!   per-shard index stores, system catalogs and vocabulary. A crash loses
//!   exactly the buffer pools; recovery replays each log's committed
//!   batches.
//! * **catalog mutations write through**: `create_table` /
//!   `create_text_index` / the drops persist versioned records into
//!   `sys/catalog` (schemas, score-view definitions — owned by the
//!   relational layer) and [`SYS_INDEXES_STORE`] (text-index wiring:
//!   table, analyzed column, method, full [`IndexConfig`] including the
//!   shard count). Records land *after* the object they describe, so a
//!   crash mid-DDL recovers to "object absent" (orphaned stores are
//!   reclaimed on the next create of the name) — never to a cataloged
//!   object with half-built structures; `open` also garbage-collects
//!   score views whose index record never landed.
//! * **vocabulary growth is logged incrementally**: interning a new term
//!   appends one `(id, term)` record to [`SYS_VOCAB_STORE`] (term ids are
//!   dense, so the persisted high-water mark identifies the increment —
//!   no rewrite per term). `open` re-interns the records in id order and
//!   restores every id.
//! * **indexes reattach, they do not rebuild**: `open` reopens each
//!   shard's Score table, forward index, long/short lists, aux tables and
//!   shard metadata (chunk boundaries, fancy-list bounds, content-dirty
//!   markers) from the recovered stores, and re-derives only the
//!   in-memory mirrors (tombstone sets, shared df / num_docs statistics)
//!   by scanning the index's *own* durable state — zero base rows are
//!   read for indexing and nothing is re-tokenized.
//! * **score views re-materialize** from the recovered base rows (the
//!   deterministic fold of view creation), and listeners are rewired, so
//!   the first post-recovery mutation propagates exactly like any other.
//! * **logs stay bounded**: any store whose log outgrows
//!   [`EngineConfig::wal_checkpoint_bytes`] (default 1 MiB) is
//!   checkpointed at the next safe opportunity — tables at op/transaction
//!   boundaries, index shards after score refreshes and merges (under the
//!   shard lock) — and `open` finishes with a full checkpoint so recovery
//!   cost does not compound across restarts.
//!
//! Reopened state is **bit-identical** where it matters: rankings,
//! `score_of`, df / num_docs and per-shard EXPLAIN stats are proptested to
//! match the crashed instance exactly (`tests/restart_equivalence.rs`).
//! The one caveat is float view aggregates: a re-fold can differ from the
//! incrementally maintained sum by an ulp when the aggregate arithmetic is
//! inexact; integer-valued inputs (and every ranking, which lives in the
//! index's own durable scores) are exact.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use svr_core::types::{DocId, Document, Query, QueryMode, SearchHit, TermId};
use svr_core::{
    build_index, build_index_at, open_index_at, CodecKind, IndexConfig, IndexLocation,
    MethodCursor, MethodKind, SearchIndex, ShardStats,
};
use svr_relation::{Database, RowChange, Schema, SvrSpec, Value};
use svr_storage::codec::{
    begin_record, read_string, read_varint, record_version, write_string, write_varint,
};
use svr_storage::sync::{LockClass, OrderedMutex};
use svr_storage::{BTree, StorageEnv};
use svr_text::Vocabulary;

use crate::error::{Result, SvrError};

/// Name of the engine's text-index catalog store inside a durable
/// environment (the relational catalog is `sys/catalog`, owned by
/// [`Database`]).
pub const SYS_INDEXES_STORE: &str = "sys/indexes";
/// Name of the durable vocabulary store: one `(term id, term)` record per
/// interned term, appended incrementally as the vocabulary grows.
pub const SYS_VOCAB_STORE: &str = "sys/vocab";

/// Store-name prefix of one text index's region in the engine environment.
fn index_prefix(name: &str) -> String {
    format!("idx/{name}/")
}

/// Engine-lifecycle tunables (see [`SvrEngine::create_with`]).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Log bytes past which any store (table, index shard, system catalog)
    /// is checkpointed at the next safe opportunity. Default 1 MiB;
    /// `u64::MAX` disables automatic checkpointing.
    pub wal_checkpoint_bytes: u64,
    /// WAL group-sync interval: `0` (the default) fsyncs every commit
    /// marker of a file-backed engine; a positive value fsyncs at most
    /// once per this many milliseconds, amortizing the fsync across the
    /// commits of the interval. A crash can then lose up to one
    /// interval's worth of *acknowledged* transactions, but recovery
    /// still lands on a clean prefix of them (the log is append-only).
    pub wal_sync_interval_ms: u64,
    /// Group-commit drain of deferred score refreshes: a writer winning a
    /// shard's refresh lock applies the batches other writers queued
    /// while they waited, before releasing (see
    /// [`SearchIndex::set_group_refresh`]). Off by default.
    pub group_refresh: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            wal_checkpoint_bytes: 1 << 20,
            wal_sync_interval_ms: 0,
            group_refresh: false,
        }
    }
}

/// Engine-wide serving/contention counters (see
/// [`SvrEngine::contention_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ContentionStats {
    /// Aggregate WAL counters across every store (commit-sync policy
    /// counters included).
    pub wal: svr_storage::WalStats,
    /// Group-commit refresh-queue counters summed over every index.
    pub refresh: svr_core::RefreshGroupStats,
    /// Per-lock-class acquisition/contention/wait/hold counters from the
    /// instrumented sync layer ([`svr_storage::sync`]). Process-wide and
    /// monotone: diff two snapshots ([`svr_storage::LockStats::delta_since`])
    /// to attribute activity to a window.
    pub locks: svr_storage::LockStats,
}

/// A ranked search result: the matching row and its latest SVR score.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedRow {
    pub row: Vec<Value>,
    pub score: f64,
}

/// One DML operation inside a [`WriteBatch`].
#[derive(Debug, Clone, PartialEq)]
pub enum WriteOp {
    Insert {
        table: String,
        row: Vec<Value>,
    },
    Update {
        table: String,
        pk: Value,
        sets: Vec<(String, Value)>,
    },
    Delete {
        table: String,
        pk: Value,
    },
}

impl WriteOp {
    fn table(&self) -> &str {
        match self {
            WriteOp::Insert { table, .. }
            | WriteOp::Update { table, .. }
            | WriteOp::Delete { table, .. } => table,
        }
    }
}

/// A batch of row mutations applied with one writer-lock acquisition per
/// involved table and coalesced score propagation; build with the helpers
/// and hand to [`SvrEngine::apply`].
///
/// ```
/// # use svr_engine::WriteBatch;
/// # use svr_relation::Value;
/// let mut batch = WriteBatch::new();
/// batch.insert("stats", vec![Value::Int(1), Value::Int(10)]);
/// batch.update("stats", Value::Int(1), vec![("nvisit".into(), Value::Int(500))]);
/// assert_eq!(batch.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WriteBatch {
    ops: Vec<WriteOp>,
}

impl WriteBatch {
    /// An empty batch.
    pub fn new() -> WriteBatch {
        WriteBatch::default()
    }

    /// Queue a row insert.
    pub fn insert(&mut self, table: &str, row: Vec<Value>) -> &mut Self {
        self.ops.push(WriteOp::Insert {
            table: table.to_string(),
            row,
        });
        self
    }

    /// Queue a column update of the row with primary key `pk`.
    pub fn update(&mut self, table: &str, pk: Value, sets: Vec<(String, Value)>) -> &mut Self {
        self.ops.push(WriteOp::Update {
            table: table.to_string(),
            pk,
            sets,
        });
        self
    }

    /// Queue a row deletion.
    pub fn delete(&mut self, table: &str, pk: Value) -> &mut Self {
        self.ops.push(WriteOp::Delete {
            table: table.to_string(),
            pk,
        });
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// One text index: immutable wiring plus the shared index structure.
struct TextIndex {
    table: String,
    text_col: usize,
    pk_col: usize,
    view: String,
    index: Arc<dyn SearchIndex>,
    /// The build configuration the index runs under (from the catalog on
    /// reopen) — `EXPLAIN` reports its codec alongside the list sizes.
    config: IndexConfig,
    /// Write epoch: bumped on every mutation that can shift this index's
    /// ranking (score refreshes, document inserts/deletes/content updates,
    /// offline merges). Open cursors compare it against the value they
    /// captured to report staleness ([`SearchCursor::staleness`]).
    epoch: AtomicU64,
}

impl TextIndex {
    fn bump(&self) {
        self.epoch.fetch_add(1, Ordering::Release);
    }

    fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

/// A keyword query against one text index, built fluently and handed to
/// [`SvrEngine::open_query`] (resumable cursor) or [`SvrEngine::query`]
/// (one-shot top-k).
///
/// ```
/// # use svr_engine::QueryRequest;
/// let req = QueryRequest::new("movie_idx", "golden gate").k(25).disjunctive();
/// assert_eq!(req.index(), "movie_idx");
/// assert_eq!(req.fetch_k(), 25);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRequest {
    index: String,
    keywords: String,
    k: usize,
    mode: QueryMode,
}

impl QueryRequest {
    /// A conjunctive top-10 request (override with the builder methods).
    pub fn new(index: impl Into<String>, keywords: impl Into<String>) -> QueryRequest {
        QueryRequest {
            index: index.into(),
            keywords: keywords.into(),
            k: 10,
            mode: QueryMode::Conjunctive,
        }
    }

    /// Number of results a one-shot [`SvrEngine::query`] returns (cursors
    /// may be drained past it).
    pub fn k(mut self, k: usize) -> QueryRequest {
        self.k = k;
        self
    }

    /// Set the keyword-combination mode.
    pub fn mode(mut self, mode: QueryMode) -> QueryRequest {
        self.mode = mode;
        self
    }

    /// Match documents containing *any* keyword.
    pub fn disjunctive(self) -> QueryRequest {
        self.mode(QueryMode::Disjunctive)
    }

    /// Match documents containing *all* keywords (the default).
    pub fn conjunctive(self) -> QueryRequest {
        self.mode(QueryMode::Conjunctive)
    }

    /// Target index name.
    pub fn index(&self) -> &str {
        &self.index
    }

    /// Raw keywords.
    pub fn keywords(&self) -> &str {
        &self.keywords
    }

    /// The one-shot result count.
    pub fn fetch_k(&self) -> usize {
        self.k
    }

    /// The keyword-combination mode.
    pub fn query_mode(&self) -> QueryMode {
        self.mode
    }
}

/// A resumable ranked search over one text index, opened with
/// [`SvrEngine::open_query`]: each [`SearchCursor::next_batch`] call emits
/// the next batch of rows in rank order, paying only the incremental list
/// traversal — fetching ranks `k+1..2k` does *not* re-run the first k.
///
/// ## Consistency semantics
///
/// Every batch reads the index under the owning shard's read lock, so one
/// batch is internally consistent. Between batches writers proceed;
/// concurrent score churn never corrupts or aborts the cursor, it only
/// makes the *cross-batch* ordering best-effort: results already buffered
/// keep the score observed when they were resolved, later batches observe
/// current scores, and no row is emitted twice. [`SearchCursor::staleness`]
/// counts the index write epochs since the cursor opened — callers that
/// need a fresh total order re-open the query when it grows.
///
/// Rows deleted between scoring and fetching are skipped silently (a fresh
/// query would not return them); use [`SearchCursor::is_exhausted`] rather
/// than a short batch to detect the end of the enumeration.
pub struct SearchCursor {
    engine: SvrEngine,
    entry: Arc<TextIndex>,
    /// `None` when the request can match nothing (unknown conjunctive
    /// keyword or an empty term list): the cursor is born exhausted.
    cursor: Option<MethodCursor>,
    opened_epoch: u64,
}

impl SearchCursor {
    /// Next `n` ranked hits (doc id + score), resuming where the previous
    /// batch stopped. Returns fewer than `n` only at exhaustion.
    pub fn next_hits(&mut self, n: usize) -> Result<Vec<SearchHit>> {
        match &mut self.cursor {
            None => Ok(Vec::new()),
            Some(cursor) => Ok(self.entry.index.next_batch(cursor, n)?),
        }
    }

    /// Next `n` ranked rows. Rows whose base-table entry vanished since
    /// scoring are skipped, so a shorter batch does not imply exhaustion.
    pub fn next_batch(&mut self, n: usize) -> Result<Vec<RankedRow>> {
        let hits = self.next_hits(n)?;
        let table = self.engine.shared.db.table(&self.entry.table)?;
        let mut rows = Vec::with_capacity(hits.len());
        let mut key = Vec::with_capacity(9);
        for hit in hits {
            Value::Int(hit.doc.0 as i64).encode_key_into(&mut key);
            if let Some(row) = table.get_raw(&key)? {
                rows.push(RankedRow {
                    row,
                    score: hit.score,
                });
            }
        }
        Ok(rows)
    }

    /// True once every result has been emitted.
    pub fn is_exhausted(&self) -> bool {
        self.cursor.as_ref().is_none_or(|c| c.is_exhausted())
    }

    /// Index write epochs since this cursor opened: 0 means every batch so
    /// far observed the same index the cursor started from; a growing value
    /// means concurrent churn and best-effort cross-batch ordering.
    pub fn staleness(&self) -> u64 {
        self.entry.epoch().saturating_sub(self.opened_epoch)
    }

    /// Convenience: `staleness() > 0`.
    pub fn is_stale(&self) -> bool {
        self.staleness() > 0
    }

    /// Long-list block counters (skipped vs decoded) accumulated over every
    /// batch this cursor has run — how EXPLAIN observes seek-based skipping.
    pub fn stats(&self) -> svr_core::SeekStats {
        self.cursor.as_ref().map(|c| c.stats()).unwrap_or_default()
    }

    /// The index this cursor enumerates.
    pub fn index_name(&self) -> &str {
        &self.entry.view
    }
}

/// One recorded inverse in a write transaction's undo log. Entries are
/// pushed as each forward operation commits its piece and replayed in
/// **reverse** on error, under the still-held table locks — so by the time
/// an entry runs, every later operation on the same row/document has
/// already been undone (the soundness condition of the core
/// `uninsert_document` entry point).
enum UndoEntry {
    /// Inverse of a row insert: remove the row (no view routing — view
    /// state rolls back from its own captured pre-images).
    RetractRow { table: String, pk: Value },
    /// Inverse of a row update or delete: put the captured pre-image back.
    RestoreRow { table: String, row: Vec<Value> },
    /// Inverse of `insert_document`.
    Uninsert { ti: Arc<TextIndex>, doc: DocId },
    /// Inverse of `delete_document`: revive the tombstoned document.
    Undelete { ti: Arc<TextIndex>, doc: DocId },
    /// Inverse of `update_content`: replay the captured old content.
    RestoreContent { ti: Arc<TextIndex>, old: Document },
}

std::thread_local! {
    /// `(view name, target pk)` score changes raised by the mutation
    /// in flight **on this thread**. View listeners run synchronously on
    /// the mutating thread, so recording here (instead of in a shared
    /// queue) gives each mutating call exactly its own refresh set: no
    /// other writer can steal a key and return before it is applied, and
    /// refresh errors surface on the call that caused them.
    static TOUCHED_SCORES: std::cell::RefCell<Vec<(Arc<str>, i64)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Durable-lifecycle state of an engine created with [`SvrEngine::create`]
/// or recovered with [`SvrEngine::open`].
struct DurableEngine {
    env: Arc<StorageEnv>,
    /// Text-index catalog: `name -> versioned index record`.
    indexes_tree: BTree,
    /// Vocabulary log: `term id (BE) -> term string`, appended per newly
    /// interned term.
    vocab_tree: BTree,
    /// Terms already persisted (ids are dense, so this is a high-water
    /// mark; everything past it is the increment to log).
    persisted_terms: Mutex<usize>,
    /// Auto-checkpoint threshold (see [`EngineConfig`]).
    checkpoint_bytes: u64,
}

/// The shared, internally synchronized engine state.
struct EngineShared {
    db: Database,
    /// Term dictionary shared by every index: interning happens under the
    /// write lock on mutation paths, query-side lookups take read locks.
    vocab: RwLock<Vocabulary>,
    /// Read-mostly index registry.
    indexes: RwLock<HashMap<String, Arc<TextIndex>>>,
    /// Tier-1 per-table writer locks (see the [module docs](self)).
    /// Writers of different tables run in parallel; entries are removed
    /// when their table is dropped.
    write_locks: Mutex<HashMap<String, Arc<OrderedMutex<()>>>>,
    /// `Some` for durable engines; `None` for plain in-memory ones.
    durable: Option<DurableEngine>,
    /// Group-commit refresh draining, applied to every index at
    /// creation/open and toggled engine-wide at runtime
    /// ([`SvrEngine::set_group_refresh`]).
    group_refresh: std::sync::atomic::AtomicBool,
}

/// The integrated engine. Cloning is cheap (`Arc` bump) and every clone
/// addresses the same shared state, so one engine can serve queries from
/// many threads while writers mutate it — see the [module docs](self) for
/// the locking rules and `examples/flash_crowd.rs` for the pattern in
/// action.
#[derive(Clone)]
pub struct SvrEngine {
    shared: Arc<EngineShared>,
}

impl Default for SvrEngine {
    fn default() -> Self {
        SvrEngine::new()
    }
}

impl SvrEngine {
    /// Create an empty **in-memory** engine: the process-lifetime special
    /// case of the durable lifecycle. Nothing survives a restart; use
    /// [`SvrEngine::create`] / [`SvrEngine::open`] for an engine that
    /// does.
    pub fn new() -> SvrEngine {
        SvrEngine {
            shared: Arc::new(EngineShared {
                db: Database::new(),
                vocab: RwLock::new(Vocabulary::new()),
                indexes: RwLock::new(HashMap::new()),
                write_locks: Mutex::new(HashMap::new()),
                durable: None,
                group_refresh: std::sync::atomic::AtomicBool::new(false),
            }),
        }
    }

    /// Bootstrap an empty **durable** engine inside `env` (from
    /// [`StorageEnv::new_durable`] for crash-model durability, or
    /// [`StorageEnv::open_dir`] for file-backed durability): system stores
    /// are created and every catalog mutation — `create_table`,
    /// `create_text_index`, drops, vocabulary growth — writes through to
    /// them, so [`SvrEngine::open`] on the same environment recovers the
    /// complete engine.
    pub fn create(env: Arc<StorageEnv>) -> Result<SvrEngine> {
        SvrEngine::create_with(env, EngineConfig::default())
    }

    /// [`SvrEngine::create`] with explicit [`EngineConfig`] tunables.
    pub fn create_with(env: Arc<StorageEnv>, config: EngineConfig) -> Result<SvrEngine> {
        if !env.is_durable() {
            return Err(SvrError::Engine(
                "SvrEngine::create requires a durable environment \
                 (StorageEnv::new_durable or StorageEnv::open_dir)"
                    .into(),
            ));
        }
        if env.store_exists(svr_relation::SYS_CATALOG_STORE) {
            return Err(SvrError::Engine(
                "environment already holds an engine (use SvrEngine::open)".into(),
            ));
        }
        env.set_wal_sync_interval_ms(config.wal_sync_interval_ms);
        let db = Database::with_env(env.clone())?;
        db.set_wal_checkpoint_bytes(config.wal_checkpoint_bytes);
        let indexes_tree = BTree::create_durable(env.create_logged_store(SYS_INDEXES_STORE, 64))
            .map_err(|e| SvrError::Engine(format!("index catalog: {e}")))?;
        let vocab_tree = BTree::create_durable(env.create_logged_store(SYS_VOCAB_STORE, 64))
            .map_err(|e| SvrError::Engine(format!("vocabulary store: {e}")))?;
        Ok(SvrEngine {
            shared: Arc::new(EngineShared {
                db,
                vocab: RwLock::new(Vocabulary::new()),
                indexes: RwLock::new(HashMap::new()),
                write_locks: Mutex::new(HashMap::new()),
                durable: Some(DurableEngine {
                    env,
                    indexes_tree,
                    vocab_tree,
                    persisted_terms: Mutex::new(0),
                    checkpoint_bytes: config.wal_checkpoint_bytes,
                }),
                group_refresh: std::sync::atomic::AtomicBool::new(config.group_refresh),
            }),
        })
    }

    /// Recover a complete engine from a durable environment: replay every
    /// store's write-ahead log, read the system catalogs (table schemas,
    /// score-view definitions, text-index configurations, vocabulary),
    /// reattach each table and index shard to its recovered store, and
    /// re-materialize the score views — all **without touching a single
    /// base row for indexing**: postings, document contents, scores, chunk
    /// maps and fancy metadata reopen from the index's own durable
    /// structures. Finishes with a checkpoint, so the cost of this
    /// recovery is not paid again at the next open.
    pub fn open(env: Arc<StorageEnv>) -> Result<SvrEngine> {
        SvrEngine::open_with(env, EngineConfig::default())
    }

    /// [`SvrEngine::open`] with explicit [`EngineConfig`] tunables.
    pub fn open_with(env: Arc<StorageEnv>, config: EngineConfig) -> Result<SvrEngine> {
        env.recover_all()
            .map_err(|e| SvrError::Engine(format!("recovery failed: {e}")))?;
        env.set_wal_sync_interval_ms(config.wal_sync_interval_ms);
        let db = Database::open_env(env.clone())?;
        db.set_wal_checkpoint_bytes(config.wal_checkpoint_bytes);

        // Vocabulary: records are keyed by term id (big-endian), so the
        // scan yields terms in id order and re-interning restores every id.
        let vocab_store = env.create_logged_store(SYS_VOCAB_STORE, 64);
        vocab_store
            .recover()
            .map_err(|e| SvrError::Engine(format!("vocabulary recovery: {e}")))?;
        let vocab_tree = BTree::reopen(vocab_store, 0)
            .map_err(|e| SvrError::Engine(format!("vocabulary store: {e}")))?;
        let mut terms = Vec::new();
        {
            let mut cursor = vocab_tree
                .cursor(&[])
                .map_err(|e| SvrError::Engine(format!("vocabulary scan: {e}")))?;
            while let Some((_, v)) = cursor
                .next_entry()
                .map_err(|e| SvrError::Engine(format!("vocabulary scan: {e}")))?
            {
                terms.push(String::from_utf8(v).map_err(|_| {
                    SvrError::Engine("vocabulary store holds a non-UTF-8 term".into())
                })?);
            }
        }
        let persisted = terms.len();
        let mut vocab = Vocabulary::from_terms(terms)
            .ok_or_else(|| SvrError::Engine("vocabulary store holds duplicate terms".into()))?;

        // Text indexes: open each cataloged index from its recovered
        // stores and rewire its view listener.
        let indexes_store = env.create_logged_store(SYS_INDEXES_STORE, 64);
        indexes_store
            .recover()
            .map_err(|e| SvrError::Engine(format!("index catalog recovery: {e}")))?;
        let indexes_tree = BTree::reopen(indexes_store, 0)
            .map_err(|e| SvrError::Engine(format!("index catalog: {e}")))?;
        let mut records = Vec::new();
        {
            let mut cursor = indexes_tree
                .cursor(&[])
                .map_err(|e| SvrError::Engine(format!("index catalog scan: {e}")))?;
            while let Some((k, v)) = cursor
                .next_entry()
                .map_err(|e| SvrError::Engine(format!("index catalog scan: {e}")))?
            {
                let name = String::from_utf8(k)
                    .map_err(|_| SvrError::Engine("index catalog key is not UTF-8".into()))?;
                records.push((name, decode_index_record(&v)?));
            }
        }

        let engine = SvrEngine {
            shared: Arc::new(EngineShared {
                db,
                vocab: RwLock::new(Vocabulary::new()), // installed below
                indexes: RwLock::new(HashMap::new()),
                write_locks: Mutex::new(HashMap::new()),
                durable: Some(DurableEngine {
                    env: env.clone(),
                    indexes_tree,
                    vocab_tree,
                    persisted_terms: Mutex::new(persisted),
                    checkpoint_bytes: config.wal_checkpoint_bytes,
                }),
                group_refresh: std::sync::atomic::AtomicBool::new(config.group_refresh),
            }),
        };

        // Garbage-collect views orphaned by a crash mid-`create_text_index`
        // (the view record lands before the index record; recovery must see
        // either both or neither, and "neither" keeps the name reusable).
        let cataloged: std::collections::HashSet<&str> =
            records.iter().map(|(n, _)| n.as_str()).collect();
        for view in engine.shared.db.view_names() {
            if !cataloged.contains(view.as_str()) {
                let _ = engine.shared.db.drop_score_view(&view);
            }
        }

        for (name, record) in records {
            let table_ref = engine.shared.db.table(&record.table)?;
            let schema = table_ref.schema();
            let text_idx = schema.column_index(&record.text_col)?;
            let pk_idx = schema.pk;
            let loc = IndexLocation::new(env.clone(), index_prefix(&name));
            let index: Arc<dyn SearchIndex> =
                Arc::from(open_index_at(&loc, record.method, &record.config)?);
            index.set_group_refresh(config.group_refresh);
            // The vocabulary's frequency gauge is re-derived from the
            // reopened corpus statistics (it only feeds workload
            // generators, not ranking, and was never exact to begin with).
            for (term, df) in index.term_dfs() {
                vocab.add_doc_freq(term, df);
            }
            engine.install_index_entry(
                &name,
                &record.table,
                text_idx,
                pk_idx,
                index,
                record.config.clone(),
            )?;
        }
        *engine.shared.vocab.write() = vocab;

        // Recovery replayed logs onto the disks; checkpoint so the next
        // open starts from the replayed baseline instead of replaying the
        // same log again on top of it.
        env.checkpoint_all()
            .map_err(|e| SvrError::Engine(format!("post-recovery checkpoint: {e}")))?;
        Ok(engine)
    }

    /// Convenience: open (or bootstrap, when the directory holds no
    /// engine) a **file-backed** engine at `path` — real durability across
    /// process restarts, every store in `<path>/<name>.pages` with its log
    /// mirrored to `<path>/<name>.wal`.
    pub fn open_path(path: impl Into<std::path::PathBuf>) -> Result<SvrEngine> {
        SvrEngine::open_path_with(path, EngineConfig::default())
    }

    /// [`SvrEngine::open_path`] with explicit [`EngineConfig`] tunables —
    /// how a serving deployment opts into the group-commit amortizations
    /// (`wal_sync_interval_ms`, `group_refresh`).
    pub fn open_path_with(
        path: impl Into<std::path::PathBuf>,
        config: EngineConfig,
    ) -> Result<SvrEngine> {
        let env = Arc::new(
            StorageEnv::open_dir(path, svr_storage::DEFAULT_PAGE_SIZE)
                .map_err(|e| SvrError::Engine(format!("open environment: {e}")))?,
        );
        if env.store_exists(svr_relation::SYS_CATALOG_STORE) {
            SvrEngine::open_with(env, config)
        } else {
            SvrEngine::create_with(env, config)
        }
    }

    /// Toggle group-commit refresh draining engine-wide, on every live
    /// index and every index created later (see
    /// [`EngineConfig::group_refresh`]).
    pub fn set_group_refresh(&self, enabled: bool) {
        self.shared
            .group_refresh
            .store(enabled, std::sync::atomic::Ordering::Relaxed);
        for entry in self.shared.indexes.read().values() {
            entry.index.set_group_refresh(enabled);
        }
    }

    /// True when group-commit refresh draining is on.
    pub fn group_refresh_enabled(&self) -> bool {
        self.shared
            .group_refresh
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Set the WAL group-sync interval of a durable engine at runtime
    /// (`0` = fsync every commit; see [`EngineConfig::wal_sync_interval_ms`]).
    /// No-op for in-memory engines.
    pub fn set_wal_sync_interval_ms(&self, ms: u64) {
        if let Some(durable) = &self.shared.durable {
            durable.env.set_wal_sync_interval_ms(ms);
        }
    }

    /// Engine-wide contention counters: aggregate WAL statistics (commit
    /// syncs and group-sync deferrals included), the group-commit
    /// refresh-queue counters summed over every index, and the per-class
    /// lock acquisition/contention counters from the instrumented sync
    /// layer — the payload of the serving front end's `Info` command.
    pub fn contention_stats(&self) -> ContentionStats {
        let wal = match &self.shared.durable {
            Some(durable) => durable.env.total_wal_stats(),
            None => svr_storage::WalStats::default(),
        };
        let mut refresh = svr_core::RefreshGroupStats::default();
        for entry in self.shared.indexes.read().values() {
            refresh.merge(&entry.index.refresh_group_stats());
        }
        ContentionStats {
            wal,
            refresh,
            locks: svr_storage::lock_stats(),
        }
    }

    /// Long-list block skip/decode counters summed over every text index —
    /// the WAND-pruning-effectiveness payload of the serving front end's
    /// `Info` command.
    pub fn seek_stats(&self) -> svr_core::SeekStats {
        self.shared
            .indexes
            .read()
            .values()
            .map(|entry| entry.index.seek_stats())
            .fold(svr_core::SeekStats::default(), |acc, s| acc + s)
    }

    /// The engine's durable environment, when it has one.
    pub fn env(&self) -> Option<&Arc<StorageEnv>> {
        self.shared.durable.as_ref().map(|d| &d.env)
    }

    /// True when this engine persists its state ([`SvrEngine::create`] /
    /// [`SvrEngine::open`]).
    pub fn is_durable(&self) -> bool {
        self.shared.durable.is_some()
    }

    /// Flush every store and truncate every log — an explicit full
    /// checkpoint (automatic checkpointing is governed by
    /// [`EngineConfig::wal_checkpoint_bytes`]).
    pub fn checkpoint(&self) -> Result<()> {
        if let Some(durable) = &self.shared.durable {
            durable
                .env
                .checkpoint_all()
                .map_err(|e| SvrError::Engine(format!("checkpoint: {e}")))?;
        }
        Ok(())
    }

    /// Persist vocabulary growth: append one record per term interned past
    /// the persisted high-water mark. Called right after every interning
    /// site, so a crash can lose at most terms whose postings were not yet
    /// committed either.
    fn persist_new_terms(&self) -> Result<()> {
        let Some(durable) = &self.shared.durable else {
            return Ok(());
        };
        let vocab = self.shared.vocab.read();
        let mut persisted = durable.persisted_terms.lock();
        if vocab.len() <= *persisted {
            return Ok(());
        }
        for (offset, term) in vocab.terms_since(*persisted).iter().enumerate() {
            let id = (*persisted + offset) as u32;
            durable
                .vocab_tree
                .put(&id.to_be_bytes(), term.as_bytes())
                .map_err(|e| SvrError::Engine(format!("vocabulary persist: {e}")))?;
        }
        *persisted = vocab.len();
        let _ = durable
            .vocab_tree
            .store()
            .maybe_checkpoint(durable.checkpoint_bytes);
        Ok(())
    }

    /// Write (or replace) a text index's catalog record.
    fn persist_index_record(&self, name: &str, record: &IndexRecord) -> Result<()> {
        if let Some(durable) = &self.shared.durable {
            durable
                .indexes_tree
                .put(name.as_bytes(), &encode_index_record(record))
                .map_err(|e| SvrError::Engine(format!("index catalog persist: {e}")))?;
        }
        Ok(())
    }

    /// Register an opened/built index in the in-memory registry.
    fn install_index_entry(
        &self,
        name: &str,
        table: &str,
        text_idx: usize,
        pk_idx: usize,
        index: Arc<dyn SearchIndex>,
        config: IndexConfig,
    ) -> Result<()> {
        let view_tag: Arc<str> = Arc::from(name);
        self.shared.db.set_score_listener(
            name,
            Box::new(move |pk, _score| {
                TOUCHED_SCORES.with(|t| t.borrow_mut().push((view_tag.clone(), pk)));
            }),
        )?;
        self.shared.indexes.write().insert(
            name.to_string(),
            Arc::new(TextIndex {
                table: table.to_string(),
                text_col: text_idx,
                pk_col: pk_idx,
                view: name.to_string(),
                index,
                config,
                epoch: AtomicU64::new(0),
            }),
        );
        Ok(())
    }

    /// The underlying relational database (read access).
    pub fn db(&self) -> &Database {
        &self.shared.db
    }

    /// The writer lock for `table` (created on first use).
    fn write_lock(&self, table: &str) -> Arc<OrderedMutex<()>> {
        self.shared
            .write_locks
            .lock()
            .entry(table.to_string())
            .or_insert_with(|| Arc::new(OrderedMutex::new(LockClass::Table, ())))
            .clone()
    }

    /// Run `f` under `table`'s tier-1 writer lock, re-acquiring if the lock
    /// was retired (the table dropped) between fetching and acquiring it —
    /// a writer that loses the race against `DROP TABLE` + re-`CREATE`
    /// must not mutate the new incarnation under the old lock.
    fn with_table_lock<R>(&self, table: &str, f: impl FnOnce() -> R) -> R {
        let mut f = Some(f);
        loop {
            let lock = self.write_lock(table);
            let table_guard = lock.lock();
            let current = self
                .shared
                .write_locks
                .lock()
                .get(table)
                .is_some_and(|registered| Arc::ptr_eq(registered, &lock));
            if current {
                let result = (f.take().expect("validated lock runs f exactly once"))(); // svr-lint: allow(no-unwrap): `f` is consumed exactly once on the validated path
                drop(table_guard);
                return result;
            }
        }
    }

    /// [`SvrEngine::with_table_lock`] over several tables at once, acquired
    /// in the caller's (sorted) order so concurrent batches cannot
    /// deadlock.
    fn with_table_locks<R>(&self, tables: &[String], f: impl FnOnce() -> R) -> R {
        let mut f = Some(f);
        loop {
            let locks: Vec<_> = tables.iter().map(|t| self.write_lock(t)).collect();
            let table_guards: Vec<_> = locks.iter().map(|l| l.lock()).collect();
            let all_current = {
                let registered = self.shared.write_locks.lock();
                tables
                    .iter()
                    .zip(&locks)
                    .all(|(t, l)| registered.get(t).is_some_and(|cur| Arc::ptr_eq(cur, l)))
            };
            if all_current {
                let result = (f.take().expect("validated locks run f exactly once"))(); // svr-lint: allow(no-unwrap): `f` is consumed exactly once on the validated path
                drop(table_guards);
                return result;
            }
        }
    }

    /// Tier 2: drain this thread's recorded score changes and refresh the
    /// affected indexes. Called after the tier-1 lock is released — each
    /// index groups its documents by shard and re-reads the authoritative
    /// view score under the shard's writer lock, so refreshes of documents
    /// in different shards proceed in parallel and stale captured values
    /// cannot win (see the [module docs](self)).
    ///
    /// Every affected index is refreshed even if an earlier one fails; the
    /// first error is returned.
    fn refresh_touched(&self) -> Result<()> {
        let raw = TOUCHED_SCORES.with(|t| std::mem::take(&mut *t.borrow_mut()));
        if raw.is_empty() {
            return Ok(());
        }
        let mut by_view: HashMap<Arc<str>, Vec<i64>> = HashMap::new();
        for (view, pk) in raw {
            by_view.entry(view).or_default().push(pk);
        }
        let mut first_error: Option<SvrError> = None;
        for (view, mut pks) in by_view {
            let Some(ti) = self.shared.indexes.read().get(&*view).cloned() else {
                // Index dropped between the mutation and this refresh.
                continue;
            };
            pks.sort_unstable();
            pks.dedup();
            // Refresh every convertible key even when one is out of the
            // document-id range — the bad key is reported, the rest must
            // not go stale over it.
            let mut docs = Vec::with_capacity(pks.len());
            for pk in pks {
                match doc_id(pk) {
                    Ok(doc) => docs.push(doc),
                    Err(e) => {
                        first_error.get_or_insert(SvrError::Engine(format!(
                            "score propagation failed: index '{}': {e}",
                            ti.view
                        )));
                    }
                }
            }
            let db = &self.shared.db;
            let read = |doc: DocId| -> svr_core::Result<Option<f64>> {
                // The row (or the whole view) may have vanished between the
                // commit and this refresh; that is a skip, not an error.
                Ok(db.score_of(&ti.view, i64::from(doc.0)).ok())
            };
            if let Err(e) = ti.index.refresh_scores(&docs, &read) {
                first_error.get_or_insert(SvrError::Engine(format!(
                    "score propagation failed: index '{}': {e}",
                    ti.view
                )));
            }
            ti.bump();
            // Durable index stores log every page write; bound the logs at
            // the same threshold the table stores use. (O(1) log-size
            // checks per store; an actual checkpoint only past threshold.)
            if let Some(durable) = &self.shared.durable {
                if let Err(e) = ti.index.maybe_checkpoint(durable.checkpoint_bytes) {
                    first_error.get_or_insert(SvrError::Engine(format!(
                        "index checkpoint failed: index '{}': {e}",
                        ti.view
                    )));
                }
            }
        }
        match first_error {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Create a table.
    pub fn create_table(&self, schema: Schema) -> Result<()> {
        Ok(self.shared.db.create_table(schema)?)
    }

    /// Drop a table. Fails while a text index (or raw score view) depends
    /// on it: drop the index first.
    pub fn drop_table(&self, table: &str) -> Result<()> {
        if let Some(index) = self
            .shared
            .indexes
            .read()
            .iter()
            .find_map(|(name, ti)| (ti.table == table).then(|| name.clone()))
        {
            return Err(SvrError::Engine(format!(
                "cannot drop table '{table}': text index '{index}' is built on it \
                 (DROP TEXT INDEX {index} first)"
            )));
        }
        self.with_table_lock(table, || -> Result<()> {
            self.shared.db.drop_table(table)?;
            // Retire the writer-lock entry *while still holding the lock*:
            // the map may not grow unbounded across create/drop cycles, and
            // a writer still queued on the old Arc wakes to find it
            // unregistered and re-acquires the current one (see
            // `with_table_lock`), so a re-created table can never be
            // mutated under the retired lock.
            self.shared.write_locks.lock().remove(table);
            Ok(())
        })
    }

    /// Create a text index with SVR ranking on `table.text_col`.
    ///
    /// This is the engine form of the paper's "create text index ... with
    /// score specification": it materializes the Score view for `spec`,
    /// builds the chosen inverted-list `method` over the existing rows, and
    /// wires view notifications *synchronously* into index score updates.
    pub fn create_text_index(
        &self,
        name: &str,
        table: &str,
        text_col: &str,
        spec: SvrSpec,
        method: MethodKind,
        config: IndexConfig,
    ) -> Result<()> {
        if self.shared.indexes.read().contains_key(name) {
            return Err(SvrError::Engine(format!(
                "text index '{name}' already exists"
            )));
        }
        let table_ref = self.shared.db.table(table)?;
        let schema = table_ref.schema();
        let text_idx = schema.column_index(text_col)?;
        let pk_idx = schema.pk;

        // Block writers of the indexed table while the view + index are
        // built and wired, so no row slips between the scan and the wiring.
        self.with_table_lock(table, || {
            self.create_text_index_locked(
                name,
                table_ref.as_ref(),
                text_idx,
                pk_idx,
                spec,
                method,
                config,
            )
        })
    }

    /// [`SvrEngine::create_text_index`] body, with the caller holding the
    /// indexed table's writer lock.
    #[allow(clippy::too_many_arguments)]
    fn create_text_index_locked(
        &self,
        name: &str,
        table_ref: &svr_relation::Table,
        text_idx: usize,
        pk_idx: usize,
        spec: SvrSpec,
        method: MethodKind,
        config: IndexConfig,
    ) -> Result<()> {
        let table = &table_ref.schema().name;
        let text_col = table_ref.schema().columns[text_idx].0.clone();
        self.shared.db.create_score_view(name, table, spec)?;

        // Tokenize the existing rows.
        let rows = table_ref.scan()?;
        let mut docs = Vec::with_capacity(rows.len());
        {
            let mut vocab = self.shared.vocab.write();
            for row in &rows {
                let pk = row[pk_idx]
                    .as_i64()
                    .ok_or_else(|| SvrError::Engine("text index requires integer keys".into()))?;
                let text = row[text_idx].as_text().unwrap_or("");
                docs.push(Document::from_text(doc_id(pk)?, text, &mut vocab));
            }
        }
        // Log the vocabulary growth before the postings referencing it.
        self.persist_new_terms()?;
        let scores: svr_core::ScoreMap = self
            .shared
            .db
            .all_scores(name)?
            .into_iter()
            .map(|(pk, s)| Ok((doc_id(pk)?, s)))
            .collect::<Result<_>>()?;

        let index: Arc<dyn SearchIndex> = match &self.shared.durable {
            None => Arc::from(build_index(method, &docs, &scores, &config)?),
            Some(durable) => {
                // A crash between a drop's catalog delete and its store
                // removal (or mid-build) can leave orphaned index stores;
                // clear them so the build starts from empty stores with
                // the metadata pages where `open` expects them.
                durable.env.remove_prefix(&index_prefix(name));
                let loc = IndexLocation::new(durable.env.clone(), index_prefix(name));
                Arc::from(build_index_at(&loc, method, &docs, &scores, &config)?)
            }
        };
        index.set_group_refresh(
            self.shared
                .group_refresh
                .load(std::sync::atomic::Ordering::Relaxed),
        );

        {
            let mut indexes = self.shared.indexes.write();
            if indexes.contains_key(name) {
                let _ = self.shared.db.drop_score_view(name);
                return Err(SvrError::Engine(format!(
                    "text index '{name}' already exists"
                )));
            }
            // Tier-1 recording: the view listener only notes *which* target
            // key changed, in the mutating thread's local capture (listeners
            // run synchronously on that thread). The mutating call drains
            // its own capture after commit and refreshes the index under
            // shard locks, re-reading the view for the authoritative score
            // (see the module docs).
            let view_tag: Arc<str> = Arc::from(name);
            self.shared.db.set_score_listener(
                name,
                Box::new(move |pk, _score| {
                    TOUCHED_SCORES.with(|t| t.borrow_mut().push((view_tag.clone(), pk)));
                }),
            )?;
            indexes.insert(
                name.to_string(),
                Arc::new(TextIndex {
                    table: table.to_string(),
                    text_col: text_idx,
                    pk_col: pk_idx,
                    view: name.to_string(),
                    index,
                    config: config.clone(),
                    epoch: AtomicU64::new(0),
                }),
            );
        }
        // Catalog record last: a crash anywhere above recovers to "no
        // index" (plus reclaimable orphan stores) — never to a cataloged
        // index with half-built structures.
        self.persist_index_record(
            name,
            &IndexRecord {
                table: table.clone(),
                text_col,
                method,
                config,
            },
        )?;
        Ok(())
    }

    /// Drop a text index: its backing score view, its catalog record and
    /// its backing stores — a reopen cannot resurrect it, and re-creating
    /// the name starts from empty stores.
    pub fn drop_text_index(&self, name: &str) -> Result<()> {
        let removed = self
            .shared
            .indexes
            .write()
            .remove(name)
            .ok_or_else(|| SvrError::Engine(format!("unknown text index '{name}'")))?;
        self.with_table_lock(&removed.table, || -> Result<()> {
            if let Some(durable) = &self.shared.durable {
                // The index catalog record goes first: a crash anywhere
                // after it leaves at worst orphaned stores (reclaimed by
                // the next create of this name) and a view without an
                // index record (garbage-collected by `open`). The reverse
                // order could leave an index record whose view is gone —
                // a state `open` cannot recover from.
                durable
                    .indexes_tree
                    .delete(name.as_bytes())
                    .map_err(|e| SvrError::Engine(format!("index catalog delete: {e}")))?;
                durable.env.remove_prefix(&index_prefix(name));
            }
            self.shared.db.drop_score_view(&removed.view)?;
            Ok(())
        })
    }

    /// Look up a text index entry.
    fn entry(&self, name: &str) -> Result<Arc<TextIndex>> {
        self.shared
            .indexes
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| SvrError::Engine(format!("unknown text index '{name}'")))
    }

    /// The indexes covering `table`, if any.
    fn entries_on(&self, table: &str) -> Vec<Arc<TextIndex>> {
        self.shared
            .indexes
            .read()
            .values()
            .filter(|ti| ti.table == table)
            .cloned()
            .collect()
    }

    /// Run `f` as an **all-or-nothing write transaction** over `tables`
    /// (sorted, deduped): table locks are taken, the WAL commits of the
    /// involved stores are bracketed into one recoverable batch, view
    /// notifications are buffered, and view undo capture is armed. `f`
    /// appends the inverse of everything it applies to the undo log it is
    /// handed; on error the log replays in reverse under the still-held
    /// locks and the views roll back to their captured pre-images, so no
    /// observable trace of the transaction remains. Score refreshes run
    /// after the locks are released, as always — including after a
    /// rollback, where they converge the indexes to the rolled-back truth.
    fn with_write_txn(
        &self,
        tables: &[String],
        f: impl FnOnce(&mut Vec<UndoEntry>) -> Result<()>,
    ) -> Result<()> {
        let mutated = self.with_table_locks(tables, || {
            // One commit-marker bracket per involved store: a crash
            // mid-transaction recovers every table to its pre-transaction
            // state (the closing marker seals mutations + undo images).
            let wal_batch = self.shared.db.wal_batch(tables)?;
            // Both brackets are scoped to the views this transaction's
            // tables can reach — the hot path (one-table score update)
            // touches one view's mutex, not every view in the engine.
            let bracket = self.shared.db.buffer_score_notifications_for(tables);
            let view_undo = self.shared.db.begin_view_undo(tables);
            let mut undo = Vec::new();
            let result = match f(&mut undo) {
                Ok(()) => {
                    view_undo.commit();
                    Ok(())
                }
                Err(e) => {
                    let rolled_back = self.rollback_ops(undo);
                    view_undo.rollback();
                    match rolled_back {
                        Ok(()) => Err(e),
                        Err(re) => Err(SvrError::Engine(format!(
                            "write transaction failed ({e}); rollback incomplete: {re}"
                        ))),
                    }
                }
            };
            // Flush coalesced notifications into this thread's capture,
            // then seal the WAL batch (in that order: the capture is
            // in-memory, the marker makes the storage state recoverable).
            drop(bracket);
            drop(wal_batch);
            result
        });
        // Refresh even after a failed transaction: the rollback's view
        // notifications re-point the indexes at the restored scores. The
        // mutation's error wins.
        let refreshed = self.refresh_touched();
        mutated?;
        refreshed
    }

    /// Replay a transaction's undo log in reverse. Keeps going past an
    /// entry that fails (restoring as much as possible) and reports the
    /// first error.
    fn rollback_ops(&self, undo: Vec<UndoEntry>) -> Result<()> {
        let mut first_error: Option<SvrError> = None;
        for entry in undo.into_iter().rev() {
            let result: Result<()> = match entry {
                UndoEntry::RetractRow { table, pk } => self
                    .shared
                    .db
                    .retract_row(&table, &pk)
                    .map_err(SvrError::from),
                UndoEntry::RestoreRow { table, row } => self
                    .shared
                    .db
                    .restore_row(&table, row)
                    .map_err(SvrError::from),
                UndoEntry::Uninsert { ti, doc } => {
                    let result = ti.index.uninsert_document(doc);
                    ti.bump();
                    result.map_err(SvrError::from)
                }
                UndoEntry::Undelete { ti, doc } => {
                    let result = ti.index.undelete_document(doc);
                    ti.bump();
                    result.map_err(SvrError::from)
                }
                UndoEntry::RestoreContent { ti, old } => {
                    let result = ti.index.update_content(&old);
                    ti.bump();
                    result.map_err(SvrError::from)
                }
            };
            if let Err(e) = result {
                first_error.get_or_insert(e);
            }
        }
        match first_error {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Insert a row, maintaining views and text indexes. All-or-nothing:
    /// on error the row, views and index postings are rolled back.
    pub fn insert_row(&self, table: &str, row: Vec<Value>) -> Result<()> {
        self.with_write_txn(std::slice::from_ref(&table.to_string()), |undo| {
            self.insert_row_locked(table, row, undo)
        })
    }

    /// [`SvrEngine::insert_row`] tier-1 body, with the caller holding the
    /// table's writer lock: row + view mutation and the structural
    /// `insert_document`, each pushing its inverse onto `undo`. The caller
    /// drains and applies score refreshes.
    fn insert_row_locked(
        &self,
        table: &str,
        row: Vec<Value>,
        undo: &mut Vec<UndoEntry>,
    ) -> Result<()> {
        // Extract what the text indexes need *before* the row moves into
        // the database — no full-row clone.
        let entries = self.entries_on(table);
        let mut inserts = Vec::with_capacity(entries.len());
        for ti in &entries {
            let pk = row
                .get(ti.pk_col)
                .and_then(Value::as_i64)
                .ok_or_else(|| SvrError::Engine("integer key required".into()))?;
            let text = row
                .get(ti.text_col)
                .and_then(|v| v.as_text())
                .unwrap_or("")
                .to_string();
            inserts.push((ti.clone(), pk, text));
        }
        let pk_idx = self.shared.db.table(table)?.schema().pk;
        let change = self.shared.db.insert_row(table, row)?;
        if let RowChange::Inserted { new } = &change {
            undo.push(UndoEntry::RetractRow {
                table: table.to_string(),
                pk: new[pk_idx].clone(),
            });
        }
        for (ti, pk, text) in inserts {
            let doc = Document::from_text(doc_id(pk)?, &text, &mut self.shared.vocab.write());
            // Vocabulary growth is logged incrementally, before the
            // postings that reference the new ids.
            self.persist_new_terms()?;
            let score = self.shared.db.score_of(&ti.view, pk).unwrap_or(0.0);
            ti.index.insert_document(&doc, score)?;
            ti.bump();
            undo.push(UndoEntry::Uninsert { ti, doc: doc.id });
        }
        Ok(())
    }

    /// Insert many rows into one table under a single writer-lock
    /// acquisition, with coalesced score propagation — the bulk-load path.
    /// All-or-nothing: a failing row rolls back every earlier row of the
    /// call.
    pub fn insert_rows(&self, table: &str, rows: Vec<Vec<Value>>) -> Result<usize> {
        let inserted = rows.len();
        self.with_write_txn(std::slice::from_ref(&table.to_string()), |undo| {
            for row in rows {
                self.insert_row_locked(table, row, undo)?;
            }
            Ok(())
        })?;
        Ok(inserted)
    }

    /// Apply a [`WriteBatch`] **atomically**: one writer-lock acquisition
    /// per involved table (taken in sorted order, so concurrent batches
    /// cannot deadlock), coalesced view notifications, one WAL commit
    /// marker per involved store, and one score refresh per touched
    /// document — grouped by index shard and applied with the shards in
    /// parallel after the table locks are released. Returns the number of
    /// operations the batch applied.
    ///
    /// The batch is **all-or-nothing**: if any operation fails, every
    /// operation already applied is rolled back — tables, views, index
    /// postings and rankings are left as if the batch had never run — and
    /// the error is returned. A crash mid-batch likewise recovers the
    /// table stores to the pre-batch state (the WAL marker that seals the
    /// batch is only appended when it completes or finishes rolling back).
    pub fn apply(&self, batch: WriteBatch) -> Result<usize> {
        let mut tables: Vec<String> = batch.ops.iter().map(|op| op.table().to_string()).collect();
        tables.sort_unstable();
        tables.dedup();
        let applied = batch.ops.len();
        self.with_write_txn(&tables, |undo| {
            for op in batch.ops {
                match op {
                    WriteOp::Insert { table, row } => self.insert_row_locked(&table, row, undo)?,
                    WriteOp::Update { table, pk, sets } => {
                        self.update_row_locked(&table, pk, &sets, undo)?
                    }
                    WriteOp::Delete { table, pk } => self.delete_row_locked(&table, pk, undo)?,
                }
            }
            Ok(())
        })?;
        Ok(applied)
    }

    /// Update a row, maintaining views and text indexes (text-column changes
    /// become Appendix-A content updates). Pure score updates — the
    /// update-intensive hot path — hold the table lock only for the
    /// row/view mutation; the index refresh runs under shard locks.
    /// All-or-nothing: on error the row, views and content are rolled back.
    pub fn update_row(&self, table: &str, pk: Value, updates: &[(String, Value)]) -> Result<()> {
        self.with_write_txn(std::slice::from_ref(&table.to_string()), |undo| {
            self.update_row_locked(table, pk, updates, undo)
        })
    }

    fn update_row_locked(
        &self,
        table: &str,
        pk: Value,
        updates: &[(String, Value)],
        undo: &mut Vec<UndoEntry>,
    ) -> Result<()> {
        let change = self.shared.db.update_row(table, pk.clone(), updates)?;
        let RowChange::Updated { old, .. } = &change else {
            return Err(SvrError::Engine(
                "update reported a non-update change".into(),
            ));
        };
        undo.push(UndoEntry::RestoreRow {
            table: table.to_string(),
            row: old.clone(),
        });
        let entries = self.entries_on(table);
        if !entries.is_empty() {
            let schema = self.shared.db.table(table)?.schema().clone();
            for ti in entries {
                let text_col_name = &schema.columns[ti.text_col].0;
                if let Some((_, new_text)) = updates.iter().find(|(c, _)| c == text_col_name) {
                    let pk_int = pk
                        .as_i64()
                        .ok_or_else(|| SvrError::Engine("integer key required".into()))?;
                    let old_text = old.get(ti.text_col).and_then(|v| v.as_text()).unwrap_or("");
                    let (doc, old_doc) = {
                        let mut vocab = self.shared.vocab.write();
                        (
                            Document::from_text(
                                doc_id(pk_int)?,
                                new_text.as_text().unwrap_or(""),
                                &mut vocab,
                            ),
                            Document::from_text(doc_id(pk_int)?, old_text, &mut vocab),
                        )
                    };
                    self.persist_new_terms()?;
                    // Structural: stays in tier 1 so concurrent content
                    // updates of one document cannot apply out of order.
                    ti.index.update_content(&doc)?;
                    ti.bump();
                    undo.push(UndoEntry::RestoreContent { ti, old: old_doc });
                }
            }
        }
        Ok(())
    }

    /// Delete a row, maintaining views and text indexes. All-or-nothing:
    /// on error the row, views and index state are rolled back.
    pub fn delete_row(&self, table: &str, pk: Value) -> Result<()> {
        self.with_write_txn(std::slice::from_ref(&table.to_string()), |undo| {
            self.delete_row_locked(table, pk, undo)
        })
    }

    fn delete_row_locked(&self, table: &str, pk: Value, undo: &mut Vec<UndoEntry>) -> Result<()> {
        let change = self.shared.db.delete_row(table, pk.clone())?;
        let RowChange::Deleted { old } = &change else {
            return Err(SvrError::Engine(
                "delete reported a non-delete change".into(),
            ));
        };
        undo.push(UndoEntry::RestoreRow {
            table: table.to_string(),
            row: old.clone(),
        });
        for ti in self.entries_on(table) {
            let pk_int = pk
                .as_i64()
                .ok_or_else(|| SvrError::Engine("integer key required".into()))?;
            let doc = doc_id(pk_int)?;
            ti.index.delete_document(doc)?;
            ti.bump();
            undo.push(UndoEntry::Undelete { ti, doc });
        }
        Ok(())
    }

    /// Resolve raw keywords against the shared vocabulary: the interned
    /// term ids plus the number of tokens the vocabulary does not know.
    /// This is the single tokenize-and-resolve step behind
    /// [`SvrEngine::search`], [`SvrEngine::open_query`] and the SQL layer's
    /// `EXPLAIN` (which surfaces the counts without running the query).
    pub fn resolve_keywords(&self, keywords: &str) -> (Vec<TermId>, usize) {
        let vocab = self.shared.vocab.read();
        let mut terms = Vec::new();
        let mut unknown = 0usize;
        for token in svr_text::tokenize(keywords) {
            match vocab.get(&token) {
                Some(t) => terms.push(t),
                None => unknown += 1,
            }
        }
        (terms, unknown)
    }

    /// The index-layer [`Query`] for a request, or `None` when it can match
    /// nothing (a vocabulary-unknown keyword under conjunctive semantics —
    /// disjunctive queries simply ignore unknown keywords — or no usable
    /// keywords at all).
    fn plan_query(&self, keywords: &str, k: usize, mode: QueryMode) -> Option<Query> {
        let (terms, unknown) = self.resolve_keywords(keywords);
        if (unknown > 0 && mode == QueryMode::Conjunctive) || terms.is_empty() {
            return None;
        }
        Some(Query::new(terms, k, mode))
    }

    /// Open a resumable ranked search — see [`SearchCursor`] for batch and
    /// staleness semantics. Takes `&self`: cursors can be opened and
    /// advanced from any number of threads while writers run.
    pub fn open_query(&self, request: &QueryRequest) -> Result<SearchCursor> {
        let ti = self.entry(&request.index)?;
        // Capture the epoch *before* opening: a write landing while the
        // cursor opens (phase-1 fancy merges resolve scores right here)
        // must surface as staleness, not be silently folded in.
        let opened_epoch = ti.epoch();
        let cursor = match self.plan_query(&request.keywords, request.k, request.mode) {
            None => None,
            Some(query) => Some(ti.index.open_cursor(&query)?),
        };
        Ok(SearchCursor {
            engine: self.clone(),
            opened_epoch,
            entry: ti,
            cursor,
        })
    }

    /// One-shot form of [`SvrEngine::open_query`]: the top
    /// [`QueryRequest::fetch_k`] rows.
    pub fn query(&self, request: &QueryRequest) -> Result<Vec<RankedRow>> {
        self.search(&request.index, &request.keywords, request.k, request.mode)
    }

    /// Keyword-search the indexed text column, returning the top-k rows
    /// ranked by the *latest* SVR scores — the engine form of the paper's
    /// `SELECT * FROM Movies ORDER BY score(desc, "golden gate") FETCH TOP
    /// k`. Implemented as an opened cursor drained once. Unlike cursor
    /// batches, a hit whose base row is missing is an error here: the
    /// one-shot API keeps its historical strict behavior so index/table
    /// wiring bugs surface loudly — though the same benign race cursor
    /// batches absorb (a row deleted between the index drain and the row
    /// fetch below) also trips it; callers racing deletes should prefer
    /// [`SvrEngine::open_query`]. Takes `&self`: any number of threads can
    /// search one shared engine while writers run.
    pub fn search(
        &self,
        index: &str,
        keywords: &str,
        k: usize,
        mode: QueryMode,
    ) -> Result<Vec<RankedRow>> {
        let ti = self.entry(index)?;
        let Some(query) = self.plan_query(keywords, k, mode) else {
            return Ok(Vec::new());
        };
        let hits = ti.index.query(&query)?;
        let table = self.shared.db.table(&ti.table)?;
        let mut rows = Vec::with_capacity(hits.len());
        let mut key = Vec::with_capacity(9);
        for hit in hits {
            // One reused key buffer instead of a Value + Vec per hit.
            Value::Int(hit.doc.0 as i64).encode_key_into(&mut key);
            let row = table.get_raw(&key)?.ok_or_else(|| {
                SvrError::Engine(format!("index points at missing row {}", hit.doc))
            })?;
            rows.push(RankedRow {
                row,
                score: hit.score,
            });
        }
        Ok(rows)
    }

    /// Name of the text index covering `table.text_col`, if one exists.
    /// This is how a `SELECT ... ORDER BY score(m.desc, "...")` query finds
    /// the index to use.
    pub fn text_index_on(&self, table: &str, text_col: &str) -> Option<String> {
        // Resolve the column to its index once — no schema clone per call.
        let table_ref = self.shared.db.table(table).ok()?;
        let col = table_ref.schema().column_index(text_col).ok()?;
        self.shared
            .indexes
            .read()
            .iter()
            .find_map(|(name, ti)| (ti.table == table && ti.text_col == col).then(|| name.clone()))
    }

    /// Names of all text indexes (unordered).
    pub fn index_names(&self) -> Vec<String> {
        self.shared.indexes.read().keys().cloned().collect()
    }

    /// Direct access to an index (statistics, maintenance).
    pub fn index(&self, name: &str) -> Result<Arc<dyn SearchIndex>> {
        Ok(self.entry(name)?.index.clone())
    }

    /// Run the offline short-list merge on an index, shard by shard. No
    /// table lock is taken: each shard's merge holds that shard's writer
    /// lock only, so writers of documents in other shards keep running
    /// while the merge restructures this one (sharded indexes merge their
    /// shards in parallel).
    pub fn run_maintenance(&self, name: &str) -> Result<()> {
        let ti = self.entry(name)?;
        ti.index.merge_short_lists()?;
        ti.bump();
        if let Some(durable) = &self.shared.durable {
            ti.index.maybe_checkpoint(durable.checkpoint_bytes)?;
        }
        Ok(())
    }

    /// Merge a single shard of an index — the scheduling granule for
    /// incremental maintenance under sustained write load: a maintainer can
    /// walk the shards round-robin, never stalling more than `1/num_shards`
    /// of the table's writers at a time.
    pub fn run_shard_maintenance(&self, name: &str, shard: usize) -> Result<()> {
        let ti = self.entry(name)?;
        ti.index.merge_shard(shard)?;
        ti.bump();
        if let Some(durable) = &self.shared.durable {
            ti.index.maybe_checkpoint(durable.checkpoint_bytes)?;
        }
        Ok(())
    }

    /// Per-shard list statistics of an index (shard count, long-list bytes,
    /// parked short-list postings) — surfaced by `EXPLAIN` in the SQL
    /// layer.
    pub fn index_shard_stats(&self, name: &str) -> Result<Vec<ShardStats>> {
        Ok(self.entry(name)?.index.shard_stats())
    }

    /// The build configuration a text index runs under (codec included).
    pub fn index_config(&self, name: &str) -> Result<IndexConfig> {
        Ok(self.entry(name)?.config.clone())
    }

    /// The materialized view's score for a row (for assertions and demos).
    pub fn score_of(&self, index: &str, pk: i64) -> Result<f64> {
        let ti = self.entry(index)?;
        Ok(self.shared.db.score_of(&ti.view, pk)?)
    }
}

/// One text index's persisted configuration: everything `open` needs to
/// reattach the index — where it is wired (table, analyzed column), which
/// method it runs, and the full build configuration (shard count included,
/// which determines the per-shard store layout).
struct IndexRecord {
    table: String,
    text_col: String,
    method: MethodKind,
    config: IndexConfig,
}

const INDEX_RECORD_V1: u8 = 1;
/// V2 appends the long-list codec tag; V1 records (written before codecs
/// existed) decode with [`CodecKind::Legacy`], the format they were built
/// with, so pre-upgrade stores reopen unchanged.
const INDEX_RECORD_V2: u8 = 2;

fn method_tag(kind: MethodKind) -> u8 {
    match kind {
        MethodKind::Id => 0,
        MethodKind::Score => 1,
        MethodKind::ScoreThreshold => 2,
        MethodKind::Chunk => 3,
        MethodKind::IdTermScore => 4,
        MethodKind::ChunkTermScore => 5,
        MethodKind::ScoreThresholdTermScore => 6,
    }
}

fn method_from_tag(tag: u8) -> Result<MethodKind> {
    Ok(match tag {
        0 => MethodKind::Id,
        1 => MethodKind::Score,
        2 => MethodKind::ScoreThreshold,
        3 => MethodKind::Chunk,
        4 => MethodKind::IdTermScore,
        5 => MethodKind::ChunkTermScore,
        6 => MethodKind::ScoreThresholdTermScore,
        _ => return Err(SvrError::Engine("unknown method tag in catalog".into())),
    })
}

fn encode_index_record(record: &IndexRecord) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    begin_record(&mut buf, INDEX_RECORD_V2);
    write_string(&mut buf, &record.table);
    write_string(&mut buf, &record.text_col);
    buf.push(method_tag(record.method));
    let c = &record.config;
    buf.extend_from_slice(&c.threshold_ratio.to_le_bytes());
    buf.extend_from_slice(&c.chunk_ratio.to_le_bytes());
    write_varint(&mut buf, c.min_chunk_docs as u64);
    write_varint(&mut buf, c.fancy_size as u64);
    buf.extend_from_slice(&c.term_weight.to_le_bytes());
    write_varint(&mut buf, c.page_size as u64);
    write_varint(&mut buf, c.long_cache_pages as u64);
    write_varint(&mut buf, c.small_cache_pages as u64);
    write_varint(&mut buf, c.num_shards as u64);
    write_varint(&mut buf, c.cursor_pool_cap as u64);
    buf.push(c.codec.tag());
    buf
}

fn decode_index_record(raw: &[u8]) -> Result<IndexRecord> {
    let corrupt = || SvrError::Engine("corrupt index catalog record".into());
    let mut pos = 0;
    let version = match record_version(raw, &mut pos) {
        Some(v @ (INDEX_RECORD_V1 | INDEX_RECORD_V2)) => v,
        _ => return Err(corrupt()),
    };
    let table = read_string(raw, &mut pos).ok_or_else(corrupt)?;
    let text_col = read_string(raw, &mut pos).ok_or_else(corrupt)?;
    let method = method_from_tag(*raw.get(pos).ok_or_else(corrupt)?)?;
    pos += 1;
    let f64_at = |pos: &mut usize| -> Result<f64> {
        let end = *pos + 8;
        let bytes = raw.get(*pos..end).ok_or_else(corrupt)?;
        *pos = end;
        Ok(f64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    };
    let threshold_ratio = f64_at(&mut pos)?;
    let chunk_ratio = f64_at(&mut pos)?;
    let min_chunk_docs = read_varint(raw, &mut pos).ok_or_else(corrupt)? as usize;
    let fancy_size = read_varint(raw, &mut pos).ok_or_else(corrupt)? as usize;
    let term_weight = f64_at(&mut pos)?;
    let page_size = read_varint(raw, &mut pos).ok_or_else(corrupt)? as usize;
    let long_cache_pages = read_varint(raw, &mut pos).ok_or_else(corrupt)? as usize;
    let small_cache_pages = read_varint(raw, &mut pos).ok_or_else(corrupt)? as usize;
    let num_shards = read_varint(raw, &mut pos).ok_or_else(corrupt)? as usize;
    let cursor_pool_cap = read_varint(raw, &mut pos).ok_or_else(corrupt)? as usize;
    let codec = if version >= INDEX_RECORD_V2 {
        CodecKind::from_tag(*raw.get(pos).ok_or_else(corrupt)?).ok_or_else(corrupt)?
    } else {
        CodecKind::Legacy
    };
    Ok(IndexRecord {
        table,
        text_col,
        method,
        config: IndexConfig {
            threshold_ratio,
            chunk_ratio,
            min_chunk_docs,
            fancy_size,
            term_weight,
            page_size,
            long_cache_pages,
            small_cache_pages,
            cursor_pool_cap,
            num_shards,
            codec,
        },
    })
}

fn doc_id(pk: i64) -> Result<DocId> {
    u32::try_from(pk)
        .map(DocId)
        .map_err(|_| SvrError::Engine(format!("primary key {pk} out of document-id range")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use svr_relation::schema::ColumnType;

    fn schema(name: &str) -> Schema {
        Schema::new(name, &[("id", ColumnType::Int), ("v", ColumnType::Int)], 0)
    }

    /// `DROP TABLE` must retire the table's writer-lock entry: the map may
    /// not grow across create/drop cycles, and a re-created table gets a
    /// fresh lock.
    #[test]
    fn drop_table_retires_writer_lock_entry() {
        let engine = SvrEngine::new();
        for round in 0..5 {
            engine.create_table(schema("churn")).unwrap();
            engine
                .insert_row("churn", vec![Value::Int(round), Value::Int(1)])
                .unwrap();
            assert!(engine.shared.write_locks.lock().contains_key("churn"));
            engine.drop_table("churn").unwrap();
            assert!(
                !engine.shared.write_locks.lock().contains_key("churn"),
                "stale writer-lock entry after drop (round {round})"
            );
        }
        assert_eq!(engine.shared.write_locks.lock().len(), 0);
    }

    /// A V1 catalog record (written before list codecs existed) must decode
    /// with the Legacy codec — the format those stores were built with.
    #[test]
    fn v1_index_record_decodes_with_legacy_codec() {
        let config = IndexConfig::default();
        let mut raw = Vec::new();
        begin_record(&mut raw, INDEX_RECORD_V1);
        write_string(&mut raw, "movies");
        write_string(&mut raw, "title");
        raw.push(method_tag(MethodKind::Chunk));
        raw.extend_from_slice(&config.threshold_ratio.to_le_bytes());
        raw.extend_from_slice(&config.chunk_ratio.to_le_bytes());
        write_varint(&mut raw, config.min_chunk_docs as u64);
        write_varint(&mut raw, config.fancy_size as u64);
        raw.extend_from_slice(&config.term_weight.to_le_bytes());
        write_varint(&mut raw, config.page_size as u64);
        write_varint(&mut raw, config.long_cache_pages as u64);
        write_varint(&mut raw, config.small_cache_pages as u64);
        write_varint(&mut raw, config.num_shards as u64);
        write_varint(&mut raw, config.cursor_pool_cap as u64);
        // No codec byte: V1 records end here.
        let record = decode_index_record(&raw).unwrap();
        assert_eq!(record.table, "movies");
        assert_eq!(record.method, MethodKind::Chunk);
        assert_eq!(record.config.codec, CodecKind::Legacy);
    }

    /// The current encoder round-trips every codec through the V2 record.
    #[test]
    fn v2_index_record_roundtrips_codec() {
        for codec in CodecKind::ALL {
            let record = IndexRecord {
                table: "movies".into(),
                text_col: "title".into(),
                method: MethodKind::Id,
                config: IndexConfig {
                    codec,
                    ..IndexConfig::default()
                },
            };
            let decoded = decode_index_record(&encode_index_record(&record)).unwrap();
            assert_eq!(decoded.config.codec, codec);
        }
    }
}
