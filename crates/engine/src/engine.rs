//! The integrated SVR engine: the architecture of the paper's Figure 2.
//!
//! [`SvrEngine`] owns the relational [`Database`], the text vocabulary and
//! one [`SearchIndex`] per indexed text column. Structured-data mutations
//! flow through the materialized Score view, whose change notifications
//! drive the index's score updates; text mutations flow through the
//! Appendix-A content operations. Keyword queries return ranked rows.

use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::Arc;

use svr_core::types::{DocId, Document, Query, QueryMode};
use svr_core::{build_index, IndexConfig, MethodKind, SearchIndex};
use svr_relation::{Database, Schema, SvrSpec, Value};
use svr_text::Vocabulary;

use crate::error::{Result, SvrError};

/// A ranked search result: the matching row and its latest SVR score.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedRow {
    pub row: Vec<Value>,
    pub score: f64,
}

struct TextIndex {
    table: String,
    text_col: usize,
    pk_col: usize,
    view: String,
    index: Arc<dyn SearchIndex>,
    /// Score-change notifications from the materialized view, drained after
    /// every mutation (the view listener runs inside the relational layer
    /// and must not call back into the engine re-entrantly).
    score_rx: mpsc::Receiver<(i64, f64)>,
}

/// The integrated engine.
pub struct SvrEngine {
    db: Database,
    vocab: Vocabulary,
    indexes: HashMap<String, TextIndex>,
}

impl Default for SvrEngine {
    fn default() -> Self {
        SvrEngine::new()
    }
}

impl SvrEngine {
    /// Create an empty engine.
    pub fn new() -> SvrEngine {
        SvrEngine { db: Database::new(), vocab: Vocabulary::new(), indexes: HashMap::new() }
    }

    /// The underlying relational database (read access).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Create a table.
    pub fn create_table(&mut self, schema: Schema) -> Result<()> {
        Ok(self.db.create_table(schema)?)
    }

    /// Create a text index with SVR ranking on `table.text_col`.
    ///
    /// This is the engine form of the paper's "create text index ... with
    /// score specification": it materializes the Score view for `spec`,
    /// builds the chosen inverted-list `method` over the existing rows, and
    /// wires view notifications to index score updates.
    pub fn create_text_index(
        &mut self,
        name: &str,
        table: &str,
        text_col: &str,
        spec: SvrSpec,
        method: MethodKind,
        config: IndexConfig,
    ) -> Result<()> {
        if self.indexes.contains_key(name) {
            return Err(SvrError::Engine(format!("text index '{name}' already exists")));
        }
        let schema = self.db.table(table)?.schema().clone();
        let text_idx = schema.column_index(text_col)?;
        let pk_idx = schema.pk;

        self.db.create_score_view(name, table, spec)?;

        // Tokenize the existing rows.
        let rows = self.db.table(table)?.scan()?;
        let mut docs = Vec::with_capacity(rows.len());
        for row in &rows {
            let pk = row[pk_idx]
                .as_i64()
                .ok_or_else(|| SvrError::Engine("text index requires integer keys".into()))?;
            let text = row[text_idx].as_text().unwrap_or("");
            docs.push(Document::from_text(doc_id(pk)?, text, &mut self.vocab));
        }
        let scores: svr_core::ScoreMap = self
            .db
            .all_scores(name)?
            .into_iter()
            .map(|(pk, s)| Ok((doc_id(pk)?, s)))
            .collect::<Result<_>>()?;

        let index: Arc<dyn SearchIndex> = Arc::from(build_index(method, &docs, &scores, &config)?);
        // View notifications flow through a channel; the engine drains it
        // after every mutation.
        let (tx, rx) = mpsc::channel();
        self.db.set_score_listener(
            name,
            Box::new(move |pk, score| {
                let _ = tx.send((pk, score));
            }),
        )?;
        self.indexes.insert(
            name.to_string(),
            TextIndex {
                table: table.to_string(),
                text_col: text_idx,
                pk_col: pk_idx,
                view: name.to_string(),
                index,
                score_rx: rx,
            },
        );
        Ok(())
    }

    /// Pump pending view notifications into the indexes.
    fn drain_score_updates(&mut self) -> Result<()> {
        for ti in self.indexes.values_mut() {
            while let Ok((pk, score)) = ti.score_rx.try_recv() {
                match ti.index.update_score(doc_id(pk)?, score) {
                    Ok(()) => {}
                    // The row may not be indexed yet (mid-insert); the
                    // upcoming insert_document carries the current score.
                    Err(svr_core::CoreError::UnknownDocument(_)) => {}
                    Err(e) => return Err(e.into()),
                }
            }
        }
        Ok(())
    }

    /// Insert a row, maintaining views and text indexes.
    pub fn insert_row(&mut self, table: &str, row: Vec<Value>) -> Result<()> {
        self.db.insert_row(table, row.clone())?;
        // Index the text of the new row in every index on this table.
        let mut inserts = Vec::new();
        for (name, ti) in &self.indexes {
            if ti.table == table {
                let pk = row[ti.pk_col]
                    .as_i64()
                    .ok_or_else(|| SvrError::Engine("integer key required".into()))?;
                let text = row[ti.text_col].as_text().unwrap_or("").to_string();
                inserts.push((name.clone(), pk, text));
            }
        }
        for (name, pk, text) in inserts {
            let doc = Document::from_text(doc_id(pk)?, &text, &mut self.vocab);
            let score = self.db.score_of(&name, pk).unwrap_or(0.0);
            self.indexes[&name].index.insert_document(&doc, score)?;
        }
        self.drain_score_updates()
    }

    /// Update a row, maintaining views and text indexes (text-column changes
    /// become Appendix-A content updates).
    pub fn update_row(&mut self, table: &str, pk: Value, updates: &[(String, Value)]) -> Result<()> {
        self.db.update_row(table, pk.clone(), updates)?;
        let mut content_updates = Vec::new();
        for (name, ti) in &self.indexes {
            if ti.table != table {
                continue;
            }
            let schema = self.db.table(table)?.schema();
            let text_col_name = &schema.columns[ti.text_col].0;
            if let Some((_, new_text)) = updates.iter().find(|(c, _)| c == text_col_name) {
                let pk_int = pk
                    .as_i64()
                    .ok_or_else(|| SvrError::Engine("integer key required".into()))?;
                content_updates.push((
                    name.clone(),
                    pk_int,
                    new_text.as_text().unwrap_or("").to_string(),
                ));
            }
        }
        for (name, pk_int, text) in content_updates {
            let doc = Document::from_text(doc_id(pk_int)?, &text, &mut self.vocab);
            self.indexes[&name].index.update_content(&doc)?;
        }
        self.drain_score_updates()
    }

    /// Delete a row, maintaining views and text indexes.
    pub fn delete_row(&mut self, table: &str, pk: Value) -> Result<()> {
        self.db.delete_row(table, pk.clone())?;
        for ti in self.indexes.values() {
            if ti.table == table {
                let pk_int = pk
                    .as_i64()
                    .ok_or_else(|| SvrError::Engine("integer key required".into()))?;
                ti.index.delete_document(doc_id(pk_int)?)?;
            }
        }
        self.drain_score_updates()
    }

    /// Keyword-search the indexed text column, returning the top-k rows
    /// ranked by the *latest* SVR scores — the engine form of the paper's
    /// `SELECT * FROM Movies ORDER BY score(desc, "golden gate") FETCH TOP
    /// k`.
    pub fn search(&mut self, index: &str, keywords: &str, k: usize, mode: QueryMode) -> Result<Vec<RankedRow>> {
        self.drain_score_updates()?;
        let ti = self
            .indexes
            .get(index)
            .ok_or_else(|| SvrError::Engine(format!("unknown text index '{index}'")))?;
        let mut terms = Vec::new();
        for token in svr_text::tokenize(keywords) {
            match self.vocab.get(&token) {
                Some(t) => terms.push(t),
                // A keyword that appears nowhere: conjunctive queries can
                // return nothing; disjunctive queries ignore it.
                None if mode == QueryMode::Conjunctive => return Ok(Vec::new()),
                None => {}
            }
        }
        if terms.is_empty() {
            return Ok(Vec::new());
        }
        let hits = ti.index.query(&Query::new(terms, k, mode))?;
        let table = self.db.table(&ti.table)?;
        let mut rows = Vec::with_capacity(hits.len());
        for hit in hits {
            let row = table
                .get(&Value::Int(hit.doc.0 as i64))?
                .ok_or_else(|| SvrError::Engine(format!("index points at missing row {}", hit.doc)))?;
            rows.push(RankedRow { row, score: hit.score });
        }
        Ok(rows)
    }

    /// Name of the text index covering `table.text_col`, if one exists.
    /// This is how a `SELECT ... ORDER BY score(m.desc, "...")` query finds
    /// the index to use.
    pub fn text_index_on(&self, table: &str, text_col: &str) -> Option<&str> {
        self.indexes.iter().find_map(|(name, ti)| {
            if ti.table != table {
                return None;
            }
            let schema = self.db.table(table).ok()?.schema();
            (schema.columns[ti.text_col].0 == text_col).then_some(name.as_str())
        })
    }

    /// Names of all text indexes (unordered).
    pub fn index_names(&self) -> Vec<&str> {
        self.indexes.keys().map(String::as_str).collect()
    }

    /// Direct access to an index (statistics, maintenance).
    pub fn index(&self, name: &str) -> Result<&Arc<dyn SearchIndex>> {
        self.indexes
            .get(name)
            .map(|ti| &ti.index)
            .ok_or_else(|| SvrError::Engine(format!("unknown text index '{name}'")))
    }

    /// Run the offline short-list merge on an index.
    pub fn run_maintenance(&mut self, name: &str) -> Result<()> {
        self.drain_score_updates()?;
        Ok(self.index(name)?.merge_short_lists()?)
    }

    /// The materialized view's score for a row (for assertions and demos).
    pub fn score_of(&mut self, index: &str, pk: i64) -> Result<f64> {
        self.drain_score_updates()?;
        let view = self
            .indexes
            .get(index)
            .map(|ti| ti.view.clone())
            .ok_or_else(|| SvrError::Engine(format!("unknown text index '{index}'")))?;
        Ok(self.db.score_of(&view, pk)?)
    }
}

fn doc_id(pk: i64) -> Result<DocId> {
    u32::try_from(pk)
        .map(DocId)
        .map_err(|_| SvrError::Engine(format!("primary key {pk} out of document-id range")))
}
