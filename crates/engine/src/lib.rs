//! # svr-engine
//!
//! The integration layer of the SVR reproduction — the architecture of the
//! paper's Figure 2. [`SvrEngine`] owns the relational
//! [`Database`](svr_relation::Database), the text vocabulary and one
//! [`SearchIndex`](svr_core::SearchIndex) per indexed text column:
//!
//! * structured-data mutations flow through the incrementally maintained
//!   materialized Score view, whose change notifications drive the index's
//!   score updates synchronously (paper §3.2/§4.1);
//! * text mutations flow through the Appendix-A content operations;
//! * keyword queries return rows ranked by the *latest* SVR scores.
//!
//! The engine is built for the paper's deployment shape — scores churn
//! constantly while queries keep coming — so it is **shareable**: a
//! [`SvrEngine`] handle is a cheap clone over internally synchronized
//! state, reads take `&self` and scale across threads, and writes go
//! through two lock tiers (a short per-table lock for the row/view
//! mutation, then per-shard index locks for score maintenance) so that
//! same-table writers overlap when the index is sharded
//! (`IndexConfig::num_shards`). Bulk mutations go through [`WriteBatch`] /
//! [`SvrEngine::apply`] with coalesced score propagation applied shard by
//! shard in parallel. The full locking rules live in the module docs of
//! `engine.rs`.
//!
//! ```
//! use svr_engine::SvrEngine;
//! use svr_core::{IndexConfig, MethodKind};
//! use svr_core::types::QueryMode;
//! use svr_relation::schema::{ColumnType, Schema};
//! use svr_relation::{ScoreComponent, SvrSpec, Value};
//!
//! let engine = SvrEngine::new();
//! engine.create_table(Schema::new("movies",
//!     &[("mid", ColumnType::Int), ("desc", ColumnType::Text)], 0)).unwrap();
//! engine.create_table(Schema::new("stats",
//!     &[("mid", ColumnType::Int), ("nvisit", ColumnType::Int)], 0)).unwrap();
//! engine.insert_row("movies", vec![Value::Int(1),
//!     Value::Text("golden gate footage".into())]).unwrap();
//!
//! let spec = SvrSpec::single(ScoreComponent::ColumnOf {
//!     table: "stats".into(), key_col: "mid".into(), val_col: "nvisit".into() });
//! engine.create_text_index("idx", "movies", "desc", spec,
//!     MethodKind::Chunk, IndexConfig::default()).unwrap();
//! engine.insert_row("stats", vec![Value::Int(1), Value::Int(50)]).unwrap();
//!
//! // Queries take &self: clone the handle into any number of threads.
//! let reader = engine.clone();
//! let hits = std::thread::spawn(move || {
//!     reader.search("idx", "golden gate", 10, QueryMode::Conjunctive).unwrap()
//! }).join().unwrap();
//! assert_eq!(hits[0].score, 50.0);
//! ```
//!
//! # Serving
//!
//! Under a network front end (the `svr_server` crate) the engine is one
//! shared handle facing many concurrent writers, and the per-write
//! durability and maintenance costs dominate. Two [`EngineConfig`]
//! knobs amortize them, both group-commit shaped:
//!
//! * [`EngineConfig::wal_sync_interval_ms`] — **interval group-sync of
//!   WAL commit markers.** `0` (the default) fsyncs every commit marker:
//!   an acknowledged transaction is on disk. A positive interval fsyncs
//!   at most once per interval; the markers in between are acknowledged
//!   once *logged*, so one fsync absorbs every commit in the window.
//!   The durability window this opens is bounded and well-formed: the
//!   log is append-only, so a crash loses at most the last interval's
//!   acknowledged transactions and recovery always lands on a *prefix*
//!   of the acknowledged sequence — never a torn or reordered state
//!   (proptested in `tests/group_sync_crash.rs`).
//! * [`EngineConfig::group_refresh`] — **group-commit drain of queued
//!   score refreshes.** Concurrent writers queue their index refresh
//!   batches; whichever writer wins the shard's writer lock drains the
//!   whole queue under that one hold before releasing. Writers block
//!   until their batch is applied (acknowledged writes are always
//!   visible), but N writers pay one lock hold instead of N.
//!
//! [`SvrEngine::contention_stats`] exposes the counters behind both
//! (fsyncs paid vs skipped, refresh batches drained); the server's
//! `Info` command forwards them over the wire, and the bench suite's
//! `serving` experiment reports the throughput they buy.

mod engine;
mod error;

pub use engine::{
    ContentionStats, EngineConfig, QueryRequest, RankedRow, SearchCursor, SvrEngine, WriteBatch,
    WriteOp, SYS_INDEXES_STORE, SYS_VOCAB_STORE,
};
pub use error::{Result, SvrError};
pub use svr_storage::{lock_stats, LockClass, LockClassStats, LockStats};
