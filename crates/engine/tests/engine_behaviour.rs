//! Engine-level behaviours not covered by the cross-crate integration
//! suite: index discovery, listener plumbing under interleaved mutations,
//! and identifier/key edge cases.

use svr_core::types::QueryMode;
use svr_core::{IndexConfig, MethodKind};
use svr_engine::SvrEngine;
use svr_relation::schema::{ColumnType, Schema};
use svr_relation::{ScoreComponent, SvrSpec, Value};

fn docs_schema() -> Schema {
    Schema::new(
        "docs",
        &[("id", ColumnType::Int), ("body", ColumnType::Text)],
        0,
    )
}

fn pop_schema() -> Schema {
    Schema::new(
        "pop",
        &[("id", ColumnType::Int), ("hits", ColumnType::Int)],
        0,
    )
}

fn pop_spec() -> SvrSpec {
    SvrSpec::single(ScoreComponent::ColumnOf {
        table: "pop".into(),
        key_col: "id".into(),
        val_col: "hits".into(),
    })
}

fn engine_with_index(method: MethodKind) -> SvrEngine {
    let engine = SvrEngine::new();
    engine.create_table(docs_schema()).unwrap();
    engine.create_table(pop_schema()).unwrap();
    engine
        .create_text_index(
            "idx",
            "docs",
            "body",
            pop_spec(),
            method,
            IndexConfig::default(),
        )
        .unwrap();
    engine
}

#[test]
fn text_index_discovery() {
    let engine = engine_with_index(MethodKind::Chunk);
    assert_eq!(
        engine.text_index_on("docs", "body"),
        Some("idx".to_string())
    );
    assert_eq!(engine.text_index_on("docs", "id"), None);
    assert_eq!(engine.text_index_on("pop", "hits"), None);
    assert_eq!(engine.index_names(), vec!["idx"]);
    assert_eq!(engine.index("idx").unwrap().kind(), MethodKind::Chunk);
}

#[test]
fn duplicate_index_name_is_rejected() {
    let engine = engine_with_index(MethodKind::Id);
    let err = engine
        .create_text_index(
            "idx",
            "docs",
            "body",
            pop_spec(),
            MethodKind::Id,
            IndexConfig::default(),
        )
        .unwrap_err();
    assert!(err.to_string().contains("already exists"), "{err}");
}

#[test]
fn index_over_prepopulated_table_sees_existing_rows() {
    let engine = SvrEngine::new();
    engine.create_table(docs_schema()).unwrap();
    engine.create_table(pop_schema()).unwrap();
    // Rows (and scores) exist *before* the index is created.
    for i in 0..20 {
        engine
            .insert_row(
                "docs",
                vec![Value::Int(i), Value::Text(format!("common token{i}"))],
            )
            .unwrap();
        engine
            .insert_row("pop", vec![Value::Int(i), Value::Int(100 * i)])
            .unwrap();
    }

    engine
        .create_text_index(
            "idx",
            "docs",
            "body",
            pop_spec(),
            MethodKind::Chunk,
            IndexConfig::default(),
        )
        .unwrap();
    let hits = engine
        .search("idx", "common", 3, QueryMode::Conjunctive)
        .unwrap();
    assert_eq!(hits.len(), 3);
    assert_eq!(hits[0].row[0], Value::Int(19));
    assert_eq!(hits[0].score, 1900.0);
}

#[test]
fn score_updates_before_first_search_are_not_lost() {
    let engine = engine_with_index(MethodKind::ScoreThreshold);
    engine
        .insert_row(
            "docs",
            vec![Value::Int(1), Value::Text("alpha beta".into())],
        )
        .unwrap();
    engine
        .insert_row(
            "docs",
            vec![Value::Int(2), Value::Text("alpha gamma".into())],
        )
        .unwrap();
    // Burst of structured updates with no search in between: every score
    // change propagates to the index synchronously inside the mutation, so
    // the next search sees them all.
    for round in 0..50 {
        engine
            .insert_row("pop", vec![Value::Int(100 + round), Value::Int(0)])
            .ok(); // unrelated rows
    }
    engine
        .insert_row("pop", vec![Value::Int(1), Value::Int(10)])
        .unwrap();
    engine
        .update_row("pop", Value::Int(1), &[("hits".into(), Value::Int(999))])
        .unwrap();
    engine
        .insert_row("pop", vec![Value::Int(2), Value::Int(500)])
        .unwrap();
    let hits = engine
        .search("idx", "alpha", 2, QueryMode::Conjunctive)
        .unwrap();
    assert_eq!(hits[0].row[0], Value::Int(1));
    assert_eq!(hits[0].score, 999.0);
    assert_eq!(hits[1].score, 500.0);
}

#[test]
fn non_integer_primary_keys_are_rejected_for_indexed_tables() {
    let engine = SvrEngine::new();
    engine
        .create_table(Schema::new(
            "texts",
            &[("name", ColumnType::Text), ("body", ColumnType::Text)],
            0,
        ))
        .unwrap();
    engine.create_table(pop_schema()).unwrap();
    engine
        .create_text_index(
            "t",
            "texts",
            "body",
            SvrSpec::single(ScoreComponent::Const(1.0)),
            MethodKind::Id,
            IndexConfig::default(),
        )
        .unwrap();
    let err = engine
        .insert_row(
            "texts",
            vec![Value::Text("key".into()), Value::Text("words".into())],
        )
        .unwrap_err();
    assert!(err.to_string().contains("integer key"), "{err}");
}

#[test]
fn negative_primary_key_is_out_of_document_range() {
    let engine = engine_with_index(MethodKind::Id);
    let err = engine
        .insert_row("docs", vec![Value::Int(-3), Value::Text("words".into())])
        .unwrap_err();
    assert!(
        err.to_string().contains("out of document-id range"),
        "{err}"
    );
}

#[test]
fn indexes_on_two_tables_update_independently() {
    let engine = SvrEngine::new();
    engine.create_table(docs_schema()).unwrap();
    engine.create_table(pop_schema()).unwrap();
    engine
        .create_table(Schema::new(
            "notes",
            &[("id", ColumnType::Int), ("text", ColumnType::Text)],
            0,
        ))
        .unwrap();
    engine
        .create_text_index(
            "d",
            "docs",
            "body",
            pop_spec(),
            MethodKind::Chunk,
            IndexConfig::default(),
        )
        .unwrap();
    engine
        .create_text_index(
            "n",
            "notes",
            "text",
            SvrSpec::single(ScoreComponent::CountOf {
                table: "pop".into(),
                fk_col: "id".into(),
            }),
            MethodKind::Id,
            IndexConfig::default(),
        )
        .unwrap();
    engine
        .insert_row(
            "docs",
            vec![Value::Int(1), Value::Text("shared words".into())],
        )
        .unwrap();
    engine
        .insert_row(
            "notes",
            vec![Value::Int(1), Value::Text("shared words".into())],
        )
        .unwrap();
    engine
        .insert_row("pop", vec![Value::Int(1), Value::Int(42)])
        .unwrap();

    let d = engine
        .search("d", "shared", 10, QueryMode::Conjunctive)
        .unwrap();
    let n = engine
        .search("n", "shared", 10, QueryMode::Conjunctive)
        .unwrap();
    assert_eq!(d[0].score, 42.0, "ColumnOf spec");
    assert_eq!(n[0].score, 1.0, "CountOf spec");
}

#[test]
fn deleting_then_reinserting_a_row_errors_on_id_reuse() {
    // Document ids map to primary keys; the Score table tombstones deleted
    // ids, so re-inserting the same pk is reported rather than silently
    // corrupting postings (the paper's Appendix A.2 discusses id reuse).
    let engine = engine_with_index(MethodKind::Chunk);
    engine
        .insert_row("docs", vec![Value::Int(7), Value::Text("ephemeral".into())])
        .unwrap();
    engine.delete_row("docs", Value::Int(7)).unwrap();
    let result = engine.insert_row("docs", vec![Value::Int(7), Value::Text("reborn".into())]);
    assert!(
        result.is_err(),
        "id reuse after delete must surface, not corrupt"
    );
}

#[test]
fn score_of_tracks_the_view() {
    let engine = engine_with_index(MethodKind::Chunk);
    engine
        .insert_row("docs", vec![Value::Int(1), Value::Text("x".into())])
        .unwrap();
    assert_eq!(engine.score_of("idx", 1).unwrap(), 0.0);
    engine
        .insert_row("pop", vec![Value::Int(1), Value::Int(77)])
        .unwrap();
    assert_eq!(engine.score_of("idx", 1).unwrap(), 77.0);
    assert!(engine.score_of("nope", 1).is_err());
}

#[test]
fn write_batch_applies_and_coalesces() {
    let engine = engine_with_index(MethodKind::Chunk);
    let mut batch = svr_engine::WriteBatch::new();
    assert!(batch.is_empty());
    batch.insert(
        "docs",
        vec![Value::Int(1), Value::Text("alpha beta".into())],
    );
    batch.insert(
        "docs",
        vec![Value::Int(2), Value::Text("alpha gamma".into())],
    );
    batch.insert("pop", vec![Value::Int(1), Value::Int(10)]);
    batch.insert("pop", vec![Value::Int(2), Value::Int(5)]);
    // Hammer one doc's score repeatedly: only the final value matters.
    for step in 0..20 {
        batch.update(
            "pop",
            Value::Int(2),
            vec![("hits".into(), Value::Int(step * 100))],
        );
    }
    batch.delete("docs", Value::Int(1));
    assert_eq!(batch.len(), 25);
    assert_eq!(engine.apply(batch).unwrap(), 25);

    assert_eq!(engine.score_of("idx", 2).unwrap(), 1900.0);
    let hits = engine
        .search("idx", "alpha", 10, QueryMode::Conjunctive)
        .unwrap();
    assert_eq!(hits.len(), 1, "doc 1 was deleted in the same batch");
    assert_eq!(hits[0].row[0], Value::Int(2));
    assert_eq!(hits[0].score, 1900.0, "index saw the batch's final score");

    // A failing op aborts the rest but reports the error.
    let mut bad = svr_engine::WriteBatch::new();
    bad.insert("nope", vec![Value::Int(1)]);
    assert!(engine.apply(bad).is_err());
}

#[test]
fn insert_rows_bulk_load_matches_row_at_a_time() {
    let engine = engine_with_index(MethodKind::Chunk);
    let inserted = engine
        .insert_rows(
            "docs",
            (0..40)
                .map(|i| vec![Value::Int(i), Value::Text(format!("bulk doc{i}"))])
                .collect(),
        )
        .unwrap();
    assert_eq!(inserted, 40);
    engine
        .insert_rows(
            "pop",
            (0..40)
                .map(|i| vec![Value::Int(i), Value::Int(i * 2)])
                .collect(),
        )
        .unwrap();
    let hits = engine
        .search("idx", "bulk", 3, QueryMode::Conjunctive)
        .unwrap();
    assert_eq!(hits[0].row[0], Value::Int(39));
    assert_eq!(hits[0].score, 78.0);
}

#[test]
fn drop_text_index_then_table() {
    let engine = engine_with_index(MethodKind::Chunk);
    engine
        .insert_row("docs", vec![Value::Int(1), Value::Text("words".into())])
        .unwrap();

    // The indexed table cannot be dropped while the index exists.
    let err = engine.drop_table("docs").unwrap_err();
    assert!(err.to_string().contains("DROP TEXT INDEX"), "{err}");

    engine.drop_text_index("idx").unwrap();
    assert!(engine
        .search("idx", "words", 10, QueryMode::Conjunctive)
        .is_err());
    assert!(engine.index_names().is_empty());
    assert!(engine.drop_text_index("idx").is_err(), "double drop");

    engine.drop_table("docs").unwrap();
    assert!(engine.db().table("docs").is_err());

    // The namespace is free again: recreate both.
    engine.create_table(docs_schema()).unwrap();
    engine
        .create_text_index(
            "idx",
            "docs",
            "body",
            pop_spec(),
            MethodKind::Id,
            IndexConfig::default(),
        )
        .unwrap();
    engine
        .insert_row(
            "docs",
            vec![Value::Int(5), Value::Text("reborn words".into())],
        )
        .unwrap();
    let hits = engine
        .search("idx", "reborn", 10, QueryMode::Conjunctive)
        .unwrap();
    assert_eq!(hits.len(), 1);
}

#[test]
fn mutations_after_a_dropped_index_stop_feeding_it() {
    let engine = engine_with_index(MethodKind::Chunk);
    engine
        .insert_row("docs", vec![Value::Int(1), Value::Text("x".into())])
        .unwrap();
    engine.drop_text_index("idx").unwrap();
    // No listener, no index: plain relational writes still work.
    engine
        .insert_row("docs", vec![Value::Int(2), Value::Text("y".into())])
        .unwrap();
    engine
        .insert_row("pop", vec![Value::Int(1), Value::Int(9)])
        .unwrap();
    assert_eq!(engine.db().table("docs").unwrap().len(), 2);
}

/// The QueryRequest builder + SearchCursor pagination contract: top-k then
/// k more equals one-shot top-2k, for every method; unknown keywords yield
/// an exhausted cursor; `query(req)` equals `search(...)`.
#[test]
fn open_query_pagination_matches_one_shot() {
    use svr_engine::QueryRequest;

    for method in MethodKind::ALL_EXTENDED {
        let engine = engine_with_index(method);
        for i in 0..30i64 {
            engine
                .insert_row(
                    "docs",
                    vec![Value::Int(i), Value::Text(format!("shared words tag{i}"))],
                )
                .unwrap();
            engine
                .insert_row("pop", vec![Value::Int(i), Value::Int((i * 37) % 100)])
                .unwrap();
        }

        let one_shot = engine
            .search("idx", "shared words", 20, QueryMode::Conjunctive)
            .unwrap();
        assert_eq!(one_shot.len(), 20);

        let request = QueryRequest::new("idx", "shared words").k(20);
        assert_eq!(engine.query(&request).unwrap(), one_shot, "{method}");

        let mut cursor = engine.open_query(&request).unwrap();
        let mut paged = cursor.next_batch(10).unwrap();
        paged.extend(cursor.next_batch(10).unwrap());
        assert_eq!(paged, one_shot, "{method}: paged != one-shot");
        assert!(!cursor.is_exhausted(), "{method}: 10 docs remain");

        // Drain the rest: exactly the 30 distinct docs in total.
        let rest = cursor.next_batch(100).unwrap();
        assert_eq!(rest.len(), 10, "{method}");
        assert!(cursor.is_exhausted(), "{method}");
        assert!(cursor.next_batch(5).unwrap().is_empty(), "{method}");

        // Unknown conjunctive keyword: born exhausted, not an error.
        let mut empty = engine
            .open_query(&QueryRequest::new("idx", "shared nosuchword"))
            .unwrap();
        assert!(empty.is_exhausted());
        assert!(empty.next_batch(3).unwrap().is_empty());
        // Disjunctive: unknown words are ignored.
        let mut disj = engine
            .open_query(&QueryRequest::new("idx", "shared nosuchword").disjunctive())
            .unwrap();
        assert_eq!(disj.next_batch(5).unwrap().len(), 5);
    }
}

/// The instrumented sync layer's per-class counters surface through
/// `contention_stats().locks`: mutations acquire the tier-1 table lock and
/// the tier-2 shard lock, and the counters are monotone so window deltas
/// are non-negative.
#[test]
fn contention_stats_report_lock_activity() {
    let engine = engine_with_index(MethodKind::Chunk);
    let before = engine.contention_stats().locks;
    for id in 0..20 {
        engine
            .insert_row(
                "docs",
                vec![Value::Int(id), Value::Text(format!("golden doc {id}"))],
            )
            .unwrap();
        engine
            .insert_row("pop", vec![Value::Int(id), Value::Int(id * 3)])
            .unwrap();
    }
    let delta = engine.contention_stats().locks.delta_since(&before);
    let table = delta.class(svr_engine::LockClass::Table);
    let shard = delta.class(svr_engine::LockClass::Shard);
    assert!(table.acquisitions >= 40, "each insert takes its table lock");
    assert!(shard.acquisitions >= 20, "indexed inserts take shard locks");
    assert!(
        table.hold_nanos > 0,
        "guard drops record hold time: {table:?}"
    );
    // Counters are process-wide and monotone: a later snapshot never runs
    // backwards.
    let later = engine.contention_stats().locks;
    for class in svr_engine::LockClass::ALL {
        assert!(later.class(class).acquisitions >= before.class(class).acquisitions);
    }
}
