//! Backward compatibility: indexes built before the block-codec upgrade
//! carry no codec byte in their catalog record and must keep working as
//! `CodecKind::Legacy` stores — reopening, querying and offline-merging
//! without being silently re-encoded into the block format.

use std::sync::Arc;

use svr_core::types::QueryMode;
use svr_core::{CodecKind, IndexConfig, MethodKind};
use svr_engine::SvrEngine;
use svr_relation::schema::{ColumnType, Schema};
use svr_relation::{ScoreComponent, SvrSpec, Value};
use svr_storage::StorageEnv;

fn populate(engine: &SvrEngine, method: MethodKind, codec: CodecKind) {
    engine
        .create_table(Schema::new(
            "movies",
            &[("mid", ColumnType::Int), ("desc", ColumnType::Text)],
            0,
        ))
        .unwrap();
    engine
        .create_table(Schema::new(
            "stats",
            &[("mid", ColumnType::Int), ("nvisit", ColumnType::Int)],
            0,
        ))
        .unwrap();
    let spec = SvrSpec::single(ScoreComponent::ColumnOf {
        table: "stats".into(),
        key_col: "mid".into(),
        val_col: "nvisit".into(),
    });
    engine
        .create_text_index(
            "movie_idx",
            "movies",
            "desc",
            spec,
            method,
            IndexConfig {
                codec,
                min_chunk_docs: 2,
                ..IndexConfig::default()
            },
        )
        .unwrap();
    let words = ["golden", "gate", "bridge", "sunset", "footage", "drone"];
    for i in 0..40i64 {
        let text = format!(
            "{} {} clip",
            words[i as usize % words.len()],
            words[(i as usize / 2) % words.len()]
        );
        engine
            .insert_row("movies", vec![Value::Int(i + 1), Value::Text(text)])
            .unwrap();
        engine
            .insert_row("stats", vec![Value::Int(i + 1), Value::Int((i * 37) % 500)])
            .unwrap();
    }
}

fn snapshot(engine: &SvrEngine) -> Vec<(i64, f64)> {
    engine
        .search("movie_idx", "golden gate", 12, QueryMode::Disjunctive)
        .unwrap()
        .into_iter()
        .map(|r| (r.row[0].as_i64().unwrap(), r.score))
        .collect()
}

fn stats_fingerprint(engine: &SvrEngine) -> Vec<(u64, u64)> {
    engine
        .index_shard_stats("movie_idx")
        .unwrap()
        .into_iter()
        .map(|s| (s.long_list_bytes, s.long_postings))
        .collect()
}

/// A pre-upgrade index (default config = Legacy codec) must reopen, serve
/// queries, and merge without its on-disk long lists changing shape — the
/// twin engine pins `CodecKind::Legacy` explicitly and must stay
/// byte-identical through the whole lifecycle.
#[test]
fn legacy_index_reopens_queries_and_merges_without_reencode() {
    for method in [MethodKind::Chunk, MethodKind::IdTermScore] {
        let env = Arc::new(StorageEnv::new_durable(svr_storage::DEFAULT_PAGE_SIZE));
        let engine = SvrEngine::create(env.clone()).unwrap();
        populate(&engine, method, CodecKind::Legacy);
        engine.run_maintenance("movie_idx").unwrap();
        let expected = snapshot(&engine);
        let expected_stats = stats_fingerprint(&engine);
        assert!(!expected.is_empty());
        assert!(
            expected_stats.iter().map(|s| s.1).sum::<u64>() > 0,
            "{method}: merge must have produced long-list postings"
        );
        drop(engine);

        // Twin pinned to Legacy explicitly: the default path must produce
        // the exact same physical layout (nothing re-encoded it).
        let twin_env = Arc::new(StorageEnv::new_durable(svr_storage::DEFAULT_PAGE_SIZE));
        let twin = SvrEngine::create(twin_env).unwrap();
        populate(&twin, method, CodecKind::Legacy);
        twin.run_maintenance("movie_idx").unwrap();
        assert_eq!(stats_fingerprint(&twin), expected_stats, "{method}");

        env.crash();
        let reopened = SvrEngine::open(env.clone()).unwrap();
        assert_eq!(
            reopened.index_config("movie_idx").unwrap().codec,
            CodecKind::Legacy,
            "{method}: codec must survive reopen"
        );
        assert_eq!(snapshot(&reopened), expected, "{method}");
        assert_eq!(stats_fingerprint(&reopened), expected_stats, "{method}");

        // Post-reopen churn + another offline merge must re-encode with the
        // store's *own* codec (Legacy), never upgrade the format in place.
        reopened
            .update_row(
                "stats",
                Value::Int(7),
                &[("nvisit".to_string(), Value::Int(9_000))],
            )
            .unwrap();
        reopened.run_maintenance("movie_idx").unwrap();
        assert_eq!(
            reopened.index_config("movie_idx").unwrap().codec,
            CodecKind::Legacy,
            "{method}: merge must not migrate the codec"
        );
        let top = reopened
            .search("movie_idx", "golden", 1, QueryMode::Conjunctive)
            .unwrap();
        assert_eq!(top[0].row[0], Value::Int(7), "{method}");

        // And the merged state survives one more crash/reopen cycle.
        let after_merge = snapshot(&reopened);
        drop(reopened);
        env.crash();
        let again = SvrEngine::open(env).unwrap();
        assert_eq!(snapshot(&again), after_merge, "{method}");
        assert_eq!(
            again.index_config("movie_idx").unwrap().codec,
            CodecKind::Legacy,
            "{method}"
        );
    }
}

/// Legacy and block-codec stores must rank identically — upgrading the
/// codec of *new* indexes cannot change what queries return.
#[test]
fn legacy_and_block_codecs_rank_identically_end_to_end() {
    let mut baseline: Option<Vec<(i64, f64)>> = None;
    for codec in CodecKind::ALL {
        let env = Arc::new(StorageEnv::new_durable(svr_storage::DEFAULT_PAGE_SIZE));
        let engine = SvrEngine::create(env.clone()).unwrap();
        populate(&engine, MethodKind::Chunk, codec);
        engine.run_maintenance("movie_idx").unwrap();
        drop(engine);
        env.crash();
        let reopened = SvrEngine::open(env).unwrap();
        assert_eq!(reopened.index_config("movie_idx").unwrap().codec, codec);
        let got = snapshot(&reopened);
        match &baseline {
            None => baseline = Some(got),
            Some(want) => assert_eq!(&got, want, "{codec:?} diverged from Legacy"),
        }
    }
}
