//! Engine lifecycle: `SvrEngine::create` → populate → crash →
//! `SvrEngine::open` recovers catalog, vocabulary, views and indexes.

use std::sync::Arc;

use svr_core::types::QueryMode;
use svr_core::{IndexConfig, MethodKind};
use svr_engine::SvrEngine;
use svr_relation::schema::{ColumnType, Schema};
use svr_relation::{ScoreComponent, SvrSpec, Value};
use svr_storage::StorageEnv;

fn populate(engine: &SvrEngine, method: MethodKind, num_shards: usize) {
    engine
        .create_table(Schema::new(
            "movies",
            &[("mid", ColumnType::Int), ("desc", ColumnType::Text)],
            0,
        ))
        .unwrap();
    engine
        .create_table(Schema::new(
            "stats",
            &[("mid", ColumnType::Int), ("nvisit", ColumnType::Int)],
            0,
        ))
        .unwrap();
    let texts = [
        "golden gate bridge footage",
        "golden retriever puppy",
        "bridge engineering documentary",
        "gate repair tutorial",
        "san francisco golden gate sunset",
    ];
    for (i, text) in texts.iter().enumerate() {
        engine
            .insert_row(
                "movies",
                vec![Value::Int(i as i64 + 1), Value::Text((*text).into())],
            )
            .unwrap();
    }
    let spec = SvrSpec::single(ScoreComponent::ColumnOf {
        table: "stats".into(),
        key_col: "mid".into(),
        val_col: "nvisit".into(),
    });
    engine
        .create_text_index(
            "movie_idx",
            "movies",
            "desc",
            spec,
            method,
            IndexConfig {
                num_shards,
                min_chunk_docs: 2,
                ..IndexConfig::default()
            },
        )
        .unwrap();
    for (i, visits) in [500i64, 120, 980, 40, 770].iter().enumerate() {
        engine
            .insert_row("stats", vec![Value::Int(i as i64 + 1), Value::Int(*visits)])
            .unwrap();
    }
    // Post-index churn: new row, score updates, a content update, a delete.
    engine
        .insert_row(
            "movies",
            vec![Value::Int(6), Value::Text("late golden addition".into())],
        )
        .unwrap();
    engine
        .insert_row("stats", vec![Value::Int(6), Value::Int(610)])
        .unwrap();
    engine
        .update_row(
            "stats",
            Value::Int(2),
            &[("nvisit".to_string(), Value::Int(1500))],
        )
        .unwrap();
    engine
        .update_row(
            "movies",
            Value::Int(4),
            &[(
                "desc".to_string(),
                Value::Text("golden gate drone shots".into()),
            )],
        )
        .unwrap();
    engine.delete_row("movies", Value::Int(3)).unwrap();
}

fn snapshot(engine: &SvrEngine) -> (Vec<(i64, f64)>, Vec<f64>, String) {
    let hits = engine
        .search("movie_idx", "golden gate", 10, QueryMode::Disjunctive)
        .unwrap()
        .into_iter()
        .map(|r| (r.row[0].as_i64().unwrap(), r.score))
        .collect();
    let scores = [1, 2, 4, 5, 6]
        .iter()
        .map(|&pk| engine.score_of("movie_idx", pk).unwrap())
        .collect();
    let stats = format!("{:?}", engine.index_shard_stats("movie_idx").unwrap());
    (hits, scores, stats)
}

fn lifecycle_roundtrip(method: MethodKind, num_shards: usize) {
    let env = Arc::new(StorageEnv::new_durable(svr_storage::DEFAULT_PAGE_SIZE));
    let engine = SvrEngine::create(env.clone()).unwrap();
    populate(&engine, method, num_shards);
    let expected = snapshot(&engine);
    assert!(!expected.0.is_empty());
    drop(engine);

    env.crash();
    let reopened = SvrEngine::open(env).unwrap();
    let got = snapshot(&reopened);
    assert_eq!(expected, got, "{method} x{num_shards}");

    // The reopened engine keeps serving the full write path.
    reopened
        .update_row(
            "stats",
            Value::Int(5),
            &[("nvisit".to_string(), Value::Int(50_000))],
        )
        .unwrap();
    let top = reopened
        .search("movie_idx", "golden", 1, QueryMode::Conjunctive)
        .unwrap();
    assert_eq!(top[0].row[0], Value::Int(5), "{method} x{num_shards}");
    // Unknown keywords (vocabulary recovery) resolve exactly as before.
    assert!(reopened
        .search("movie_idx", "nonexistent", 5, QueryMode::Conjunctive)
        .unwrap()
        .is_empty());
}

#[test]
fn lifecycle_roundtrip_all_methods() {
    for method in MethodKind::ALL_EXTENDED {
        lifecycle_roundtrip(method, 1);
    }
}

#[test]
fn lifecycle_roundtrip_sharded() {
    for method in [
        MethodKind::Chunk,
        MethodKind::ChunkTermScore,
        MethodKind::Id,
    ] {
        lifecycle_roundtrip(method, 4);
    }
}

#[test]
fn create_rejects_non_durable_env_and_double_create() {
    let env = Arc::new(StorageEnv::new(svr_storage::DEFAULT_PAGE_SIZE));
    assert!(SvrEngine::create(env).is_err(), "non-durable env rejected");
    let env = Arc::new(StorageEnv::new_durable(svr_storage::DEFAULT_PAGE_SIZE));
    let _engine = SvrEngine::create(env.clone()).unwrap();
    assert!(
        SvrEngine::create(env).is_err(),
        "second create on one environment rejected"
    );
}

#[test]
fn drop_then_reopen_cannot_resurrect_and_name_is_reusable() {
    let env = Arc::new(StorageEnv::new_durable(svr_storage::DEFAULT_PAGE_SIZE));
    let engine = SvrEngine::create(env.clone()).unwrap();
    populate(&engine, MethodKind::Chunk, 2);
    engine.drop_text_index("movie_idx").unwrap();
    drop(engine);
    env.crash();

    let reopened = SvrEngine::open(env.clone()).unwrap();
    assert!(
        reopened.index_names().is_empty(),
        "dropped index must not come back"
    );
    assert!(reopened.score_of("movie_idx", 1).is_err());
    // Same name, different method: must build fresh (and survive another
    // crash+reopen).
    let spec = SvrSpec::single(ScoreComponent::ColumnOf {
        table: "stats".into(),
        key_col: "mid".into(),
        val_col: "nvisit".into(),
    });
    reopened
        .create_text_index(
            "movie_idx",
            "movies",
            "desc",
            spec,
            MethodKind::ScoreThreshold,
            IndexConfig::default(),
        )
        .unwrap();
    let before = snapshot(&reopened);
    drop(reopened);
    env.crash();
    let again = SvrEngine::open(env).unwrap();
    assert_eq!(before, snapshot(&again));

    // Dropping the table after its index works and survives reopen too.
    again.drop_text_index("movie_idx").unwrap();
    again.drop_table("movies").unwrap();
    assert!(again.db().table("movies").is_err());
}
