//! Crash recovery inside the group-sync durability window.
//!
//! With a positive `wal_sync_interval_ms` a transaction is *acknowledged*
//! when its commit markers are in the log, not when they reach the disk.
//! The contract is: a crash loses at most the acknowledged-but-unsynced
//! tail, and recovery lands exactly on the last synced prefix of the
//! transaction sequence — never a torn mid-transaction state, never a
//! reordering. These tests drive random transaction sequences through a
//! durable engine, sync at a random cut point, crash away the unsynced
//! tail with [`StorageEnv::crash_unsynced`], reopen, and compare both the
//! table contents and the ranked-retrieval results against a serial
//! oracle that replayed only the synced prefix.

use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::prelude::*;
use svr_core::types::QueryMode;
use svr_core::{IndexConfig, MethodKind};
use svr_engine::{EngineConfig, SvrEngine, WriteBatch};
use svr_relation::schema::{ColumnType, Schema};
use svr_relation::{ScoreComponent, SvrSpec, Value};
use svr_storage::StorageEnv;

/// Movie pk universe; stats rows exist for every pk so score updates are
/// always valid, while `Toggle` inserts/deletes the movies row.
const PKS: i64 = 8;

const TEXTS: [&str; 6] = [
    "golden gate bridge at dawn",
    "golden retriever at the gate",
    "bridge engineering documentary",
    "gate repair and golden paint",
    "sunset over the golden gate",
    "cooking show without keywords",
];

#[derive(Debug, Clone)]
enum TxnOp {
    /// Update the stats row driving the structured score.
    SetScore { pk: i64, score: i64 },
    /// Rewrite the indexed text column (skipped when the movie is absent).
    SetText { pk: i64, text: usize },
    /// Delete the movie when present, insert it when never yet seen.
    /// (Deleted pks stay dead: the index tombstones a deleted document's
    /// id until maintenance, so re-inserting the same pk is rejected.)
    Toggle { pk: i64, text: usize },
}

/// Deterministic world state the transaction generator evolves; the
/// oracle replays the identical evolution.
#[derive(Default)]
struct World {
    present: BTreeSet<i64>,
    dead: BTreeSet<i64>,
}

fn op_strategy() -> impl Strategy<Value = TxnOp> {
    prop_oneof![
        (1..=PKS, 0i64..10_000).prop_map(|(pk, score)| TxnOp::SetScore { pk, score }),
        (1..=PKS, 0..TEXTS.len()).prop_map(|(pk, text)| TxnOp::SetText { pk, text }),
        (1..=PKS, 0..TEXTS.len()).prop_map(|(pk, text)| TxnOp::Toggle { pk, text }),
    ]
}

fn txn_strategy() -> impl Strategy<Value = Vec<TxnOp>> {
    proptest::collection::vec(op_strategy(), 1..4)
}

/// Create the schema, seed rows and the text index. Movies 1..=5 start
/// present; stats rows exist for the whole pk universe with distinct
/// scores (`pk * 8 + jitter`) so rankings never tie.
fn build_schema(engine: &SvrEngine) -> World {
    engine
        .create_table(Schema::new(
            "movies",
            &[("mid", ColumnType::Int), ("desc", ColumnType::Text)],
            0,
        ))
        .unwrap();
    engine
        .create_table(Schema::new(
            "stats",
            &[("mid", ColumnType::Int), ("nvisit", ColumnType::Int)],
            0,
        ))
        .unwrap();
    let mut world = World::default();
    for pk in 1..=5 {
        engine
            .insert_row(
                "movies",
                vec![
                    Value::Int(pk),
                    Value::Text(TEXTS[(pk as usize - 1) % TEXTS.len()].into()),
                ],
            )
            .unwrap();
        world.present.insert(pk);
    }
    for pk in 1..=PKS {
        engine
            .insert_row("stats", vec![Value::Int(pk), Value::Int(100 * 8 + pk)])
            .unwrap();
    }
    let spec = SvrSpec::single(ScoreComponent::ColumnOf {
        table: "stats".into(),
        key_col: "mid".into(),
        val_col: "nvisit".into(),
    });
    engine
        .create_text_index(
            "movie_idx",
            "movies",
            "desc",
            spec,
            MethodKind::Chunk,
            IndexConfig {
                min_chunk_docs: 2,
                ..IndexConfig::default()
            },
        )
        .unwrap();
    world
}

/// Apply one transaction as a single atomic [`WriteBatch`]. Ops that are
/// invalid in the current state are skipped *deterministically*, so the
/// oracle replay evolves the identical way. Returns true when the batch
/// had at least one op and was applied.
fn apply_txn(engine: &SvrEngine, world: &mut World, txn: &[TxnOp]) -> bool {
    let mut batch = WriteBatch::new();
    for op in txn {
        match *op {
            TxnOp::SetScore { pk, score } => {
                // pk-unique score keeps rankings tie-free.
                batch.update(
                    "stats",
                    Value::Int(pk),
                    vec![("nvisit".to_string(), Value::Int(score * 8 + pk))],
                );
            }
            TxnOp::SetText { pk, text } => {
                if world.present.contains(&pk) {
                    batch.update(
                        "movies",
                        Value::Int(pk),
                        vec![("desc".to_string(), Value::Text(TEXTS[text].into()))],
                    );
                }
            }
            TxnOp::Toggle { pk, text } => {
                if world.present.remove(&pk) {
                    world.dead.insert(pk);
                    batch.delete("movies", Value::Int(pk));
                } else if !world.dead.contains(&pk) {
                    batch.insert(
                        "movies",
                        vec![Value::Int(pk), Value::Text(TEXTS[text].into())],
                    );
                    world.present.insert(pk);
                }
            }
        }
    }
    if batch.is_empty() {
        return false;
    }
    engine.apply(batch).unwrap();
    true
}

/// `(pk, score)` pairs: a ranking, or the per-document score table.
type Scored = Vec<(i64, f64)>;

/// Ranked results plus per-document scores: the full observable state the
/// recovered engine must share with the serial oracle.
fn observe(engine: &SvrEngine, present: &BTreeSet<i64>) -> (Scored, Scored) {
    let hits = engine
        .search("movie_idx", "golden gate", 20, QueryMode::Disjunctive)
        .unwrap()
        .into_iter()
        .map(|r| (r.row[0].as_i64().unwrap(), r.score))
        .collect();
    let scores = present
        .iter()
        .map(|&pk| (pk, engine.score_of("movie_idx", pk).unwrap()))
        .collect();
    (hits, scores)
}

/// Replay the synced prefix on a fresh in-memory engine: the serial
/// oracle for what recovery must reproduce.
fn oracle_after(txns: &[Vec<TxnOp>]) -> (SvrEngine, World) {
    let engine = SvrEngine::new();
    let mut world = build_schema(&engine);
    for txn in txns {
        apply_txn(&engine, &mut world, txn);
    }
    (engine, world)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crash inside the group-sync window: recovery lands exactly on the
    /// synced prefix of acknowledged transactions, and the recovered
    /// rankings match a serial oracle that replayed only that prefix.
    #[test]
    fn crash_in_group_sync_window_recovers_synced_prefix(
        txns in proptest::collection::vec(txn_strategy(), 1..10),
        cut_raw in 0usize..10,
    ) {
        let cut = cut_raw.min(txns.len());
        let env = Arc::new(StorageEnv::new_durable(svr_storage::DEFAULT_PAGE_SIZE));
        // Interval far beyond the test's runtime: after the first commit
        // per store, every further marker is acknowledged unsynced.
        let engine = SvrEngine::create_with(
            env.clone(),
            EngineConfig {
                wal_sync_interval_ms: 1_000_000,
                group_refresh: true,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let mut world = build_schema(&engine);

        for txn in &txns[..cut] {
            apply_txn(&engine, &mut world, txn);
        }
        // The coordinated sync point: everything up to here survives.
        env.sync_all_wals().unwrap();
        let mut applied_after_cut = 0usize;
        for txn in &txns[cut..] {
            if apply_txn(&engine, &mut world, txn) {
                applied_after_cut += 1;
            }
        }
        if applied_after_cut > 0 {
            let stats = engine.contention_stats();
            prop_assert!(
                stats.wal.sync_skips > 0,
                "acknowledged-unsynced commits must show up as sync skips: {stats:?}"
            );
        }
        drop(engine);

        let lost = env.crash_unsynced();
        prop_assert!(
            applied_after_cut == 0 || lost > 0,
            "unsynced transactions must have bytes at risk (applied {applied_after_cut})"
        );

        let recovered = SvrEngine::open(env).unwrap();
        let (oracle, oracle_world) = oracle_after(&txns[..cut]);
        prop_assert_eq!(
            observe(&recovered, &oracle_world.present),
            observe(&oracle, &oracle_world.present),
            "recovered state must equal the synced prefix (cut {} of {})",
            cut,
            txns.len()
        );
        // The unsynced tail is gone, not half-applied: every pk the prefix
        // deleted is gone, every pk it never inserted errors.
        for pk in 1..=PKS {
            prop_assert_eq!(
                recovered.score_of("movie_idx", pk).is_ok(),
                oracle_world.present.contains(&pk)
            );
        }

        // The recovered engine keeps serving acknowledged-durable writes.
        recovered
            .update_row(
                "stats",
                Value::Int(1),
                &[("nvisit".to_string(), Value::Int(1_000_000))],
            )
            .unwrap();
        if oracle_world.present.contains(&1) {
            let top = recovered
                .search("movie_idx", "golden gate", 1, QueryMode::Disjunctive)
                .unwrap();
            prop_assert_eq!(top[0].row[0].clone(), Value::Int(1));
        }
    }

    /// The degenerate window: with the default sync-every-commit policy a
    /// crash loses nothing — every acknowledged transaction survives.
    #[test]
    fn sync_every_commit_loses_nothing(
        txns in proptest::collection::vec(txn_strategy(), 1..6),
    ) {
        let env = Arc::new(StorageEnv::new_durable(svr_storage::DEFAULT_PAGE_SIZE));
        let engine = SvrEngine::create(env.clone()).unwrap();
        let mut world = build_schema(&engine);
        for txn in &txns {
            apply_txn(&engine, &mut world, txn);
        }
        drop(engine);

        let lost = env.crash_unsynced();
        prop_assert_eq!(lost, 0, "interval 0 syncs every commit marker");

        let recovered = SvrEngine::open(env).unwrap();
        let (oracle, oracle_world) = oracle_after(&txns);
        prop_assert_eq!(
            observe(&recovered, &oracle_world.present),
            observe(&oracle, &oracle_world.present)
        );
    }
}
