//! The SQL front end must never panic: arbitrary byte soup, truncated
//! statements and adversarial token orders all return `Err`, not aborts.

use proptest::prelude::*;
use svr_sql::{parse_script, parse_statement, SqlSession};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary unicode strings never panic the lexer/parser.
    #[test]
    fn arbitrary_input_never_panics(input in ".{0,200}") {
        let _ = parse_script(&input);
    }

    /// SQL-ish token soup never panics either (more likely to get deep
    /// into the parser than pure noise).
    #[test]
    fn sqlish_soup_never_panics(tokens in proptest::collection::vec(
        prop_oneof![
            Just("SELECT"), Just("FROM"), Just("WHERE"), Just("CREATE"),
            Just("TABLE"), Just("FUNCTION"), Just("TEXT"), Just("INDEX"),
            Just("INSERT"), Just("INTO"), Just("VALUES"), Just("UPDATE"),
            Just("SET"), Just("DELETE"), Just("ORDER"), Just("BY"),
            Just("SCORE"), Just("WITH"), Just("AGGREGATE"), Just("FETCH"),
            Just("TOP"), Just("RESULTS"), Just("ONLY"), Just("CONTAINS"),
            Just("RETURN"), Just("RETURNS"), Just("FLOAT"), Just("INT"),
            Just("("), Just(")"), Just(","), Just(";"), Just("="),
            Just("*"), Just("+"), Just("-"), Just("/"), Just("."),
            Just("movies"), Just("m"), Just("s1"), Just("'kw'"), Just("10"),
            Just("3.5"), Just("\"golden gate\""), Just("NULL"),
        ],
        0..40,
    )) {
        let input = tokens.join(" ");
        let _ = parse_script(&input);
    }

    /// Truncations of a valid statement never panic.
    #[test]
    fn truncated_statements_never_panic(cut in 0usize..200) {
        let full = r#"CREATE TEXT INDEX idx ON movies(description)
            SCORE WITH (S1, S2, TFIDF()) AGGREGATE WITH agg
            USING METHOD CHUNK OPTIONS (chunk_ratio = 6.12)"#;
        let cut = cut.min(full.len());
        // Cut at a char boundary.
        let mut end = cut;
        while !full.is_char_boundary(end) {
            end += 1;
        }
        let _ = parse_statement(&full[..end]);
    }

    /// Executing arbitrary parseable-or-not scripts against a live session
    /// never panics (errors are fine; state stays usable).
    #[test]
    fn session_survives_arbitrary_scripts(input in "[ -~]{0,120}") {
        let session = SqlSession::new();
        session
            .execute("CREATE TABLE t (id INT PRIMARY KEY, body TEXT)")
            .unwrap();
        let _ = session.execute_script(&input);
        // The session must still work afterwards.
        session.execute("INSERT INTO t VALUES (1, 'still alive')").unwrap();
    }
}

#[test]
fn deeply_nested_expressions_do_not_overflow() {
    // 200 nested parens in an Agg body: the recursive-descent parser must
    // either parse it or error, not blow the stack.
    let depth = 200;
    let body = format!("{}s1{}", "(".repeat(depth), ")".repeat(depth));
    let sql = format!("CREATE FUNCTION f (s1 FLOAT) RETURNS FLOAT RETURN {body}");
    let _ = parse_statement(&sql);
}

#[test]
fn transaction_and_close_all_forms_parse() {
    use svr_sql::ast::Statement;
    use svr_sql::parse_statement;
    for (sql, expected) in [
        ("BEGIN", Statement::Begin),
        ("begin transaction", Statement::Begin),
        ("BEGIN WORK", Statement::Begin),
        ("COMMIT", Statement::Commit),
        ("commit work;", Statement::Commit),
        ("ROLLBACK TRANSACTION", Statement::Rollback),
        ("CLOSE ALL", Statement::CloseAllCursors),
    ] {
        assert_eq!(parse_statement(sql).unwrap(), expected, "{sql}");
    }
    // CLOSE still takes a name; ALL is not a valid cursor name here.
    assert!(matches!(
        parse_statement("CLOSE mycursor").unwrap(),
        Statement::CloseCursor(name) if name == "mycursor"
    ));
    assert!(parse_statement("BEGIN COMMIT").is_err(), "junk after BEGIN");
}
