//! End-to-end SQL tests: the paper's running example (Figure 1 + §3.1)
//! executed through the SQL front end, including score updates that reorder
//! results, the TFIDF variant, every index method, and maintenance.

use svr_relation::Value;
use svr_sql::{SqlResult, SqlSession};

/// The paper's Internet Archive schema: Movies, Reviews, Statistics, and the
/// §3.1 scoring functions S1 (avg rating), S2 (visits), S3 (downloads) with
/// Agg(s1,s2,s3) = s1*100 + s2/2 + s3.
fn setup(method: &str) -> SqlSession {
    let session = SqlSession::new();
    session
        .execute_script(&format!(
            r#"
            CREATE TABLE movies (mid INT PRIMARY KEY, name TEXT, description TEXT);
            CREATE TABLE reviews (rid INT PRIMARY KEY, mid INT, rating FLOAT);
            CREATE TABLE statistics (mid INT PRIMARY KEY, nvisit INT, ndownload INT);

            CREATE FUNCTION S1 (id INTEGER) RETURNS FLOAT
                RETURN SELECT avg(R.rating) FROM reviews R WHERE R.mid = id;
            CREATE FUNCTION S2 (id INTEGER) RETURNS FLOAT
                RETURN SELECT S.nvisit FROM statistics S WHERE S.mid = id;
            CREATE FUNCTION S3 (id INTEGER) RETURNS FLOAT
                RETURN SELECT S.ndownload FROM statistics S WHERE S.mid = id;
            CREATE FUNCTION Agg (s1 FLOAT, s2 FLOAT, s3 FLOAT) RETURNS FLOAT
                RETURN (s1*100 + s2/2 + s3);

            CREATE TEXT INDEX movie_search ON movies(description)
                SCORE WITH (S1, S2, S3) AGGREGATE WITH Agg
                USING METHOD {method}
                OPTIONS (min_chunk_docs = 2, chunk_ratio = 2.0, threshold_ratio = 1.5);

            INSERT INTO movies VALUES
                (1, 'American Thrift', 'a classic production about golden gate thrift'),
                (2, 'Amateur Film',    'amateur footage of the golden gate bridge'),
                (3, 'City Symphony',   'a film about city life and bridges');

            INSERT INTO reviews VALUES
                (100, 1, 4.5), (101, 1, 5.0), (102, 2, 2.0), (103, 3, 3.0);
            INSERT INTO statistics VALUES
                (1, 5000, 120), (2, 40, 3), (3, 900, 50);
            "#,
        ))
        .unwrap();
    session
}

fn top_names(result: &SqlResult) -> Vec<String> {
    match result {
        SqlResult::Ranked { rows, .. } => rows
            .iter()
            .map(|r| r.row[0].as_text().unwrap().to_string())
            .collect(),
        other => panic!("expected ranked result, got {other:?}"),
    }
}

const FIGURE1_QUERY: &str = r#"SELECT name FROM movies m
    ORDER BY score(m.description, "golden gate")
    FETCH TOP 10 RESULTS ONLY"#;

#[test]
fn figure1_query_ranks_by_structured_values() {
    for method in ["ID", "SCORE", "SCORE_THRESHOLD", "CHUNK"] {
        let session = setup(method);
        let result = session.execute(FIGURE1_QUERY).unwrap();
        // Only movies 1 and 2 contain both "golden" and "gate".
        // Scores: movie 1 = 4.75*100 + 5000/2 + 120 = 3095;
        //         movie 2 = 2*100 + 40/2 + 3 = 223.
        assert_eq!(
            top_names(&result),
            vec!["American Thrift", "Amateur Film"],
            "method {method}"
        );
        let SqlResult::Ranked { rows, .. } = &result else {
            unreachable!()
        };
        assert!(
            (rows[0].score - 3095.0).abs() < 1e-9,
            "method {method}: {}",
            rows[0].score
        );
        assert!((rows[1].score - 223.0).abs() < 1e-9, "method {method}");
    }
}

#[test]
fn structured_updates_reorder_results() {
    let session = setup("CHUNK");
    // A flash crowd hits Amateur Film: visits explode.
    session
        .execute("UPDATE statistics SET nvisit = 1000000 WHERE mid = 2")
        .unwrap();
    let result = session.execute(FIGURE1_QUERY).unwrap();
    assert_eq!(top_names(&result), vec!["Amateur Film", "American Thrift"]);
    let SqlResult::Ranked { rows, .. } = &result else {
        unreachable!()
    };
    // 2*100 + 1000000/2 + 3 = 500203.
    assert!((rows[0].score - 500_203.0).abs() < 1e-9);

    // New reviews shift the average rating; ranking must track the view.
    session
        .execute("INSERT INTO reviews VALUES (104, 2, 1.0), (105, 2, 1.0)")
        .unwrap();
    let result = session.execute(FIGURE1_QUERY).unwrap();
    let SqlResult::Ranked { rows, .. } = &result else {
        unreachable!()
    };
    // avg(2,1,1) = 4/3 → 133.33 + 500000 + 3.
    assert!((rows[0].score - (4.0 / 3.0 * 100.0 + 500_000.0 + 3.0)).abs() < 1e-6);
}

#[test]
fn deleting_source_rows_lowers_scores() {
    let session = setup("SCORE_THRESHOLD");
    session
        .execute("DELETE FROM reviews WHERE rid = 101")
        .unwrap();
    let result = session.execute(FIGURE1_QUERY).unwrap();
    let SqlResult::Ranked { rows, .. } = &result else {
        unreachable!()
    };
    // Movie 1's avg drops to 4.5: 450 + 2500 + 120 = 3070.
    assert!((rows[0].score - 3070.0).abs() < 1e-9);
}

#[test]
fn deleting_a_movie_removes_it_from_results() {
    let session = setup("CHUNK");
    session.execute("DELETE FROM movies WHERE mid = 1").unwrap();
    let result = session.execute(FIGURE1_QUERY).unwrap();
    assert_eq!(top_names(&result), vec!["Amateur Film"]);
}

#[test]
fn content_updates_change_matching() {
    let session = setup("CHUNK");
    // Movie 3's description gains the keywords.
    session
        .execute(
            "UPDATE movies SET description = 'golden gate panorama of city life' WHERE mid = 3",
        )
        .unwrap();
    let result = session.execute(FIGURE1_QUERY).unwrap();
    assert_eq!(
        top_names(&result),
        vec!["American Thrift", "City Symphony", "Amateur Film"]
    );
    // And movie 2 loses them.
    session
        .execute("UPDATE movies SET description = 'footage of a bridge' WHERE mid = 2")
        .unwrap();
    let result = session.execute(FIGURE1_QUERY).unwrap();
    assert_eq!(top_names(&result), vec!["American Thrift", "City Symphony"]);
}

#[test]
fn disjunctive_contains_any() {
    let session = setup("CHUNK");
    let result = session
        .execute(
            "SELECT name FROM movies WHERE CONTAINS(description, 'city gate', ANY)
             ORDER BY SCORE(description, 'city gate') FETCH TOP 10 RESULTS ONLY",
        )
        .unwrap();
    // All three match at least one keyword; ranked by SVR score.
    assert_eq!(
        top_names(&result),
        vec!["American Thrift", "City Symphony", "Amateur Film"]
    );
}

#[test]
fn merge_text_index_preserves_answers() {
    let session = setup("CHUNK");
    session
        .execute("UPDATE statistics SET nvisit = 999999 WHERE mid = 2")
        .unwrap();
    let before = top_names(&session.execute(FIGURE1_QUERY).unwrap());
    session.execute("MERGE TEXT INDEX movie_search").unwrap();
    let after = top_names(&session.execute(FIGURE1_QUERY).unwrap());
    assert_eq!(before, after);
}

#[test]
fn tfidf_combination_through_sql() {
    let session = SqlSession::new();
    session
        .execute_script(
            r#"
            CREATE TABLE docs (id INT PRIMARY KEY, body TEXT);
            CREATE TABLE pop (id INT PRIMARY KEY, hits INT);
            CREATE FUNCTION hits_of (d INT) RETURNS FLOAT
                RETURN SELECT p.hits FROM pop p WHERE p.id = d;
            CREATE FUNCTION mix (s1 FLOAT, s4 FLOAT) RETURNS FLOAT
                RETURN s1 + s4 * 50;
            CREATE TEXT INDEX doc_idx ON docs(body)
                SCORE WITH (hits_of, TFIDF()) AGGREGATE WITH mix
                USING METHOD CHUNK_TERMSCORE
                OPTIONS (min_chunk_docs = 2, fancy_size = 4);
            INSERT INTO docs VALUES
                (1, 'ranking ranking ranking ranking'),
                (2, 'ranking diluted diluted diluted diluted diluted diluted');
            INSERT INTO pop VALUES (1, 10), (2, 11);
            "#,
        )
        .unwrap();
    let result = session
        .execute("SELECT id FROM docs ORDER BY SCORE(body, 'ranking') FETCH TOP 2 RESULTS ONLY")
        .unwrap();
    let SqlResult::Ranked { rows, .. } = &result else {
        panic!()
    };
    // Doc 1 has the maximal normalized TF for "ranking"; with weight 50 the
    // term score dominates the 1-hit popularity difference.
    assert_eq!(rows[0].row[0], Value::Int(1));
    assert_eq!(rows.len(), 2);
}

#[test]
fn tfidf_without_term_method_is_rejected() {
    let session = SqlSession::new();
    session
        .execute_script(
            "CREATE TABLE d (id INT PRIMARY KEY, b TEXT);
             CREATE FUNCTION one (x INT) RETURNS FLOAT RETURN SELECT p.v FROM q p WHERE p.id = x;",
        )
        .unwrap();
    let err = session
        .execute("CREATE TEXT INDEX i ON d(b) SCORE WITH (one, TFIDF()) USING METHOD CHUNK")
        .unwrap_err();
    assert!(err.to_string().contains("cannot evaluate TFIDF"), "{err}");
}

#[test]
fn nonlinear_tfidf_aggregate_is_rejected() {
    let session = SqlSession::new();
    session
        .execute_script(
            "CREATE TABLE d (id INT PRIMARY KEY, b TEXT);
             CREATE TABLE p (id INT PRIMARY KEY, v INT);
             CREATE FUNCTION c (x INT) RETURNS FLOAT
                 RETURN SELECT p.v FROM p WHERE p.id = x;
             CREATE FUNCTION bad (s1 FLOAT, s4 FLOAT) RETURNS FLOAT RETURN s1 * s4;",
        )
        .unwrap();
    let err = session
        .execute("CREATE TEXT INDEX i ON d(b) SCORE WITH (c, TFIDF()) AGGREGATE WITH bad")
        .unwrap_err();
    assert!(err.to_string().contains("linear"), "{err}");
}

#[test]
fn plain_selects_and_projection() {
    let session = setup("ID");
    let result = session
        .execute("SELECT name FROM movies WHERE mid = 2")
        .unwrap();
    assert_eq!(
        result,
        SqlResult::Rows {
            columns: vec!["name".into()],
            rows: vec![vec![Value::Text("Amateur Film".into())]],
        }
    );
    let all = session
        .execute("SELECT mid, name FROM movies LIMIT 2")
        .unwrap();
    assert_eq!(all.row_count(), 2);
}

#[test]
fn reviews_fk_scan_matches() {
    let session = setup("ID");
    let scan = session
        .execute("SELECT rid FROM reviews WHERE mid = 1")
        .unwrap();
    assert_eq!(scan.row_count(), 2);
}

#[test]
fn errors_are_informative() {
    let session = SqlSession::new();
    // Unknown table.
    assert!(session.execute("SELECT * FROM nope").is_err());
    // Unknown scoring function.
    session
        .execute("CREATE TABLE t (a INT PRIMARY KEY, b TEXT)")
        .unwrap();
    let err = session
        .execute("CREATE TEXT INDEX i ON t(b) SCORE WITH (mystery)")
        .unwrap_err();
    assert!(
        err.to_string().contains("unknown scoring function"),
        "{err}"
    );
    // Ranked query without an index.
    let err = session
        .execute("SELECT * FROM t ORDER BY SCORE(b, 'x') FETCH TOP 1 RESULTS ONLY")
        .unwrap_err();
    assert!(err.to_string().contains("no text index"), "{err}");
    // Duplicate function.
    session
        .execute("CREATE FUNCTION f (a FLOAT) RETURNS FLOAT RETURN a")
        .unwrap();
    assert!(session
        .execute("CREATE FUNCTION f (a FLOAT) RETURNS FLOAT RETURN a")
        .is_err());
}

#[test]
fn update_requires_pk_predicate() {
    let session = setup("ID");
    let err = session
        .execute("UPDATE statistics SET nvisit = 1 WHERE nvisit = 40")
        .unwrap_err();
    assert!(err.to_string().contains("primary-key"), "{err}");
}

/// `OPTIONS (shards = N)` partitions the write path without changing any
/// ranking: the Figure 1 example must behave identically, and `EXPLAIN`
/// must report the shard layout.
#[test]
fn sharded_index_ranks_identically_and_explains_shards() {
    let session = SqlSession::new();
    session
        .execute_script(
            r#"
            CREATE TABLE movies (mid INT PRIMARY KEY, name TEXT, description TEXT);
            CREATE TABLE statistics (mid INT PRIMARY KEY, nvisit INT, ndownload INT);
            CREATE FUNCTION S2 (id INTEGER) RETURNS FLOAT
                RETURN SELECT S.nvisit FROM statistics S WHERE S.mid = id;
            CREATE TEXT INDEX movie_search ON movies(description)
                SCORE WITH (S2)
                USING METHOD CHUNK
                OPTIONS (min_chunk_docs = 2, chunk_ratio = 2.0, shards = 4);
            INSERT INTO movies VALUES
                (1, 'American Thrift', 'a classic production about golden gate thrift'),
                (2, 'Amateur Film',    'amateur footage of the golden gate bridge'),
                (3, 'City Symphony',   'a film about city life and bridges');
            INSERT INTO statistics VALUES (1, 5000, 120), (2, 40, 3), (3, 900, 50);
            "#,
        )
        .unwrap();
    let result = session.execute(FIGURE1_QUERY).unwrap();
    assert_eq!(
        top_names(&result),
        vec!["American Thrift", "Amateur Film"],
        "sharded ranking must match the unsharded one"
    );

    // A score update routed through the sharded write path reorders.
    session
        .execute("UPDATE statistics SET nvisit = 1000000 WHERE mid = 2")
        .unwrap();
    let result = session.execute(FIGURE1_QUERY).unwrap();
    assert_eq!(top_names(&result), vec!["Amateur Film", "American Thrift"]);

    let plan = session
        .execute(&format!("EXPLAIN {FIGURE1_QUERY}"))
        .unwrap();
    let SqlResult::Plan(lines) = &plan else {
        panic!("expected plan, got {plan:?}")
    };
    let text = lines.join("\n");
    assert!(text.contains("shards: 4"), "{text}");
    for shard in 0..4 {
        assert!(text.contains(&format!("shard {shard}: docs=")), "{text}");
    }

    // Bogus shard counts are rejected at planning time.
    for bad in ["shards = 0", "shards = 2.5"] {
        let err = session
            .execute(&format!(
                "CREATE TEXT INDEX bad ON movies(name) SCORE WITH (S2) OPTIONS ({bad})"
            ))
            .unwrap_err();
        assert!(err.to_string().contains("shards"), "{err}");
    }
}

#[test]
fn result_display_renders_tables() {
    let session = setup("CHUNK");
    let shown = format!("{}", session.execute(FIGURE1_QUERY).unwrap());
    assert!(shown.contains("American Thrift"));
    assert!(shown.contains("score"));
    assert!(shown.contains("3095"));
}

#[test]
fn explain_describes_access_paths() {
    let session = setup("CHUNK");
    let plan = session
        .execute(&format!("EXPLAIN {FIGURE1_QUERY}"))
        .unwrap();
    let SqlResult::Plan(lines) = &plan else {
        panic!("expected plan, got {plan:?}")
    };
    let text = lines.join("\n");
    assert!(text.contains("RankedKeywordSearch"), "{text}");
    assert!(text.contains("method=Chunk"), "{text}");
    assert!(text.contains("k=10"), "{text}");
    assert!(text.contains("golden gate"), "{text}");
    assert!(text.contains("shards: 1"), "{text}");
    assert!(text.contains("shard 0: docs=3"), "{text}");
    assert!(text.contains("storage: codec=legacy"), "{text}");
    // The bounded execution reports its lock activity per class; a ranked
    // search takes at least one shard read lock.
    assert!(text.contains("locks: "), "{text}");
    assert!(text.contains("shard="), "{text}");

    let plan = session
        .execute("EXPLAIN SELECT name FROM movies WHERE mid = 1")
        .unwrap();
    let SqlResult::Plan(lines) = &plan else {
        panic!()
    };
    assert!(lines[0].contains("PointLookup"), "{lines:?}");

    let plan = session
        .execute("EXPLAIN SELECT rid FROM reviews WHERE mid = 1")
        .unwrap();
    let SqlResult::Plan(lines) = &plan else {
        panic!()
    };
    assert!(lines[0].contains("TableScan"), "{lines:?}");

    // EXPLAIN must not execute anything.
    assert!(session
        .execute("EXPLAIN DELETE FROM movies WHERE mid = 1")
        .is_err());
    assert_eq!(
        session
            .execute("SELECT * FROM movies WHERE mid = 1")
            .unwrap()
            .row_count(),
        1,
        "row must still exist"
    );
}

/// `OPTIONS (codec = ...)` selects the long-list block codec per index;
/// rankings are codec-independent and EXPLAIN reports the physical
/// storage (codec, bytes, bytes/posting) once the merge fills long lists.
#[test]
fn codec_option_selects_storage_and_preserves_rankings() {
    let mut baseline: Option<Vec<String>> = None;
    for codec in ["legacy", "uncompressed", "varint", "bitpacked"] {
        let session = SqlSession::new();
        session
            .execute_script(&format!(
                r#"
                CREATE TABLE movies (mid INT PRIMARY KEY, description TEXT);
                CREATE TABLE stats (mid INT PRIMARY KEY, nvisit INT);
                CREATE FUNCTION S (id INTEGER) RETURNS FLOAT
                    RETURN SELECT t.nvisit FROM stats t WHERE t.mid = id;
                CREATE TEXT INDEX cx ON movies(description)
                    SCORE WITH (S)
                    USING METHOD CHUNK
                    OPTIONS (min_chunk_docs = 2, codec = {codec});
                "#,
            ))
            .unwrap();
        for i in 0..30 {
            let word = ["golden", "gate", "bridge"][i % 3];
            session
                .execute(&format!(
                    "INSERT INTO movies VALUES ({i}, 'the {word} clip {i}')"
                ))
                .unwrap();
            session
                .execute(&format!("INSERT INTO stats VALUES ({i}, {})", i * 31 % 400))
                .unwrap();
        }
        session.execute("MERGE TEXT INDEX cx").unwrap();
        let result = session
            .execute(
                r#"SELECT mid FROM movies m
                   ORDER BY score(m.description, "golden")
                   FETCH TOP 10 RESULTS ONLY"#,
            )
            .unwrap();
        let SqlResult::Ranked { rows, .. } = &result else {
            panic!("expected ranked result, got {result:?}")
        };
        let got: Vec<String> = rows
            .iter()
            .map(|r| format!("{:?}@{}", r.row[0], r.score))
            .collect();
        match &baseline {
            None => baseline = Some(got),
            Some(want) => assert_eq!(&got, want, "codec {codec} changed the ranking"),
        }

        let plan = session
            .execute(
                r#"EXPLAIN SELECT mid FROM movies m
                   ORDER BY score(m.description, "golden")
                   FETCH TOP 10 RESULTS ONLY"#,
            )
            .unwrap();
        let SqlResult::Plan(lines) = &plan else {
            panic!()
        };
        let text = lines.join("\n");
        assert!(text.contains(&format!("storage: codec={codec}")), "{text}");
        assert!(text.contains("B/posting"), "{text}");
    }

    // Unknown codec names fail cleanly at CREATE time.
    let session = SqlSession::new();
    session
        .execute_script(
            r#"
            CREATE TABLE t (id INT PRIMARY KEY, d TEXT);
            CREATE TABLE s (id INT PRIMARY KEY, v INT);
            CREATE FUNCTION SV (id INTEGER) RETURNS FLOAT
                RETURN SELECT x.v FROM s x WHERE x.id = id;
            "#,
        )
        .unwrap();
    let err = session
        .execute(
            "CREATE TEXT INDEX bad ON t(d) SCORE WITH (SV) \
             USING METHOD ID OPTIONS (codec = lz77)",
        )
        .unwrap_err();
    assert!(format!("{err}").contains("codec"), "{err}");
}

#[test]
fn drop_function_unregisters() {
    let session = SqlSession::new();
    session
        .execute("CREATE FUNCTION f (a FLOAT) RETURNS FLOAT RETURN a * 2")
        .unwrap();
    session.execute("DROP FUNCTION f").unwrap();
    // Now the name is free again.
    session
        .execute("CREATE FUNCTION f (a FLOAT) RETURNS FLOAT RETURN a * 3")
        .unwrap();
    // Dropping twice errors.
    session.execute("DROP FUNCTION f").unwrap();
    assert!(session.execute("DROP FUNCTION f").is_err());
}

#[test]
fn every_method_name_is_accepted_by_ddl() {
    for method in [
        "ID",
        "SCORE",
        "SCORE_THRESHOLD",
        "CHUNK",
        "ID_TERMSCORE",
        "CHUNK_TERMSCORE",
        "SCORE_THRESHOLD_TERMSCORE",
    ] {
        let session = setup(method);
        let result = session.execute(FIGURE1_QUERY).unwrap();
        assert_eq!(top_names(&result)[0], "American Thrift", "method {method}");
    }
}

#[test]
fn drop_text_index_and_table_tear_down_state() {
    let session = setup("CHUNK");
    // The indexed table refuses to drop while the index exists.
    let err = session.execute("DROP TABLE movies").unwrap_err();
    assert!(err.to_string().contains("movie_search"), "{err}");

    assert_eq!(
        session.execute("DROP TEXT INDEX movie_search").unwrap(),
        SqlResult::None
    );
    // Ranked queries now fail with a planning error...
    let err = session
        .execute(r#"SELECT name FROM movies ORDER BY SCORE(description, "golden gate")"#)
        .unwrap_err();
    assert!(err.to_string().contains("no text index"), "{err}");
    // ...but plain relational access still works.
    assert_eq!(
        session
            .execute("SELECT name FROM movies")
            .unwrap()
            .row_count(),
        3
    );

    // Source tables still feed nothing; drop them all.
    for table in ["movies", "reviews", "statistics"] {
        assert_eq!(
            session.execute(&format!("DROP TABLE {table}")).unwrap(),
            SqlResult::None,
            "{table}"
        );
    }
    assert!(session.execute("SELECT * FROM movies").is_err());
    assert!(session.execute("DROP TABLE movies").is_err(), "double drop");
    assert!(
        session.execute("DROP TEXT INDEX movie_search").is_err(),
        "double index drop"
    );

    // The namespace is reusable: rebuild a fresh index in the same session.
    session
        .execute_script(
            r#"
            CREATE TABLE movies (mid INT PRIMARY KEY, name TEXT, description TEXT);
            CREATE TABLE statistics (mid INT PRIMARY KEY, nvisit INT, ndownload INT);
            CREATE TEXT INDEX movie_search ON movies(description)
                SCORE WITH (S2) USING METHOD ID;
            INSERT INTO movies VALUES (9, 'Rebuilt', 'golden gate again');
            INSERT INTO statistics VALUES (9, 70, 0);
            "#,
        )
        .unwrap();
    let result = session
        .execute(r#"SELECT name FROM movies ORDER BY SCORE(description, "golden gate")"#)
        .unwrap();
    assert_eq!(top_names(&result), vec!["Rebuilt"]);
}

#[test]
fn cloned_sessions_share_engine_and_functions() {
    let session = setup("CHUNK");
    let clone = session.clone();
    // DDL through one handle is visible through the other.
    clone
        .execute("INSERT INTO movies VALUES (4, 'Fourth', 'golden gate redux')")
        .unwrap();
    clone
        .execute("INSERT INTO statistics VALUES (4, 1000000, 0)")
        .unwrap();
    let result = session
        .execute(
            r#"SELECT name FROM movies ORDER BY SCORE(description, "golden gate")
               FETCH TOP 1 RESULTS ONLY"#,
        )
        .unwrap();
    assert_eq!(top_names(&result), vec!["Fourth"]);
    // Functions registered before the clone exist in both; dropping through
    // the clone removes it for everyone.
    clone.execute("DROP FUNCTION S3").unwrap();
    assert!(session.execute("DROP FUNCTION S3").is_err());
}

/// `LIMIT k OFFSET m` / `OFFSET ... FETCH NEXT` paginate the ranked path:
/// every page equals the matching slice of a deep one-shot query.
#[test]
fn ranked_offset_pagination_matches_one_shot_slices() {
    let session = setup("CHUNK");
    // More movies so there are several pages.
    session
        .execute(
            "INSERT INTO movies VALUES
                (4, 'Gate Repairs', 'the golden gate maintenance crew'),
                (5, 'Fog City',     'fog rolling over the golden gate at dawn'),
                (6, 'Bridge Walk',  'walking the golden gate span')",
        )
        .unwrap();
    session
        .execute("INSERT INTO statistics VALUES (4, 700, 9), (5, 80, 2), (6, 3000, 77)")
        .unwrap();

    let all = top_names(
        &session
            .execute(
                r#"SELECT name FROM movies ORDER BY SCORE(description, "golden gate") LIMIT 6"#,
            )
            .unwrap(),
    );
    // Movies 1, 2, 4, 5, 6 contain both keywords; movie 3 contains neither.
    assert_eq!(all.len(), 5);
    for (page, offset) in [(2usize, 0usize), (2, 2), (1, 4)] {
        let rows = top_names(
            &session
                .execute(&format!(
                    r#"SELECT name FROM movies ORDER BY SCORE(description, "golden gate")
                       LIMIT {page} OFFSET {offset}"#
                ))
                .unwrap(),
        );
        assert_eq!(rows, all[offset..offset + page].to_vec(), "offset {offset}");
    }
    // SQL-standard spelling: OFFSET m ROWS FETCH NEXT k ROWS ONLY.
    let rows = top_names(
        &session
            .execute(
                r#"SELECT name FROM movies ORDER BY SCORE(description, "golden gate")
                   OFFSET 3 ROWS FETCH NEXT 2 ROWS ONLY"#,
            )
            .unwrap(),
    );
    assert_eq!(rows, all[3..5].to_vec());
    // Past the end: empty page, not an error.
    let rows = top_names(
        &session
            .execute(
                r#"SELECT name FROM movies ORDER BY SCORE(description, "golden gate")
                   LIMIT 5 OFFSET 40"#,
            )
            .unwrap(),
    );
    assert!(rows.is_empty());
}

/// OFFSET also applies to plain (unranked) scans.
#[test]
fn plain_scan_offset() {
    let session = setup("ID");
    let SqlResult::Rows { rows, .. } = session
        .execute("SELECT mid FROM movies LIMIT 2 OFFSET 1")
        .unwrap()
    else {
        panic!("expected rows");
    };
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0][0], Value::Int(2));
}

/// DECLARE / FETCH / CLOSE: paginated SQL that never recomputes a prefix,
/// with the cursor surviving (and reflecting) interleaved score updates.
#[test]
fn named_cursor_lifecycle() {
    let session = setup("SCORE_THRESHOLD");
    session
        .execute(
            r#"DECLARE page CURSOR FOR SELECT name FROM movies
               ORDER BY SCORE(description, "golden gate")"#,
        )
        .unwrap();
    let first = top_names(&session.execute("FETCH 1 FROM page").unwrap());
    assert_eq!(first, vec!["American Thrift".to_string()]);
    let second = top_names(&session.execute("FETCH NEXT 1 FROM page").unwrap());
    assert_eq!(second, vec!["Amateur Film".to_string()]);
    // Exhausted: conjunctive "golden gate" matches only movies 1 and 2.
    assert_eq!(session.execute("FETCH 5 FROM page").unwrap().row_count(), 0);
    session.execute("CLOSE page").unwrap();
    assert!(session.execute("FETCH 1 FROM page").is_err(), "closed");
    assert!(session.execute("CLOSE page").is_err(), "already closed");

    // Duplicate names and non-ranked declarations are rejected.
    session
        .execute(
            r#"DECLARE c2 CURSOR FOR SELECT * FROM movies WHERE CONTAINS(description, 'golden')"#,
        )
        .unwrap();
    assert!(session
        .execute(
            r#"DECLARE c2 CURSOR FOR SELECT * FROM movies WHERE CONTAINS(description, 'golden')"#
        )
        .is_err());
    assert!(
        session
            .execute("DECLARE c3 CURSOR FOR SELECT * FROM movies")
            .is_err(),
        "plain scans are not cursorable"
    );
    assert!(
        session
            .execute(
                r#"DECLARE c4 CURSOR FOR SELECT * FROM movies
                        ORDER BY SCORE(description, "golden") LIMIT 3"#
            )
            .is_err(),
        "page size belongs to FETCH, not the declaration"
    );
    session.execute("CLOSE c2").unwrap();
}

/// A declared cursor with OFFSET starts at that rank; clones of the
/// session share the cursor registry (it is session-cluster state).
#[test]
fn named_cursor_offset_via_clone() {
    let session = setup("CHUNK");
    session
        .execute(
            r#"DECLARE deep CURSOR FOR SELECT name FROM movies
               ORDER BY SCORE(description, "golden gate") OFFSET 1"#,
        )
        .unwrap();
    // Fetch through a *clone* of the session: shared registry.
    let clone = session.clone();
    let rows = top_names(&clone.execute("FETCH 2 FROM deep").unwrap());
    assert_eq!(rows, vec!["Amateur Film".to_string()]);
    session.execute("CLOSE deep").unwrap();
}

/// EXPLAIN surfaces the shared keyword-resolution step and the cursor
/// plan for OFFSET queries.
#[test]
fn explain_shows_terms_and_cursor_skip() {
    let session = setup("CHUNK");
    let SqlResult::Plan(lines) = session
        .execute(
            r#"EXPLAIN SELECT name FROM movies
               ORDER BY SCORE(description, "golden gate unknownword") LIMIT 3 OFFSET 7"#,
        )
        .unwrap()
    else {
        panic!("expected plan");
    };
    let text = lines.join("\n");
    assert!(text.contains("terms: 2 resolved, 1 unknown"), "{text}");
    assert!(text.contains("matches nothing"), "{text}");
    assert!(text.contains("offset: 7"), "{text}");
    assert!(text.contains("blocks:"), "{text}");
}

/// The multi-term surface: infix `CONTAINS ALL|ANY (...)` and
/// `RANK BY col (...)` are exact spellings of the legacy function forms.
#[test]
fn infix_contains_and_rank_by_match_legacy_forms() {
    for method in ["ID", "ID_TERMSCORE", "CHUNK"] {
        let session = setup(method);
        let legacy = top_names(
            &session
                .execute(
                    r#"SELECT name FROM movies WHERE CONTAINS(description, 'golden gate', ALL)
                       ORDER BY SCORE(description, 'golden gate') FETCH TOP 10 RESULTS ONLY"#,
                )
                .unwrap(),
        );
        let infix = top_names(
            &session
                .execute(
                    r#"SELECT name FROM movies
                       WHERE description CONTAINS ALL ('golden', 'gate')
                       RANK BY description ('golden', 'gate') FETCH TOP 10 RESULTS ONLY"#,
                )
                .unwrap(),
        );
        assert_eq!(legacy, infix, "method {method}");
        assert_eq!(
            legacy,
            vec!["American Thrift".to_string(), "Amateur Film".into()]
        );

        // ANY ranks every document matching either term.
        let any = top_names(
            &session
                .execute(
                    r#"SELECT name FROM movies
                       WHERE description CONTAINS ANY ('city', 'gate')
                       FETCH TOP 10 RESULTS ONLY"#,
                )
                .unwrap(),
        );
        assert_eq!(any.len(), 3, "method {method}");
    }
}

/// Unknown-term semantics: conjunctive queries with an out-of-vocabulary
/// keyword match nothing (without error); disjunctive forms drop the
/// unknown term and rank on the rest.
#[test]
fn unknown_terms_empty_conjunctive_dropped_disjunctive() {
    let session = setup("CHUNK");
    let empty = top_names(
        &session
            .execute(
                r#"SELECT name FROM movies
                   WHERE description CONTAINS ALL ('golden', 'zzzoov')
                   FETCH TOP 10 RESULTS ONLY"#,
            )
            .unwrap(),
    );
    assert!(empty.is_empty(), "conjunctive OOV matches nothing");

    let any = top_names(
        &session
            .execute(
                r#"SELECT name FROM movies
                   WHERE description CONTAINS ANY ('golden', 'zzzoov')
                   FETCH TOP 10 RESULTS ONLY"#,
            )
            .unwrap(),
    );
    assert_eq!(any.len(), 2, "ANY drops the unknown term");

    let ranked = top_names(
        &session
            .execute(
                r#"SELECT name FROM movies RANK BY description ('golden', 'zzzoov')
                   FETCH TOP 10 RESULTS ONLY"#,
            )
            .unwrap(),
    );
    assert_eq!(ranked, any, "RANK BY drops the unknown term the same way");

    // EXPLAIN keeps the resolved/unknown counts accurate for each form.
    let SqlResult::Plan(lines) = session
        .execute(
            r#"EXPLAIN SELECT name FROM movies RANK BY description ('golden', 'zzzoov')
               FETCH TOP 10 RESULTS ONLY"#,
        )
        .unwrap()
    else {
        panic!("expected plan");
    };
    let text = lines.join("\n");
    assert!(text.contains("mode=disjunctive"), "{text}");
    assert!(text.contains("terms: 1 resolved, 1 unknown"), "{text}");
    assert!(!text.contains("matches nothing"), "{text}");
    let SqlResult::Plan(lines) = session
        .execute(
            r#"EXPLAIN SELECT name FROM movies
               WHERE description CONTAINS ALL ('golden', 'zzzoov')"#,
        )
        .unwrap()
    else {
        panic!("expected plan");
    };
    let text = lines.join("\n");
    assert!(text.contains("mode=conjunctive"), "{text}");
    assert!(text.contains("terms: 1 resolved, 1 unknown"), "{text}");
    assert!(text.contains("matches nothing"), "{text}");
}

/// BEGIN/COMMIT: DML queues invisibly (deferred visibility) and applies
/// atomically at COMMIT, reordering rankings in one step.
#[test]
fn transaction_commit_applies_atomically() {
    let session = setup("CHUNK");
    session.execute("BEGIN").unwrap();
    assert!(session.in_transaction());
    session
        .execute("UPDATE statistics SET nvisit = 200000 WHERE mid = 2")
        .unwrap();
    session
        .execute("INSERT INTO movies VALUES (4, 'Gate Redux', 'golden gate again')")
        .unwrap();
    // Deferred visibility: reads (even our own) see none of it yet.
    let names = top_names(&session.execute(FIGURE1_QUERY).unwrap());
    assert_eq!(
        names[0], "American Thrift",
        "queued DML invisible pre-COMMIT"
    );
    assert_eq!(
        session
            .execute("SELECT * FROM movies WHERE mid = 4")
            .unwrap()
            .row_count(),
        0
    );

    let result = session.execute("COMMIT TRANSACTION").unwrap();
    assert_eq!(result, SqlResult::Committed(2));
    assert!(!session.in_transaction());
    let names = top_names(&session.execute(FIGURE1_QUERY).unwrap());
    assert_eq!(
        names[0], "Amateur Film",
        "the visit spike ranks movie 2 first"
    );
    assert_eq!(
        session
            .execute("SELECT * FROM movies WHERE mid = 4")
            .unwrap()
            .row_count(),
        1
    );
}

/// ROLLBACK discards the queued batch; a failing COMMIT leaves no trace.
#[test]
fn transaction_rollback_and_failed_commit_leave_no_trace() {
    let session = setup("CHUNK");
    let before = top_names(&session.execute(FIGURE1_QUERY).unwrap());

    session.execute("BEGIN WORK").unwrap();
    session
        .execute("UPDATE statistics SET nvisit = 999999 WHERE mid = 3")
        .unwrap();
    session.execute("ROLLBACK").unwrap();
    assert_eq!(top_names(&session.execute(FIGURE1_QUERY).unwrap()), before);

    // A transaction whose LAST op fails (duplicate key) must roll the
    // earlier ops back too — no partial application.
    session.execute("BEGIN").unwrap();
    session
        .execute("UPDATE statistics SET nvisit = 999999 WHERE mid = 3")
        .unwrap();
    session
        .execute("INSERT INTO movies VALUES (1, 'Dup', 'golden gate dup')")
        .unwrap();
    let err = session.execute("COMMIT").unwrap_err();
    assert!(err.to_string().contains("duplicate"), "{err}");
    assert!(
        !session.in_transaction(),
        "a failed COMMIT ends the transaction"
    );
    assert_eq!(
        top_names(&session.execute(FIGURE1_QUERY).unwrap()),
        before,
        "the rolled-back update must not leak into rankings"
    );
    assert_eq!(
        session.engine().score_of("movie_search", 3).unwrap(),
        3.0 * 100.0 + 900.0 / 2.0 + 50.0,
        "view score of movie 3 untouched"
    );
    // And the transaction is retryable without the poison op.
    session.execute("BEGIN").unwrap();
    session
        .execute("UPDATE statistics SET nvisit = 999999 WHERE mid = 3")
        .unwrap();
    assert_eq!(session.execute("COMMIT").unwrap(), SqlResult::Committed(1));
    assert_eq!(
        session.engine().score_of("movie_search", 3).unwrap(),
        3.0 * 100.0 + 999_999.0 / 2.0 + 50.0,
        "the retried transaction applied"
    );
}

/// Transaction statement misuse and DDL rejection.
#[test]
fn transaction_statement_rules() {
    let session = setup("CHUNK");
    assert!(session.execute("COMMIT").is_err(), "COMMIT outside txn");
    assert!(session.execute("ROLLBACK").is_err(), "ROLLBACK outside txn");
    session.execute("BEGIN").unwrap();
    assert!(session.execute("BEGIN").is_err(), "no nesting");
    assert!(
        session
            .execute("CREATE TABLE t2 (a INT PRIMARY KEY)")
            .is_err(),
        "DDL rejected inside a transaction"
    );
    assert!(session.execute("DROP TABLE movies").is_err());
    // Clones share the transaction (session-cluster state).
    let clone = session.clone();
    assert!(clone.in_transaction());
    clone.execute("ROLLBACK").unwrap();
    assert!(!session.in_transaction());
}

/// The per-session cursor cap errors cleanly and CLOSE ALL frees it.
#[test]
fn cursor_cap_and_close_all() {
    let session = setup("CHUNK");
    session.set_cursor_limit(2);
    for name in ["c1", "c2"] {
        session
            .execute(&format!(
                r#"DECLARE {name} CURSOR FOR SELECT name FROM movies
                   ORDER BY SCORE(description, "golden gate")"#
            ))
            .unwrap();
    }
    let err = session
        .execute(
            r#"DECLARE c3 CURSOR FOR SELECT name FROM movies
               ORDER BY SCORE(description, "golden gate")"#,
        )
        .unwrap_err();
    assert!(err.to_string().contains("cursor limit"), "{err}");
    session.execute("CLOSE ALL").unwrap();
    session
        .execute(
            r#"DECLARE c3 CURSOR FOR SELECT name FROM movies
               ORDER BY SCORE(description, "golden gate")"#,
        )
        .unwrap();
    assert_eq!(session.execute("FETCH 1 FROM c3").unwrap().row_count(), 1);
    assert!(
        session.execute("FETCH 1 FROM c1").is_err(),
        "closed by CLOSE ALL"
    );
}

#[test]
fn cursor_idle_ttl_expires_and_reports_cleanly() {
    let session = setup("CHUNK");
    // TTL off by default: an idle cursor lives until CLOSE.
    session
        .execute(
            r#"DECLARE forever CURSOR FOR SELECT name FROM movies
               ORDER BY SCORE(description, "golden gate")"#,
        )
        .unwrap();
    assert_eq!(session.sweep_expired_cursors(), 0, "TTL off: no sweep");

    session.set_cursor_ttl(Some(std::time::Duration::from_millis(60)));
    session
        .execute(
            r#"DECLARE ephemeral CURSOR FOR SELECT name FROM movies
               ORDER BY SCORE(description, "golden gate")"#,
        )
        .unwrap();
    // Touching a cursor resets its idle clock.
    std::thread::sleep(std::time::Duration::from_millis(25));
    assert_eq!(
        session
            .execute("FETCH 1 FROM ephemeral")
            .unwrap()
            .row_count(),
        1
    );
    std::thread::sleep(std::time::Duration::from_millis(25));
    // Still under TTL since the fetch: survives this session activity...
    assert_eq!(
        session
            .execute("FETCH 1 FROM ephemeral")
            .unwrap()
            .row_count(),
        1
    );
    std::thread::sleep(std::time::Duration::from_millis(100));
    // ...but past it, any session activity sweeps, and FETCH reports a
    // clean expiry (not "unknown cursor").
    let err = session.execute("FETCH 1 FROM ephemeral").unwrap_err();
    assert!(err.to_string().contains("expired"), "{err}");
    let err = session.execute("FETCH 1 FROM forever").unwrap_err();
    assert!(err.to_string().contains("expired"), "{err}");
    // Re-declaring the name restarts the enumeration from rank 1.
    session
        .execute(
            r#"DECLARE ephemeral CURSOR FOR SELECT name FROM movies
               ORDER BY SCORE(description, "golden gate")"#,
        )
        .unwrap();
    assert_eq!(
        session
            .execute("FETCH 2 FROM ephemeral")
            .unwrap()
            .row_count(),
        2
    );
    // A name never declared still reports "unknown", not "expired".
    let err = session.execute("FETCH 1 FROM nothere").unwrap_err();
    assert!(err.to_string().contains("unknown cursor"), "{err}");
}

/// The single-statement entry point drives its arity check off `pop()`
/// itself (no unwrap): empty input and multi-statement input are clean
/// parse errors, one statement parses.
#[test]
fn parse_statement_arity_is_an_error_not_a_panic() {
    use svr_sql::parser::parse_statement;
    assert!(parse_statement("").is_err());
    assert!(parse_statement("   ;  ;").is_err());
    assert!(parse_statement("SELECT a FROM t; SELECT b FROM t").is_err());
    assert!(parse_statement("SELECT a FROM t").is_ok());
}
