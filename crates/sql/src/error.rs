//! SQL front-end errors.

use std::fmt;

/// Errors raised while lexing, parsing or executing SQL statements.
#[derive(Debug)]
pub enum SqlError {
    /// Lexical error: byte offset and description.
    Lex(usize, String),
    /// Syntax error: byte offset and description.
    Parse(usize, String),
    /// Statement is well-formed but cannot be executed (unknown function,
    /// wrong method name, non-linear TFIDF use...).
    Plan(String),
    /// Error from the underlying engine.
    Engine(svr_engine::SvrError),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex(pos, msg) => write!(f, "lex error at byte {pos}: {msg}"),
            SqlError::Parse(pos, msg) => write!(f, "syntax error at byte {pos}: {msg}"),
            SqlError::Plan(msg) => write!(f, "planning error: {msg}"),
            SqlError::Engine(e) => write!(f, "execution error: {e}"),
        }
    }
}

impl std::error::Error for SqlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SqlError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<svr_engine::SvrError> for SqlError {
    fn from(e: svr_engine::SvrError) -> Self {
        SqlError::Engine(e)
    }
}

impl From<svr_relation::RelationError> for SqlError {
    fn from(e: svr_relation::RelationError) -> Self {
        SqlError::Engine(svr_engine::SvrError::Relation(e))
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, SqlError>;
