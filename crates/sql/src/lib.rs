//! # svr-sql
//!
//! A SQL front end for the SVR engine, implementing the paper's SQL-based
//! framework for specifying Structured Value Ranking (§3.1) and the SQL/MM
//! query form of its Figure 1.
//!
//! The dialect supports:
//!
//! * `CREATE TABLE` / `INSERT` / `UPDATE` / `DELETE` over the relational
//!   substrate;
//! * `CREATE FUNCTION S1 (id INT) RETURNS FLOAT RETURN SELECT AVG(r.rating)
//!   FROM reviews r WHERE r.mid = id` — SQL-bodied scoring components;
//! * `CREATE FUNCTION agg (s1 FLOAT, ...) RETURNS FLOAT RETURN (s1*100 +
//!   s2/2 + s3)` — the `Agg` combinator;
//! * `CREATE TEXT INDEX idx ON movies(description) SCORE WITH (S1, S2, S3
//!   [, TFIDF()]) AGGREGATE WITH agg [USING METHOD CHUNK] [OPTIONS (...)]`;
//! * `SELECT * FROM movies m [WHERE CONTAINS(desc, 'kw', ANY)] ORDER BY
//!   SCORE(m.desc, "golden gate") FETCH TOP 10 RESULTS ONLY` — ranked
//!   keyword search over the latest structured-data scores;
//! * multi-term predicates and ranking: infix `WHERE desc CONTAINS ALL
//!   ('golden', 'gate')` / `CONTAINS ANY ('city', 'bridge')` and
//!   multi-keyword `RANK BY desc ('golden', 'gate', 'bridge') [DESC]`
//!   (disjunctive: unknown keywords are dropped; `CONTAINS ALL` with an
//!   unknown keyword matches nothing, without error). Multi-term queries
//!   run the block-max WAND executor on doc-ordered methods — whole
//!   posting blocks are skipped undecoded when they cannot beat the
//!   current top-k threshold (`EXPLAIN` shows `blocks: N skipped, M
//!   decoded`) — and paginate through the same any-k cursors as
//!   single-term queries;
//! * pagination over the ranked path: `LIMIT k OFFSET m`, `OFFSET m ROWS
//!   FETCH NEXT k ROWS ONLY` (the offset plans onto a resumable cursor —
//!   the prefix is traversed once, not recomputed), and named cursors
//!   `DECLARE c CURSOR FOR SELECT ... ORDER BY SCORE(...)` /
//!   `FETCH [NEXT] n FROM c` / `CLOSE c` whose suspended state lives in
//!   the session, so consecutive fetches never re-pay earlier pages;
//! * `MERGE TEXT INDEX idx` — the offline short-list merge;
//! * transactions: `BEGIN [TRANSACTION]` accumulates the session's
//!   `INSERT`/`UPDATE`/`DELETE` statements, `COMMIT` applies them as one
//!   **atomic** engine [`WriteBatch`](svr_engine::WriteBatch) (a failing
//!   operation rolls the whole batch back, leaving no observable trace),
//!   and `ROLLBACK` discards them. Visibility is *deferred*: queued DML is
//!   invisible to every read — including this session's own — until
//!   `COMMIT` (no reads-your-own-writes). DDL inside a transaction is
//!   rejected. Named cursors are capped per session
//!   ([`session::DEFAULT_CURSOR_LIMIT`], see
//!   [`SqlSession::set_cursor_limit`]); `CLOSE ALL` drops every cursor,
//!   and an optional idle TTL ([`SqlSession::set_cursor_ttl`], off by
//!   default) expires cursors a client forgot: expired cursors are swept
//!   on session activity and a later `FETCH` reports a clean expiry error
//!   instead of "unknown cursor".
//!
//! ## Durability
//!
//! A session is a front end over whatever engine it wraps. Wrap a
//! **durable** engine (`SvrEngine::create` / `SvrEngine::open` /
//! `SvrEngine::open_path`) and every DDL statement above writes through to
//! the engine's system catalogs: after a crash, `SvrEngine::open` recovers
//! tables, scoring functions' effects (the score views), text indexes and
//! the vocabulary, and a fresh `SqlSession::with_engine` attaches to the
//! recovered engine unchanged — same rankings, same `score_of`, no
//! re-indexing. `DROP TABLE` / `DROP TEXT INDEX` also delete the persisted
//! records and backing stores, so a reopen cannot resurrect dropped
//! objects. (Session-scoped state — `CREATE FUNCTION` definitions, named
//! cursors, open transactions — lives with the session, not the engine:
//! re-issue `CREATE FUNCTION`s in new sessions; indexes already built from
//! them are self-contained.)
//!
//! ```
//! use svr_sql::SqlSession;
//!
//! let mut session = SqlSession::new();
//! session.execute_script(r#"
//!     CREATE TABLE movies (mid INT PRIMARY KEY, name TEXT, description TEXT);
//!     CREATE TABLE reviews (rid INT PRIMARY KEY, mid INT, rating FLOAT);
//!
//!     CREATE FUNCTION avg_rating (id INT) RETURNS FLOAT
//!         RETURN SELECT AVG(r.rating) FROM reviews r WHERE r.mid = id;
//!     CREATE FUNCTION weigh (s1 FLOAT) RETURNS FLOAT RETURN s1 * 100;
//!
//!     CREATE TEXT INDEX movie_idx ON movies(description)
//!         SCORE WITH (avg_rating) AGGREGATE WITH weigh USING METHOD CHUNK;
//!
//!     INSERT INTO movies VALUES
//!         (1, 'American Thrift', 'classic golden gate commute footage'),
//!         (2, 'Amateur Film',    'amateur golden gate shots');
//!     INSERT INTO reviews VALUES (100, 1, 4.5), (101, 1, 5.0), (102, 2, 1.0);
//! "#).unwrap();
//!
//! let top = session.execute(
//!     r#"SELECT name FROM movies ORDER BY SCORE(description, "golden gate")
//!        FETCH TOP 1 RESULTS ONLY"#).unwrap();
//! // American Thrift: avg rating 4.75 → score 475.
//! assert_eq!(top.row_count(), 1);
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod session;

pub use error::{Result, SqlError};
pub use parser::{parse_script, parse_statement};
pub use session::{SqlResult, SqlSession, DEFAULT_CURSOR_LIMIT};
