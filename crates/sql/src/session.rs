//! The SQL session: parse → plan → execute against an [`SvrEngine`].

use std::collections::HashMap;

use svr_core::types::QueryMode;
use svr_core::IndexConfig;
use svr_engine::{RankedRow, SvrEngine};
use svr_relation::schema::Schema;
use svr_relation::{AggExpr, ScoreComponent, SvrSpec, Value};

use crate::ast::*;
use crate::error::{Result, SqlError};
use crate::parser::{parse_script, parse_statement};
use crate::plan::{
    apply_options, lower_function, parse_method, resolve_arith, tfidf_weight, FunctionDef,
};

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlResult {
    /// DDL statements.
    None,
    Inserted(usize),
    Updated(usize),
    Deleted(usize),
    /// An unranked result set.
    Rows { columns: Vec<String>, rows: Vec<Vec<Value>> },
    /// A ranked keyword-search result set (scores are the latest SVR — or
    /// combined — scores).
    Ranked { columns: Vec<String>, rows: Vec<RankedRow> },
    /// An `EXPLAIN` plan description, one line per step.
    Plan(Vec<String>),
}

impl SqlResult {
    /// Number of data rows in the result.
    pub fn row_count(&self) -> usize {
        match self {
            SqlResult::None => 0,
            SqlResult::Inserted(n) | SqlResult::Updated(n) | SqlResult::Deleted(n) => *n,
            SqlResult::Rows { rows, .. } => rows.len(),
            SqlResult::Ranked { rows, .. } => rows.len(),
            SqlResult::Plan(lines) => lines.len(),
        }
    }
}

impl std::fmt::Display for SqlResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn write_table(
            f: &mut std::fmt::Formatter<'_>,
            columns: &[String],
            rows: &[Vec<String>],
        ) -> std::fmt::Result {
            let mut widths: Vec<usize> = columns.iter().map(String::len).collect();
            for row in rows {
                for (w, cell) in widths.iter_mut().zip(row) {
                    *w = (*w).max(cell.len());
                }
            }
            let header: Vec<String> = columns
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            writeln!(f, "{}", header.join(" | "))?;
            writeln!(
                f,
                "{}",
                widths
                    .iter()
                    .map(|w| "-".repeat(*w))
                    .collect::<Vec<_>>()
                    .join("-+-")
            )?;
            for row in rows {
                let cells: Vec<String> = row
                    .iter()
                    .zip(&widths)
                    .map(|(c, w)| format!("{c:<w$}"))
                    .collect();
                writeln!(f, "{}", cells.join(" | "))?;
            }
            Ok(())
        }

        fn render(v: &Value) -> String {
            match v {
                Value::Null => "NULL".into(),
                Value::Int(i) => i.to_string(),
                Value::Float(x) => format!("{x}"),
                Value::Text(s) => s.clone(),
            }
        }

        match self {
            SqlResult::None => writeln!(f, "ok"),
            SqlResult::Inserted(n) => writeln!(f, "{n} row(s) inserted"),
            SqlResult::Updated(n) => writeln!(f, "{n} row(s) updated"),
            SqlResult::Deleted(n) => writeln!(f, "{n} row(s) deleted"),
            SqlResult::Rows { columns, rows } => {
                let rendered: Vec<Vec<String>> =
                    rows.iter().map(|r| r.iter().map(render).collect()).collect();
                write_table(f, columns, &rendered)
            }
            SqlResult::Plan(lines) => {
                for line in lines {
                    writeln!(f, "{line}")?;
                }
                Ok(())
            }
            SqlResult::Ranked { columns, rows } => {
                let mut cols = columns.clone();
                cols.push("score".into());
                let rendered: Vec<Vec<String>> = rows
                    .iter()
                    .map(|r| {
                        let mut cells: Vec<String> = r.row.iter().map(render).collect();
                        cells.push(format!("{:.2}", r.score));
                        cells
                    })
                    .collect();
                write_table(f, &cols, &rendered)
            }
        }
    }
}

/// A SQL session over an [`SvrEngine`].
///
/// ```
/// use svr_sql::SqlSession;
///
/// let mut session = SqlSession::new();
/// session.execute_script(r#"
///     CREATE TABLE movies (mid INT PRIMARY KEY, name TEXT, description TEXT);
///     CREATE TABLE stats (mid INT PRIMARY KEY, nvisit INT);
///     CREATE FUNCTION visits (id INT) RETURNS FLOAT
///         RETURN SELECT s.nvisit FROM stats s WHERE s.mid = id;
///     CREATE TEXT INDEX movie_idx ON movies(description)
///         SCORE WITH (visits) USING METHOD CHUNK;
///     INSERT INTO movies VALUES
///         (1, 'American Thrift', 'classic golden gate commute footage'),
///         (2, 'Amateur Film', 'amateur shots around the golden gate');
///     INSERT INTO stats VALUES (1, 5000), (2, 12);
/// "#).unwrap();
///
/// let result = session.execute(
///     r#"SELECT name FROM movies ORDER BY SCORE(description, "golden gate")
///        FETCH TOP 10 RESULTS ONLY"#).unwrap();
/// assert_eq!(result.row_count(), 2); // popular movie first
/// ```
pub struct SqlSession {
    engine: SvrEngine,
    functions: HashMap<String, FunctionDef>,
}

impl Default for SqlSession {
    fn default() -> Self {
        SqlSession::new()
    }
}

impl SqlSession {
    /// New session with an empty engine.
    pub fn new() -> SqlSession {
        SqlSession::with_engine(SvrEngine::new())
    }

    /// Wrap an existing engine.
    pub fn with_engine(engine: SvrEngine) -> SqlSession {
        SqlSession { engine, functions: HashMap::new() }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &SvrEngine {
        &self.engine
    }

    /// Mutable access to the underlying engine (maintenance, stats).
    pub fn engine_mut(&mut self) -> &mut SvrEngine {
        &mut self.engine
    }

    /// Execute one statement.
    pub fn execute(&mut self, sql: &str) -> Result<SqlResult> {
        let statement = parse_statement(sql)?;
        self.run(statement)
    }

    /// Execute a `;`-separated script, returning one result per statement.
    pub fn execute_script(&mut self, sql: &str) -> Result<Vec<SqlResult>> {
        let statements = parse_script(sql)?;
        statements.into_iter().map(|s| self.run(s)).collect()
    }

    fn run(&mut self, statement: Statement) -> Result<SqlResult> {
        match statement {
            Statement::CreateTable(ct) => self.create_table(ct),
            Statement::Insert(ins) => self.insert(ins),
            Statement::Update(u) => self.update(u),
            Statement::Delete(d) => self.delete(d),
            Statement::CreateFunction(cf) => self.create_function(cf),
            Statement::CreateTextIndex(ix) => self.create_text_index(ix),
            Statement::Select(sel) => self.select(sel),
            Statement::MergeTextIndex(name) => {
                self.engine.run_maintenance(&name)?;
                Ok(SqlResult::None)
            }
            Statement::Explain(inner) => self.explain(*inner),
            Statement::DropFunction(name) => {
                if self.functions.remove(&name.to_ascii_lowercase()).is_none() {
                    return Err(SqlError::Plan(format!("unknown function '{name}'")));
                }
                Ok(SqlResult::None)
            }
        }
    }

    /// Describe the access path of a statement without executing it.
    fn explain(&mut self, statement: Statement) -> Result<SqlResult> {
        let Statement::Select(sel) = statement else {
            return Err(SqlError::Plan("EXPLAIN supports SELECT statements".into()));
        };
        let schema = self.engine.db().table(&sel.table)?.schema().clone();
        let mut lines = Vec::new();
        let ranked = sel.order_by_score.is_some()
            || matches!(sel.predicate, Some(Predicate::Contains { .. }));
        if ranked {
            let (column, keywords, mode) = match (&sel.order_by_score, &sel.predicate) {
                (Some(obs), _) => {
                    let mode = match &sel.predicate {
                        Some(Predicate::Contains { mode, .. }) => *mode,
                        _ => MatchMode::All,
                    };
                    (obs.column.clone(), obs.keywords.clone(), mode)
                }
                (None, Some(Predicate::Contains { column, keywords, mode })) => {
                    (column.clone(), keywords.clone(), *mode)
                }
                _ => unreachable!("ranked guard"),
            };
            let index = self
                .engine
                .text_index_on(&sel.table, &column)
                .ok_or_else(|| {
                    SqlError::Plan(format!("no text index on {}.{column}", sel.table))
                })?
                .to_string();
            let method = self.engine.index(&index)?.kind();
            let k = sel.fetch.unwrap_or(10);
            lines.push(format!(
                "RankedKeywordSearch index={index} method={method} k={k} mode={}",
                match mode {
                    MatchMode::All => "conjunctive",
                    MatchMode::Any => "disjunctive",
                }
            ));
            lines.push(format!("  keywords: '{keywords}' over {}.{column}", sel.table));
            lines.push("  scores: latest SVR scores from the materialized Score view".into());
        } else {
            match &sel.predicate {
                Some(Predicate::Equals { column, .. })
                    if schema.column_index(column)? == schema.pk =>
                {
                    lines.push(format!("PointLookup {}.{column} (primary key)", sel.table));
                }
                Some(Predicate::Equals { column, .. }) => {
                    lines.push(format!("TableScan {} filter {column} = ...", sel.table));
                }
                _ => lines.push(format!("TableScan {}", sel.table)),
            }
            if let Some(k) = sel.fetch {
                lines.push(format!("  limit: {k}"));
            }
        }
        match &sel.projection {
            None => lines.push("  project: *".into()),
            Some(cols) => lines.push(format!("  project: {}", cols.join(", "))),
        }
        Ok(SqlResult::Plan(lines))
    }

    fn create_table(&mut self, ct: CreateTable) -> Result<SqlResult> {
        let columns: Vec<(&str, _)> =
            ct.columns.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        self.engine
            .create_table(Schema::new(&ct.name, &columns, ct.pk))?;
        Ok(SqlResult::None)
    }

    fn insert(&mut self, ins: Insert) -> Result<SqlResult> {
        let n = ins.rows.len();
        for row in ins.rows {
            self.engine.insert_row(&ins.table, row)?;
        }
        Ok(SqlResult::Inserted(n))
    }

    fn update(&mut self, u: Update) -> Result<SqlResult> {
        let schema = self.engine.db().table(&u.table)?.schema().clone();
        let pk_name = &schema.columns[schema.pk].0;
        if !u.key_column.eq_ignore_ascii_case(pk_name) {
            return Err(SqlError::Plan(format!(
                "UPDATE requires a primary-key predicate (WHERE {pk_name} = ...)"
            )));
        }
        self.engine.update_row(&u.table, u.key, &u.sets)?;
        Ok(SqlResult::Updated(1))
    }

    fn delete(&mut self, d: Delete) -> Result<SqlResult> {
        let schema = self.engine.db().table(&d.table)?.schema().clone();
        let pk_name = &schema.columns[schema.pk].0;
        if !d.key_column.eq_ignore_ascii_case(pk_name) {
            return Err(SqlError::Plan(format!(
                "DELETE requires a primary-key predicate (WHERE {pk_name} = ...)"
            )));
        }
        self.engine.delete_row(&d.table, d.key)?;
        Ok(SqlResult::Deleted(1))
    }

    fn create_function(&mut self, cf: CreateFunction) -> Result<SqlResult> {
        let key = cf.name.to_ascii_lowercase();
        if self.functions.contains_key(&key) {
            return Err(SqlError::Plan(format!("function '{}' already exists", cf.name)));
        }
        let def = lower_function(&cf.params, &cf.body)?;
        self.functions.insert(key, def);
        Ok(SqlResult::None)
    }

    fn create_text_index(&mut self, ix: CreateTextIndex) -> Result<SqlResult> {
        // Resolve the SCORE WITH list into structured components + at most
        // one TFIDF slot.
        let mut components: Vec<ScoreComponent> = Vec::new();
        // For each SCORE WITH entry: the component slot it maps to. The
        // TFIDF entry maps to the slot *after* the last structured one —
        // the term-score value the methods add at query time.
        let mut entry_slots: Vec<usize> = Vec::new();
        let mut tfidf_entries = 0usize;
        for entry in &ix.score_with {
            match entry {
                ScoreListEntry::Function(name) => {
                    match self.functions.get(&name.to_ascii_lowercase()) {
                        Some(FunctionDef::Component(c)) => {
                            entry_slots.push(components.len());
                            components.push(c.clone());
                        }
                        Some(FunctionDef::Agg { .. }) => {
                            return Err(SqlError::Plan(format!(
                                "'{name}' is an aggregate function; SCORE WITH takes scoring \
                                 components (functions whose body is a SELECT)"
                            )));
                        }
                        None => {
                            return Err(SqlError::Plan(format!(
                                "unknown scoring function '{name}'"
                            )))
                        }
                    }
                }
                ScoreListEntry::Tfidf => {
                    tfidf_entries += 1;
                    entry_slots.push(usize::MAX); // patched below
                }
            }
        }
        if tfidf_entries > 1 {
            return Err(SqlError::Plan("TFIDF() may appear at most once".into()));
        }
        let tfidf_slot = components.len();
        for slot in &mut entry_slots {
            if *slot == usize::MAX {
                *slot = tfidf_slot;
            }
        }

        // Resolve the aggregate expression.
        let agg: AggExpr = match &ix.aggregate_with {
            Some(name) => match self.functions.get(&name.to_ascii_lowercase()) {
                Some(FunctionDef::Agg { params, body }) => {
                    if params.len() != ix.score_with.len() {
                        return Err(SqlError::Plan(format!(
                            "aggregate '{name}' takes {} parameters but SCORE WITH lists {} \
                             entries",
                            params.len(),
                            ix.score_with.len()
                        )));
                    }
                    resolve_arith(body, params, &entry_slots)?
                }
                Some(FunctionDef::Component(_)) => {
                    return Err(SqlError::Plan(format!(
                        "'{name}' is a scoring component; AGGREGATE WITH takes an arithmetic \
                         function"
                    )));
                }
                None => {
                    return Err(SqlError::Plan(format!("unknown aggregate function '{name}'")))
                }
            },
            None => {
                // Default aggregate: the sum of every entry.
                let mut expr: Option<AggExpr> = None;
                for &slot in &entry_slots {
                    let term = AggExpr::Component(slot);
                    expr = Some(match expr {
                        None => term,
                        Some(acc) => AggExpr::Add(Box::new(acc), Box::new(term)),
                    });
                }
                expr.ok_or_else(|| SqlError::Plan("SCORE WITH list is empty".into()))?
            }
        };

        // TFIDF handling: extract the linear weight; the view evaluates the
        // aggregate with the TFIDF slot at zero (structured part), and the
        // index method adds `weight · Σ idf·ts` at query time.
        let has_tfidf = tfidf_entries > 0;
        let mut config = IndexConfig { term_weight: 0.0, ..IndexConfig::default() };
        if has_tfidf {
            config.term_weight = tfidf_weight(&agg, tfidf_slot)?;
        }
        apply_options(&mut config, &ix.options)?;

        let method = match &ix.method {
            Some(name) => {
                let kind = parse_method(name)?;
                if has_tfidf && !kind.uses_term_scores() {
                    return Err(SqlError::Plan(format!(
                        "method {kind} cannot evaluate TFIDF(); use ID_TERMSCORE, \
                         CHUNK_TERMSCORE or SCORE_THRESHOLD_TERMSCORE"
                    )));
                }
                kind
            }
            None if has_tfidf => svr_core::MethodKind::ChunkTermScore,
            None => svr_core::MethodKind::Chunk,
        };

        if components.is_empty() {
            // Pure TF-IDF ranking: constant structured part.
            components.push(ScoreComponent::Const(0.0));
        }
        let spec = SvrSpec::new(components, agg);
        self.engine
            .create_text_index(&ix.name, &ix.table, &ix.column, spec, method, config)?;
        Ok(SqlResult::None)
    }

    fn select(&mut self, sel: Select) -> Result<SqlResult> {
        let schema = self.engine.db().table(&sel.table)?.schema().clone();
        let projection = self.resolve_projection(&schema, &sel.projection)?;

        // Ranked path: ORDER BY SCORE and/or CONTAINS.
        let contains = match &sel.predicate {
            Some(Predicate::Contains { column, keywords, mode }) => {
                Some((column.clone(), keywords.clone(), *mode))
            }
            _ => None,
        };
        if sel.order_by_score.is_some() || contains.is_some() {
            let (column, keywords, mode) = match (&sel.order_by_score, &contains) {
                (Some(obs), Some((c_col, c_kw, c_mode))) => {
                    if !obs.column.eq_ignore_ascii_case(c_col) {
                        return Err(SqlError::Plan(
                            "CONTAINS and ORDER BY SCORE must reference the same column".into(),
                        ));
                    }
                    if obs.keywords != *c_kw {
                        return Err(SqlError::Plan(
                            "CONTAINS and ORDER BY SCORE must use the same keywords".into(),
                        ));
                    }
                    (obs.column.clone(), obs.keywords.clone(), *c_mode)
                }
                (Some(obs), None) => (obs.column.clone(), obs.keywords.clone(), MatchMode::All),
                (None, Some((c, k, m))) => (c.clone(), k.clone(), *m),
                (None, None) => unreachable!("guarded above"),
            };
            let index = self
                .engine
                .text_index_on(&sel.table, &column)
                .ok_or_else(|| {
                    SqlError::Plan(format!(
                        "no text index on {}.{column}; CREATE TEXT INDEX first",
                        sel.table
                    ))
                })?
                .to_string();
            let k = sel.fetch.unwrap_or(10);
            let mode = match mode {
                MatchMode::All => QueryMode::Conjunctive,
                MatchMode::Any => QueryMode::Disjunctive,
            };
            let hits = self.engine.search(&index, &keywords, k, mode)?;
            let (columns, rows) = project_ranked(&schema, &projection, hits);
            return Ok(SqlResult::Ranked { columns, rows });
        }

        // Plain path: point lookup or scan.
        let mut rows: Vec<Vec<Value>> = match &sel.predicate {
            Some(Predicate::Equals { column, value }) => {
                let idx = schema.column_index(column)?;
                if idx == schema.pk {
                    self.engine
                        .db()
                        .table(&sel.table)?
                        .get(value)?
                        .into_iter()
                        .collect()
                } else {
                    self.engine
                        .db()
                        .table(&sel.table)?
                        .scan()?
                        .into_iter()
                        .filter(|r| &r[idx] == value)
                        .collect()
                }
            }
            Some(Predicate::Contains { .. }) => unreachable!("handled in ranked path"),
            None => self.engine.db().table(&sel.table)?.scan()?,
        };
        if let Some(k) = sel.fetch {
            rows.truncate(k);
        }
        let (columns, rows) = project_rows(&schema, &projection, rows);
        Ok(SqlResult::Rows { columns, rows })
    }

    fn resolve_projection(
        &self,
        schema: &Schema,
        projection: &Option<Vec<String>>,
    ) -> Result<Option<Vec<usize>>> {
        match projection {
            None => Ok(None),
            Some(cols) => {
                let mut indices = Vec::with_capacity(cols.len());
                for col in cols {
                    indices.push(schema.column_index(col)?);
                }
                Ok(Some(indices))
            }
        }
    }
}

fn column_names(schema: &Schema, projection: &Option<Vec<usize>>) -> Vec<String> {
    match projection {
        None => schema.columns.iter().map(|(n, _)| n.clone()).collect(),
        Some(indices) => indices
            .iter()
            .map(|&i| schema.columns[i].0.clone())
            .collect(),
    }
}

fn project_rows(
    schema: &Schema,
    projection: &Option<Vec<usize>>,
    rows: Vec<Vec<Value>>,
) -> (Vec<String>, Vec<Vec<Value>>) {
    let columns = column_names(schema, projection);
    let rows = match projection {
        None => rows,
        Some(indices) => rows
            .into_iter()
            .map(|row| indices.iter().map(|&i| row[i].clone()).collect())
            .collect(),
    };
    (columns, rows)
}

fn project_ranked(
    schema: &Schema,
    projection: &Option<Vec<usize>>,
    hits: Vec<RankedRow>,
) -> (Vec<String>, Vec<RankedRow>) {
    let columns = column_names(schema, projection);
    let hits = match projection {
        None => hits,
        Some(indices) => hits
            .into_iter()
            .map(|hit| RankedRow {
                row: indices.iter().map(|&i| hit.row[i].clone()).collect(),
                score: hit.score,
            })
            .collect(),
    };
    (columns, hits)
}
