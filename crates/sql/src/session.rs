//! The SQL session: parse → plan → execute against an [`SvrEngine`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use svr_core::IndexConfig;
use svr_engine::{QueryRequest, RankedRow, SearchCursor, SvrEngine, WriteBatch};
use svr_relation::schema::Schema;
use svr_relation::{AggExpr, ScoreComponent, SvrSpec, Value};

use crate::ast::*;
use crate::error::{Result, SqlError};
use crate::parser::{parse_script, parse_statement};
use crate::plan::{
    apply_options, lower_function, parse_method, resolve_arith, resolve_ranked_path, tfidf_weight,
    FunctionDef,
};

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlResult {
    /// DDL statements.
    None,
    Inserted(usize),
    Updated(usize),
    Deleted(usize),
    /// An unranked result set.
    Rows {
        columns: Vec<String>,
        rows: Vec<Vec<Value>>,
    },
    /// A ranked keyword-search result set (scores are the latest SVR — or
    /// combined — scores).
    Ranked {
        columns: Vec<String>,
        rows: Vec<RankedRow>,
    },
    /// An `EXPLAIN` plan description, one line per step.
    Plan(Vec<String>),
    /// `COMMIT`: the transaction's operations were applied atomically.
    Committed(usize),
}

impl SqlResult {
    /// Number of data rows in the result.
    pub fn row_count(&self) -> usize {
        match self {
            SqlResult::None => 0,
            SqlResult::Inserted(n) | SqlResult::Updated(n) | SqlResult::Deleted(n) => *n,
            SqlResult::Rows { rows, .. } => rows.len(),
            SqlResult::Ranked { rows, .. } => rows.len(),
            SqlResult::Plan(lines) => lines.len(),
            SqlResult::Committed(n) => *n,
        }
    }
}

impl std::fmt::Display for SqlResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn write_table(
            f: &mut std::fmt::Formatter<'_>,
            columns: &[String],
            rows: &[Vec<String>],
        ) -> std::fmt::Result {
            let mut widths: Vec<usize> = columns.iter().map(String::len).collect();
            for row in rows {
                for (w, cell) in widths.iter_mut().zip(row) {
                    *w = (*w).max(cell.len());
                }
            }
            let header: Vec<String> = columns
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            writeln!(f, "{}", header.join(" | "))?;
            writeln!(
                f,
                "{}",
                widths
                    .iter()
                    .map(|w| "-".repeat(*w))
                    .collect::<Vec<_>>()
                    .join("-+-")
            )?;
            for row in rows {
                let cells: Vec<String> = row
                    .iter()
                    .zip(&widths)
                    .map(|(c, w)| format!("{c:<w$}"))
                    .collect();
                writeln!(f, "{}", cells.join(" | "))?;
            }
            Ok(())
        }

        fn render(v: &Value) -> String {
            match v {
                Value::Null => "NULL".into(),
                Value::Int(i) => i.to_string(),
                Value::Float(x) => format!("{x}"),
                Value::Text(s) => s.clone(),
            }
        }

        match self {
            SqlResult::None => writeln!(f, "ok"),
            SqlResult::Inserted(n) => writeln!(f, "{n} row(s) inserted"),
            SqlResult::Committed(n) => writeln!(f, "transaction committed ({n} operation(s))"),
            SqlResult::Updated(n) => writeln!(f, "{n} row(s) updated"),
            SqlResult::Deleted(n) => writeln!(f, "{n} row(s) deleted"),
            SqlResult::Rows { columns, rows } => {
                let rendered: Vec<Vec<String>> = rows
                    .iter()
                    .map(|r| r.iter().map(render).collect())
                    .collect();
                write_table(f, columns, &rendered)
            }
            SqlResult::Plan(lines) => {
                for line in lines {
                    writeln!(f, "{line}")?;
                }
                Ok(())
            }
            SqlResult::Ranked { columns, rows } => {
                let mut cols = columns.clone();
                cols.push("score".into());
                let rendered: Vec<Vec<String>> = rows
                    .iter()
                    .map(|r| {
                        let mut cells: Vec<String> = r.row.iter().map(render).collect();
                        cells.push(format!("{:.2}", r.score));
                        cells
                    })
                    .collect();
                write_table(f, &cols, &rendered)
            }
        }
    }
}

/// A named cursor opened by `DECLARE ... CURSOR FOR SELECT ...`: the
/// engine-level search cursor plus the projection resolved at declare
/// time, so every `FETCH` renders the same shape.
struct NamedCursor {
    cursor: SearchCursor,
    columns: Vec<String>,
    projection: Option<Vec<usize>>,
    /// Last `DECLARE`/`FETCH` touch, for idle-TTL expiry.
    last_used: std::time::Instant,
}

/// State shared by every clone of a session: the engine handle plus the
/// function registry (`CREATE FUNCTION` definitions are session-cluster
/// scoped, like the engine's catalog) and the named-cursor registry
/// (`DECLARE` / `FETCH` / `CLOSE` — paginated SQL that never recomputes a
/// prefix).
struct SessionShared {
    engine: SvrEngine,
    functions: RwLock<HashMap<String, FunctionDef>>,
    /// Each cursor behind its own lock: the registry mutex is held only to
    /// look entries up, never across a fetch's list traversal, so fetches
    /// on different cursors (from any session clone) run in parallel.
    cursors: Mutex<HashMap<String, Arc<Mutex<NamedCursor>>>>,
    /// Max named cursors alive at once: a client loop that forgets `CLOSE`
    /// hits a clean error instead of growing the registry without bound.
    cursor_limit: AtomicUsize,
    /// Idle time after which a named cursor expires (`None` = never, the
    /// default). Expired cursors are swept on session activity; a `FETCH`
    /// of one reports a clean expiry error instead of "unknown cursor".
    cursor_ttl: Mutex<Option<std::time::Duration>>,
    /// Names of cursors the TTL sweep removed, so a later `FETCH`/`CLOSE`
    /// can say *why* the cursor is gone. Cleared when the name is
    /// re-`DECLARE`d.
    expired_cursors: Mutex<std::collections::HashSet<String>>,
    /// The open write transaction, if any (`BEGIN` .. `COMMIT`/`ROLLBACK`):
    /// DML statements queue here and apply as one atomic
    /// [`WriteBatch`] at `COMMIT`. Shared by every clone of the session,
    /// like the cursor registry.
    txn: Mutex<Option<WriteBatch>>,
}

/// Default per-session cap on named cursors (override with
/// [`SqlSession::set_cursor_limit`]).
pub const DEFAULT_CURSOR_LIMIT: usize = 64;

/// Max names remembered as "expired" for clean `FETCH` diagnostics (see
/// [`SqlSession::sweep_expired_cursors`]).
const EXPIRED_TOMBSTONE_CAP: usize = 1024;

/// A SQL session over an [`SvrEngine`].
///
/// A session is a cheap cloneable handle: `clone()` (or
/// [`SqlSession::with_shared`]) yields another session over the *same*
/// engine and function registry, and [`SqlSession::execute`] takes
/// `&self` — so N threads can each hold a session and serve queries
/// against one shared engine while writers mutate it.
///
/// ```
/// use svr_sql::SqlSession;
///
/// let session = SqlSession::new();
/// session.execute_script(r#"
///     CREATE TABLE movies (mid INT PRIMARY KEY, name TEXT, description TEXT);
///     CREATE TABLE stats (mid INT PRIMARY KEY, nvisit INT);
///     CREATE FUNCTION visits (id INT) RETURNS FLOAT
///         RETURN SELECT s.nvisit FROM stats s WHERE s.mid = id;
///     CREATE TEXT INDEX movie_idx ON movies(description)
///         SCORE WITH (visits) USING METHOD CHUNK;
///     INSERT INTO movies VALUES
///         (1, 'American Thrift', 'classic golden gate commute footage'),
///         (2, 'Amateur Film', 'amateur shots around the golden gate');
///     INSERT INTO stats VALUES (1, 5000), (2, 12);
/// "#).unwrap();
///
/// // Serve a query from another thread over a cloned handle.
/// let server = session.clone();
/// let rows = std::thread::spawn(move || {
///     server.execute(
///         r#"SELECT name FROM movies ORDER BY SCORE(description, "golden gate")
///            FETCH TOP 10 RESULTS ONLY"#).unwrap().row_count()
/// }).join().unwrap();
/// assert_eq!(rows, 2); // popular movie first
/// ```
#[derive(Clone)]
pub struct SqlSession {
    shared: Arc<SessionShared>,
}

impl Default for SqlSession {
    fn default() -> Self {
        SqlSession::new()
    }
}

impl SqlSession {
    /// New session with an empty engine.
    pub fn new() -> SqlSession {
        SqlSession::with_engine(SvrEngine::new())
    }

    /// Wrap an engine handle (sharing whatever state it shares).
    pub fn with_engine(engine: SvrEngine) -> SqlSession {
        SqlSession {
            shared: Arc::new(SessionShared {
                engine,
                functions: RwLock::new(HashMap::new()),
                cursors: Mutex::new(HashMap::new()),
                cursor_limit: AtomicUsize::new(DEFAULT_CURSOR_LIMIT),
                cursor_ttl: Mutex::new(None),
                expired_cursors: Mutex::new(std::collections::HashSet::new()),
                txn: Mutex::new(None),
            }),
        }
    }

    /// A session over an engine shared behind an `Arc` — equivalent to
    /// `with_engine((*engine).clone())` since engine handles are cheap
    /// clones of the same shared state.
    pub fn with_shared(engine: Arc<SvrEngine>) -> SqlSession {
        SqlSession::with_engine((*engine).clone())
    }

    /// The underlying engine handle.
    pub fn engine(&self) -> &SvrEngine {
        &self.shared.engine
    }

    /// Override the per-session cap on simultaneously open named cursors
    /// (default [`DEFAULT_CURSOR_LIMIT`]). `DECLARE` past the cap errors;
    /// `CLOSE` / `CLOSE ALL` frees slots. A cap of 0 disables `DECLARE`.
    pub fn set_cursor_limit(&self, limit: usize) {
        self.shared.cursor_limit.store(limit, Ordering::Relaxed);
    }

    /// Set (or, with `None`, disable — the default) the idle TTL of named
    /// cursors: a cursor not touched by `DECLARE`/`FETCH` for longer than
    /// the TTL is swept on the next session activity, and a later `FETCH`
    /// of it reports a clean expiry error. Applies to every clone of this
    /// session (the registry is shared).
    pub fn set_cursor_ttl(&self, ttl: Option<std::time::Duration>) {
        *self.shared.cursor_ttl.lock() = ttl;
    }

    /// Drop every named cursor idle past the configured TTL. Runs at the
    /// top of [`SqlSession::execute`]; callers managing very long-lived
    /// sessions can also invoke it directly. Returns the number of
    /// cursors expired.
    pub fn sweep_expired_cursors(&self) -> usize {
        let Some(ttl) = *self.shared.cursor_ttl.lock() else {
            return 0;
        };
        let now = std::time::Instant::now();
        let mut cursors = self.shared.cursors.lock();
        let stale: Vec<String> = cursors
            .iter()
            .filter(|(_, c)| {
                // A cursor mid-FETCH on another thread is in use by
                // definition: skip it rather than block the sweep.
                c.try_lock()
                    .is_some_and(|c| now.duration_since(c.last_used) > ttl)
            })
            .map(|(name, _)| name.clone())
            .collect();
        let mut expired = self.shared.expired_cursors.lock();
        for name in &stale {
            cursors.remove(name);
            // The tombstone set only improves error messages; it must not
            // grow without bound for clients that mint unique cursor names
            // and let them all expire. Past the cap, forget the oldest
            // tombstones wholesale — their FETCH error degrades from
            // "expired" to "unknown cursor", nothing else changes.
            if expired.len() >= EXPIRED_TOMBSTONE_CAP {
                expired.clear();
            }
            expired.insert(name.clone());
        }
        stale.len()
    }

    /// True while a `BEGIN` transaction is open on this session cluster.
    pub fn in_transaction(&self) -> bool {
        self.shared.txn.lock().is_some()
    }

    fn function(&self, name: &str) -> Option<FunctionDef> {
        self.shared
            .functions
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
    }

    /// Execute one statement.
    pub fn execute(&self, sql: &str) -> Result<SqlResult> {
        self.sweep_expired_cursors();
        let statement = parse_statement(sql)?;
        self.run(statement)
    }

    /// Execute a `;`-separated script, returning one result per statement.
    pub fn execute_script(&self, sql: &str) -> Result<Vec<SqlResult>> {
        self.sweep_expired_cursors();
        let statements = parse_script(sql)?;
        statements.into_iter().map(|s| self.run(s)).collect()
    }

    /// Error for DDL attempted inside an open transaction: the write batch
    /// holds row DML only, and deferring catalog changes would let queued
    /// rows target tables/indexes that do not exist yet at `COMMIT`.
    fn reject_in_txn(&self, what: &str) -> Result<()> {
        if self.shared.txn.lock().is_some() {
            return Err(SqlError::Plan(format!(
                "{what} is not allowed inside a transaction; COMMIT or ROLLBACK first"
            )));
        }
        Ok(())
    }

    fn run(&self, statement: Statement) -> Result<SqlResult> {
        match statement {
            Statement::CreateTable(ct) => {
                self.reject_in_txn("CREATE TABLE")?;
                self.create_table(ct)
            }
            Statement::Insert(ins) => self.insert(ins),
            Statement::Update(u) => self.update(u),
            Statement::Delete(d) => self.delete(d),
            Statement::CreateFunction(cf) => {
                self.reject_in_txn("CREATE FUNCTION")?;
                self.create_function(cf)
            }
            Statement::CreateTextIndex(ix) => {
                self.reject_in_txn("CREATE TEXT INDEX")?;
                self.create_text_index(ix)
            }
            Statement::Select(sel) => self.select(sel),
            Statement::MergeTextIndex(name) => {
                self.reject_in_txn("MERGE TEXT INDEX")?;
                self.engine().run_maintenance(&name)?;
                Ok(SqlResult::None)
            }
            Statement::Explain(inner) => self.explain(*inner),
            Statement::DropFunction(name) => {
                self.reject_in_txn("DROP FUNCTION")?;
                if self
                    .shared
                    .functions
                    .write()
                    .remove(&name.to_ascii_lowercase())
                    .is_none()
                {
                    return Err(SqlError::Plan(format!("unknown function '{name}'")));
                }
                Ok(SqlResult::None)
            }
            Statement::DropTextIndex(name) => {
                self.reject_in_txn("DROP TEXT INDEX")?;
                self.engine().drop_text_index(&name)?;
                Ok(SqlResult::None)
            }
            Statement::DropTable(name) => {
                self.reject_in_txn("DROP TABLE")?;
                self.engine().drop_table(&name)?;
                Ok(SqlResult::None)
            }
            Statement::DeclareCursor { name, select } => self.declare_cursor(name, select),
            Statement::FetchCursor { name, n } => self.fetch_cursor(&name, n),
            Statement::CloseCursor(name) => {
                if self.shared.cursors.lock().remove(&name).is_none() {
                    return Err(self.missing_cursor_error(&name));
                }
                // A closed name is deliberately gone, not expired.
                self.shared.expired_cursors.lock().remove(&name);
                Ok(SqlResult::None)
            }
            Statement::CloseAllCursors => {
                self.shared.cursors.lock().clear();
                self.shared.expired_cursors.lock().clear();
                Ok(SqlResult::None)
            }
            Statement::Begin => {
                let mut txn = self.shared.txn.lock();
                if txn.is_some() {
                    return Err(SqlError::Plan(
                        "a transaction is already in progress (transactions do not nest)".into(),
                    ));
                }
                *txn = Some(WriteBatch::new());
                Ok(SqlResult::None)
            }
            Statement::Commit => {
                let batch = self
                    .shared
                    .txn
                    .lock()
                    .take()
                    .ok_or_else(|| SqlError::Plan("COMMIT outside a transaction".into()))?;
                // Applied outside the txn lock: the batch is owned now, and
                // the engine's own locking serializes the write.
                let n = self.engine().apply(batch)?;
                Ok(SqlResult::Committed(n))
            }
            Statement::Rollback => {
                self.shared
                    .txn
                    .lock()
                    .take()
                    .ok_or_else(|| SqlError::Plan("ROLLBACK outside a transaction".into()))?;
                Ok(SqlResult::None)
            }
        }
    }

    /// `DECLARE name CURSOR FOR SELECT ...`: open a resumable ranked
    /// enumeration. Only ranked selects (ORDER BY SCORE / CONTAINS) are
    /// cursorable — plain scans have no ranking to resume. A `FETCH`/`LIMIT`
    /// clause in the declaration is rejected (the page size belongs to the
    /// `FETCH n FROM name` calls); an `OFFSET` skips that many leading
    /// ranks once, at declare time.
    fn declare_cursor(&self, name: String, select: Select) -> Result<SqlResult> {
        if select.fetch.is_some() {
            return Err(SqlError::Plan(
                "a cursor SELECT takes no FETCH/LIMIT clause; pass the page size to \
                 FETCH n FROM <cursor>"
                    .into(),
            ));
        }
        let path = resolve_ranked_path(&select)?.ok_or_else(|| {
            SqlError::Plan(
                "DECLARE CURSOR requires a ranked SELECT (ORDER BY SCORE(...) or CONTAINS)".into(),
            )
        })?;
        let schema = self.engine().db().table(&select.table)?.schema().clone();
        let projection = self.resolve_projection(&schema, &select.projection)?;
        let index = self
            .engine()
            .text_index_on(&select.table, &path.column)
            .ok_or_else(|| {
                SqlError::Plan(format!(
                    "no text index on {}.{}; CREATE TEXT INDEX first",
                    select.table, path.column
                ))
            })?;
        let request = QueryRequest::new(index, &path.keywords).mode(path.query_mode());
        let mut cursor = self.engine().open_query(&request)?;
        if let Some(skip) = select.offset {
            cursor.next_hits(skip)?;
        }
        let columns = column_names(&schema, &projection);
        let mut cursors = self.shared.cursors.lock();
        if cursors.contains_key(&name) {
            return Err(SqlError::Plan(format!("cursor '{name}' already exists")));
        }
        let limit = self.shared.cursor_limit.load(Ordering::Relaxed);
        if cursors.len() >= limit {
            return Err(SqlError::Plan(format!(
                "session cursor limit reached ({limit} open cursors); CLOSE one (or CLOSE ALL) \
                 before declaring '{name}'"
            )));
        }
        self.shared.expired_cursors.lock().remove(&name);
        cursors.insert(
            name,
            Arc::new(Mutex::new(NamedCursor {
                cursor,
                columns,
                projection,
                last_used: std::time::Instant::now(),
            })),
        );
        Ok(SqlResult::None)
    }

    /// The error for a cursor name that is not in the registry: an expiry
    /// message when the TTL sweep removed it, "unknown" otherwise.
    fn missing_cursor_error(&self, name: &str) -> SqlError {
        if self.shared.expired_cursors.lock().contains(name) {
            let ttl = self.shared.cursor_ttl.lock().unwrap_or_default();
            SqlError::Plan(format!(
                "cursor '{name}' expired after {:.0?} idle (session cursor TTL); \
                 DECLARE it again to restart the enumeration",
                ttl
            ))
        } else {
            SqlError::Plan(format!("unknown cursor '{name}'"))
        }
    }

    /// `FETCH [NEXT] n FROM name`: the next page, resuming exactly where
    /// the previous fetch stopped — no prefix recomputation. Only this
    /// cursor's lock is held across the traversal; the registry lock is
    /// released first, so other cursors keep serving.
    fn fetch_cursor(&self, name: &str, n: usize) -> Result<SqlResult> {
        let entry = self
            .shared
            .cursors
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| self.missing_cursor_error(name))?;
        let mut named = entry.lock();
        named.last_used = std::time::Instant::now();
        let hits = named.cursor.next_batch(n)?;
        let rows = match &named.projection {
            None => hits,
            Some(indices) => hits
                .into_iter()
                .map(|hit| RankedRow {
                    row: indices.iter().map(|&i| hit.row[i].clone()).collect(),
                    score: hit.score,
                })
                .collect(),
        };
        Ok(SqlResult::Ranked {
            columns: named.columns.clone(),
            rows,
        })
    }

    /// Describe the access path of a statement without executing it.
    fn explain(&self, statement: Statement) -> Result<SqlResult> {
        let Statement::Select(sel) = statement else {
            return Err(SqlError::Plan("EXPLAIN supports SELECT statements".into()));
        };
        let schema = self.engine().db().table(&sel.table)?.schema().clone();
        let mut lines = Vec::new();
        if let Some(path) = resolve_ranked_path(&sel)? {
            let index = self
                .engine()
                .text_index_on(&sel.table, &path.column)
                .ok_or_else(|| {
                    SqlError::Plan(format!("no text index on {}.{}", sel.table, path.column))
                })?;
            let method = self.engine().index(&index)?.kind();
            let k = sel.fetch.unwrap_or(10);
            lines.push(format!(
                "RankedKeywordSearch index={index} method={method} k={k} mode={}",
                match path.mode {
                    MatchMode::All => "conjunctive",
                    MatchMode::Any => "disjunctive",
                }
            ));
            lines.push(format!(
                "  keywords: '{}' over {}.{}",
                path.keywords, sel.table, path.column
            ));
            // Same tokenize-and-resolve step the execution path uses.
            let (terms, unknown) = self.engine().resolve_keywords(&path.keywords);
            lines.push(format!(
                "  terms: {} resolved, {} unknown{}",
                terms.len(),
                unknown,
                if unknown > 0 && path.mode == MatchMode::All {
                    " (conjunctive: matches nothing)"
                } else {
                    ""
                }
            ));
            // Block-max seek effectiveness: run the ranked search once and
            // report how many long-list blocks the executor skipped
            // undecoded vs decoded (the search is read-only, so EXPLAIN
            // stays side-effect free).
            let before = self.engine().seek_stats();
            let locks_before = svr_engine::lock_stats();
            self.engine()
                .search(&index, &path.keywords, k, path.query_mode())?;
            let after = self.engine().seek_stats();
            let locks = svr_engine::lock_stats().delta_since(&locks_before);
            lines.push(format!(
                "  blocks: {} skipped, {} decoded (one bounded execution)",
                after.blocks_skipped.saturating_sub(before.blocks_skipped),
                after.blocks_decoded.saturating_sub(before.blocks_decoded),
            ));
            lines.push(format!(
                "  locks: {} (per-class acquisitions/contended over the execution)",
                locks
                    .iter()
                    .map(|(class, s)| format!("{class}={}/{}", s.acquisitions, s.contended))
                    .collect::<Vec<_>>()
                    .join(" ")
            ));
            if let Some(skip) = sel.offset {
                lines.push(format!(
                    "  offset: {skip} (cursor skip — prefix traversed once, then the page)"
                ));
            }
            lines.push("  scores: latest SVR scores from the materialized Score view".into());
            let shards = self.engine().index_shard_stats(&index)?;
            lines.push(format!(
                "  shards: {} (document-partitioned write path)",
                shards.len()
            ));
            for s in &shards {
                lines.push(format!(
                    "    shard {}: docs={} long_list_bytes={} long_postings={} short_postings={}",
                    s.shard, s.docs, s.long_list_bytes, s.long_postings, s.short_postings
                ));
            }
            lines.push(storage_line(
                &self.engine().index_config(&index)?,
                method,
                &shards,
            ));
        } else {
            match &sel.predicate {
                Some(Predicate::Equals { column, .. })
                    if schema.column_index(column)? == schema.pk =>
                {
                    lines.push(format!("PointLookup {}.{column} (primary key)", sel.table));
                }
                Some(Predicate::Equals { column, .. }) => {
                    lines.push(format!("TableScan {} filter {column} = ...", sel.table));
                }
                _ => lines.push(format!("TableScan {}", sel.table)),
            }
            if let Some(k) = sel.fetch {
                lines.push(format!("  limit: {k}"));
            }
        }
        match &sel.projection {
            None => lines.push("  project: *".into()),
            Some(cols) => lines.push(format!("  project: {}", cols.join(", "))),
        }
        Ok(SqlResult::Plan(lines))
    }

    fn create_table(&self, ct: CreateTable) -> Result<SqlResult> {
        let columns: Vec<(&str, _)> = ct.columns.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        self.engine()
            .create_table(Schema::new(&ct.name, &columns, ct.pk))?;
        Ok(SqlResult::None)
    }

    fn insert(&self, ins: Insert) -> Result<SqlResult> {
        let n = ins.rows.len();
        // Inside a transaction DML queues into the session write batch and
        // applies atomically at COMMIT (deferred visibility: reads — even
        // this session's own — do not see queued rows until then).
        {
            let mut txn = self.shared.txn.lock();
            if let Some(batch) = txn.as_mut() {
                for row in ins.rows {
                    batch.insert(&ins.table, row);
                }
                return Ok(SqlResult::Inserted(n));
            }
        }
        // Multi-row inserts go through the engine's batched path: one
        // writer-lock acquisition, coalesced score propagation — and, like
        // every engine write, all-or-nothing.
        let mut rows = ins.rows;
        match rows.pop() {
            Some(row) if rows.is_empty() => {
                self.engine().insert_row(&ins.table, row)?;
            }
            Some(row) => {
                rows.push(row);
                self.engine().insert_rows(&ins.table, rows)?;
            }
            None => {}
        };
        Ok(SqlResult::Inserted(n))
    }

    fn update(&self, u: Update) -> Result<SqlResult> {
        let schema = self.engine().db().table(&u.table)?.schema().clone();
        let pk_name = &schema.columns[schema.pk].0;
        if !u.key_column.eq_ignore_ascii_case(pk_name) {
            return Err(SqlError::Plan(format!(
                "UPDATE requires a primary-key predicate (WHERE {pk_name} = ...)"
            )));
        }
        {
            let mut txn = self.shared.txn.lock();
            if let Some(batch) = txn.as_mut() {
                batch.update(&u.table, u.key, u.sets);
                return Ok(SqlResult::Updated(1));
            }
        }
        self.engine().update_row(&u.table, u.key, &u.sets)?;
        Ok(SqlResult::Updated(1))
    }

    fn delete(&self, d: Delete) -> Result<SqlResult> {
        let schema = self.engine().db().table(&d.table)?.schema().clone();
        let pk_name = &schema.columns[schema.pk].0;
        if !d.key_column.eq_ignore_ascii_case(pk_name) {
            return Err(SqlError::Plan(format!(
                "DELETE requires a primary-key predicate (WHERE {pk_name} = ...)"
            )));
        }
        {
            let mut txn = self.shared.txn.lock();
            if let Some(batch) = txn.as_mut() {
                batch.delete(&d.table, d.key);
                return Ok(SqlResult::Deleted(1));
            }
        }
        self.engine().delete_row(&d.table, d.key)?;
        Ok(SqlResult::Deleted(1))
    }

    fn create_function(&self, cf: CreateFunction) -> Result<SqlResult> {
        let key = cf.name.to_ascii_lowercase();
        let def = lower_function(&cf.params, &cf.body)?;
        let mut functions = self.shared.functions.write();
        if functions.contains_key(&key) {
            return Err(SqlError::Plan(format!(
                "function '{}' already exists",
                cf.name
            )));
        }
        functions.insert(key, def);
        Ok(SqlResult::None)
    }

    fn create_text_index(&self, ix: CreateTextIndex) -> Result<SqlResult> {
        // Resolve the SCORE WITH list into structured components + at most
        // one TFIDF slot.
        let mut components: Vec<ScoreComponent> = Vec::new();
        // For each SCORE WITH entry: the component slot it maps to. The
        // TFIDF entry maps to the slot *after* the last structured one —
        // the term-score value the methods add at query time.
        let mut entry_slots: Vec<usize> = Vec::new();
        let mut tfidf_entries = 0usize;
        for entry in &ix.score_with {
            match entry {
                ScoreListEntry::Function(name) => match self.function(name) {
                    Some(FunctionDef::Component(c)) => {
                        entry_slots.push(components.len());
                        components.push(c);
                    }
                    Some(FunctionDef::Agg { .. }) => {
                        return Err(SqlError::Plan(format!(
                            "'{name}' is an aggregate function; SCORE WITH takes scoring \
                                 components (functions whose body is a SELECT)"
                        )));
                    }
                    None => {
                        return Err(SqlError::Plan(format!("unknown scoring function '{name}'")))
                    }
                },
                ScoreListEntry::Tfidf => {
                    tfidf_entries += 1;
                    entry_slots.push(usize::MAX); // patched below
                }
            }
        }
        if tfidf_entries > 1 {
            return Err(SqlError::Plan("TFIDF() may appear at most once".into()));
        }
        let tfidf_slot = components.len();
        for slot in &mut entry_slots {
            if *slot == usize::MAX {
                *slot = tfidf_slot;
            }
        }

        // Resolve the aggregate expression.
        let agg: AggExpr = match &ix.aggregate_with {
            Some(name) => match self.function(name) {
                Some(FunctionDef::Agg { params, body }) => {
                    if params.len() != ix.score_with.len() {
                        return Err(SqlError::Plan(format!(
                            "aggregate '{name}' takes {} parameters but SCORE WITH lists {} \
                             entries",
                            params.len(),
                            ix.score_with.len()
                        )));
                    }
                    resolve_arith(&body, &params, &entry_slots)?
                }
                Some(FunctionDef::Component(_)) => {
                    return Err(SqlError::Plan(format!(
                        "'{name}' is a scoring component; AGGREGATE WITH takes an arithmetic \
                         function"
                    )));
                }
                None => {
                    return Err(SqlError::Plan(format!(
                        "unknown aggregate function '{name}'"
                    )))
                }
            },
            None => {
                // Default aggregate: the sum of every entry.
                let mut expr: Option<AggExpr> = None;
                for &slot in &entry_slots {
                    let term = AggExpr::Component(slot);
                    expr = Some(match expr {
                        None => term,
                        Some(acc) => AggExpr::Add(Box::new(acc), Box::new(term)),
                    });
                }
                expr.ok_or_else(|| SqlError::Plan("SCORE WITH list is empty".into()))?
            }
        };

        // TFIDF handling: extract the linear weight; the view evaluates the
        // aggregate with the TFIDF slot at zero (structured part), and the
        // index method adds `weight · Σ idf·ts` at query time.
        let has_tfidf = tfidf_entries > 0;
        let mut config = IndexConfig {
            term_weight: 0.0,
            ..IndexConfig::default()
        };
        if has_tfidf {
            config.term_weight = tfidf_weight(&agg, tfidf_slot)?;
        }
        apply_options(&mut config, &ix.options)?;

        let method = match &ix.method {
            Some(name) => {
                let kind = parse_method(name)?;
                if has_tfidf && !kind.uses_term_scores() {
                    return Err(SqlError::Plan(format!(
                        "method {kind} cannot evaluate TFIDF(); use ID_TERMSCORE, \
                         CHUNK_TERMSCORE or SCORE_THRESHOLD_TERMSCORE"
                    )));
                }
                kind
            }
            None if has_tfidf => svr_core::MethodKind::ChunkTermScore,
            None => svr_core::MethodKind::Chunk,
        };

        if components.is_empty() {
            // Pure TF-IDF ranking: constant structured part.
            components.push(ScoreComponent::Const(0.0));
        }
        let spec = SvrSpec::new(components, agg);
        self.engine()
            .create_text_index(&ix.name, &ix.table, &ix.column, spec, method, config)?;
        Ok(SqlResult::None)
    }

    fn select(&self, sel: Select) -> Result<SqlResult> {
        let schema = self.engine().db().table(&sel.table)?.schema().clone();
        let projection = self.resolve_projection(&schema, &sel.projection)?;

        // Ranked path: ORDER BY SCORE and/or CONTAINS.
        if let Some(path) = resolve_ranked_path(&sel)? {
            let index = self
                .engine()
                .text_index_on(&sel.table, &path.column)
                .ok_or_else(|| {
                    SqlError::Plan(format!(
                        "no text index on {}.{}; CREATE TEXT INDEX first",
                        sel.table, path.column
                    ))
                })?;
            let k = sel.fetch.unwrap_or(10);
            let hits = match sel.offset.unwrap_or(0) {
                0 => self
                    .engine()
                    .search(&index, &path.keywords, k, path.query_mode())?,
                // OFFSET plans onto a cursor: ranks 1..=m are traversed
                // once to position the enumeration, then the page is
                // emitted — not a top-(m+k) recomputation in disguise at
                // the index layer, and the same path DECLARE CURSOR uses.
                skip => {
                    let request =
                        QueryRequest::new(index.clone(), &path.keywords).mode(path.query_mode());
                    let mut cursor = self.engine().open_query(&request)?;
                    cursor.next_hits(skip)?;
                    cursor.next_batch(k)?
                }
            };
            let (columns, rows) = project_ranked(&schema, &projection, hits);
            return Ok(SqlResult::Ranked { columns, rows });
        }

        // Plain path: point lookup or scan.
        let mut rows: Vec<Vec<Value>> = match &sel.predicate {
            Some(Predicate::Equals { column, value }) => {
                let idx = schema.column_index(column)?;
                if idx == schema.pk {
                    self.engine()
                        .db()
                        .table(&sel.table)?
                        .get(value)?
                        .into_iter()
                        .collect()
                } else {
                    self.engine()
                        .db()
                        .table(&sel.table)?
                        .scan()?
                        .into_iter()
                        .filter(|r| &r[idx] == value)
                        .collect()
                }
            }
            Some(Predicate::Contains { .. }) => unreachable!("handled in ranked path"),
            None => self.engine().db().table(&sel.table)?.scan()?,
        };
        if let Some(m) = sel.offset {
            rows.drain(..m.min(rows.len()));
        }
        if let Some(k) = sel.fetch {
            rows.truncate(k);
        }
        let (columns, rows) = project_rows(&schema, &projection, rows);
        Ok(SqlResult::Rows { columns, rows })
    }

    fn resolve_projection(
        &self,
        schema: &Schema,
        projection: &Option<Vec<String>>,
    ) -> Result<Option<Vec<usize>>> {
        match projection {
            None => Ok(None),
            Some(cols) => {
                let mut indices = Vec::with_capacity(cols.len());
                for col in cols {
                    indices.push(schema.column_index(col)?);
                }
                Ok(Some(indices))
            }
        }
    }
}

/// The `EXPLAIN` storage summary: physical long-list bytes, bytes per
/// posting, and the compression ratio against a codec-free fixed-width
/// layout of the method's list format.
fn storage_line(
    config: &IndexConfig,
    method: svr_core::MethodKind,
    shards: &[svr_core::ShardStats],
) -> String {
    use svr_core::codec::fixed_posting_width;
    use svr_core::long_list::ListFormat;
    use svr_core::MethodKind;

    let bytes: u64 = shards.iter().map(|s| s.long_list_bytes).sum();
    let postings: u64 = shards.iter().map(|s| s.long_postings).sum();
    let format = match method {
        MethodKind::Id => Some(ListFormat::Id { with_scores: false }),
        MethodKind::IdTermScore => Some(ListFormat::Id { with_scores: true }),
        MethodKind::Chunk => Some(ListFormat::Chunked { with_scores: false }),
        MethodKind::ChunkTermScore => Some(ListFormat::Chunked { with_scores: true }),
        MethodKind::ScoreThreshold => Some(ListFormat::Score { with_scores: false }),
        MethodKind::ScoreThresholdTermScore => Some(ListFormat::Score { with_scores: true }),
        // The Score method's clustered tree is not posting-addressed.
        MethodKind::Score => None,
    };
    match format {
        Some(format) if postings > 0 => {
            let per = bytes as f64 / postings as f64;
            let fixed = fixed_posting_width(format) as f64;
            format!(
                "  storage: codec={} long_list_bytes={bytes} postings={postings} \
                 ({per:.2} B/posting, {:.2}x vs {fixed:.0} B fixed-width)",
                config.codec.name(),
                fixed / per,
            )
        }
        _ => format!(
            "  storage: codec={} long_list_bytes={bytes}",
            config.codec.name()
        ),
    }
}

fn column_names(schema: &Schema, projection: &Option<Vec<usize>>) -> Vec<String> {
    match projection {
        None => schema.columns.iter().map(|(n, _)| n.clone()).collect(),
        Some(indices) => indices
            .iter()
            .map(|&i| schema.columns[i].0.clone())
            .collect(),
    }
}

fn project_rows(
    schema: &Schema,
    projection: &Option<Vec<usize>>,
    rows: Vec<Vec<Value>>,
) -> (Vec<String>, Vec<Vec<Value>>) {
    let columns = column_names(schema, projection);
    let rows = match projection {
        None => rows,
        Some(indices) => rows
            .into_iter()
            .map(|row| indices.iter().map(|&i| row[i].clone()).collect())
            .collect(),
    };
    (columns, rows)
}

fn project_ranked(
    schema: &Schema,
    projection: &Option<Vec<usize>>,
    hits: Vec<RankedRow>,
) -> (Vec<String>, Vec<RankedRow>) {
    let columns = column_names(schema, projection);
    let hits = match projection {
        None => hits,
        Some(indices) => hits
            .into_iter()
            .map(|hit| RankedRow {
                row: indices.iter().map(|&i| hit.row[i].clone()).collect(),
                score: hit.score,
            })
            .collect(),
    };
    (columns, hits)
}
