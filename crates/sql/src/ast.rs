//! Abstract syntax for the SQL dialect.
//!
//! The dialect covers exactly what the paper needs (§3.1 and the SQL/MM
//! query of Figure 1): table DDL and DML, SQL-bodied scoring functions,
//! `CREATE TEXT INDEX ... SCORE WITH ... AGGREGATE WITH`, and ranked
//! keyword-search `SELECT`s with `ORDER BY score(col, "keywords")` and
//! `FETCH TOP k RESULTS ONLY`.

use svr_relation::schema::ColumnType;
use svr_relation::Value;

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    CreateTable(CreateTable),
    Insert(Insert),
    Update(Update),
    Delete(Delete),
    CreateFunction(CreateFunction),
    CreateTextIndex(CreateTextIndex),
    Select(Select),
    /// `MERGE TEXT INDEX name` — the offline short-list merge (§5.1).
    MergeTextIndex(String),
    /// `EXPLAIN SELECT ...` — describe the access path without running it.
    Explain(Box<Statement>),
    /// `DROP FUNCTION name` — unregister a scoring/aggregate function.
    DropFunction(String),
    /// `DROP TEXT INDEX name` — tear down a text index and its score view.
    DropTextIndex(String),
    /// `DROP TABLE name` — drop a table (fails while indexed).
    DropTable(String),
    /// `DECLARE name CURSOR FOR SELECT ...` — open a named resumable
    /// ranked-search cursor in the session.
    DeclareCursor {
        name: String,
        select: Select,
    },
    /// `FETCH [NEXT] n FROM name` — the next `n` rows of a named cursor.
    FetchCursor {
        name: String,
        n: usize,
    },
    /// `CLOSE name` — discard a named cursor.
    CloseCursor(String),
    /// `CLOSE ALL` — discard every named cursor of the session.
    CloseAllCursors,
    /// `BEGIN [TRANSACTION | WORK]` — start accumulating DML into a
    /// session write transaction.
    Begin,
    /// `COMMIT [TRANSACTION | WORK]` — apply the accumulated DML as one
    /// atomic [`svr_engine::WriteBatch`].
    Commit,
    /// `ROLLBACK [TRANSACTION | WORK]` — discard the accumulated DML.
    Rollback,
}

/// `CREATE TABLE name (col TYPE [PRIMARY KEY], ...)`
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    pub name: String,
    pub columns: Vec<(String, ColumnType)>,
    /// Index of the column declared `PRIMARY KEY` (first column if none).
    pub pk: usize,
}

/// `INSERT INTO name VALUES (...), (...)`
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    pub table: String,
    pub rows: Vec<Vec<Value>>,
}

/// `UPDATE name SET col = lit, ... WHERE pkcol = lit`
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    pub table: String,
    pub sets: Vec<(String, Value)>,
    pub key_column: String,
    pub key: Value,
}

/// `DELETE FROM name WHERE pkcol = lit`
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    pub table: String,
    pub key_column: String,
    pub key: Value,
}

/// An arithmetic expression over named parameters (the body of an `Agg`
/// function).
#[derive(Debug, Clone, PartialEq)]
pub enum Arith {
    Param(String),
    Literal(f64),
    Neg(Box<Arith>),
    Add(Box<Arith>, Box<Arith>),
    Sub(Box<Arith>, Box<Arith>),
    Mul(Box<Arith>, Box<Arith>),
    Div(Box<Arith>, Box<Arith>),
}

/// The aggregate applied by a scoring-component body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComponentAgg {
    Avg,
    Sum,
    Count,
    /// Bare column lookup (`SELECT S.nVisit FROM Statistics S WHERE ...`).
    Column,
}

/// The body of a `CREATE FUNCTION`.
#[derive(Debug, Clone, PartialEq)]
pub enum FunctionBody {
    /// `RETURN SELECT AVG(r.rating) FROM reviews r WHERE r.mid = id` —
    /// a scoring component (§3.1's `S1..Sm`).
    Component {
        agg: ComponentAgg,
        /// Aggregated column (`None` for `COUNT(*)`).
        value_column: Option<String>,
        table: String,
        /// Column equated with the function parameter.
        key_column: String,
        /// The parameter name used in the WHERE clause.
        param: String,
    },
    /// `RETURN (s1*100 + s2/2 + s3)` — an `Agg` combinator.
    Arith(Arith),
}

/// `CREATE FUNCTION name (p TYPE, ...) RETURNS FLOAT RETURN body`
#[derive(Debug, Clone, PartialEq)]
pub struct CreateFunction {
    pub name: String,
    pub params: Vec<String>,
    pub body: FunctionBody,
}

/// One entry of a text index's `SCORE WITH (...)` list.
#[derive(Debug, Clone, PartialEq)]
pub enum ScoreListEntry {
    /// A named scoring function.
    Function(String),
    /// The built-in `TFIDF()` term-score slot.
    Tfidf,
}

/// One `OPTIONS (...)` value: numeric knobs (`chunk_ratio = 6.12`) or named
/// settings (`codec = varint`).
#[derive(Debug, Clone, PartialEq)]
pub enum OptionValue {
    Number(f64),
    Name(String),
}

/// `CREATE TEXT INDEX name ON table(col) SCORE WITH (S1, ..., [TFIDF()])
///  AGGREGATE WITH agg [USING METHOD kind] [OPTIONS (k = v, ...)]`
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTextIndex {
    pub name: String,
    pub table: String,
    pub column: String,
    pub score_with: Vec<ScoreListEntry>,
    /// Name of the `Agg` function (identity over one component if omitted).
    pub aggregate_with: Option<String>,
    /// Index method name (`CHUNK`, `SCORE_THRESHOLD`, ... ) if given.
    pub method: Option<String>,
    /// `OPTIONS (chunk_ratio = 6.12, codec = varint, ...)` knob overrides.
    pub options: Vec<(String, OptionValue)>,
}

/// Keyword-match mode of a `CONTAINS` predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchMode {
    All,
    Any,
}

/// WHERE clause forms.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `CONTAINS(col, 'keywords' [, ALL|ANY])` (one keyword string,
    /// whitespace-tokenized) or the multi-term infix form
    /// `col CONTAINS ALL|ANY ('kw1', 'kw2', ...)`.
    Contains {
        column: String,
        keywords: Vec<String>,
        mode: MatchMode,
    },
    /// `col = literal`
    Equals { column: String, value: Value },
}

/// `ORDER BY score(col, "keywords") [DESC]` or the multi-keyword ranking
/// clause `RANK BY col ('kw1', 'kw2', ...)`.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByScore {
    pub column: String,
    pub keywords: Vec<String>,
    /// `None` for legacy `ORDER BY SCORE(...)` (defaults to ALL when it
    /// stands alone); `Some(Any)` for `RANK BY`, which ranks documents
    /// matching any keyword and drops unknown terms instead of returning
    /// an empty set.
    pub mode: Option<MatchMode>,
}

/// `SELECT projection FROM table [alias] [WHERE p] [ORDER BY score(...)]
///  [OFFSET m ROWS] [FETCH TOP k RESULTS ONLY | LIMIT k [OFFSET m]]`
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// `None` means `*`.
    pub projection: Option<Vec<String>>,
    pub table: String,
    pub alias: Option<String>,
    pub predicate: Option<Predicate>,
    pub order_by_score: Option<OrderByScore>,
    /// `FETCH TOP k RESULTS ONLY` / `FETCH FIRST|NEXT k ROWS ONLY` /
    /// `LIMIT k`.
    pub fetch: Option<usize>,
    /// `OFFSET m [ROWS]` (before FETCH, SQL standard) or `LIMIT k OFFSET m`
    /// — ranked queries plan it as a cursor skip, so the prefix is
    /// traversed once, not recomputed per page.
    pub offset: Option<usize>,
}
