//! Recursive-descent parser for the SVR SQL dialect.
//!
//! Keywords are case-insensitive. `parse_script` splits on `;` and returns
//! one [`Statement`] per non-empty statement.

use svr_relation::schema::ColumnType;
use svr_relation::Value;

use crate::ast::*;
use crate::error::{Result, SqlError};
use crate::lexer::{tokenize, Token, TokenKind};

/// Parse a single statement (a trailing `;` is allowed).
pub fn parse_statement(input: &str) -> Result<Statement> {
    let mut statements = parse_script(input)?;
    match statements.pop() {
        None => Err(SqlError::Parse(0, "empty statement".into())),
        Some(stmt) if statements.is_empty() => Ok(stmt),
        Some(_) => Err(SqlError::Parse(
            0,
            "multiple statements given; use parse_script".into(),
        )),
    }
}

/// Parse a `;`-separated script.
pub fn parse_script(input: &str) -> Result<Vec<Statement>> {
    let tokens = tokenize(input)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    loop {
        while parser.eat_kind(&TokenKind::Semi) {}
        if parser.at_end() {
            break;
        }
        out.push(parser.statement()?);
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn here(&self) -> usize {
        self.peek()
            .map_or_else(|| self.tokens.last().map_or(0, |t| t.pos + 1), |t| t.pos)
    }

    fn error(&self, msg: impl Into<String>) -> SqlError {
        SqlError::Parse(self.here(), msg.into())
    }

    fn next(&mut self) -> Result<Token> {
        let token = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| self.error("unexpected end of input"))?;
        self.pos += 1;
        Ok(token)
    }

    /// Consume the next token if it equals `kind`.
    fn eat_kind(&mut self, kind: &TokenKind) -> bool {
        if self.peek().map(|t| &t.kind) == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consume an optional `TRANSACTION` / `WORK` after BEGIN / COMMIT /
    /// ROLLBACK (both standard spellings, both meaningless here).
    fn eat_transaction_noise(&mut self) {
        let _ = self.eat_keyword("TRANSACTION") || self.eat_keyword("WORK");
    }

    /// Consume the next token if it is the given (case-insensitive) keyword.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self
            .peek()
            .and_then(|t| t.kind.keyword())
            .is_some_and(|k| k == kw)
        {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!(
                "expected {kw}, found {}",
                self.peek()
                    .map_or_else(|| "end of input".to_string(), |t| t.kind.to_string())
            )))
        }
    }

    fn expect_kind(&mut self, kind: &TokenKind) -> Result<()> {
        if self.eat_kind(kind) {
            Ok(())
        } else {
            Err(self.error(format!(
                "expected {kind}, found {}",
                self.peek()
                    .map_or_else(|| "end of input".to_string(), |t| t.kind.to_string())
            )))
        }
    }

    fn identifier(&mut self) -> Result<String> {
        match self.next()?.kind {
            TokenKind::Ident(s) => Ok(s),
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    fn number(&mut self) -> Result<f64> {
        match self.next()?.kind {
            TokenKind::Number(n) => Ok(n),
            other => Err(self.error(format!("expected number, found {other}"))),
        }
    }

    fn string(&mut self) -> Result<String> {
        match self.next()?.kind {
            TokenKind::Str(s) => Ok(s),
            other => Err(self.error(format!("expected string literal, found {other}"))),
        }
    }

    /// A possibly table-qualified column name; the qualifier is discarded
    /// (the dialect has single-table scope everywhere it appears).
    fn column_ref(&mut self) -> Result<String> {
        let first = self.identifier()?;
        if self.eat_kind(&TokenKind::Dot) {
            self.identifier()
        } else {
            Ok(first)
        }
    }

    fn literal(&mut self) -> Result<Value> {
        match self.peek().map(|t| t.kind.clone()) {
            Some(TokenKind::Minus) => {
                self.pos += 1;
                match self.next()?.kind {
                    TokenKind::Number(n) => Ok(number_value(-n)),
                    other => Err(self.error(format!("expected number after '-', found {other}"))),
                }
            }
            Some(TokenKind::Number(n)) => {
                self.pos += 1;
                Ok(number_value(n))
            }
            Some(TokenKind::Str(s)) => {
                self.pos += 1;
                Ok(Value::Text(s))
            }
            Some(TokenKind::Ident(s)) if s.eq_ignore_ascii_case("null") => {
                self.pos += 1;
                Ok(Value::Null)
            }
            _ => Err(self.error("expected literal")),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        let kw = self
            .peek()
            .and_then(|t| t.kind.keyword())
            .ok_or_else(|| self.error("expected statement keyword"))?;
        match kw.as_str() {
            "CREATE" => self.create(),
            "INSERT" => self.insert(),
            "UPDATE" => self.update(),
            "DELETE" => self.delete(),
            "SELECT" => self.select(),
            "MERGE" => self.merge(),
            "DECLARE" => self.declare_cursor(),
            "FETCH" => self.fetch_cursor(),
            "CLOSE" => {
                self.pos += 1;
                if self.eat_keyword("ALL") {
                    Ok(Statement::CloseAllCursors)
                } else {
                    Ok(Statement::CloseCursor(self.identifier()?))
                }
            }
            "BEGIN" => {
                self.pos += 1;
                self.eat_transaction_noise();
                Ok(Statement::Begin)
            }
            "COMMIT" => {
                self.pos += 1;
                self.eat_transaction_noise();
                Ok(Statement::Commit)
            }
            "ROLLBACK" => {
                self.pos += 1;
                self.eat_transaction_noise();
                Ok(Statement::Rollback)
            }
            "EXPLAIN" => {
                self.pos += 1;
                Ok(Statement::Explain(Box::new(self.statement()?)))
            }
            "DROP" => {
                self.pos += 1;
                if self.eat_keyword("FUNCTION") {
                    Ok(Statement::DropFunction(self.identifier()?))
                } else if self.eat_keyword("TABLE") {
                    Ok(Statement::DropTable(self.identifier()?))
                } else if self.eat_keyword("TEXT") {
                    self.expect_keyword("INDEX")?;
                    Ok(Statement::DropTextIndex(self.identifier()?))
                } else {
                    Err(self.error("expected FUNCTION, TABLE or TEXT INDEX after DROP"))
                }
            }
            other => Err(self.error(format!("unknown statement '{other}'"))),
        }
    }

    // -- CREATE ------------------------------------------------------------

    fn create(&mut self) -> Result<Statement> {
        self.expect_keyword("CREATE")?;
        if self.eat_keyword("TABLE") {
            return self.create_table();
        }
        if self.eat_keyword("FUNCTION") {
            return self.create_function();
        }
        if self.eat_keyword("TEXT") {
            self.expect_keyword("INDEX")?;
            return self.create_text_index();
        }
        Err(self.error("expected TABLE, FUNCTION or TEXT INDEX after CREATE"))
    }

    fn column_type(&mut self) -> Result<ColumnType> {
        let name = self.identifier()?.to_ascii_uppercase();
        let ty = match name.as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" => ColumnType::Int,
            "FLOAT" | "REAL" | "DOUBLE" | "DECIMAL" | "NUMERIC" => ColumnType::Float,
            "TEXT" | "VARCHAR" | "CHAR" | "CLOB" | "STRING" => ColumnType::Text,
            other => return Err(self.error(format!("unknown type '{other}'"))),
        };
        // Optional length, e.g. VARCHAR(255).
        if self.eat_kind(&TokenKind::LParen) {
            self.number()?;
            self.expect_kind(&TokenKind::RParen)?;
        }
        Ok(ty)
    }

    fn create_table(&mut self) -> Result<Statement> {
        let name = self.identifier()?;
        self.expect_kind(&TokenKind::LParen)?;
        let mut columns = Vec::new();
        let mut pk = None;
        loop {
            let col = self.identifier()?;
            let ty = self.column_type()?;
            if self.eat_keyword("PRIMARY") {
                self.expect_keyword("KEY")?;
                if pk.replace(columns.len()).is_some() {
                    return Err(self.error("multiple PRIMARY KEY columns"));
                }
            }
            columns.push((col, ty));
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_kind(&TokenKind::RParen)?;
        Ok(Statement::CreateTable(CreateTable {
            name,
            pk: pk.unwrap_or(0),
            columns,
        }))
    }

    fn create_function(&mut self) -> Result<Statement> {
        let name = self.identifier()?;
        self.expect_kind(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.eat_kind(&TokenKind::RParen) {
            loop {
                let pname = self.identifier()?;
                // Optional `name: type` or `name type` annotation.
                if !matches!(
                    self.peek().map(|t| &t.kind),
                    Some(TokenKind::Comma) | Some(TokenKind::RParen)
                ) {
                    self.column_type()?;
                }
                params.push(pname);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_kind(&TokenKind::RParen)?;
        }
        self.expect_keyword("RETURNS")?;
        self.column_type()?;
        self.expect_keyword("RETURN")?;
        let body = if self
            .peek()
            .and_then(|t| t.kind.keyword())
            .is_some_and(|k| k == "SELECT")
        {
            self.component_body(&params)?
        } else {
            FunctionBody::Arith(self.arith(0)?)
        };
        Ok(Statement::CreateFunction(CreateFunction {
            name,
            params,
            body,
        }))
    }

    /// `SELECT AVG(r.rating) FROM reviews r WHERE r.mid = id`
    fn component_body(&mut self, params: &[String]) -> Result<FunctionBody> {
        self.expect_keyword("SELECT")?;
        let (agg, value_column) = {
            let kw = self
                .peek()
                .and_then(|t| t.kind.keyword())
                .unwrap_or_default();
            match kw.as_str() {
                "AVG" | "SUM" => {
                    self.pos += 1;
                    self.expect_kind(&TokenKind::LParen)?;
                    let col = self.column_ref()?;
                    self.expect_kind(&TokenKind::RParen)?;
                    (
                        if kw == "AVG" {
                            ComponentAgg::Avg
                        } else {
                            ComponentAgg::Sum
                        },
                        Some(col),
                    )
                }
                "COUNT" => {
                    self.pos += 1;
                    self.expect_kind(&TokenKind::LParen)?;
                    if !self.eat_kind(&TokenKind::Star) {
                        self.column_ref()?; // COUNT(col) behaves as COUNT(*)
                    }
                    self.expect_kind(&TokenKind::RParen)?;
                    (ComponentAgg::Count, None)
                }
                _ => (ComponentAgg::Column, Some(self.column_ref()?)),
            }
        };
        self.expect_keyword("FROM")?;
        let table = self.identifier()?;
        // Optional table alias (not WHERE).
        if self
            .peek()
            .and_then(|t| t.kind.keyword())
            .is_some_and(|k| k != "WHERE")
            && matches!(self.peek().map(|t| &t.kind), Some(TokenKind::Ident(_)))
        {
            self.identifier()?;
        }
        self.expect_keyword("WHERE")?;
        let key_column = self.column_ref()?;
        self.expect_kind(&TokenKind::Eq)?;
        let param = self.identifier()?;
        if !params.iter().any(|p| p.eq_ignore_ascii_case(&param)) {
            return Err(self.error(format!(
                "WHERE clause references '{param}', which is not a function parameter"
            )));
        }
        Ok(FunctionBody::Component {
            agg,
            value_column,
            table,
            key_column,
            param,
        })
    }

    /// Pratt parser for `Agg` arithmetic bodies.
    fn arith(&mut self, min_bp: u8) -> Result<Arith> {
        let mut lhs = self.arith_atom()?;
        loop {
            let (op, bp) = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Plus) => ('+', 1),
                Some(TokenKind::Minus) => ('-', 1),
                Some(TokenKind::Star) => ('*', 2),
                Some(TokenKind::Slash) => ('/', 2),
                _ => break,
            };
            if bp < min_bp {
                break;
            }
            self.pos += 1;
            let rhs = self.arith(bp + 1)?;
            lhs = match op {
                '+' => Arith::Add(Box::new(lhs), Box::new(rhs)),
                '-' => Arith::Sub(Box::new(lhs), Box::new(rhs)),
                '*' => Arith::Mul(Box::new(lhs), Box::new(rhs)),
                _ => Arith::Div(Box::new(lhs), Box::new(rhs)),
            };
        }
        Ok(lhs)
    }

    fn arith_atom(&mut self) -> Result<Arith> {
        match self.peek().map(|t| t.kind.clone()) {
            Some(TokenKind::LParen) => {
                self.pos += 1;
                let inner = self.arith(0)?;
                self.expect_kind(&TokenKind::RParen)?;
                Ok(inner)
            }
            Some(TokenKind::Minus) => {
                self.pos += 1;
                Ok(Arith::Neg(Box::new(self.arith_atom()?)))
            }
            Some(TokenKind::Number(n)) => {
                self.pos += 1;
                Ok(Arith::Literal(n))
            }
            Some(TokenKind::Ident(name)) => {
                self.pos += 1;
                Ok(Arith::Param(name))
            }
            _ => Err(self.error("expected arithmetic expression")),
        }
    }

    fn create_text_index(&mut self) -> Result<Statement> {
        let name = self.identifier()?;
        self.expect_keyword("ON")?;
        let table = self.identifier()?;
        self.expect_kind(&TokenKind::LParen)?;
        let column = self.identifier()?;
        self.expect_kind(&TokenKind::RParen)?;
        self.expect_keyword("SCORE")?;
        self.expect_keyword("WITH")?;
        self.expect_kind(&TokenKind::LParen)?;
        let mut score_with = Vec::new();
        loop {
            let entry = self.identifier()?;
            if entry.eq_ignore_ascii_case("tfidf") {
                // Optional `()`.
                if self.eat_kind(&TokenKind::LParen) {
                    self.expect_kind(&TokenKind::RParen)?;
                }
                score_with.push(ScoreListEntry::Tfidf);
            } else {
                score_with.push(ScoreListEntry::Function(entry));
            }
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_kind(&TokenKind::RParen)?;
        let mut aggregate_with = None;
        if self.eat_keyword("AGGREGATE") {
            self.expect_keyword("WITH")?;
            aggregate_with = Some(self.identifier()?);
        }
        let mut method = None;
        if self.eat_keyword("USING") {
            self.expect_keyword("METHOD")?;
            method = Some(self.identifier()?);
        }
        let mut options = Vec::new();
        if self.eat_keyword("OPTIONS") {
            self.expect_kind(&TokenKind::LParen)?;
            loop {
                let key = self.identifier()?;
                self.expect_kind(&TokenKind::Eq)?;
                let value = match self.next()?.kind {
                    TokenKind::Number(n) => OptionValue::Number(n),
                    TokenKind::Ident(s) => OptionValue::Name(s),
                    other => {
                        return Err(self.error(format!(
                            "expected number or name as option value, found {other}"
                        )))
                    }
                };
                options.push((key.to_ascii_lowercase(), value));
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_kind(&TokenKind::RParen)?;
        }
        Ok(Statement::CreateTextIndex(CreateTextIndex {
            name,
            table,
            column,
            score_with,
            aggregate_with,
            method,
            options,
        }))
    }

    // -- DML ----------------------------------------------------------------

    fn insert(&mut self) -> Result<Statement> {
        self.expect_keyword("INSERT")?;
        self.expect_keyword("INTO")?;
        let table = self.identifier()?;
        self.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_kind(&TokenKind::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.literal()?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_kind(&TokenKind::RParen)?;
            rows.push(row);
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        Ok(Statement::Insert(Insert { table, rows }))
    }

    fn update(&mut self) -> Result<Statement> {
        self.expect_keyword("UPDATE")?;
        let table = self.identifier()?;
        self.expect_keyword("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.column_ref()?;
            self.expect_kind(&TokenKind::Eq)?;
            sets.push((col, self.literal()?));
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_keyword("WHERE")?;
        let key_column = self.column_ref()?;
        self.expect_kind(&TokenKind::Eq)?;
        let key = self.literal()?;
        Ok(Statement::Update(Update {
            table,
            sets,
            key_column,
            key,
        }))
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_keyword("DELETE")?;
        self.expect_keyword("FROM")?;
        let table = self.identifier()?;
        self.expect_keyword("WHERE")?;
        let key_column = self.column_ref()?;
        self.expect_kind(&TokenKind::Eq)?;
        let key = self.literal()?;
        Ok(Statement::Delete(Delete {
            table,
            key_column,
            key,
        }))
    }

    // -- SELECT ---------------------------------------------------------------

    fn select(&mut self) -> Result<Statement> {
        self.expect_keyword("SELECT")?;
        let projection = if self.eat_kind(&TokenKind::Star) {
            None
        } else {
            let mut cols = Vec::new();
            loop {
                cols.push(self.column_ref()?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
            Some(cols)
        };
        self.expect_keyword("FROM")?;
        let table = self.identifier()?;
        // Optional alias — any identifier that is not a clause keyword.
        let alias = match self.peek().and_then(|t| t.kind.keyword()) {
            Some(kw)
                if !matches!(
                    kw.as_str(),
                    "WHERE" | "ORDER" | "RANK" | "FETCH" | "LIMIT" | "OFFSET"
                ) =>
            {
                Some(self.identifier()?)
            }
            _ => None,
        };
        let mut predicate = None;
        if self.eat_keyword("WHERE") {
            predicate = Some(self.predicate()?);
        }
        let mut order_by_score = None;
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            self.expect_keyword("SCORE")?;
            self.expect_kind(&TokenKind::LParen)?;
            let column = self.column_ref()?;
            self.expect_kind(&TokenKind::Comma)?;
            let keywords = vec![self.string()?];
            self.expect_kind(&TokenKind::RParen)?;
            // DESC is the only supported (and default) direction: ranking
            // is always best-first.
            let _ = self.eat_keyword("DESC");
            order_by_score = Some(OrderByScore {
                column,
                keywords,
                mode: None,
            });
        } else if self.eat_keyword("RANK") {
            // `RANK BY col ('kw1', 'kw2', ...)` — multi-keyword ranking.
            // Disjunctive by default (a document matching any keyword
            // ranks; unknown terms are dropped); combine with a
            // `CONTAINS ALL` predicate for conjunctive semantics.
            self.expect_keyword("BY")?;
            let column = self.column_ref()?;
            self.expect_kind(&TokenKind::LParen)?;
            let keywords = self.string_list()?;
            self.expect_kind(&TokenKind::RParen)?;
            let _ = self.eat_keyword("DESC");
            order_by_score = Some(OrderByScore {
                column,
                keywords,
                mode: Some(MatchMode::Any),
            });
        }
        let mut fetch = None;
        let mut offset = None;
        // SQL-standard position: OFFSET m [ROWS] before the FETCH clause.
        if self.eat_keyword("OFFSET") {
            offset = Some(self.count()?);
            if !self.eat_keyword("ROWS") {
                let _ = self.eat_keyword("ROW");
            }
        }
        if self.eat_keyword("FETCH") {
            // FETCH TOP k RESULTS ONLY (the paper) or FETCH FIRST|NEXT k
            // ROWS ONLY (SQL standard — NEXT pairs with OFFSET pagination).
            let style = self
                .peek()
                .and_then(|t| t.kind.keyword())
                .unwrap_or_default();
            match style.as_str() {
                "TOP" => {
                    self.pos += 1;
                    fetch = Some(self.count()?);
                    self.expect_keyword("RESULTS")?;
                    self.expect_keyword("ONLY")?;
                }
                "FIRST" | "NEXT" => {
                    self.pos += 1;
                    fetch = Some(self.count()?);
                    if !self.eat_keyword("ROWS") {
                        self.expect_keyword("ROW")?;
                    }
                    self.expect_keyword("ONLY")?;
                }
                _ => return Err(self.error("expected TOP, FIRST or NEXT after FETCH")),
            }
        } else if self.eat_keyword("LIMIT") {
            fetch = Some(self.count()?);
            // MySQL/PostgreSQL style: LIMIT k OFFSET m.
            if offset.is_none() && self.eat_keyword("OFFSET") {
                offset = Some(self.count()?);
            }
        }
        Ok(Statement::Select(Select {
            projection,
            table,
            alias,
            predicate,
            order_by_score,
            fetch,
            offset,
        }))
    }

    fn count(&mut self) -> Result<usize> {
        let n = self.number()?;
        if n < 0.0 || n.fract() != 0.0 {
            return Err(self.error("expected a non-negative integer count"));
        }
        Ok(n as usize)
    }

    /// A parenthesized body's comma-separated string literals (at least
    /// one): the keyword lists of `CONTAINS ALL|ANY (...)` and `RANK BY`.
    fn string_list(&mut self) -> Result<Vec<String>> {
        let mut strings = vec![self.string()?];
        while self.eat_kind(&TokenKind::Comma) {
            strings.push(self.string()?);
        }
        Ok(strings)
    }

    fn predicate(&mut self) -> Result<Predicate> {
        if self.eat_keyword("CONTAINS") {
            // Function form: `CONTAINS(col, 'keywords' [, ALL|ANY])`.
            self.expect_kind(&TokenKind::LParen)?;
            let column = self.column_ref()?;
            self.expect_kind(&TokenKind::Comma)?;
            let keywords = vec![self.string()?];
            let mode = if self.eat_kind(&TokenKind::Comma) {
                let kw = self.identifier()?.to_ascii_uppercase();
                match kw.as_str() {
                    "ALL" => MatchMode::All,
                    "ANY" => MatchMode::Any,
                    other => {
                        return Err(self.error(format!("expected ALL or ANY, found '{other}'")))
                    }
                }
            } else {
                MatchMode::All
            };
            self.expect_kind(&TokenKind::RParen)?;
            Ok(Predicate::Contains {
                column,
                keywords,
                mode,
            })
        } else {
            let column = self.column_ref()?;
            if self.eat_keyword("CONTAINS") {
                // Infix form: `col CONTAINS ALL|ANY ('kw1', 'kw2', ...)`.
                let mode = if self.eat_keyword("ALL") {
                    MatchMode::All
                } else if self.eat_keyword("ANY") {
                    MatchMode::Any
                } else {
                    return Err(self.error("expected ALL or ANY after CONTAINS"));
                };
                self.expect_kind(&TokenKind::LParen)?;
                let keywords = self.string_list()?;
                self.expect_kind(&TokenKind::RParen)?;
                Ok(Predicate::Contains {
                    column,
                    keywords,
                    mode,
                })
            } else {
                self.expect_kind(&TokenKind::Eq)?;
                Ok(Predicate::Equals {
                    column,
                    value: self.literal()?,
                })
            }
        }
    }

    fn merge(&mut self) -> Result<Statement> {
        self.expect_keyword("MERGE")?;
        self.expect_keyword("TEXT")?;
        self.expect_keyword("INDEX")?;
        Ok(Statement::MergeTextIndex(self.identifier()?))
    }

    // -- cursors --------------------------------------------------------------

    /// `DECLARE name CURSOR FOR SELECT ...`
    fn declare_cursor(&mut self) -> Result<Statement> {
        self.expect_keyword("DECLARE")?;
        let name = self.identifier()?;
        self.expect_keyword("CURSOR")?;
        self.expect_keyword("FOR")?;
        let Statement::Select(select) = self.select()? else {
            unreachable!("select() parses a SELECT");
        };
        Ok(Statement::DeclareCursor { name, select })
    }

    /// `FETCH [NEXT] n FROM name`
    fn fetch_cursor(&mut self) -> Result<Statement> {
        self.expect_keyword("FETCH")?;
        let _ = self.eat_keyword("NEXT");
        let n = self.count()?;
        self.expect_keyword("FROM")?;
        let name = self.identifier()?;
        Ok(Statement::FetchCursor { name, n })
    }
}

/// Integral numbers become `Value::Int`, everything else `Value::Float`.
fn number_value(n: f64) -> Value {
    if n.fract() == 0.0 && n.abs() < i64::MAX as f64 {
        Value::Int(n as i64)
    } else {
        Value::Float(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create_table() {
        let s = parse_statement("CREATE TABLE movies (mid INT PRIMARY KEY, name TEXT, len FLOAT)")
            .unwrap();
        let Statement::CreateTable(ct) = s else {
            panic!("wrong statement")
        };
        assert_eq!(ct.name, "movies");
        assert_eq!(ct.pk, 0);
        assert_eq!(ct.columns.len(), 3);
        assert_eq!(ct.columns[1], ("name".into(), ColumnType::Text));
    }

    #[test]
    fn pk_defaults_to_first_column() {
        let Statement::CreateTable(ct) = parse_statement("create table t (a int, b text)").unwrap()
        else {
            panic!()
        };
        assert_eq!(ct.pk, 0);
    }

    #[test]
    fn parses_insert_multirow() {
        let Statement::Insert(ins) = parse_statement(
            "INSERT INTO movies VALUES (1, 'American Thrift', 2.5), (2, 'Amateur Film', NULL)",
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(ins.rows.len(), 2);
        assert_eq!(ins.rows[0][1], Value::Text("American Thrift".into()));
        assert_eq!(ins.rows[1][2], Value::Null);
    }

    #[test]
    fn parses_update_and_delete() {
        let Statement::Update(u) =
            parse_statement("UPDATE stats SET nvisit = 100, ndownload = 7 WHERE mid = 3").unwrap()
        else {
            panic!()
        };
        assert_eq!(u.sets.len(), 2);
        assert_eq!(u.key, Value::Int(3));
        let Statement::Delete(d) = parse_statement("DELETE FROM movies WHERE mid = 9").unwrap()
        else {
            panic!()
        };
        assert_eq!(d.table, "movies");
    }

    #[test]
    fn parses_the_papers_scoring_function() {
        // §3.1 verbatim modulo type syntax.
        let Statement::CreateFunction(f) = parse_statement(
            "create function S1 (id INTEGER) returns float
             return SELECT avg(R.rating) FROM Reviews R WHERE R.mID = id",
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(f.name, "S1");
        assert_eq!(
            f.body,
            FunctionBody::Component {
                agg: ComponentAgg::Avg,
                value_column: Some("rating".into()),
                table: "Reviews".into(),
                key_column: "mID".into(),
                param: "id".into(),
            }
        );
    }

    #[test]
    fn parses_the_papers_agg_function() {
        let Statement::CreateFunction(f) = parse_statement(
            "create function Agg(s1 float, s2 float, s3 float) returns float
             return (s1*100 + s2/2 + s3)",
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(f.params, vec!["s1", "s2", "s3"]);
        assert!(matches!(f.body, FunctionBody::Arith(_)));
    }

    #[test]
    fn component_where_must_use_a_parameter() {
        assert!(parse_statement(
            "create function S (id INT) returns float
             return SELECT avg(r.x) FROM t r WHERE r.y = other",
        )
        .is_err());
    }

    #[test]
    fn parses_bare_column_component() {
        let Statement::CreateFunction(f) = parse_statement(
            "create function S2 (id INT) returns float
             return SELECT S.nVisit FROM Statistics S WHERE S.mID = id",
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(
            f.body,
            FunctionBody::Component {
                agg: ComponentAgg::Column,
                value_column: Some("nVisit".into()),
                table: "Statistics".into(),
                key_column: "mID".into(),
                param: "id".into(),
            }
        );
    }

    #[test]
    fn parses_create_text_index() {
        let Statement::CreateTextIndex(ix) = parse_statement(
            "CREATE TEXT INDEX idx ON movies(description)
             SCORE WITH (S1, S2, S3, TFIDF())
             AGGREGATE WITH Agg
             USING METHOD CHUNK_TERMSCORE
             OPTIONS (chunk_ratio = 6.12, fancy_size = 64, codec = varint)",
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(ix.score_with.len(), 4);
        assert_eq!(ix.score_with[3], ScoreListEntry::Tfidf);
        assert_eq!(ix.aggregate_with.as_deref(), Some("Agg"));
        assert_eq!(ix.method.as_deref(), Some("CHUNK_TERMSCORE"));
        assert_eq!(
            ix.options[0],
            ("chunk_ratio".into(), OptionValue::Number(6.12))
        );
        assert_eq!(
            ix.options[2],
            ("codec".into(), OptionValue::Name("varint".into()))
        );
    }

    #[test]
    fn parses_the_papers_figure1_query() {
        let Statement::Select(sel) = parse_statement(
            r#"SELECT * FROM Movies m ORDER BY score(m.desc, "golden gate")
               FETCH TOP 10 RESULTS ONLY"#,
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(sel.table, "Movies");
        assert_eq!(sel.alias.as_deref(), Some("m"));
        let obs = sel.order_by_score.unwrap();
        assert_eq!(obs.column, "desc");
        assert_eq!(obs.keywords, vec!["golden gate".to_string()]);
        assert_eq!(obs.mode, None);
        assert_eq!(sel.fetch, Some(10));
    }

    #[test]
    fn parses_rank_by_multi_keyword() {
        let Statement::Select(sel) = parse_statement(
            "SELECT name FROM movies m RANK BY m.description ('golden', 'gate', 'bridge')
             FETCH TOP 10 RESULTS ONLY",
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(sel.alias.as_deref(), Some("m"));
        let obs = sel.order_by_score.unwrap();
        assert_eq!(obs.column, "description");
        assert_eq!(
            obs.keywords,
            vec!["golden".to_string(), "gate".into(), "bridge".into()]
        );
        assert_eq!(obs.mode, Some(MatchMode::Any));
        assert_eq!(sel.fetch, Some(10));
        // RANK is a clause keyword, not an alias.
        let Statement::Select(sel) =
            parse_statement("SELECT * FROM movies RANK BY description ('x')").unwrap()
        else {
            panic!()
        };
        assert_eq!(sel.alias, None);
        assert!(sel.order_by_score.is_some());
    }

    #[test]
    fn parses_infix_contains() {
        let Statement::Select(sel) = parse_statement(
            "SELECT name FROM movies WHERE description CONTAINS ALL ('golden', 'gate')
             RANK BY description ('golden', 'gate') LIMIT 5",
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(
            sel.predicate,
            Some(Predicate::Contains {
                column: "description".into(),
                keywords: vec!["golden".to_string(), "gate".into()],
                mode: MatchMode::All,
            })
        );
        assert!(sel.order_by_score.is_some());
        let Statement::Select(sel) =
            parse_statement("SELECT * FROM t WHERE c CONTAINS ANY ('a', 'b', 'c')").unwrap()
        else {
            panic!()
        };
        assert_eq!(
            sel.predicate,
            Some(Predicate::Contains {
                column: "c".into(),
                keywords: vec!["a".to_string(), "b".into(), "c".into()],
                mode: MatchMode::Any,
            })
        );
        // The mode is mandatory in the infix form.
        assert!(parse_statement("SELECT * FROM t WHERE c CONTAINS ('a')").is_err());
    }

    #[test]
    fn parses_contains_with_mode() {
        let Statement::Select(sel) = parse_statement(
            "SELECT name FROM movies WHERE CONTAINS(description, 'golden gate', ANY)
             ORDER BY SCORE(description, 'golden gate') DESC LIMIT 5",
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(
            sel.predicate,
            Some(Predicate::Contains {
                column: "description".into(),
                keywords: vec!["golden gate".to_string()],
                mode: MatchMode::Any,
            })
        );
        assert_eq!(sel.fetch, Some(5));
        assert_eq!(sel.projection, Some(vec!["name".to_string()]));
    }

    #[test]
    fn parses_point_select() {
        let Statement::Select(sel) = parse_statement("SELECT * FROM movies WHERE mid = 7").unwrap()
        else {
            panic!()
        };
        assert_eq!(
            sel.predicate,
            Some(Predicate::Equals {
                column: "mid".into(),
                value: Value::Int(7)
            })
        );
        assert!(sel.order_by_score.is_none());
    }

    #[test]
    fn parses_fetch_first_rows_only() {
        let Statement::Select(sel) =
            parse_statement("SELECT * FROM t ORDER BY SCORE(c, 'x') FETCH FIRST 3 ROWS ONLY")
                .unwrap()
        else {
            panic!()
        };
        assert_eq!(sel.fetch, Some(3));
    }

    #[test]
    fn parses_limit_offset_and_fetch_next() {
        let Statement::Select(sel) =
            parse_statement("SELECT * FROM t ORDER BY SCORE(c, 'x') LIMIT 10 OFFSET 30").unwrap()
        else {
            panic!()
        };
        assert_eq!(sel.fetch, Some(10));
        assert_eq!(sel.offset, Some(30));
        let Statement::Select(sel) = parse_statement(
            "SELECT * FROM t ORDER BY SCORE(c, 'x') OFFSET 5 ROWS FETCH NEXT 20 ROWS ONLY",
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(sel.fetch, Some(20));
        assert_eq!(sel.offset, Some(5));
        // OFFSET alone, and no offset at all.
        let Statement::Select(sel) =
            parse_statement("SELECT * FROM t ORDER BY SCORE(c, 'x') OFFSET 7").unwrap()
        else {
            panic!()
        };
        assert_eq!(sel.fetch, None);
        assert_eq!(sel.offset, Some(7));
        let Statement::Select(sel) = parse_statement("SELECT * FROM t LIMIT 3").unwrap() else {
            panic!()
        };
        assert_eq!(sel.offset, None);
    }

    #[test]
    fn parses_cursor_statements() {
        let Statement::DeclareCursor { name, select } = parse_statement(
            r#"DECLARE page CURSOR FOR SELECT name FROM movies
               ORDER BY SCORE(description, "golden gate")"#,
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(name, "page");
        assert!(select.order_by_score.is_some());
        assert_eq!(
            parse_statement("FETCH 10 FROM page").unwrap(),
            Statement::FetchCursor {
                name: "page".into(),
                n: 10
            }
        );
        assert_eq!(
            parse_statement("FETCH NEXT 5 FROM page").unwrap(),
            Statement::FetchCursor {
                name: "page".into(),
                n: 5
            }
        );
        assert_eq!(
            parse_statement("CLOSE page").unwrap(),
            Statement::CloseCursor("page".into())
        );
        assert!(parse_statement("DECLARE page FOR SELECT * FROM t").is_err());
        assert!(parse_statement("FETCH FROM page").is_err());
    }

    #[test]
    fn parses_merge_text_index() {
        assert_eq!(
            parse_statement("MERGE TEXT INDEX idx").unwrap(),
            Statement::MergeTextIndex("idx".into())
        );
    }

    #[test]
    fn parses_explain_and_drop() {
        let Statement::Explain(inner) =
            parse_statement("EXPLAIN SELECT * FROM t WHERE a = 1").unwrap()
        else {
            panic!()
        };
        assert!(matches!(*inner, Statement::Select(_)));
        assert_eq!(
            parse_statement("DROP FUNCTION s1").unwrap(),
            Statement::DropFunction("s1".into())
        );
        assert_eq!(
            parse_statement("DROP TABLE t").unwrap(),
            Statement::DropTable("t".into())
        );
        assert_eq!(
            parse_statement("DROP TEXT INDEX movie_idx").unwrap(),
            Statement::DropTextIndex("movie_idx".into())
        );
        assert!(
            parse_statement("DROP INDEX x").is_err(),
            "TEXT INDEX is the only index kind"
        );
        assert!(parse_statement("DROP").is_err());
    }

    #[test]
    fn script_splits_statements() {
        let script =
            parse_script("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;")
                .unwrap();
        assert_eq!(script.len(), 3);
    }

    #[test]
    fn garbage_errors_with_position() {
        match parse_statement("SELECT FROM WHERE") {
            Err(SqlError::Parse(pos, _)) => assert!(pos > 0),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn negative_literals() {
        let Statement::Insert(ins) = parse_statement("INSERT INTO t VALUES (-5, -2.5)").unwrap()
        else {
            panic!()
        };
        assert_eq!(ins.rows[0][0], Value::Int(-5));
        assert_eq!(ins.rows[0][1], Value::Float(-2.5));
    }
}
