//! Lowering from SQL AST to engine concepts.
//!
//! * `CREATE FUNCTION ... RETURN SELECT ...` bodies become
//!   [`ScoreComponent`]s;
//! * `Agg` arithmetic bodies become [`AggExpr`]s with parameters resolved
//!   to component slots;
//! * a `TFIDF()` entry in `SCORE WITH` is decomposed out of the aggregate
//!   as the linear term weight the index methods apply at query time
//!   (`f(svr, ts) = svr + w·ts`, §4.3.3) — non-linear uses are rejected;
//! * method names map to [`MethodKind`]s.

use svr_core::types::QueryMode;
use svr_core::{CodecKind, IndexConfig, MethodKind};
use svr_relation::{AggExpr, ScoreComponent};

use crate::ast::{Arith, ComponentAgg, FunctionBody, MatchMode, OptionValue, Predicate, Select};
use crate::error::{Result, SqlError};

/// The resolved ranked access path of a `SELECT`: which text column to
/// search, for what, and how keywords combine. `ORDER BY SCORE(...)` and
/// `CONTAINS(...)` both map onto it, and when a query uses both they must
/// agree — the single place that reconciliation happens, shared by
/// execution ([`crate::SqlSession::execute`]) and `EXPLAIN`.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedPath {
    pub column: String,
    pub keywords: String,
    pub mode: MatchMode,
}

impl RankedPath {
    /// The index-layer query mode.
    pub fn query_mode(&self) -> QueryMode {
        match self.mode {
            MatchMode::All => QueryMode::Conjunctive,
            MatchMode::Any => QueryMode::Disjunctive,
        }
    }
}

/// Resolve a `SELECT`'s ranked path, if it has one.
///
/// * `ORDER BY SCORE(col, kw)` alone ranks conjunctively; `RANK BY
///   col (kw, ...)` alone ranks disjunctively (its parsed mode);
/// * `CONTAINS(...)` / `col CONTAINS ALL|ANY (...)` alone ranks with the
///   predicate's mode;
/// * both together must name the same column and keywords, and take the
///   `CONTAINS` mode.
///
/// Keyword lists are joined with spaces: the engine tokenizes on
/// whitespace, so `('golden', 'gate')` and `('golden gate')` resolve to
/// the same terms.
pub fn resolve_ranked_path(sel: &Select) -> Result<Option<RankedPath>> {
    let contains = match &sel.predicate {
        Some(Predicate::Contains {
            column,
            keywords,
            mode,
        }) => Some((column.as_str(), keywords.join(" "), *mode)),
        _ => None,
    };
    Ok(match (&sel.order_by_score, contains) {
        (Some(obs), Some((c_col, c_kw, c_mode))) => {
            if !obs.column.eq_ignore_ascii_case(c_col) {
                return Err(SqlError::Plan(
                    "CONTAINS and ORDER BY SCORE / RANK BY must reference the same column".into(),
                ));
            }
            if obs.keywords.join(" ") != c_kw {
                return Err(SqlError::Plan(
                    "CONTAINS and ORDER BY SCORE / RANK BY must use the same keywords".into(),
                ));
            }
            Some(RankedPath {
                column: obs.column.clone(),
                keywords: c_kw,
                mode: c_mode,
            })
        }
        (Some(obs), None) => Some(RankedPath {
            column: obs.column.clone(),
            keywords: obs.keywords.join(" "),
            mode: obs.mode.unwrap_or(MatchMode::All),
        }),
        (None, Some((column, keywords, mode))) => Some(RankedPath {
            column: column.to_string(),
            keywords,
            mode,
        }),
        (None, None) => None,
    })
}

/// A registered `CREATE FUNCTION`.
#[derive(Debug, Clone, PartialEq)]
pub enum FunctionDef {
    /// A scoring component (`S1..Sm`).
    Component(ScoreComponent),
    /// An `Agg` combinator with named parameters.
    Agg { params: Vec<String>, body: Arith },
}

/// Lower a parsed function body into a [`FunctionDef`].
pub fn lower_function(params: &[String], body: &FunctionBody) -> Result<FunctionDef> {
    match body {
        FunctionBody::Arith(expr) => {
            // Every identifier must be a parameter.
            check_params(expr, params)?;
            Ok(FunctionDef::Agg {
                params: params.to_vec(),
                body: expr.clone(),
            })
        }
        FunctionBody::Component {
            agg,
            value_column,
            table,
            key_column,
            ..
        } => {
            let component = match agg {
                ComponentAgg::Avg => ScoreComponent::AvgOf {
                    table: table.clone(),
                    fk_col: key_column.clone(),
                    val_col: value_column
                        .clone()
                        .ok_or_else(|| SqlError::Plan("AVG requires a value column".into()))?,
                },
                ComponentAgg::Sum => ScoreComponent::SumOf {
                    table: table.clone(),
                    fk_col: key_column.clone(),
                    val_col: value_column
                        .clone()
                        .ok_or_else(|| SqlError::Plan("SUM requires a value column".into()))?,
                },
                ComponentAgg::Count => ScoreComponent::CountOf {
                    table: table.clone(),
                    fk_col: key_column.clone(),
                },
                ComponentAgg::Column => ScoreComponent::ColumnOf {
                    table: table.clone(),
                    key_col: key_column.clone(),
                    val_col: value_column.clone().ok_or_else(|| {
                        SqlError::Plan("column lookup requires a value column".into())
                    })?,
                },
            };
            Ok(FunctionDef::Component(component))
        }
    }
}

fn check_params(expr: &Arith, params: &[String]) -> Result<()> {
    match expr {
        Arith::Param(name) => {
            if params.iter().any(|p| p.eq_ignore_ascii_case(name)) {
                Ok(())
            } else {
                Err(SqlError::Plan(format!(
                    "'{name}' is not a parameter of this function"
                )))
            }
        }
        Arith::Literal(_) => Ok(()),
        Arith::Neg(e) => check_params(e, params),
        Arith::Add(a, b) | Arith::Sub(a, b) | Arith::Mul(a, b) | Arith::Div(a, b) => {
            check_params(a, params)?;
            check_params(b, params)
        }
    }
}

/// Resolve an `Agg` body to an [`AggExpr`]: parameter `params[i]` becomes
/// component slot `slots[i]`.
pub fn resolve_arith(expr: &Arith, params: &[String], slots: &[usize]) -> Result<AggExpr> {
    Ok(match expr {
        Arith::Param(name) => {
            let i = params
                .iter()
                .position(|p| p.eq_ignore_ascii_case(name))
                .ok_or_else(|| {
                    SqlError::Plan(format!("'{name}' is not a parameter of the Agg function"))
                })?;
            AggExpr::Component(slots[i])
        }
        Arith::Literal(v) => AggExpr::Literal(*v),
        Arith::Neg(e) => AggExpr::Neg(Box::new(resolve_arith(e, params, slots)?)),
        Arith::Add(a, b) => AggExpr::Add(
            Box::new(resolve_arith(a, params, slots)?),
            Box::new(resolve_arith(b, params, slots)?),
        ),
        Arith::Sub(a, b) => AggExpr::Sub(
            Box::new(resolve_arith(a, params, slots)?),
            Box::new(resolve_arith(b, params, slots)?),
        ),
        Arith::Mul(a, b) => AggExpr::Mul(
            Box::new(resolve_arith(a, params, slots)?),
            Box::new(resolve_arith(b, params, slots)?),
        ),
        Arith::Div(a, b) => AggExpr::Div(
            Box::new(resolve_arith(a, params, slots)?),
            Box::new(resolve_arith(b, params, slots)?),
        ),
    })
}

/// Extract the TFIDF term weight from an aggregate expression whose TFIDF
/// parameter occupies component slot `tfidf_slot` (one past the structured
/// components). The index methods combine scores as `svr + w·ts`, so the
/// aggregate must be *linear* in the TFIDF slot; the weight is recovered by
/// finite differencing and verified on probe points.
pub fn tfidf_weight(expr: &AggExpr, tfidf_slot: usize) -> Result<f64> {
    let eval = |components: &[f64], t: f64| -> f64 {
        let mut values = components.to_vec();
        values.resize(tfidf_slot, 0.0);
        values.push(t);
        expr.eval(&values)
    };
    let zeros = vec![0.0; tfidf_slot];
    let weight = eval(&zeros, 1.0) - eval(&zeros, 0.0);
    // Probe for linearity: f(r, t) must equal f(r, 0) + w·t everywhere the
    // combination function is used. A handful of deterministic probes
    // catches every practical violation (t², s·t, t in a divisor...).
    let probes: [f64; 3] = [0.5, 2.0, 17.0];
    let mut r = Vec::with_capacity(tfidf_slot);
    for i in 0..tfidf_slot {
        r.push(1.0 + i as f64 * 3.7);
    }
    for &t in &probes {
        for base in [&zeros, &r] {
            let expect = eval(base, 0.0) + weight * t;
            let got = eval(base, t);
            if (got - expect).abs() > 1e-9 * (1.0 + expect.abs()) {
                return Err(SqlError::Plan(
                    "TFIDF() must appear as a linear additive term in the aggregate \
                     (e.g. `... + tfidf/2`); the index combination function is \
                     f(svr, ts) = svr + w*ts (§4.3.3)"
                        .into(),
                ));
            }
        }
    }
    if weight < 0.0 {
        return Err(SqlError::Plan(
            "TFIDF() weight must be non-negative for the combination function to stay monotonic"
                .into(),
        ));
    }
    Ok(weight)
}

/// Parse a `USING METHOD` name.
pub fn parse_method(name: &str) -> Result<MethodKind> {
    let canon = name.to_ascii_uppercase().replace('-', "_");
    Ok(match canon.as_str() {
        "ID" => MethodKind::Id,
        "SCORE" => MethodKind::Score,
        "SCORE_THRESHOLD" => MethodKind::ScoreThreshold,
        "CHUNK" => MethodKind::Chunk,
        "ID_TERMSCORE" => MethodKind::IdTermScore,
        "CHUNK_TERMSCORE" => MethodKind::ChunkTermScore,
        "SCORE_THRESHOLD_TERMSCORE" => MethodKind::ScoreThresholdTermScore,
        other => {
            return Err(SqlError::Plan(format!(
                "unknown index method '{other}'; expected one of ID, SCORE, SCORE_THRESHOLD, \
                 CHUNK, ID_TERMSCORE, CHUNK_TERMSCORE, SCORE_THRESHOLD_TERMSCORE"
            )))
        }
    })
}

/// Apply `OPTIONS (...)` overrides to an [`IndexConfig`].
pub fn apply_options(config: &mut IndexConfig, options: &[(String, OptionValue)]) -> Result<()> {
    for (key, value) in options {
        // `codec` is the one named option; everything else is numeric.
        if key == "codec" {
            let OptionValue::Name(name) = value else {
                return Err(SqlError::Plan(
                    "codec takes a name: legacy, uncompressed, varint or bitpacked".into(),
                ));
            };
            config.codec = CodecKind::from_name(name).ok_or_else(|| {
                SqlError::Plan(format!(
                    "unknown codec '{name}'; expected legacy, uncompressed, varint or bitpacked"
                ))
            })?;
            continue;
        }
        let OptionValue::Number(value) = value else {
            return Err(SqlError::Plan(format!(
                "option '{key}' takes a numeric value"
            )));
        };
        match key.as_str() {
            "chunk_ratio" => config.chunk_ratio = *value,
            "threshold_ratio" => config.threshold_ratio = *value,
            "min_chunk_docs" => config.min_chunk_docs = *value as usize,
            "fancy_size" => config.fancy_size = *value as usize,
            "term_weight" => config.term_weight = *value,
            "page_size" => config.page_size = *value as usize,
            "long_cache_pages" => config.long_cache_pages = *value as usize,
            "small_cache_pages" => config.small_cache_pages = *value as usize,
            // Write sharding: `OPTIONS (shards = 8)` partitions the index
            // by document so same-table writers proceed in parallel. Each
            // shard is a complete method instance, so an absurd count would
            // let one statement allocate unbounded stores — cap it.
            "shards" => {
                if *value < 1.0 || *value > 1024.0 || value.fract() != 0.0 {
                    return Err(SqlError::Plan(format!(
                        "shards must be an integer in 1..=1024, got {value}"
                    )));
                }
                config.num_shards = *value as usize;
            }
            other => return Err(SqlError::Plan(format!("unknown index option '{other}'"))),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn param_names(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn lowers_avg_component() {
        let body = FunctionBody::Component {
            agg: ComponentAgg::Avg,
            value_column: Some("rating".into()),
            table: "reviews".into(),
            key_column: "mid".into(),
            param: "id".into(),
        };
        let def = lower_function(&param_names(&["id"]), &body).unwrap();
        assert_eq!(
            def,
            FunctionDef::Component(ScoreComponent::AvgOf {
                table: "reviews".into(),
                fk_col: "mid".into(),
                val_col: "rating".into(),
            })
        );
    }

    #[test]
    fn agg_body_rejects_unknown_identifiers() {
        let body = FunctionBody::Arith(Arith::Param("mystery".into()));
        assert!(lower_function(&param_names(&["s1"]), &body).is_err());
    }

    #[test]
    fn resolves_params_to_slots() {
        // Agg(a, b) = a*2 + b, with a -> slot 1, b -> slot 0.
        let expr = Arith::Add(
            Box::new(Arith::Mul(
                Box::new(Arith::Param("a".into())),
                Box::new(Arith::Literal(2.0)),
            )),
            Box::new(Arith::Param("b".into())),
        );
        let agg = resolve_arith(&expr, &param_names(&["a", "b"]), &[1, 0]).unwrap();
        // components[0] = b-value, components[1] = a-value.
        assert_eq!(agg.eval(&[10.0, 3.0]), 3.0 * 2.0 + 10.0);
    }

    #[test]
    fn tfidf_weight_recovers_linear_coefficient() {
        // f(s1, t) = s1*100 + t/2; tfidf slot is 1.
        let expr = AggExpr::Add(
            Box::new(AggExpr::Mul(
                Box::new(AggExpr::Component(0)),
                Box::new(AggExpr::Literal(100.0)),
            )),
            Box::new(AggExpr::Div(
                Box::new(AggExpr::Component(1)),
                Box::new(AggExpr::Literal(2.0)),
            )),
        );
        assert_eq!(tfidf_weight(&expr, 1).unwrap(), 0.5);
    }

    #[test]
    fn tfidf_weight_rejects_nonlinear_use() {
        // f(t) = t*t.
        let expr = AggExpr::Mul(
            Box::new(AggExpr::Component(0)),
            Box::new(AggExpr::Component(0)),
        );
        assert!(tfidf_weight(&expr, 0).is_err());
        // f(s1, t) = s1*t — bilinear, still not additive.
        let expr = AggExpr::Mul(
            Box::new(AggExpr::Component(0)),
            Box::new(AggExpr::Component(1)),
        );
        assert!(tfidf_weight(&expr, 1).is_err());
    }

    #[test]
    fn tfidf_weight_rejects_negative_weight() {
        let expr = AggExpr::Sub(
            Box::new(AggExpr::Component(0)),
            Box::new(AggExpr::Component(1)),
        );
        assert!(tfidf_weight(&expr, 1).is_err());
    }

    #[test]
    fn method_names_parse() {
        assert_eq!(parse_method("chunk").unwrap(), MethodKind::Chunk);
        assert_eq!(
            parse_method("Score-Threshold").unwrap(),
            MethodKind::ScoreThreshold
        );
        assert_eq!(
            parse_method("SCORE_THRESHOLD_TERMSCORE").unwrap(),
            MethodKind::ScoreThresholdTermScore
        );
        assert!(parse_method("btree").is_err());
    }

    fn select_with(
        order_by: Option<(&str, &str)>,
        contains: Option<(&str, &str, MatchMode)>,
    ) -> Select {
        Select {
            projection: None,
            table: "movies".into(),
            alias: None,
            predicate: contains.map(|(c, k, m)| Predicate::Contains {
                column: c.into(),
                keywords: vec![k.to_string()],
                mode: m,
            }),
            order_by_score: order_by.map(|(c, k)| crate::ast::OrderByScore {
                column: c.into(),
                keywords: vec![k.to_string()],
                mode: None,
            }),
            fetch: None,
            offset: None,
        }
    }

    #[test]
    fn ranked_path_resolution() {
        // Plain scan: no ranked path.
        assert_eq!(resolve_ranked_path(&select_with(None, None)).unwrap(), None);
        // ORDER BY SCORE alone: conjunctive.
        let p = resolve_ranked_path(&select_with(Some(("desc", "golden gate")), None))
            .unwrap()
            .unwrap();
        assert_eq!(p.mode, MatchMode::All);
        assert_eq!(p.query_mode(), QueryMode::Conjunctive);
        assert_eq!(p.keywords, "golden gate");
        // CONTAINS alone keeps its mode.
        let p = resolve_ranked_path(&select_with(None, Some(("desc", "gate", MatchMode::Any))))
            .unwrap()
            .unwrap();
        assert_eq!(p.query_mode(), QueryMode::Disjunctive);
        // Both: must agree on column (case-insensitively) and keywords.
        let p = resolve_ranked_path(&select_with(
            Some(("DESC", "gate")),
            Some(("desc", "gate", MatchMode::Any)),
        ))
        .unwrap()
        .unwrap();
        assert_eq!(p.mode, MatchMode::Any, "CONTAINS mode wins");
        assert!(resolve_ranked_path(&select_with(
            Some(("name", "gate")),
            Some(("desc", "gate", MatchMode::All)),
        ))
        .is_err());
        assert!(resolve_ranked_path(&select_with(
            Some(("desc", "golden")),
            Some(("desc", "gate", MatchMode::All)),
        ))
        .is_err());
    }

    #[test]
    fn ranked_path_joins_keyword_lists() {
        // RANK BY parses with an explicit mode and a keyword vector.
        let mut sel = select_with(None, None);
        sel.order_by_score = Some(crate::ast::OrderByScore {
            column: "desc".into(),
            keywords: vec!["golden".to_string(), "gate".into(), "bridge".into()],
            mode: Some(MatchMode::Any),
        });
        let p = resolve_ranked_path(&sel).unwrap().unwrap();
        assert_eq!(p.keywords, "golden gate bridge");
        assert_eq!(p.query_mode(), QueryMode::Disjunctive);
        // A CONTAINS ALL predicate on the same keywords flips it
        // conjunctive (CONTAINS mode wins) — split vs joined keyword
        // lists reconcile through the joined form.
        sel.predicate = Some(Predicate::Contains {
            column: "desc".into(),
            keywords: vec!["golden gate".to_string(), "bridge".into()],
            mode: MatchMode::All,
        });
        let p = resolve_ranked_path(&sel).unwrap().unwrap();
        assert_eq!(p.keywords, "golden gate bridge");
        assert_eq!(p.query_mode(), QueryMode::Conjunctive);
    }

    #[test]
    fn options_apply() {
        let mut config = IndexConfig::default();
        apply_options(
            &mut config,
            &[
                ("chunk_ratio".into(), OptionValue::Number(3.0)),
                ("fancy_size".into(), OptionValue::Number(16.0)),
                ("codec".into(), OptionValue::Name("varint".into())),
            ],
        )
        .unwrap();
        assert_eq!(config.chunk_ratio, 3.0);
        assert_eq!(config.fancy_size, 16);
        assert_eq!(config.codec, CodecKind::Varint);
        assert!(apply_options(&mut config, &[("bogus".into(), OptionValue::Number(1.0))]).is_err());
        // Kind mismatches fail cleanly in both directions.
        assert!(apply_options(&mut config, &[("codec".into(), OptionValue::Number(2.0))]).is_err());
        assert!(apply_options(
            &mut config,
            &[("chunk_ratio".into(), OptionValue::Name("varint".into()))]
        )
        .is_err());
        assert!(apply_options(
            &mut config,
            &[("codec".into(), OptionValue::Name("lz4".into()))]
        )
        .is_err());
    }
}
