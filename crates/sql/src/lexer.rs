//! SQL tokenizer.
//!
//! Case-insensitive keywords (resolved at the parser level), single- or
//! double-quoted string literals (the paper's example uses
//! `score(m.desc, "golden gate")`), `--` line comments, and the usual
//! punctuation.

use crate::error::{Result, SqlError};

/// One lexical token with its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub pos: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (original spelling preserved).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// String literal (quotes stripped, escapes resolved).
    Str(String),
    LParen,
    RParen,
    Comma,
    Semi,
    Star,
    Dot,
    Eq,
    Plus,
    Minus,
    Slash,
    Lt,
    Gt,
    Le,
    Ge,
    Ne,
}

impl TokenKind {
    /// The keyword spelling, uppercased, if this is an identifier.
    pub fn keyword(&self) -> Option<String> {
        match self {
            TokenKind::Ident(s) => Some(s.to_ascii_uppercase()),
            _ => None,
        }
    }
}

impl std::fmt::Display for TokenKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier '{s}'"),
            TokenKind::Number(n) => write!(f, "number {n}"),
            TokenKind::Str(s) => write!(f, "string '{s}'"),
            TokenKind::LParen => f.write_str("'('"),
            TokenKind::RParen => f.write_str("')'"),
            TokenKind::Comma => f.write_str("','"),
            TokenKind::Semi => f.write_str("';'"),
            TokenKind::Star => f.write_str("'*'"),
            TokenKind::Dot => f.write_str("'.'"),
            TokenKind::Eq => f.write_str("'='"),
            TokenKind::Plus => f.write_str("'+'"),
            TokenKind::Minus => f.write_str("'-'"),
            TokenKind::Slash => f.write_str("'/'"),
            TokenKind::Lt => f.write_str("'<'"),
            TokenKind::Gt => f.write_str("'>'"),
            TokenKind::Le => f.write_str("'<='"),
            TokenKind::Ge => f.write_str("'>='"),
            TokenKind::Ne => f.write_str("'<>'"),
        }
    }
}

/// Tokenize a SQL text into a token vector.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            _ if b.is_ascii_whitespace() => i += 1,
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    pos: i,
                });
                i += 1;
            }
            b')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    pos: i,
                });
                i += 1;
            }
            b',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    pos: i,
                });
                i += 1;
            }
            b';' => {
                tokens.push(Token {
                    kind: TokenKind::Semi,
                    pos: i,
                });
                i += 1;
            }
            b'*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    pos: i,
                });
                i += 1;
            }
            b'.' if !bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit()) => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    pos: i,
                });
                i += 1;
            }
            b'=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    pos: i,
                });
                i += 1;
            }
            b'+' => {
                tokens.push(Token {
                    kind: TokenKind::Plus,
                    pos: i,
                });
                i += 1;
            }
            b'-' => {
                tokens.push(Token {
                    kind: TokenKind::Minus,
                    pos: i,
                });
                i += 1;
            }
            b'/' => {
                tokens.push(Token {
                    kind: TokenKind::Slash,
                    pos: i,
                });
                i += 1;
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        pos: i,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token {
                        kind: TokenKind::Ne,
                        pos: i,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        pos: i,
                    });
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        pos: i,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        pos: i,
                    });
                    i += 1;
                }
            }
            b'\'' | b'"' => {
                let quote = b;
                let start = i;
                i += 1;
                let mut out = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(SqlError::Lex(start, "unterminated string".into()));
                        }
                        Some(&c) if c == quote => {
                            // Doubled quote is an escaped quote.
                            if bytes.get(i + 1) == Some(&quote) {
                                out.push(quote as char);
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&c) => {
                            // SQL strings are byte-oriented here; the input
                            // is UTF-8, so collect char-by-char.
                            let s = &input[i..];
                            let Some(ch) = s.chars().next() else { break };
                            out.push(ch);
                            i += ch.len_utf8();
                            let _ = c;
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(out),
                    pos: start,
                });
            }
            _ if b.is_ascii_digit() || b == b'.' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && matches!(bytes.get(i.wrapping_sub(1)), Some(b'e') | Some(b'E'))))
                {
                    i += 1;
                }
                let text = &input[start..i];
                let value: f64 = text
                    .parse()
                    .map_err(|_| SqlError::Lex(start, format!("bad number '{text}'")))?;
                tokens.push(Token {
                    kind: TokenKind::Number(value),
                    pos: start,
                });
            }
            _ if b.is_ascii_alphabetic() || b == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(input[start..i].to_string()),
                    pos: start,
                });
            }
            _ => {
                return Err(SqlError::Lex(i, format!("unexpected byte 0x{b:02x}")));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn tokenizes_the_paper_query() {
        let toks = kinds(
            r#"SELECT * FROM Movies m ORDER BY score(m.desc, "golden gate") FETCH TOP 10 RESULTS ONLY"#,
        );
        assert!(toks.contains(&TokenKind::Star));
        assert!(toks.contains(&TokenKind::Str("golden gate".into())));
        assert!(toks.contains(&TokenKind::Number(10.0)));
        assert_eq!(toks[0], TokenKind::Ident("SELECT".into()));
    }

    #[test]
    fn strings_escape_by_doubling() {
        assert_eq!(kinds("'it''s'"), vec![TokenKind::Str("it's".into())]);
        assert_eq!(
            kinds(r#""say ""hi"" now""#),
            vec![TokenKind::Str("say \"hi\" now".into())]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(tokenize("'oops"), Err(SqlError::Lex(0, _))));
    }

    #[test]
    fn numbers_and_operators() {
        assert_eq!(
            kinds("s1*100 + s2/2 <= 3.5e2"),
            vec![
                TokenKind::Ident("s1".into()),
                TokenKind::Star,
                TokenKind::Number(100.0),
                TokenKind::Plus,
                TokenKind::Ident("s2".into()),
                TokenKind::Slash,
                TokenKind::Number(2.0),
                TokenKind::Le,
                TokenKind::Number(350.0),
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("SELECT -- the projection\n1"),
            vec![TokenKind::Ident("SELECT".into()), TokenKind::Number(1.0)]
        );
    }

    #[test]
    fn dot_vs_decimal() {
        assert_eq!(
            kinds("m.desc"),
            vec![
                TokenKind::Ident("m".into()),
                TokenKind::Dot,
                TokenKind::Ident("desc".into()),
            ]
        );
        assert_eq!(kinds(".5"), vec![TokenKind::Number(0.5)]);
    }

    #[test]
    fn unexpected_byte_errors() {
        assert!(matches!(tokenize("a ! b"), Err(SqlError::Lex(2, _))));
    }
}
