//! Term-based scoring (the "TF-IDF"-style component of §4.3.3).
//!
//! Postings in the *-TermScore methods carry a normalized per-(doc, term)
//! score in `[0, 1]`, quantized to 16 bits. The per-term IDF weight is a
//! query-time constant, so it is **not** stored in postings — exactly the
//! split the paper (and Long & Suel's fancy lists) relies on.

/// Normalized term frequency in `(0, 1]`: `(1 + ln tf) / (1 + ln max_tf)`.
///
/// Zero when the term is absent.
pub fn normalized_tf(tf: u32, max_tf: u32) -> f64 {
    if tf == 0 || max_tf == 0 {
        return 0.0;
    }
    (1.0 + f64::from(tf).ln()) / (1.0 + f64::from(max_tf).ln())
}

/// Inverse document frequency: `ln(1 + N / df)`. Zero for unseen terms.
pub fn idf(num_docs: u64, doc_freq: u64) -> f64 {
    if doc_freq == 0 {
        return 0.0;
    }
    (1.0 + num_docs as f64 / doc_freq as f64).ln()
}

/// Quantize a normalized term score in `[0, 1]` to 16 bits for posting
/// storage.
pub fn quantize_term_score(score: f64) -> u16 {
    (score.clamp(0.0, 1.0) * f64::from(u16::MAX)).round() as u16
}

/// Inverse of [`quantize_term_score`].
pub fn unquantize_term_score(q: u16) -> f64 {
    f64::from(q) / f64::from(u16::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_tf_bounds() {
        assert_eq!(normalized_tf(0, 10), 0.0);
        assert_eq!(normalized_tf(10, 10), 1.0);
        let mid = normalized_tf(3, 10);
        assert!(mid > 0.0 && mid < 1.0);
        // Monotone in tf.
        assert!(normalized_tf(5, 10) > normalized_tf(2, 10));
    }

    #[test]
    fn idf_monotone_in_rarity() {
        assert!(idf(1000, 1) > idf(1000, 100));
        assert_eq!(idf(1000, 0), 0.0);
        assert!(idf(1000, 1000) > 0.0);
    }

    #[test]
    fn quantization_roundtrip_error_bounded() {
        for i in 0..=100 {
            let s = i as f64 / 100.0;
            let back = unquantize_term_score(quantize_term_score(s));
            assert!((back - s).abs() < 1e-4, "{s} -> {back}");
        }
        assert_eq!(quantize_term_score(-0.5), 0);
        assert_eq!(quantize_term_score(1.5), u16::MAX);
    }
}
