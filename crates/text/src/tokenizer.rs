//! Minimal text tokenizer: lowercased maximal runs of alphanumeric
//! characters. This matches the indexing granularity the paper assumes for
//! SQL/MM `CONTAINS`-style keyword search.

/// Split `text` into lowercase alphanumeric tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            for lower in ch.to_lowercase() {
                current.push(lower);
            }
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_whitespace() {
        assert_eq!(
            tokenize("Golden Gate, bridge-cam footage!"),
            vec!["golden", "gate", "bridge", "cam", "footage"]
        );
    }

    #[test]
    fn lowercases() {
        assert_eq!(tokenize("GOLDEN GaTe"), vec!["golden", "gate"]);
    }

    #[test]
    fn keeps_digits() {
        assert_eq!(
            tokenize("top10 results in 2005"),
            vec!["top10", "results", "in", "2005"]
        );
    }

    #[test]
    fn empty_and_symbol_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("... --- !!!").is_empty());
    }

    #[test]
    fn unicode_lowercasing() {
        assert_eq!(tokenize("Späti İstanbul"), vec!["späti", "i\u{307}stanbul"]);
    }
}
