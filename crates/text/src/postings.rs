//! Posting-list formats.
//!
//! Three long-list layouts, matching §4 and §5.2 of the paper:
//!
//! * **ID lists** (ID / ID-TermScore methods): doc ids ascending, delta +
//!   varint encoded ("the ID method also gets additional compression due to
//!   differential encoding of IDs"). TermScore variants append a 16-bit
//!   quantized term score to each posting.
//! * **Chunked lists** (Chunk / Chunk-TermScore): groups in *descending*
//!   chunk-id order; each group is `[varint cid][varint count]` followed by
//!   `count` delta-varint doc ids (ascending within the chunk). "We only
//!   have to store the CID at the beginning of a chunk, and not with each
//!   posting."
//! * **Score lists** (Score / Score-Threshold): `(f64 score, u32 doc)`
//!   pairs in (score desc, doc asc) order, fixed width — scores must live in
//!   the posting, which is exactly the space overhead Table 1 shows.
//!
//! Encoders live here together with slice decoders; `svr-core` implements
//! page-streaming decoders over the same formats (validated against these).

use svr_storage::codec::{read_varint, write_varint};

use crate::document::DocId;

/// A posting that carries a quantized term score.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TermScoredPosting {
    pub doc: DocId,
    pub tscore: u16,
}

/// One chunk group in a chunked list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkGroup {
    pub cid: u32,
    /// `(doc, tscore)` pairs ascending by doc; `tscore` is 0 when the list
    /// does not store term scores.
    pub postings: Vec<TermScoredPosting>,
}

/// Encoders for every long-list format.
pub struct PostingsBuilder;

impl PostingsBuilder {
    /// Encode doc ids (must be strictly ascending) as a delta-varint ID list.
    pub fn encode_id_list(docs: &[DocId], out: &mut Vec<u8>) {
        debug_assert!(
            docs.windows(2).all(|w| w[0] < w[1]),
            "ids must be ascending"
        );
        let mut prev = 0u32;
        for (i, d) in docs.iter().enumerate() {
            let delta = if i == 0 { d.0 } else { d.0 - prev - 1 };
            write_varint(out, u64::from(delta));
            prev = d.0;
        }
    }

    /// Encode `(doc, term score)` postings (ascending by doc) as an ID list
    /// with 16-bit term scores.
    pub fn encode_id_term_list(postings: &[TermScoredPosting], out: &mut Vec<u8>) {
        let mut prev = 0u32;
        for (i, p) in postings.iter().enumerate() {
            let delta = if i == 0 { p.doc.0 } else { p.doc.0 - prev - 1 };
            write_varint(out, u64::from(delta));
            out.extend_from_slice(&p.tscore.to_le_bytes());
            prev = p.doc.0;
        }
    }

    /// Encode chunk groups. Groups must be in descending `cid` order and each
    /// group's postings ascending by doc. `with_scores` selects the
    /// Chunk-TermScore layout.
    pub fn encode_chunked_list(groups: &[ChunkGroup], with_scores: bool, out: &mut Vec<u8>) {
        debug_assert!(groups.windows(2).all(|w| w[0].cid > w[1].cid));
        for group in groups {
            write_varint(out, u64::from(group.cid));
            write_varint(out, group.postings.len() as u64);
            let mut prev = 0u32;
            for (i, p) in group.postings.iter().enumerate() {
                let delta = if i == 0 { p.doc.0 } else { p.doc.0 - prev - 1 };
                write_varint(out, u64::from(delta));
                if with_scores {
                    out.extend_from_slice(&p.tscore.to_le_bytes());
                }
                prev = p.doc.0;
            }
        }
    }

    /// Encode `(score, doc)` postings in (score desc, doc asc) order as a
    /// fixed-width score list. `tscore` is appended when `with_scores`.
    pub fn encode_score_list(postings: &[(f64, DocId, u16)], with_scores: bool, out: &mut Vec<u8>) {
        debug_assert!(postings
            .windows(2)
            .all(|w| w[0].0 > w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1)));
        for (score, doc, tscore) in postings {
            out.extend_from_slice(&score.to_le_bytes());
            out.extend_from_slice(&doc.0.to_le_bytes());
            if with_scores {
                out.extend_from_slice(&tscore.to_le_bytes());
            }
        }
    }

    /// Bytes per posting in a score list.
    pub fn score_posting_width(with_scores: bool) -> usize {
        8 + 4 + if with_scores { 2 } else { 0 }
    }
}

/// Slice decoder for ID lists (with or without term scores).
pub struct IdPostingsIter<'a> {
    buf: &'a [u8],
    pos: usize,
    prev: Option<u32>,
    with_scores: bool,
}

impl<'a> IdPostingsIter<'a> {
    /// Decode `buf` as produced by [`PostingsBuilder::encode_id_list`] /
    /// [`PostingsBuilder::encode_id_term_list`].
    pub fn new(buf: &'a [u8], with_scores: bool) -> Self {
        IdPostingsIter {
            buf,
            pos: 0,
            prev: None,
            with_scores,
        }
    }
}

impl Iterator for IdPostingsIter<'_> {
    type Item = TermScoredPosting;

    fn next(&mut self) -> Option<TermScoredPosting> {
        if self.pos >= self.buf.len() {
            return None;
        }
        let delta = read_varint(self.buf, &mut self.pos)? as u32;
        let doc = match self.prev {
            None => delta,
            Some(prev) => prev + delta + 1,
        };
        self.prev = Some(doc);
        let tscore = if self.with_scores {
            let b = self.buf.get(self.pos..self.pos + 2)?;
            self.pos += 2;
            u16::from_le_bytes(b.try_into().unwrap())
        } else {
            0
        };
        Some(TermScoredPosting {
            doc: DocId(doc),
            tscore,
        })
    }
}

/// Slice decoder for chunked lists; yields `(cid, posting)` pairs in stored
/// order (cid descending, doc ascending within a chunk).
pub struct ChunkedPostingsIter<'a> {
    buf: &'a [u8],
    pos: usize,
    with_scores: bool,
    current_cid: u32,
    remaining_in_chunk: u64,
    prev: Option<u32>,
}

impl<'a> ChunkedPostingsIter<'a> {
    /// Decode `buf` as produced by [`PostingsBuilder::encode_chunked_list`].
    pub fn new(buf: &'a [u8], with_scores: bool) -> Self {
        ChunkedPostingsIter {
            buf,
            pos: 0,
            with_scores,
            current_cid: 0,
            remaining_in_chunk: 0,
            prev: None,
        }
    }
}

impl Iterator for ChunkedPostingsIter<'_> {
    type Item = (u32, TermScoredPosting);

    fn next(&mut self) -> Option<(u32, TermScoredPosting)> {
        while self.remaining_in_chunk == 0 {
            if self.pos >= self.buf.len() {
                return None;
            }
            self.current_cid = read_varint(self.buf, &mut self.pos)? as u32;
            self.remaining_in_chunk = read_varint(self.buf, &mut self.pos)?;
            self.prev = None;
        }
        self.remaining_in_chunk -= 1;
        let delta = read_varint(self.buf, &mut self.pos)? as u32;
        let doc = match self.prev {
            None => delta,
            Some(prev) => prev + delta + 1,
        };
        self.prev = Some(doc);
        let tscore = if self.with_scores {
            let b = self.buf.get(self.pos..self.pos + 2)?;
            self.pos += 2;
            u16::from_le_bytes(b.try_into().unwrap())
        } else {
            0
        };
        Some((
            self.current_cid,
            TermScoredPosting {
                doc: DocId(doc),
                tscore,
            },
        ))
    }
}

/// Slice decoder for fixed-width score lists; yields `(score, doc, tscore)`.
pub struct ScorePostingsIter<'a> {
    buf: &'a [u8],
    pos: usize,
    with_scores: bool,
}

impl<'a> ScorePostingsIter<'a> {
    /// Decode `buf` as produced by [`PostingsBuilder::encode_score_list`].
    pub fn new(buf: &'a [u8], with_scores: bool) -> Self {
        ScorePostingsIter {
            buf,
            pos: 0,
            with_scores,
        }
    }
}

impl Iterator for ScorePostingsIter<'_> {
    type Item = (f64, DocId, u16);

    fn next(&mut self) -> Option<(f64, DocId, u16)> {
        let width = PostingsBuilder::score_posting_width(self.with_scores);
        let bytes = self.buf.get(self.pos..self.pos + width)?;
        self.pos += width;
        let score = f64::from_le_bytes(bytes[0..8].try_into().unwrap());
        let doc = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        let tscore = if self.with_scores {
            u16::from_le_bytes(bytes[12..14].try_into().unwrap())
        } else {
            0
        };
        Some((score, DocId(doc), tscore))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_list_roundtrip() {
        let docs: Vec<DocId> = [0u32, 1, 5, 6, 1000, 70_000]
            .iter()
            .map(|&d| DocId(d))
            .collect();
        let mut buf = Vec::new();
        PostingsBuilder::encode_id_list(&docs, &mut buf);
        let decoded: Vec<DocId> = IdPostingsIter::new(&buf, false).map(|p| p.doc).collect();
        assert_eq!(decoded, docs);
        // Dense runs compress to ~1 byte per posting.
        let dense: Vec<DocId> = (0..1000u32).map(DocId).collect();
        let mut dense_buf = Vec::new();
        PostingsBuilder::encode_id_list(&dense, &mut dense_buf);
        assert!(
            dense_buf.len() < 1100,
            "dense ids must compress: {}",
            dense_buf.len()
        );
    }

    #[test]
    fn id_term_list_roundtrip() {
        let postings = vec![
            TermScoredPosting {
                doc: DocId(3),
                tscore: 100,
            },
            TermScoredPosting {
                doc: DocId(4),
                tscore: 65535,
            },
            TermScoredPosting {
                doc: DocId(90),
                tscore: 0,
            },
        ];
        let mut buf = Vec::new();
        PostingsBuilder::encode_id_term_list(&postings, &mut buf);
        let decoded: Vec<_> = IdPostingsIter::new(&buf, true).collect();
        assert_eq!(decoded, postings);
    }

    #[test]
    fn chunked_list_roundtrip() {
        let groups = vec![
            ChunkGroup {
                cid: 9,
                postings: vec![
                    TermScoredPosting {
                        doc: DocId(4),
                        tscore: 7,
                    },
                    TermScoredPosting {
                        doc: DocId(10),
                        tscore: 8,
                    },
                ],
            },
            ChunkGroup {
                cid: 3,
                postings: vec![TermScoredPosting {
                    doc: DocId(1),
                    tscore: 9,
                }],
            },
        ];
        for with_scores in [false, true] {
            let mut buf = Vec::new();
            PostingsBuilder::encode_chunked_list(&groups, with_scores, &mut buf);
            let decoded: Vec<_> = ChunkedPostingsIter::new(&buf, with_scores).collect();
            let want: Vec<(u32, TermScoredPosting)> = groups
                .iter()
                .flat_map(|g| {
                    g.postings.iter().map(move |p| {
                        (
                            g.cid,
                            TermScoredPosting {
                                doc: p.doc,
                                tscore: if with_scores { p.tscore } else { 0 },
                            },
                        )
                    })
                })
                .collect();
            assert_eq!(decoded, want, "with_scores={with_scores}");
        }
    }

    #[test]
    fn score_list_roundtrip() {
        let postings = vec![
            (124.2, DocId(15), 3u16),
            (87.13, DocId(2), 4),
            (87.13, DocId(9), 5),
            (0.5, DocId(1), 6),
        ];
        for with_scores in [false, true] {
            let mut buf = Vec::new();
            PostingsBuilder::encode_score_list(&postings, with_scores, &mut buf);
            assert_eq!(
                buf.len(),
                postings.len() * PostingsBuilder::score_posting_width(with_scores)
            );
            let decoded: Vec<_> = ScorePostingsIter::new(&buf, with_scores).collect();
            for (got, want) in decoded.iter().zip(&postings) {
                assert_eq!(got.0, want.0);
                assert_eq!(got.1, want.1);
                assert_eq!(got.2, if with_scores { want.2 } else { 0 });
            }
        }
    }

    #[test]
    fn empty_lists_decode_empty() {
        assert_eq!(IdPostingsIter::new(&[], false).count(), 0);
        assert_eq!(ChunkedPostingsIter::new(&[], true).count(), 0);
        assert_eq!(ScorePostingsIter::new(&[], false).count(), 0);
    }

    #[test]
    fn chunked_list_with_empty_group_is_skipped() {
        let groups = vec![
            ChunkGroup {
                cid: 5,
                postings: vec![],
            },
            ChunkGroup {
                cid: 2,
                postings: vec![TermScoredPosting {
                    doc: DocId(0),
                    tscore: 0,
                }],
            },
        ];
        let mut buf = Vec::new();
        PostingsBuilder::encode_chunked_list(&groups, false, &mut buf);
        let decoded: Vec<_> = ChunkedPostingsIter::new(&buf, false).collect();
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0].0, 2);
    }
}
