//! Document representation: a document is its id plus a bag of terms.

use std::collections::BTreeMap;

use crate::tokenizer::tokenize;
use crate::vocabulary::{TermId, Vocabulary};

/// Identifier of a document (the primary key of the indexed row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u32);

impl DocId {
    #[inline]
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for DocId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A tokenized document: distinct terms with their in-document frequencies,
/// kept sorted by term id for deterministic iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    pub id: DocId,
    /// `(term, frequency)` for each distinct term, ascending by term id.
    pub terms: Vec<(TermId, u32)>,
}

impl Document {
    /// Tokenize `text` against `vocab` (interning new terms) and bump
    /// document frequencies.
    pub fn from_text(id: DocId, text: &str, vocab: &mut Vocabulary) -> Document {
        let mut freqs: BTreeMap<TermId, u32> = BTreeMap::new();
        for token in tokenize(text) {
            *freqs.entry(vocab.intern(&token)).or_insert(0) += 1;
        }
        for &term in freqs.keys() {
            vocab.bump_doc_freq(term);
        }
        Document {
            id,
            terms: freqs.into_iter().collect(),
        }
    }

    /// Build directly from `(term, frequency)` pairs (synthetic workloads).
    /// Pairs are sorted and duplicate terms merged; document frequencies in
    /// `vocab` are **not** touched (the caller owns that bookkeeping).
    pub fn from_term_freqs(id: DocId, pairs: impl IntoIterator<Item = (TermId, u32)>) -> Document {
        let mut freqs: BTreeMap<TermId, u32> = BTreeMap::new();
        for (t, f) in pairs {
            *freqs.entry(t).or_insert(0) += f;
        }
        Document {
            id,
            terms: freqs.into_iter().collect(),
        }
    }

    /// Number of distinct terms.
    pub fn num_distinct_terms(&self) -> usize {
        self.terms.len()
    }

    /// Total token count (sum of frequencies).
    pub fn len_tokens(&self) -> u64 {
        self.terms.iter().map(|&(_, f)| u64::from(f)).sum()
    }

    /// Largest single-term frequency (used by TF normalization). Zero for an
    /// empty document.
    pub fn max_tf(&self) -> u32 {
        self.terms.iter().map(|&(_, f)| f).max().unwrap_or(0)
    }

    /// Frequency of `term` in this document (0 when absent).
    pub fn tf(&self, term: TermId) -> u32 {
        self.terms
            .binary_search_by_key(&term, |&(t, _)| t)
            .map(|i| self.terms[i].1)
            .unwrap_or(0)
    }

    /// True if the document contains `term`.
    pub fn contains(&self, term: TermId) -> bool {
        self.tf(term) > 0
    }

    /// Distinct term ids, ascending.
    pub fn term_ids(&self) -> impl Iterator<Item = TermId> + '_ {
        self.terms.iter().map(|&(t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_text_counts_frequencies() {
        let mut vocab = Vocabulary::new();
        let doc = Document::from_text(DocId(1), "golden gate golden bridge", &mut vocab);
        let golden = vocab.get("golden").unwrap();
        let gate = vocab.get("gate").unwrap();
        assert_eq!(doc.tf(golden), 2);
        assert_eq!(doc.tf(gate), 1);
        assert_eq!(doc.num_distinct_terms(), 3);
        assert_eq!(doc.len_tokens(), 4);
        assert_eq!(doc.max_tf(), 2);
        assert_eq!(vocab.doc_freq(golden), 1, "df counts documents, not tokens");
    }

    #[test]
    fn terms_sorted_by_id() {
        let doc =
            Document::from_term_freqs(DocId(2), [(TermId(9), 1), (TermId(3), 2), (TermId(9), 3)]);
        assert_eq!(doc.terms, vec![(TermId(3), 2), (TermId(9), 4)]);
        assert!(doc.contains(TermId(3)));
        assert!(!doc.contains(TermId(4)));
    }

    #[test]
    fn empty_document() {
        let mut vocab = Vocabulary::new();
        let doc = Document::from_text(DocId(3), "", &mut vocab);
        assert_eq!(doc.num_distinct_terms(), 0);
        assert_eq!(doc.max_tf(), 0);
    }
}
