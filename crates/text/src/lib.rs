//! # svr-text
//!
//! Text-management substrate for the SVR reproduction: tokenization,
//! vocabulary interning, document representation, posting-list codecs and
//! term scoring (normalized TF × IDF). This is the plumbing the paper's
//! "text management component" (extender / cartridge / data blade) needs
//! underneath the index structures of `svr-core`.

pub mod document;
pub mod postings;
pub mod termscore;
pub mod tokenizer;
pub mod vocabulary;

pub use document::{DocId, Document};
pub use postings::{
    ChunkGroup, ChunkedPostingsIter, IdPostingsIter, PostingsBuilder, TermScoredPosting,
};
pub use termscore::{idf, normalized_tf, quantize_term_score, unquantize_term_score};
pub use tokenizer::tokenize;
pub use vocabulary::{TermId, Vocabulary};
