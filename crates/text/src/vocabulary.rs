//! Term dictionary: interned term ids plus document-frequency statistics.

use std::collections::HashMap;

/// Dense identifier of a distinct term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

impl TermId {
    /// Index into dense per-term arrays.
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

/// Bidirectional term ↔ id map with document frequencies.
#[derive(Debug, Default, Clone)]
pub struct Vocabulary {
    by_term: HashMap<String, TermId>,
    terms: Vec<String>,
    doc_freq: Vec<u64>,
}

impl Vocabulary {
    /// Empty vocabulary.
    pub fn new() -> Vocabulary {
        Vocabulary::default()
    }

    /// Intern `term`, returning its id (existing or fresh).
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.by_term.get(term) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.by_term.insert(term.to_string(), id);
        self.terms.push(term.to_string());
        self.doc_freq.push(0);
        id
    }

    /// Look up an existing term without interning.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.by_term.get(term).copied()
    }

    /// The string for a term id.
    pub fn term(&self, id: TermId) -> Option<&str> {
        self.terms.get(id.as_usize()).map(String::as_str)
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Record that one document contains `id` (call once per distinct term
    /// per document).
    pub fn bump_doc_freq(&mut self, id: TermId) {
        self.doc_freq[id.as_usize()] += 1;
    }

    /// Decrement document frequency (document deletion / content update).
    pub fn drop_doc_freq(&mut self, id: TermId) {
        let df = &mut self.doc_freq[id.as_usize()];
        *df = df.saturating_sub(1);
    }

    /// Number of documents containing `id`.
    pub fn doc_freq(&self, id: TermId) -> u64 {
        self.doc_freq.get(id.as_usize()).copied().unwrap_or(0)
    }

    /// Term ids sorted by descending document frequency — the paper's query
    /// workloads pick keywords from "the top N most frequent terms".
    pub fn terms_by_frequency(&self) -> Vec<TermId> {
        let mut ids: Vec<TermId> = (0..self.terms.len() as u32).map(TermId).collect();
        ids.sort_by_key(|id| std::cmp::Reverse(self.doc_freq(*id)));
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("news");
        let b = v.intern("news");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
        assert_eq!(v.term(a), Some("news"));
        assert_eq!(v.get("news"), Some(a));
        assert_eq!(v.get("other"), None);
    }

    #[test]
    fn doc_freq_tracking() {
        let mut v = Vocabulary::new();
        let a = v.intern("a");
        let b = v.intern("b");
        v.bump_doc_freq(a);
        v.bump_doc_freq(a);
        v.bump_doc_freq(b);
        assert_eq!(v.doc_freq(a), 2);
        assert_eq!(v.doc_freq(b), 1);
        v.drop_doc_freq(b);
        v.drop_doc_freq(b);
        assert_eq!(v.doc_freq(b), 0, "doc freq must saturate at zero");
    }

    #[test]
    fn frequency_ordering() {
        let mut v = Vocabulary::new();
        let rare = v.intern("rare");
        let common = v.intern("common");
        for _ in 0..10 {
            v.bump_doc_freq(common);
        }
        v.bump_doc_freq(rare);
        assert_eq!(v.terms_by_frequency()[0], common);
    }
}
