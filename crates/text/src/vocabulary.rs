//! Term dictionary: interned term ids plus document-frequency statistics.

use std::collections::HashMap;

/// Dense identifier of a distinct term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

impl TermId {
    /// Index into dense per-term arrays.
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

/// Bidirectional term ↔ id map with document frequencies.
#[derive(Debug, Default, Clone)]
pub struct Vocabulary {
    by_term: HashMap<String, TermId>,
    terms: Vec<String>,
    doc_freq: Vec<u64>,
}

impl Vocabulary {
    /// Empty vocabulary.
    pub fn new() -> Vocabulary {
        Vocabulary::default()
    }

    /// Rebuild a vocabulary from its persisted terms, **in id order**
    /// (term id `i` is the `i`-th string): the recovery half of a durable
    /// vocabulary whose growth is logged one `(id, term)` record per
    /// *newly interned* term. Document frequencies start at zero; callers
    /// that need them re-derive from their forward stores.
    ///
    /// Returns `None` if the terms are not dense (a duplicate string would
    /// make two ids collide on re-interning).
    pub fn from_terms(terms: impl IntoIterator<Item = String>) -> Option<Vocabulary> {
        let mut vocab = Vocabulary::new();
        for (i, term) in terms.into_iter().enumerate() {
            let id = vocab.intern(&term);
            if id.as_usize() != i {
                return None; // duplicate term: ids would not be dense
            }
        }
        Some(vocab)
    }

    /// Number of terms a durable vocabulary has persisted so far is tracked
    /// by the caller; this returns the terms interned past that high-water
    /// mark, i.e. the increment to log. Ids are dense, so the increment is
    /// exactly `persisted..len`.
    pub fn terms_since(&self, persisted: usize) -> &[String] {
        &self.terms[persisted.min(self.terms.len())..]
    }

    /// Intern `term`, returning its id (existing or fresh).
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.by_term.get(term) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.by_term.insert(term.to_string(), id);
        self.terms.push(term.to_string());
        self.doc_freq.push(0);
        id
    }

    /// Look up an existing term without interning.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.by_term.get(term).copied()
    }

    /// The string for a term id.
    pub fn term(&self, id: TermId) -> Option<&str> {
        self.terms.get(id.as_usize()).map(String::as_str)
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Record that one document contains `id` (call once per distinct term
    /// per document).
    pub fn bump_doc_freq(&mut self, id: TermId) {
        self.doc_freq[id.as_usize()] += 1;
    }

    /// Add `delta` to a term's document frequency in one step (bulk df
    /// restoration when a durable engine reopens).
    pub fn add_doc_freq(&mut self, id: TermId, delta: u64) {
        if let Some(df) = self.doc_freq.get_mut(id.as_usize()) {
            *df += delta;
        }
    }

    /// Decrement document frequency (document deletion / content update).
    pub fn drop_doc_freq(&mut self, id: TermId) {
        let df = &mut self.doc_freq[id.as_usize()];
        *df = df.saturating_sub(1);
    }

    /// Number of documents containing `id`.
    pub fn doc_freq(&self, id: TermId) -> u64 {
        self.doc_freq.get(id.as_usize()).copied().unwrap_or(0)
    }

    /// Term ids sorted by descending document frequency — the paper's query
    /// workloads pick keywords from "the top N most frequent terms".
    pub fn terms_by_frequency(&self) -> Vec<TermId> {
        let mut ids: Vec<TermId> = (0..self.terms.len() as u32).map(TermId).collect();
        ids.sort_by_key(|id| std::cmp::Reverse(self.doc_freq(*id)));
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("news");
        let b = v.intern("news");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
        assert_eq!(v.term(a), Some("news"));
        assert_eq!(v.get("news"), Some(a));
        assert_eq!(v.get("other"), None);
    }

    #[test]
    fn doc_freq_tracking() {
        let mut v = Vocabulary::new();
        let a = v.intern("a");
        let b = v.intern("b");
        v.bump_doc_freq(a);
        v.bump_doc_freq(a);
        v.bump_doc_freq(b);
        assert_eq!(v.doc_freq(a), 2);
        assert_eq!(v.doc_freq(b), 1);
        v.drop_doc_freq(b);
        v.drop_doc_freq(b);
        assert_eq!(v.doc_freq(b), 0, "doc freq must saturate at zero");
    }

    #[test]
    fn from_terms_restores_ids_densely() {
        let mut v = Vocabulary::new();
        for t in ["golden", "gate", "bridge"] {
            v.intern(t);
        }
        let restored =
            Vocabulary::from_terms((0..v.len() as u32).map(|i| v.term(TermId(i)).unwrap().into()))
                .unwrap();
        assert_eq!(restored.len(), 3);
        for t in ["golden", "gate", "bridge"] {
            assert_eq!(restored.get(t), v.get(t), "{t}");
        }
        // Duplicates cannot restore densely.
        assert!(Vocabulary::from_terms(["a".into(), "a".into()]).is_none());
    }

    #[test]
    fn terms_since_reports_increment() {
        let mut v = Vocabulary::new();
        v.intern("a");
        v.intern("b");
        assert_eq!(v.terms_since(1), &["b".to_string()]);
        assert!(v.terms_since(2).is_empty());
        assert!(v.terms_since(99).is_empty());
    }

    #[test]
    fn frequency_ordering() {
        let mut v = Vocabulary::new();
        let rare = v.intern("rare");
        let common = v.intern("common");
        for _ in 0..10 {
            v.bump_doc_freq(common);
        }
        v.bump_doc_freq(rare);
        assert_eq!(v.terms_by_frequency()[0], common);
    }
}
