//! Property tests for the posting-list codecs: every format must round-trip
//! arbitrary posting data exactly, and the ID formats must actually
//! compress dense runs.

use proptest::prelude::*;
use svr_text::postings::{
    ChunkGroup, ChunkedPostingsIter, IdPostingsIter, PostingsBuilder, TermScoredPosting,
};
use svr_text::{normalized_tf, quantize_term_score, unquantize_term_score, DocId};

/// Strictly ascending doc ids.
fn ascending_docs() -> impl Strategy<Value = Vec<DocId>> {
    prop::collection::vec(1u32..50, 0..200).prop_map(|gaps| {
        let mut docs = Vec::with_capacity(gaps.len());
        let mut id = 0u32;
        for gap in gaps {
            id += gap;
            docs.push(DocId(id));
        }
        docs
    })
}

fn scored(docs: Vec<DocId>, seed: u64) -> Vec<TermScoredPosting> {
    docs.into_iter()
        .enumerate()
        .map(|(i, doc)| TermScoredPosting {
            doc,
            tscore: ((seed as usize + i * 7919) % 65536) as u16,
        })
        .collect()
}

proptest! {
    #[test]
    fn id_list_roundtrip(docs in ascending_docs()) {
        let mut buf = Vec::new();
        PostingsBuilder::encode_id_list(&docs, &mut buf);
        let decoded: Vec<DocId> = IdPostingsIter::new(&buf, false).map(|p| p.doc).collect();
        prop_assert_eq!(decoded, docs);
    }

    #[test]
    fn id_term_list_roundtrip(docs in ascending_docs(), seed in any::<u64>()) {
        let postings = scored(docs, seed);
        let mut buf = Vec::new();
        PostingsBuilder::encode_id_term_list(&postings, &mut buf);
        let decoded: Vec<TermScoredPosting> = IdPostingsIter::new(&buf, true).collect();
        prop_assert_eq!(decoded, postings);
    }

    #[test]
    fn chunked_list_roundtrip(
        chunks in prop::collection::vec((1u32..1000, ascending_docs()), 0..8),
        seed in any::<u64>(),
        with_scores in any::<bool>(),
    ) {
        // Descending, distinct chunk ids.
        let mut groups: Vec<ChunkGroup> = chunks
            .into_iter()
            .map(|(cid, docs)| ChunkGroup { cid, postings: scored(docs, seed) })
            .collect();
        groups.sort_by_key(|g| std::cmp::Reverse(g.cid));
        groups.dedup_by_key(|g| g.cid);

        let mut buf = Vec::new();
        PostingsBuilder::encode_chunked_list(&groups, with_scores, &mut buf);
        let decoded: Vec<(u32, TermScoredPosting)> =
            ChunkedPostingsIter::new(&buf, with_scores).collect();
        let expected: Vec<(u32, TermScoredPosting)> = groups
            .iter()
            .flat_map(|g| {
                g.postings.iter().map(move |p| {
                    (g.cid, TermScoredPosting {
                        doc: p.doc,
                        tscore: if with_scores { p.tscore } else { 0 },
                    })
                })
            })
            .collect();
        prop_assert_eq!(decoded, expected);
    }

    #[test]
    fn score_list_roundtrip(
        docs in ascending_docs(),
        seed in any::<u64>(),
        with_scores in any::<bool>(),
    ) {
        let mut rows: Vec<(f64, DocId, u16)> = scored(docs, seed)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (((i * 31) % 997) as f64, p.doc, p.tscore))
            .collect();
        rows.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        let mut buf = Vec::new();
        PostingsBuilder::encode_score_list(&rows, with_scores, &mut buf);
        let decoded: Vec<(f64, DocId, u16)> =
            svr_text::postings::ScorePostingsIter::new(&buf, with_scores).collect();
        prop_assert_eq!(decoded.len(), rows.len());
        for (got, want) in decoded.iter().zip(&rows) {
            prop_assert_eq!(got.0, want.0);
            prop_assert_eq!(got.1, want.1);
            prop_assert_eq!(got.2, if with_scores { want.2 } else { 0 });
        }
    }

    #[test]
    fn quantization_is_monotone(a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(quantize_term_score(lo) <= quantize_term_score(hi));
        prop_assert!(unquantize_term_score(quantize_term_score(lo)) <= lo + 1e-4);
    }

    #[test]
    fn normalized_tf_is_monotone_and_bounded(tf in 1u32..10_000, max_tf in 1u32..10_000) {
        let tf = tf.min(max_tf);
        let nt = normalized_tf(tf, max_tf);
        prop_assert!(nt > 0.0 && nt <= 1.0);
        if tf < max_tf {
            prop_assert!(normalized_tf(tf + 1, max_tf) >= nt);
        }
    }
}

#[test]
fn dense_id_lists_compress_to_about_a_byte_per_posting() {
    let docs: Vec<DocId> = (0..100_000u32).map(DocId).collect();
    let mut buf = Vec::new();
    PostingsBuilder::encode_id_list(&docs, &mut buf);
    assert!(
        buf.len() <= docs.len() + docs.len() / 10,
        "dense run must compress: {} bytes for {} postings",
        buf.len(),
        docs.len()
    );
}
