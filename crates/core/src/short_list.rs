//! Short (mutable) inverted lists on a B+-tree.
//!
//! Each method that maintains short lists stores them in one B+-tree whose
//! key layout makes the tree's ordering the query algorithm's merge order:
//!
//! ```text
//! ById:        [term BE][doc BE]                    (ID method content ops)
//! ByScoreDesc: [term BE][score desc][doc BE]        (Score-Threshold, Score)
//! ByChunkDesc: [term BE][chunk desc][doc BE]        (Chunk, Chunk-TermScore)
//! ```
//!
//! The value is `[op][tscore u16]`: `op` distinguishes score-update/insert
//! postings (`Add`) from content-removal tombstones (`Rem`, Appendix A.1).

use std::sync::Arc;

use svr_storage::codec::{
    push_f64_desc, push_u32_be, push_u32_desc, read_f64_desc, read_u32_be, read_u32_desc,
};
use svr_storage::{BTree, BTreeCursor, Store};

use crate::error::{CoreError, Result};
use crate::types::{ChunkId, DocId, Score, TermId};

/// Posting operation flag (Appendix A.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// A live posting (score update, insertion, or content addition).
    Add,
    /// The term was removed from the document; cancels the long-list posting
    /// it is co-located with.
    Rem,
}

/// Merge-order position of a posting. `rank()` maps each variant onto an
/// ascending `u64` so that B+-tree key order, long-list order and the merge
/// comparator all agree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PostingPos {
    /// ID-ordered lists: all postings share one rank; doc id breaks ties.
    Id,
    /// Score-ordered lists, descending.
    ByScore(Score),
    /// Chunk-ordered lists, descending.
    ByChunk(ChunkId),
}

impl PostingPos {
    /// Ascending merge rank (smaller = earlier in the scan).
    #[inline]
    pub fn rank(&self) -> u64 {
        match *self {
            PostingPos::Id => 0,
            PostingPos::ByScore(s) => !svr_storage::codec::f64_order_bits(s),
            PostingPos::ByChunk(c) => u64::from(!c),
        }
    }
}

/// Key layout selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShortOrder {
    ById,
    ByScoreDesc,
    ByChunkDesc,
}

/// A decoded short-list posting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShortPosting {
    pub pos: PostingPos,
    pub doc: DocId,
    pub op: Op,
    pub tscore: u16,
}

/// Short lists for every term, in one tree.
pub struct ShortLists {
    tree: BTree,
    order: ShortOrder,
}

impl ShortLists {
    /// Create an empty short-list tree.
    pub fn create(store: Arc<Store>, order: ShortOrder) -> Result<ShortLists> {
        ShortLists::create_in(store, order, false)
    }

    /// Create an empty tree, durable (reopenable via [`ShortLists::open`])
    /// when requested.
    pub fn create_in(store: Arc<Store>, order: ShortOrder, durable: bool) -> Result<ShortLists> {
        Ok(ShortLists {
            tree: crate::durable::create_tree(store, durable)?,
            order,
        })
    }

    /// Reattach a durable tree (the key layout is not stored — the caller
    /// supplies the same `order` the tree was created with).
    pub fn open(store: Arc<Store>, order: ShortOrder) -> Result<ShortLists> {
        Ok(ShortLists {
            tree: crate::durable::open_tree(store)?,
            order,
        })
    }

    /// Per-term maximum `tscore` over the live `Add` postings — how a
    /// reopened term-score shard re-derives the `inserted_max` widening of
    /// its fancy bounds. (Score-update moves are included; that can only
    /// make the bound looser, never unsound.)
    pub fn max_add_tscores(&self) -> Result<std::collections::HashMap<TermId, u16>> {
        let mut out = std::collections::HashMap::new();
        let mut cursor = self.tree.cursor(&[])?;
        while let Some((k, v)) = cursor.next_entry()? {
            let (op, tscore) = Self::decode_value(&v)?;
            if op == Op::Add {
                let term = TermId(read_u32_be(&k, 0));
                let entry = out.entry(term).or_insert(0u16);
                *entry = (*entry).max(tscore);
            }
        }
        Ok(out)
    }

    /// Maximum `tscore` over one term's live `Add` postings — the short-
    /// list side of a WAND term-score upper bound. Short lists are bounded
    /// small between offline merges, so the per-term scan is cheap.
    pub fn max_add_tscore(&self, term: TermId) -> Result<u16> {
        let mut cursor = self.cursor(term)?;
        let mut max = 0u16;
        while let Some(p) = cursor.next_posting()? {
            if p.op == Op::Add {
                max = max.max(p.tscore);
            }
        }
        Ok(max)
    }

    /// Number of postings across all terms.
    pub fn len(&self) -> u64 {
        self.tree.len()
    }

    /// True when no postings exist.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    fn key(&self, term: TermId, pos: PostingPos, doc: DocId) -> Vec<u8> {
        let mut key = Vec::with_capacity(16);
        push_u32_be(&mut key, term.0);
        match (self.order, pos) {
            (ShortOrder::ById, PostingPos::Id) => {}
            (ShortOrder::ByScoreDesc, PostingPos::ByScore(s)) => push_f64_desc(&mut key, s),
            (ShortOrder::ByChunkDesc, PostingPos::ByChunk(c)) => push_u32_desc(&mut key, c),
            _ => panic!("posting position does not match short-list order"), // svr-lint: allow(no-unwrap): type-state misuse by a caller, not a data error
        }
        push_u32_be(&mut key, doc.0);
        key
    }

    fn value(op: Op, tscore: u16) -> [u8; 3] {
        let mut v = [0u8; 3];
        v[0] = match op {
            Op::Add => 1,
            Op::Rem => 2,
        };
        v[1..3].copy_from_slice(&tscore.to_le_bytes());
        v
    }

    fn decode_value(raw: &[u8]) -> Result<(Op, u16)> {
        let op = match raw.first() {
            Some(1) => Op::Add,
            Some(2) => Op::Rem,
            _ => {
                return Err(CoreError::Storage(svr_storage::StorageError::Corrupt(
                    "short op",
                )))
            }
        };
        let tscore = u16::from_le_bytes(
            raw[1..3]
                .try_into()
                .map_err(|_| CoreError::Storage(svr_storage::StorageError::Corrupt("short ts")))?,
        );
        Ok((op, tscore))
    }

    /// Insert or replace a posting.
    pub fn put(
        &self,
        term: TermId,
        pos: PostingPos,
        doc: DocId,
        op: Op,
        tscore: u16,
    ) -> Result<()> {
        self.tree
            .put(&self.key(term, pos, doc), &Self::value(op, tscore))?;
        Ok(())
    }

    /// Remove a posting; true if it existed.
    pub fn delete(&self, term: TermId, pos: PostingPos, doc: DocId) -> Result<bool> {
        Ok(self.tree.delete(&self.key(term, pos, doc))?.is_some())
    }

    /// Fetch one posting's `(op, tscore)`.
    pub fn get(&self, term: TermId, pos: PostingPos, doc: DocId) -> Result<Option<(Op, u16)>> {
        match self.tree.get(&self.key(term, pos, doc))? {
            Some(v) => Ok(Some(Self::decode_value(&v)?)),
            None => Ok(None),
        }
    }

    /// Streaming cursor over one term's short list, in merge order.
    pub fn cursor(&self, term: TermId) -> Result<ShortCursor<'_>> {
        self.cursor_after(term, None)
    }

    /// Cursor over one term's short list starting strictly *after* the
    /// posting at `(pos, doc)` — how a suspended scan resumes. Because the
    /// tree is seeked by key (not by page), this stays correct under
    /// arbitrary concurrent inserts/deletes between suspension and resume:
    /// the scan continues from the first surviving posting past the
    /// recorded position.
    pub fn cursor_after(
        &self,
        term: TermId,
        after: Option<(PostingPos, DocId)>,
    ) -> Result<ShortCursor<'_>> {
        let start = match after {
            None => {
                let mut prefix = Vec::with_capacity(4);
                push_u32_be(&mut prefix, term.0);
                prefix
            }
            Some((pos, doc)) => {
                // The successor of a fixed-length key under bytewise order:
                // the key extended by one zero byte.
                let mut key = self.key(term, pos, doc);
                key.push(0);
                key
            }
        };
        let cursor = self.tree.cursor(&start)?;
        Ok(ShortCursor {
            lists_order: self.order,
            term,
            cursor,
        })
    }

    /// Materialize one term's short list (offline merge, tests).
    pub fn postings_for(&self, term: TermId) -> Result<Vec<ShortPosting>> {
        let mut cursor = self.cursor(term)?;
        let mut out = Vec::new();
        while let Some(p) = cursor.next_posting()? {
            out.push(p);
        }
        Ok(out)
    }

    /// Every term that currently has short postings.
    pub fn terms(&self) -> Result<Vec<TermId>> {
        let mut cursor = self.tree.cursor(&[])?;
        let mut out: Vec<TermId> = Vec::new();
        while let Some((k, _)) = cursor.next_entry()? {
            let term = TermId(read_u32_be(&k, 0));
            if out.last() != Some(&term) {
                out.push(term);
            }
        }
        Ok(out)
    }

    /// Drop page and decoded-node caches (cold-cache protocol when this
    /// tree serves as the Score method's clustered long list).
    pub fn clear_caches(&self) -> Result<()> {
        Ok(self.tree.clear_caches()?)
    }

    /// Drop every posting (after an offline merge into the long lists).
    pub fn clear(&self) -> Result<()> {
        // Collect keys first; the cursor must not observe concurrent deletes.
        let mut cursor = self.tree.cursor(&[])?;
        let mut keys = Vec::new();
        while let Some((k, _)) = cursor.next_entry()? {
            keys.push(k);
        }
        for k in keys {
            self.tree.delete(&k)?;
        }
        Ok(())
    }
}

/// Decode a short-list key for the given layout.
fn decode_short_key(order: ShortOrder, key: &[u8]) -> (TermId, PostingPos, DocId) {
    let term = TermId(read_u32_be(key, 0));
    match order {
        ShortOrder::ById => (term, PostingPos::Id, DocId(read_u32_be(key, 4))),
        ShortOrder::ByScoreDesc => (
            term,
            PostingPos::ByScore(read_f64_desc(key, 4)),
            DocId(read_u32_be(key, 12)),
        ),
        ShortOrder::ByChunkDesc => (
            term,
            PostingPos::ByChunk(read_u32_desc(key, 4)),
            DocId(read_u32_be(key, 8)),
        ),
    }
}

/// Streaming short-list cursor for one term.
pub struct ShortCursor<'t> {
    lists_order: ShortOrder,
    term: TermId,
    cursor: BTreeCursor<'t>,
}

impl ShortCursor<'_> {
    /// Next posting of this term, or `None` when the term's range ends.
    pub fn next_posting(&mut self) -> Result<Option<ShortPosting>> {
        // Stop without consuming entries of the next term: peek first.
        match self.cursor.peek_key()? {
            Some(key) if read_u32_be(key, 0) == self.term.0 => {}
            _ => return Ok(None),
        }
        let Some((key, value)) = self.cursor.next_entry()? else {
            // Unreachable: the peek above saw this entry.
            return Ok(None);
        };
        let (_, pos, doc) = decode_short_key(self.lists_order, &key);
        let (op, tscore) = ShortLists::decode_value(&value)?;
        Ok(Some(ShortPosting {
            pos,
            doc,
            op,
            tscore,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svr_storage::MemDisk;

    fn lists(order: ShortOrder) -> ShortLists {
        let store = Arc::new(Store::new(Arc::new(MemDisk::new(4096)), 64));
        ShortLists::create(store, order).unwrap()
    }

    #[test]
    fn id_order_roundtrip() {
        let s = lists(ShortOrder::ById);
        s.put(TermId(7), PostingPos::Id, DocId(30), Op::Add, 9)
            .unwrap();
        s.put(TermId(7), PostingPos::Id, DocId(2), Op::Rem, 0)
            .unwrap();
        s.put(TermId(8), PostingPos::Id, DocId(1), Op::Add, 0)
            .unwrap();
        let postings = s.postings_for(TermId(7)).unwrap();
        assert_eq!(postings.len(), 2);
        assert_eq!(postings[0].doc, DocId(2));
        assert_eq!(postings[0].op, Op::Rem);
        assert_eq!(postings[1].doc, DocId(30));
        assert_eq!(postings[1].tscore, 9);
        assert_eq!(s.terms().unwrap(), vec![TermId(7), TermId(8)]);
    }

    #[test]
    fn score_desc_ordering() {
        let s = lists(ShortOrder::ByScoreDesc);
        s.put(TermId(1), PostingPos::ByScore(87.13), DocId(15), Op::Add, 0)
            .unwrap();
        s.put(TermId(1), PostingPos::ByScore(124.2), DocId(9), Op::Add, 0)
            .unwrap();
        s.put(TermId(1), PostingPos::ByScore(87.13), DocId(3), Op::Add, 0)
            .unwrap();
        let postings = s.postings_for(TermId(1)).unwrap();
        let order: Vec<(f64, u32)> = postings
            .iter()
            .map(|p| match p.pos {
                PostingPos::ByScore(s) => (s, p.doc.0),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![(124.2, 9), (87.13, 3), (87.13, 15)]);
    }

    #[test]
    fn chunk_desc_ordering() {
        let s = lists(ShortOrder::ByChunkDesc);
        s.put(TermId(1), PostingPos::ByChunk(2), DocId(5), Op::Add, 0)
            .unwrap();
        s.put(TermId(1), PostingPos::ByChunk(9), DocId(7), Op::Add, 0)
            .unwrap();
        s.put(TermId(1), PostingPos::ByChunk(9), DocId(1), Op::Add, 0)
            .unwrap();
        let postings = s.postings_for(TermId(1)).unwrap();
        let order: Vec<(u32, u32)> = postings
            .iter()
            .map(|p| match p.pos {
                PostingPos::ByChunk(c) => (c, p.doc.0),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![(9, 1), (9, 7), (2, 5)]);
    }

    #[test]
    fn cursor_after_resumes_past_key() {
        let s = lists(ShortOrder::ByScoreDesc);
        for (score, doc) in [(90.0, 1u32), (80.0, 2), (80.0, 5), (70.0, 9)] {
            s.put(
                TermId(3),
                PostingPos::ByScore(score),
                DocId(doc),
                Op::Add,
                0,
            )
            .unwrap();
        }
        let mut c = s
            .cursor_after(TermId(3), Some((PostingPos::ByScore(80.0), DocId(2))))
            .unwrap();
        let mut docs = Vec::new();
        while let Some(p) = c.next_posting().unwrap() {
            docs.push(p.doc.0);
        }
        assert_eq!(docs, vec![5, 9]);
        // Resume past the last key of the term: empty, even when a later
        // term has postings.
        s.put(TermId(4), PostingPos::ByScore(99.0), DocId(1), Op::Add, 0)
            .unwrap();
        let mut c = s
            .cursor_after(TermId(3), Some((PostingPos::ByScore(70.0), DocId(9))))
            .unwrap();
        assert!(c.next_posting().unwrap().is_none());
    }

    #[test]
    fn put_delete_get() {
        let s = lists(ShortOrder::ByChunkDesc);
        let pos = PostingPos::ByChunk(4);
        s.put(TermId(1), pos, DocId(10), Op::Add, 77).unwrap();
        assert_eq!(
            s.get(TermId(1), pos, DocId(10)).unwrap(),
            Some((Op::Add, 77))
        );
        assert!(s.delete(TermId(1), pos, DocId(10)).unwrap());
        assert_eq!(s.get(TermId(1), pos, DocId(10)).unwrap(), None);
        assert!(!s.delete(TermId(1), pos, DocId(10)).unwrap());
    }

    #[test]
    fn clear_empties_everything() {
        let s = lists(ShortOrder::ById);
        for t in 0..20u32 {
            for d in 0..20u32 {
                s.put(TermId(t), PostingPos::Id, DocId(d), Op::Add, 0)
                    .unwrap();
            }
        }
        assert_eq!(s.len(), 400);
        s.clear().unwrap();
        assert!(s.is_empty());
        assert!(s.terms().unwrap().is_empty());
    }

    #[test]
    fn posting_pos_rank_ordering() {
        // Higher scores/chunks must rank earlier (smaller).
        assert!(PostingPos::ByScore(124.2).rank() < PostingPos::ByScore(87.13).rank());
        assert!(PostingPos::ByChunk(9).rank() < PostingPos::ByChunk(2).rank());
        assert_eq!(PostingPos::Id.rank(), 0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_pos_panics() {
        let s = lists(ShortOrder::ById);
        let _ = s.put(TermId(1), PostingPos::ByChunk(1), DocId(1), Op::Add, 0);
    }
}
