//! Merge machinery for query processing.
//!
//! [`UnionCursor`] implements the paper's `SL(ti) ∪ LL(ti)` — the logical
//! union of a term's short and long lists in list order — including the
//! Appendix-A cancellation of `REM` tombstones against the long posting they
//! are co-located with.
//!
//! [`MultiMerge`] merges the m per-term unions and yields *candidates*: each
//! distinct `(list position, doc)` with the set of query terms that matched
//! there. Conjunctive queries keep candidates matched by every term;
//! disjunctive queries keep them all. Candidates are produced in global list
//! order (score/chunk descending, then doc ascending), which is what the
//! stopping rules of Algorithms 2 and 3 rely on.

use crate::codec::BlockMeta;
use crate::error::Result;
use crate::long_list::{LongCursor, LongPosting, LongResume};
use crate::multiterm::SeekStats;
use crate::short_list::{Op, PostingPos, ShortCursor, ShortPosting};
use crate::types::DocId;

/// Where a matched posting came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    Long,
    ShortAdd,
}

/// A term's posting match within a candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TermMatch {
    pub source: Source,
    pub tscore: u16,
}

/// Merge-order key: `(position rank, doc id)`, ascending.
pub type MergeKey = (u64, u32);

/// One posting event from a term's union cursor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnionEvent {
    pub pos: PostingPos,
    pub doc: DocId,
    pub m: TermMatch,
}

impl UnionEvent {
    #[inline]
    pub fn key(&self) -> MergeKey {
        (self.pos.rank(), self.doc.0)
    }
}

/// Owned suspension state of a [`UnionCursor`]: the buffered heads plus the
/// two underlying cursor positions, with no borrow of any store. Captured
/// by [`UnionCursor::suspend`]; a method's cursor backend turns it back
/// into a live [`UnionCursor`] (see `methods::cursor`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnionResume {
    pub(crate) primed: bool,
    pub(crate) long_head: Option<LongPosting>,
    pub(crate) short_head: Option<ShortPosting>,
    /// Long-cursor position *after* `long_head`.
    pub(crate) long: LongResume,
    /// Merge key of the last posting pulled from the long cursor — carried
    /// explicitly so the epoch-mismatch fallback keeps its skip boundary
    /// even across suspensions where the long side is exhausted
    /// (`long_head == None`).
    pub(crate) long_after: Option<MergeKey>,
    /// Key of the last posting pulled from the short cursor (`short_head`'s
    /// key while a head is buffered): resume seeks its successor.
    pub(crate) short_after: Option<(PostingPos, DocId)>,
}

impl UnionResume {
    /// State for a stream that has not been opened yet.
    pub fn fresh() -> UnionResume {
        UnionResume {
            primed: false,
            long_head: None,
            short_head: None,
            long: LongResume::fresh(),
            long_after: None,
            short_after: None,
        }
    }

    /// The short-side resume key (for rebuilding the short cursor).
    pub fn short_resume_key(&self) -> Option<(PostingPos, DocId)> {
        self.short_after
    }

    /// The long-side resume state (for rebuilding the long cursor).
    pub fn long_resume(&self) -> &LongResume {
        &self.long
    }
}

/// Union of one term's short and long lists in list order.
pub struct UnionCursor<'a> {
    long: LongCursor<'a>,
    short: ShortCursor<'a>,
    long_head: Option<LongPosting>,
    short_head: Option<ShortPosting>,
    primed: bool,
    /// Merge key of the last posting pulled from the long cursor.
    long_after: Option<MergeKey>,
    /// Key of the last posting pulled from the short cursor.
    short_after: Option<(PostingPos, DocId)>,
}

impl<'a> UnionCursor<'a> {
    /// Combine a long-list cursor and a short-list cursor for one term.
    pub fn new(long: LongCursor<'a>, short: ShortCursor<'a>) -> UnionCursor<'a> {
        UnionCursor {
            long,
            short,
            long_head: None,
            short_head: None,
            primed: false,
            long_after: None,
            short_after: None,
        }
    }

    /// Rebuild a previously suspended union stream. `long` and `short` must
    /// be cursors positioned according to `resume` (via
    /// [`crate::long_list::LongListStore::resume_cursor`] and
    /// [`crate::short_list::ShortLists::cursor_after`]); the buffered heads
    /// are restored verbatim.
    pub fn resume(
        long: LongCursor<'a>,
        short: ShortCursor<'a>,
        resume: &UnionResume,
    ) -> UnionCursor<'a> {
        UnionCursor {
            long,
            short,
            long_head: resume.long_head,
            short_head: resume.short_head,
            primed: resume.primed,
            long_after: resume.long_after,
            short_after: resume.short_after,
        }
    }

    /// Capture this stream's suspension state. `long_epoch` is the long
    /// store's structural epoch (0 when the method has no long store).
    pub fn suspend(&self, long_epoch: u64) -> UnionResume {
        UnionResume {
            primed: self.primed,
            long_head: self.long_head,
            short_head: self.short_head,
            long: self.long.suspend(long_epoch, self.long_after),
            long_after: self.long_after,
            short_after: self.short_after,
        }
    }

    fn prime(&mut self) -> Result<()> {
        if !self.primed {
            self.advance_long()?;
            self.advance_short()?;
            self.primed = true;
        }
        Ok(())
    }

    /// The buffered long-list head, if any (`None` once the long side is
    /// exhausted). Only meaningful after the first event was pulled.
    pub fn long_head(&self) -> Option<LongPosting> {
        self.long_head
    }

    /// Skip metadata of the long cursor's current block (block codecs only)
    /// — the per-term upper-bound hook for block-max WAND pruning.
    pub fn long_block_meta(&self) -> Option<BlockMeta> {
        self.long.block_meta()
    }

    /// Blocks the long side skipped undecoded / decoded so far.
    pub fn list_stats(&self) -> SeekStats {
        SeekStats {
            blocks_skipped: self.long.blocks_skipped(),
            blocks_decoded: self.long.blocks_decoded(),
        }
    }

    fn advance_long(&mut self) -> Result<()> {
        self.long_head = self.long.next_posting()?;
        if let Some(p) = self.long_head {
            self.long_after = Some((p.pos.rank(), p.doc.0));
        }
        Ok(())
    }

    fn advance_short(&mut self) -> Result<()> {
        self.short_head = self.short.next_posting()?;
        if let Some(p) = self.short_head {
            self.short_after = Some((p.pos, p.doc));
        }
        Ok(())
    }

    /// Next union event in list order. `REM` tombstones cancel the long
    /// posting at the same position and produce no event.
    pub fn next_event(&mut self) -> Result<Option<UnionEvent>> {
        self.prime()?;
        loop {
            match (self.long_head, self.short_head) {
                (None, None) => return Ok(None),
                (Some(l), None) => {
                    let event = UnionEvent {
                        pos: l.pos,
                        doc: l.doc,
                        m: TermMatch {
                            source: Source::Long,
                            tscore: l.tscore,
                        },
                    };
                    self.advance_long()?;
                    return Ok(Some(event));
                }
                (None, Some(s)) => {
                    self.advance_short()?;
                    if s.op == Op::Rem {
                        // Orphan tombstone (its long posting was already
                        // consumed or never existed): emit nothing.
                        continue;
                    }
                    return Ok(Some(UnionEvent {
                        pos: s.pos,
                        doc: s.doc,
                        m: TermMatch {
                            source: Source::ShortAdd,
                            tscore: s.tscore,
                        },
                    }));
                }
                (Some(l), Some(s)) => {
                    let lk = (l.pos.rank(), l.doc.0);
                    let sk = (s.pos.rank(), s.doc.0);
                    if lk < sk {
                        let event = UnionEvent {
                            pos: l.pos,
                            doc: l.doc,
                            m: TermMatch {
                                source: Source::Long,
                                tscore: l.tscore,
                            },
                        };
                        self.advance_long()?;
                        return Ok(Some(event));
                    }
                    if sk < lk {
                        self.advance_short()?;
                        if s.op == Op::Rem {
                            continue;
                        }
                        return Ok(Some(UnionEvent {
                            pos: s.pos,
                            doc: s.doc,
                            m: TermMatch {
                                source: Source::ShortAdd,
                                tscore: s.tscore,
                            },
                        }));
                    }
                    // Same position and doc: the short posting governs.
                    self.advance_long()?;
                    self.advance_short()?;
                    if s.op == Op::Rem {
                        // Content removal: the pair annihilates (App. A.1).
                        continue;
                    }
                    return Ok(Some(UnionEvent {
                        pos: s.pos,
                        doc: s.doc,
                        m: TermMatch {
                            source: Source::ShortAdd,
                            tscore: s.tscore,
                        },
                    }));
                }
            }
        }
    }

    /// Next union event with `doc >= target`, skipping everything before it
    /// — the seeking counterpart of [`UnionCursor::next_event`], sound only
    /// on doc-ordered (Id-position) streams.
    ///
    /// The long side skips whole undecoded blocks via
    /// [`LongCursor::skip_to_doc`]; the short side advances linearly (short
    /// lists are bounded small between merges by design). Skipping is
    /// union-safe: `REM` tombstones are co-located with the long posting
    /// they cancel, so a doc range skipped on both sides drops matched
    /// pairs together, and orphan tombstones are silent anyway.
    pub fn next_event_seek(&mut self, target: DocId) -> Result<Option<UnionEvent>> {
        self.prime()?;
        if self.long_head.is_some_and(|p| p.doc < target) {
            self.long_head = None;
            self.long.skip_to_doc(target)?;
            self.advance_long()?;
        }
        while self.short_head.is_some_and(|p| p.doc < target) {
            self.advance_short()?;
        }
        // Record the skipped-over range as consumed so an epoch-mismatch
        // resume does not linearly re-deliver it.
        if let Some(floor) = target.0.checked_sub(1) {
            let key = (PostingPos::Id.rank(), floor);
            if self.long_after.is_none_or(|after| after < key) {
                self.long_after = Some(key);
            }
            let short_below = self
                .short_after
                .is_none_or(|(pos, doc)| (pos.rank(), doc.0) < key);
            if short_below {
                self.short_after = Some((PostingPos::Id, DocId(floor)));
            }
        }
        self.next_event()
    }
}

/// A candidate produced by the m-way merge.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    pub pos: PostingPos,
    pub doc: DocId,
    /// Per query term (by index): the match at this position, if any.
    pub matches: Vec<Option<TermMatch>>,
}

impl Candidate {
    /// Number of query terms matched here.
    pub fn match_count(&self) -> usize {
        self.matches.iter().filter(|m| m.is_some()).count()
    }

    /// True if every event came from the short lists. Score-update postings
    /// are written to the short lists of *all* of a document's terms, so a
    /// relocated document matches entirely from the short side; mixed
    /// matches mean the document sits at its long-list position.
    pub fn all_short(&self) -> bool {
        self.matches
            .iter()
            .flatten()
            .all(|m| m.source == Source::ShortAdd)
            && self.match_count() > 0
    }
}

/// m-way merge over per-term union cursors, yielding candidates in global
/// list order.
pub struct MultiMerge<'a> {
    streams: Vec<UnionCursor<'a>>,
    heads: Vec<Option<UnionEvent>>,
    primed: bool,
}

impl<'a> MultiMerge<'a> {
    /// Merge the given per-term cursors (one per query term, in query order).
    pub fn new(streams: Vec<UnionCursor<'a>>) -> MultiMerge<'a> {
        let n = streams.len();
        MultiMerge {
            streams,
            heads: vec![None; n],
            primed: false,
        }
    }

    /// Rebuild a suspended merge: `streams` resumed per term, plus the
    /// buffered merge heads captured by [`MultiMerge::suspend`].
    pub fn resume(
        streams: Vec<UnionCursor<'a>>,
        heads: Vec<Option<UnionEvent>>,
        primed: bool,
    ) -> MultiMerge<'a> {
        debug_assert_eq!(streams.len(), heads.len());
        MultiMerge {
            streams,
            heads,
            primed,
        }
    }

    /// Capture the merge-level suspension state: per-stream union resumes
    /// plus the buffered heads. `long_epoch` as in [`UnionCursor::suspend`].
    pub fn suspend(&self, long_epoch: u64) -> (Vec<UnionResume>, Vec<Option<UnionEvent>>, bool) {
        (
            self.streams.iter().map(|s| s.suspend(long_epoch)).collect(),
            self.heads.clone(),
            self.primed,
        )
    }

    /// Merge position of the next candidate (its [`PostingPos`]), or `None`
    /// when every stream is exhausted. This is what the query algorithms'
    /// stopping bounds are computed from.
    pub fn peek_pos(&mut self) -> Result<Option<PostingPos>> {
        self.prime()?;
        Ok(self
            .heads
            .iter()
            .flatten()
            .min_by_key(|e| e.key())
            .map(|e| e.pos))
    }

    fn prime(&mut self) -> Result<()> {
        if !self.primed {
            for (i, stream) in self.streams.iter_mut().enumerate() {
                self.heads[i] = stream.next_event()?;
            }
            self.primed = true;
        }
        Ok(())
    }

    /// Next candidate (any match count), or `None` when all lists are
    /// exhausted.
    pub fn next_candidate(&mut self) -> Result<Option<Candidate>> {
        self.prime()?;
        let min_key = self.heads.iter().flatten().map(|e| e.key()).min();
        let Some(min_key) = min_key else {
            return Ok(None);
        };
        let mut matches = vec![None; self.streams.len()];
        let mut pos = PostingPos::Id;
        let mut doc = DocId(0);
        for (i, slot) in matches.iter_mut().enumerate() {
            if let Some(event) = self.heads[i] {
                if event.key() == min_key {
                    *slot = Some(event.m);
                    pos = event.pos;
                    doc = event.doc;
                    self.heads[i] = self.streams[i].next_event()?;
                }
            }
        }
        Ok(Some(Candidate { pos, doc, matches }))
    }

    /// Next candidate matched by **every** stream, leapfrogging over docs
    /// that provably cannot be full matches. Sound only on doc-ordered
    /// (Id-position) streams of a conjunctive query: lagging streams are
    /// seeked with [`UnionCursor::next_event_seek`] to the largest buffered
    /// head doc, so whole undecoded blocks of the long lists are skipped.
    ///
    /// Returns `None` — and drains the buffered heads so
    /// [`MultiMerge::peek_pos`] agrees — as soon as any stream exhausts:
    /// once one term has no postings left, no further full match exists.
    pub fn next_conjunctive_candidate(&mut self) -> Result<Option<Candidate>> {
        self.prime()?;
        loop {
            if self.heads.iter().any(|h| h.is_none()) {
                // Remaining buffered events cannot participate in a full
                // match; drop them so exhaustion is visible to peek_pos.
                self.heads.iter_mut().for_each(|h| *h = None);
                return Ok(None);
            }
            let Some(target) = self.heads.iter().flatten().map(|e| e.doc).max() else {
                // No streams at all (empty conjunction): nothing to match.
                return Ok(None);
            };
            let mut aligned = true;
            for (stream, head) in self.streams.iter_mut().zip(self.heads.iter_mut()) {
                if head.is_some_and(|e| e.doc < target) {
                    *head = stream.next_event_seek(target)?;
                    aligned = false;
                }
            }
            if aligned {
                // Every head sits at `target`: the regular merge pulls them
                // all into one full-match candidate.
                return self.next_candidate();
            }
        }
    }

    /// Aggregated long-list block skip/decode counters across every stream.
    pub fn list_stats(&self) -> SeekStats {
        self.streams
            .iter()
            .map(|s| s.list_stats())
            .fold(SeekStats::default(), |acc, s| acc + s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::long_list::{ListFormat, LongListStore};
    use crate::short_list::{ShortLists, ShortOrder};
    use crate::types::TermId;
    use std::sync::Arc;
    use svr_storage::{MemDisk, Store};
    use svr_text::postings::{ChunkGroup, TermScoredPosting};

    fn fixtures() -> (LongListStore, ShortLists) {
        let store = Arc::new(Store::new(Arc::new(MemDisk::new(4096)), 64));
        let store2 = Arc::new(Store::new(Arc::new(MemDisk::new(4096)), 64));
        (
            LongListStore::new(
                store,
                ListFormat::Chunked { with_scores: false },
                crate::codec::CodecKind::Legacy,
            ),
            ShortLists::create(store2, ShortOrder::ByChunkDesc).unwrap(),
        )
    }

    fn set_chunked(lls: &LongListStore, term: u32, groups: &[(u32, &[u32])]) {
        let groups: Vec<ChunkGroup> = groups
            .iter()
            .map(|&(cid, docs)| ChunkGroup {
                cid,
                postings: docs
                    .iter()
                    .map(|&d| TermScoredPosting {
                        doc: DocId(d),
                        tscore: 0,
                    })
                    .collect(),
            })
            .collect();
        lls.put_chunked_list(TermId(term), &groups).unwrap();
    }

    fn drain(mut u: UnionCursor<'_>) -> Vec<(PostingPos, u32, Source)> {
        let mut out = Vec::new();
        while let Some(e) = u.next_event().unwrap() {
            out.push((e.pos, e.doc.0, e.m.source));
        }
        out
    }

    #[test]
    fn union_interleaves_short_and_long() {
        let (lls, sls) = fixtures();
        set_chunked(&lls, 1, &[(3, &[10, 20]), (1, &[5])]);
        sls.put(TermId(1), PostingPos::ByChunk(5), DocId(20), Op::Add, 0)
            .unwrap();
        let events = drain(UnionCursor::new(
            lls.cursor(TermId(1)),
            sls.cursor(TermId(1)).unwrap(),
        ));
        assert_eq!(
            events,
            vec![
                (PostingPos::ByChunk(5), 20, Source::ShortAdd),
                (PostingPos::ByChunk(3), 10, Source::Long),
                (PostingPos::ByChunk(3), 20, Source::Long),
                (PostingPos::ByChunk(1), 5, Source::Long),
            ]
        );
    }

    #[test]
    fn rem_cancels_colocated_long_posting() {
        let (lls, sls) = fixtures();
        set_chunked(&lls, 1, &[(3, &[10, 20, 30])]);
        sls.put(TermId(1), PostingPos::ByChunk(3), DocId(20), Op::Rem, 0)
            .unwrap();
        let events = drain(UnionCursor::new(
            lls.cursor(TermId(1)),
            sls.cursor(TermId(1)).unwrap(),
        ));
        assert_eq!(
            events.iter().map(|e| e.1).collect::<Vec<_>>(),
            vec![10, 30],
            "doc 20 must be cancelled"
        );
    }

    #[test]
    fn add_at_same_position_overrides_long() {
        let (lls, sls) = fixtures();
        set_chunked(&lls, 1, &[(3, &[10])]);
        sls.put(TermId(1), PostingPos::ByChunk(3), DocId(10), Op::Add, 42)
            .unwrap();
        let mut u = UnionCursor::new(lls.cursor(TermId(1)), sls.cursor(TermId(1)).unwrap());
        let e = u.next_event().unwrap().unwrap();
        assert_eq!(e.m.source, Source::ShortAdd);
        assert_eq!(e.m.tscore, 42);
        assert!(u.next_event().unwrap().is_none(), "no duplicate event");
    }

    #[test]
    fn orphan_rem_is_silent() {
        let (lls, sls) = fixtures();
        set_chunked(&lls, 1, &[(3, &[10])]);
        sls.put(TermId(1), PostingPos::ByChunk(9), DocId(99), Op::Rem, 0)
            .unwrap();
        let events = drain(UnionCursor::new(
            lls.cursor(TermId(1)),
            sls.cursor(TermId(1)).unwrap(),
        ));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].1, 10);
    }

    #[test]
    fn multi_merge_conjunctive_alignment() {
        let (lls, sls) = fixtures();
        // Term 1: docs 10, 20 in chunk 3. Term 2: docs 20, 30 in chunk 3.
        set_chunked(&lls, 1, &[(3, &[10, 20])]);
        set_chunked(&lls, 2, &[(3, &[20, 30])]);
        let streams = vec![
            UnionCursor::new(lls.cursor(TermId(1)), sls.cursor(TermId(1)).unwrap()),
            UnionCursor::new(lls.cursor(TermId(2)), sls.cursor(TermId(2)).unwrap()),
        ];
        let mut merge = MultiMerge::new(streams);
        let mut full_matches = Vec::new();
        let mut all = Vec::new();
        while let Some(c) = merge.next_candidate().unwrap() {
            if c.match_count() == 2 {
                full_matches.push(c.doc.0);
            }
            all.push(c.doc.0);
        }
        assert_eq!(full_matches, vec![20]);
        assert_eq!(all, vec![10, 20, 30], "union in doc order within the chunk");
    }

    #[test]
    fn multi_merge_orders_across_chunks() {
        let (lls, sls) = fixtures();
        set_chunked(&lls, 1, &[(5, &[50]), (2, &[1])]);
        set_chunked(&lls, 2, &[(4, &[7])]);
        let streams = vec![
            UnionCursor::new(lls.cursor(TermId(1)), sls.cursor(TermId(1)).unwrap()),
            UnionCursor::new(lls.cursor(TermId(2)), sls.cursor(TermId(2)).unwrap()),
        ];
        let mut merge = MultiMerge::new(streams);
        let mut order = Vec::new();
        while let Some(c) = merge.next_candidate().unwrap() {
            match c.pos {
                PostingPos::ByChunk(cid) => order.push((cid, c.doc.0)),
                _ => unreachable!(),
            }
        }
        assert_eq!(order, vec![(5, 50), (4, 7), (2, 1)]);
    }

    #[test]
    fn candidate_all_short_classification() {
        let c = Candidate {
            pos: PostingPos::ByChunk(3),
            doc: DocId(1),
            matches: vec![
                Some(TermMatch {
                    source: Source::ShortAdd,
                    tscore: 0,
                }),
                Some(TermMatch {
                    source: Source::ShortAdd,
                    tscore: 0,
                }),
            ],
        };
        assert!(c.all_short());
        let mixed = Candidate {
            matches: vec![
                Some(TermMatch {
                    source: Source::ShortAdd,
                    tscore: 0,
                }),
                Some(TermMatch {
                    source: Source::Long,
                    tscore: 0,
                }),
            ],
            ..c.clone()
        };
        assert!(!mixed.all_short());
        let none = Candidate {
            matches: vec![None, None],
            ..c
        };
        assert!(!none.all_short());
    }
}
