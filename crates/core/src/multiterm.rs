//! Multi-term query engine: seeking iterators and block-max WAND top-k.
//!
//! The merge executor of [`crate::cursor`] evaluates multi-term queries by
//! *exhaustively* unioning every term's posting stream. That is the only
//! sound strategy for the score- and chunk-ordered methods (their lists are
//! not doc-ordered, so there is nothing to seek on), but the doc-ordered
//! methods — ID and ID-TermScore, whose long lists are `Id`-format and
//! ascend strictly by doc id — admit the classic skipping optimizations
//! from the inverted-index literature (Pibiri & Venturini, *Techniques for
//! Inverted Index Compression*):
//!
//! * **Seeking** ([`SeekingIterator`]): `next_seek(doc)` positions a stream
//!   at its first posting with `doc >= target` without delivering (for
//!   block codecs: without even *decoding*) what lies in between.
//!   [`LongCursor`] seeks via the per-block `max_doc` skip metadata
//!   ([`crate::codec::BlockMeta`]); [`ShortCursor`] advances linearly
//!   (short lists are bounded small between merges by design); and
//!   [`UnionCursor`] seeks both sides of a term's `SL ∪ LL` union at once,
//!   preserving `REM`-tombstone cancellation.
//! * **Leapfrog intersection** (AND): repeatedly seek every stream to the
//!   largest buffered head doc; a doc survives iff all streams land on it.
//!   Docs skipped in between are absent from at least one stream, so they
//!   could never satisfy the conjunction — skipping them is exact, not an
//!   approximation.
//! * **Score-accumulating union** (OR): doc-at-a-time merge of the live
//!   heads, summing the matched terms' `idf·ts` contributions per doc.
//! * **Block-max WAND pruning** ([`wand_topk`]): a [`TopKHeap`] maintains
//!   the running threshold θ = score of the current k-th result. Before
//!   resolving a pivot doc, the executor computes an upper bound on the
//!   combined score of *any* document in the current block window and, when
//!   that bound falls strictly below θ, seeks every stream past the window
//!   — whole blocks are skipped without decoding their payloads.
//!
//! ## Bound safety (why results are bit-identical to exhaustive)
//!
//! A document `d` is only skipped when `ub < θ` strictly, where
//!
//! ```text
//! ub = combine(svr_ub, Σᵢ idfᵢ · tsᵢ_ub)
//! ```
//!
//! * `svr_ub` is a **monotone** upper bound on every Score-table entry
//!   (maintained with `fetch_max` on each write, recomputed at reopen), so
//!   `d`'s SVR component is ≤ `svr_ub` even after arbitrary score churn;
//! * `tsᵢ_ub` bounds term `i`'s quantized term score over the window: the
//!   current block's `max_tscore` (valid through its `max_doc`, because Id
//!   lists ascend — every later block holds strictly larger doc ids) maxed
//!   with the term's short-list bound (valid globally) and with the
//!   already-delivered head event's exact term score — the stream's
//!   internal buffers sit one posting *past* the delivered head, so the
//!   block/short bounds alone would not cover it. Streams without block
//!   metadata (legacy codec, fallback scans) contribute the loose bound
//!   1.0, which simply disables score-based skipping for them;
//! * `combine(svr, ts) = svr + w·ts` is monotone in both arguments
//!   (`w = term_weight ≥ 0`).
//!
//! Hence `score(d) ≤ ub < θ`. The heap's tie-break prefers *lower* doc ids,
//! but a skipped doc loses against every retained hit on score alone
//! (strictly below θ = the k-th score), so the final top-k set — and with
//! it [`TopKHeap::into_ranked`]'s deterministic order — is exactly what an
//! exhaustive evaluation produces. θ only grows during the scan, so a
//! skip decision never invalidates retroactively.
//!
//! The window end is `min` over streams of how far each per-stream bound is
//! valid (`block max_doc`, or unbounded for exhausted/metadata-less
//! streams); when every bound is global and still below θ, no remaining doc
//! can qualify and the scan stops outright.
//!
//! ## Cursors and pagination
//!
//! The one-shot [`wand_topk`] path requires `k` up front (θ needs a full
//! heap). The any-k cursor executor cannot use score pruning — a cursor may
//! be drained past any k — but conjunctive cursors on doc-ordered methods
//! still leapfrog ([`crate::merge::MultiMerge::next_conjunctive_candidate`])
//! through the same [`SeekingIterator`] machinery, so block skipping and
//! exact suspend/resume (`open_cursor`/`next_batch`) compose: any batch
//! schedule reproduces the one-shot ranking bit-for-bit.

use std::ops::Add;
use std::sync::atomic::{AtomicU64, Ordering};

use svr_text::unquantize_term_score;

use crate::cursor::CursorBackend;
use crate::error::Result;
use crate::heap::TopKHeap;
use crate::long_list::{LongCursor, LongPosting};
use crate::merge::{Candidate, UnionCursor, UnionEvent};
use crate::short_list::{PostingPos, ShortCursor, ShortPosting};
use crate::types::{DocId, Query, QueryMode, SearchHit};

/// Per-query block skip/decode counters, surfaced through EXPLAIN and the
/// server's `Info` payload so WAND pruning effectiveness is observable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SeekStats {
    /// Blocks skipped without decoding their payload.
    pub blocks_skipped: u64,
    /// Blocks whose payload was decoded.
    pub blocks_decoded: u64,
}

impl Add for SeekStats {
    type Output = SeekStats;

    fn add(self, rhs: SeekStats) -> SeekStats {
        SeekStats {
            blocks_skipped: self.blocks_skipped + rhs.blocks_skipped,
            blocks_decoded: self.blocks_decoded + rhs.blocks_decoded,
        }
    }
}

/// Cumulative, internally synchronized [`SeekStats`] accumulator — one per
/// method instance, summed across shards by
/// [`crate::methods::ShardedIndex`].
#[derive(Debug, Default)]
pub struct SeekCounters {
    blocks_skipped: AtomicU64,
    blocks_decoded: AtomicU64,
}

impl SeekCounters {
    /// Fold one query's counters in.
    pub fn record(&self, stats: SeekStats) {
        self.blocks_skipped
            .fetch_add(stats.blocks_skipped, Ordering::Relaxed);
        self.blocks_decoded
            .fetch_add(stats.blocks_decoded, Ordering::Relaxed);
    }

    /// Snapshot of the totals since creation.
    pub fn snapshot(&self) -> SeekStats {
        SeekStats {
            blocks_skipped: self.blocks_skipped.load(Ordering::Relaxed),
            blocks_decoded: self.blocks_decoded.load(Ordering::Relaxed),
        }
    }
}

/// A posting stream that can *seek*: deliver its next item with
/// `doc >= target`, consuming (and for block-structured long lists, never
/// decoding) everything before it. Seeking is only meaningful on
/// doc-ordered streams — Id-format long lists and `ShortOrder::ById` short
/// lists, where doc ids ascend in list order.
pub trait SeekingIterator {
    /// The posting type the stream delivers.
    type Item;

    /// Next item with `doc >= target`, or `None` when the stream has no
    /// such item. Equivalent to repeatedly calling `next` and discarding
    /// items with smaller doc ids, but skips undecoded blocks where the
    /// layout allows.
    fn next_seek(&mut self, target: DocId) -> Result<Option<Self::Item>>;
}

impl SeekingIterator for LongCursor<'_> {
    type Item = LongPosting;

    fn next_seek(&mut self, target: DocId) -> Result<Option<LongPosting>> {
        self.skip_to_doc(target)?;
        self.next_posting()
    }
}

impl SeekingIterator for ShortCursor<'_> {
    type Item = ShortPosting;

    fn next_seek(&mut self, target: DocId) -> Result<Option<ShortPosting>> {
        // B+-tree keys are `(term, doc)`: a linear walk is already in doc
        // order, and short lists stay small between offline merges.
        while let Some(p) = self.next_posting()? {
            if p.doc >= target {
                return Ok(Some(p));
            }
        }
        Ok(None)
    }
}

impl SeekingIterator for UnionCursor<'_> {
    type Item = UnionEvent;

    fn next_seek(&mut self, target: DocId) -> Result<Option<UnionEvent>> {
        self.next_event_seek(target)
    }
}

/// Upper bound on a stream's unquantized term score, and the last doc id
/// the bound is valid through (`u32::MAX` = valid for the whole remainder).
fn stream_bound(stream: &UnionCursor<'_>, short_bound: f64) -> (f64, u32) {
    match (stream.long_head(), stream.long_block_meta()) {
        // Long side exhausted: only short postings remain, bounded by the
        // term's short-list maximum for the rest of the scan.
        (None, _) => (short_bound, u32::MAX),
        // Inside a block whose metadata still covers the buffered head:
        // every long posting through `max_doc` scores at most `max_tscore`
        // (later blocks hold strictly larger doc ids).
        (Some(head), Some(meta)) if head.doc.0 <= meta.max_doc => (
            short_bound.max(unquantize_term_score(meta.max_tscore)),
            meta.max_doc,
        ),
        // No usable metadata (legacy codec, fallback linear scan): the
        // loose bound 1.0 disables score-based skipping for this stream.
        (Some(_), _) => (1.0, u32::MAX),
    }
}

/// One-shot block-max WAND top-k over per-term union streams.
///
/// Evaluates `query` doc-at-a-time — leapfrog intersection for conjunctive
/// mode, score-accumulating union for disjunctive — maintaining a
/// [`TopKHeap`] threshold and skipping block windows whose score upper
/// bound falls strictly below it (see the module docs for the safety
/// argument). `idfs` and `short_bounds` are per-term, aligned with
/// `query.terms`; `svr_ub` is a monotone upper bound on every Score-table
/// entry. Returns the ranked hits plus the aggregated block counters.
pub(crate) fn wand_topk<B: CursorBackend>(
    backend: &B,
    mut streams: Vec<UnionCursor<'_>>,
    query: &Query,
    idfs: &[f64],
    short_bounds: &[f64],
    svr_ub: f64,
) -> Result<(Vec<SearchHit>, SeekStats)> {
    let n = streams.len();
    debug_assert_eq!(n, query.terms.len());
    let conjunctive = query.mode == QueryMode::Conjunctive;
    let mut heap = TopKHeap::new(query.k);
    let mut heads: Vec<Option<UnionEvent>> = Vec::with_capacity(n);
    for s in &mut streams {
        heads.push(s.next_event()?);
    }
    'scan: loop {
        // Pivot: the next doc that could qualify.
        let target = if conjunctive {
            let mut max: Option<DocId> = None;
            for head in &heads {
                match head {
                    None => break 'scan, // a term ran out: no more matches
                    Some(e) => max = Some(max.map_or(e.doc, |m: DocId| m.max(e.doc))),
                }
            }
            match max {
                Some(d) => d,
                None => break,
            }
        } else {
            match heads.iter().flatten().map(|e| e.doc).min() {
                Some(d) => d,
                None => break,
            }
        };

        // Leapfrog: align lagging streams on the pivot.
        if conjunctive {
            let mut aligned = true;
            for (stream, head) in streams.iter_mut().zip(heads.iter_mut()) {
                if head.is_some_and(|e| e.doc < target) {
                    *head = stream.next_event_seek(target)?;
                    aligned = false;
                }
            }
            if !aligned {
                continue; // re-derive the pivot from the new heads
            }
        }

        // Block-max pruning: with a full heap, skip the whole current block
        // window when nothing in it can beat the k-th score.
        if let Some(theta) = heap.min_score() {
            let mut ts_ub = 0.0;
            let mut window_end = u32::MAX;
            for (i, head) in heads.iter().enumerate() {
                let Some(e) = head else {
                    continue; // disjunctive: exhausted stream contributes 0
                };
                // The stream's internal buffers sit one posting *past* the
                // delivered head event, so `stream_bound` alone does not
                // cover `e` — max in its exact term score explicitly.
                let (bound, end) = stream_bound(&streams[i], short_bounds[i]);
                let bound = bound.max(unquantize_term_score(e.m.tscore));
                ts_ub += idfs.get(i).copied().unwrap_or(0.0) * bound;
                window_end = window_end.min(end);
            }
            if backend.combine(svr_ub, ts_ub) < theta {
                if window_end == u32::MAX {
                    // Every per-stream bound is global: nothing left can
                    // enter the heap.
                    break;
                }
                if window_end >= target.0 {
                    let beyond = DocId(window_end + 1);
                    for (stream, head) in streams.iter_mut().zip(heads.iter_mut()) {
                        if head.is_some_and(|e| e.doc < beyond) {
                            *head = stream.next_event_seek(beyond)?;
                        }
                    }
                    continue;
                }
            }
        }

        // Resolve the pivot exactly, mirroring the cursor executor.
        let mut matches = vec![None; n];
        for (slot, head) in matches.iter_mut().zip(heads.iter()) {
            if let Some(e) = head {
                if e.doc == target {
                    *slot = Some(e.m);
                }
            }
        }
        let candidate = Candidate {
            pos: PostingPos::Id,
            doc: target,
            matches,
        };
        let required = if conjunctive { n } else { 1 };
        if candidate.match_count() >= required && !backend.is_deleted(target) {
            if let Some(score) = backend.resolve(&candidate, idfs)? {
                heap.add(target, score);
            }
        }

        // Advance every stream positioned at the pivot.
        for (stream, head) in streams.iter_mut().zip(heads.iter_mut()) {
            if head.is_some_and(|e| e.doc == target) {
                *head = stream.next_event()?;
            }
        }
    }
    let stats = streams
        .iter()
        .map(|s| s.list_stats())
        .fold(SeekStats::default(), |acc, s| acc + s);
    backend.record_stats(stats);
    Ok((heap.into_ranked(), stats))
}
