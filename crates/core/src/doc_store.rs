//! Forward index: `doc id -> [(term, tf)]`.
//!
//! The paper's update algorithms need `Content(id)` — the distinct terms of
//! the updated document (Algorithm 1 lines 20-26) — which in a relational
//! deployment comes from the indexed text column itself. We persist the
//! tokenized form in a B+-tree so updates pay a realistic lookup.

use std::sync::Arc;

use svr_storage::codec::{read_varint, write_varint};
use svr_storage::{BTree, Store};

use crate::error::{CoreError, Result};
use crate::types::{DocId, Document, TermId};

/// B+-tree-backed forward index.
pub struct DocStore {
    tree: BTree,
}

impl DocStore {
    /// Create an empty store.
    pub fn create(store: Arc<Store>) -> Result<DocStore> {
        DocStore::create_in(store, false)
    }

    /// Create an empty store, durable (reopenable via [`DocStore::open`])
    /// when requested.
    pub fn create_in(store: Arc<Store>, durable: bool) -> Result<DocStore> {
        Ok(DocStore {
            tree: crate::durable::create_tree(store, durable)?,
        })
    }

    /// Reattach a durable store.
    pub fn open(store: Arc<Store>) -> Result<DocStore> {
        Ok(DocStore {
            tree: crate::durable::open_tree(store)?,
        })
    }

    fn key(doc: DocId) -> [u8; 4] {
        doc.0.to_be_bytes()
    }

    fn encode(terms: &[(TermId, u32)]) -> Vec<u8> {
        debug_assert!(terms.windows(2).all(|w| w[0].0 < w[1].0));
        let mut out = Vec::with_capacity(terms.len() * 3);
        write_varint(&mut out, terms.len() as u64);
        let mut prev = 0u32;
        for (i, &(t, tf)) in terms.iter().enumerate() {
            let delta = if i == 0 { t.0 } else { t.0 - prev - 1 };
            write_varint(&mut out, u64::from(delta));
            write_varint(&mut out, u64::from(tf));
            prev = t.0;
        }
        out
    }

    fn decode(raw: &[u8]) -> Result<Vec<(TermId, u32)>> {
        let mut pos = 0;
        let corrupt = || CoreError::Storage(svr_storage::StorageError::Corrupt("doc row"));
        let n = read_varint(raw, &mut pos).ok_or_else(corrupt)? as usize;
        let mut terms = Vec::with_capacity(n);
        let mut prev = 0u32;
        for i in 0..n {
            let delta = read_varint(raw, &mut pos).ok_or_else(corrupt)? as u32;
            let term = if i == 0 { delta } else { prev + delta + 1 };
            let tf = read_varint(raw, &mut pos).ok_or_else(corrupt)? as u32;
            terms.push((TermId(term), tf));
            prev = term;
        }
        Ok(terms)
    }

    /// Store (or replace) a document's terms. Documents whose encoded form
    /// exceeds a quarter page are split across continuation rows keyed
    /// `(doc, seq)` — long documents (the paper's default is 2000 terms) far
    /// exceed a single B+-tree entry.
    pub fn put(&self, doc: &Document) -> Result<()> {
        self.put_terms(doc.id, &doc.terms)
    }

    /// Store `(term, tf)` pairs (must be sorted, distinct) for `doc`.
    pub fn put_terms(&self, doc: DocId, terms: &[(TermId, u32)]) -> Result<()> {
        // Remove any previous continuation rows first.
        self.delete(doc)?;
        let encoded = Self::encode(terms);
        let max = self.tree.max_entry_size() - 16;
        if encoded.len() <= max {
            self.tree.put(&Self::key(doc), &encoded)?;
            return Ok(());
        }
        // Chunk the raw encoding; each row gets a sequence number.
        for (seq, chunk) in encoded.chunks(max).enumerate() {
            let mut key = Self::key(doc).to_vec();
            key.extend_from_slice(&(seq as u32 + 1).to_be_bytes());
            self.tree.put(&key, chunk)?;
        }
        // Row 0 marks "chunked" with the number of chunks.
        let n_chunks = encoded.len().div_ceil(max) as u32;
        let mut marker = vec![0xffu8];
        marker.extend_from_slice(&n_chunks.to_be_bytes());
        self.tree.put(&Self::key(doc), &marker)?;
        Ok(())
    }

    /// Fetch a document's `(term, tf)` pairs.
    pub fn get(&self, doc: DocId) -> Result<Option<Vec<(TermId, u32)>>> {
        let Some(row) = self.tree.get(&Self::key(doc))? else {
            return Ok(None);
        };
        if row.first() != Some(&0xff) {
            return Ok(Some(Self::decode(&row)?));
        }
        let n_chunks =
            u32::from_be_bytes(row[1..5].try_into().map_err(|_| {
                CoreError::Storage(svr_storage::StorageError::Corrupt("doc marker"))
            })?);
        let mut encoded = Vec::new();
        for seq in 1..=n_chunks {
            let mut key = Self::key(doc).to_vec();
            key.extend_from_slice(&seq.to_be_bytes());
            let chunk = self.tree.get(&key)?.ok_or(CoreError::Storage(
                svr_storage::StorageError::Corrupt("doc chunk"),
            ))?;
            encoded.extend_from_slice(&chunk);
        }
        Ok(Some(Self::decode(&encoded)?))
    }

    /// Remove a document. Returns true if it existed.
    pub fn delete(&self, doc: DocId) -> Result<bool> {
        let Some(row) = self.tree.get(&Self::key(doc))? else {
            return Ok(false);
        };
        if row.first() == Some(&0xff) {
            let n_chunks = u32::from_be_bytes(row[1..5].try_into().unwrap_or([0; 4]));
            for seq in 1..=n_chunks {
                let mut key = Self::key(doc).to_vec();
                key.extend_from_slice(&seq.to_be_bytes());
                self.tree.delete(&key)?;
            }
        }
        self.tree.delete(&Self::key(doc))?;
        Ok(true)
    }

    /// Distinct term ids of a document (convenience over [`DocStore::get`]).
    pub fn term_ids(&self, doc: DocId) -> Result<Vec<TermId>> {
        Ok(self
            .get(doc)?
            .ok_or(CoreError::UnknownDocument(doc))?
            .into_iter()
            .map(|(t, _)| t)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svr_storage::MemDisk;

    fn store() -> DocStore {
        let s = Arc::new(Store::new(Arc::new(MemDisk::new(4096)), 256));
        DocStore::create(s).unwrap()
    }

    fn doc(id: u32, terms: &[(u32, u32)]) -> Document {
        Document::from_term_freqs(DocId(id), terms.iter().map(|&(t, f)| (TermId(t), f)))
    }

    #[test]
    fn roundtrip_small_doc() {
        let ds = store();
        let d = doc(7, &[(1, 3), (5, 1), (900, 2)]);
        ds.put(&d).unwrap();
        assert_eq!(ds.get(DocId(7)).unwrap().unwrap(), d.terms);
        assert_eq!(
            ds.term_ids(DocId(7)).unwrap(),
            vec![TermId(1), TermId(5), TermId(900)]
        );
        assert_eq!(ds.get(DocId(8)).unwrap(), None);
    }

    #[test]
    fn roundtrip_large_doc_spans_rows() {
        let ds = store();
        // 3000 distinct terms: far beyond one 4K page entry.
        let terms: Vec<(u32, u32)> = (0..3000u32).map(|t| (t * 7, 1 + t % 9)).collect();
        let d = doc(42, &terms);
        ds.put(&d).unwrap();
        assert_eq!(ds.get(DocId(42)).unwrap().unwrap(), d.terms);
        // Replacing with a small doc cleans up continuation rows.
        let small = doc(42, &[(3, 1)]);
        ds.put(&small).unwrap();
        assert_eq!(ds.get(DocId(42)).unwrap().unwrap(), small.terms);
    }

    #[test]
    fn delete_removes_all_rows() {
        let ds = store();
        let terms: Vec<(u32, u32)> = (0..3000u32).map(|t| (t, 1)).collect();
        ds.put(&doc(1, &terms)).unwrap();
        assert!(ds.delete(DocId(1)).unwrap());
        assert_eq!(ds.get(DocId(1)).unwrap(), None);
        assert!(!ds.delete(DocId(1)).unwrap());
        assert!(ds.term_ids(DocId(1)).is_err());
    }

    #[test]
    fn replace_overwrites() {
        let ds = store();
        ds.put(&doc(1, &[(1, 1)])).unwrap();
        ds.put(&doc(1, &[(2, 5)])).unwrap();
        assert_eq!(ds.get(DocId(1)).unwrap().unwrap(), vec![(TermId(2), 5)]);
    }
}
