//! Core error type.

use std::fmt;

use svr_storage::StorageError;

use crate::types::DocId;

/// Errors surfaced by index operations.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Underlying storage failure.
    Storage(StorageError),
    /// Referenced a document the index does not know.
    UnknownDocument(DocId),
    /// A document with this id already exists (insert).
    DuplicateDocument(DocId),
    /// Scores must be non-negative finite numbers (§4.1).
    InvalidScore(f64),
    /// The operation is not supported by this method.
    Unsupported(&'static str),
    /// A suspended cursor's candidate pool outgrew the configured cap
    /// (`IndexConfig::cursor_pool_cap`) and the cursor was evicted. The
    /// enumeration cannot continue; re-open the cursor (or raise the cap).
    CursorEvicted {
        /// The cap that was exceeded.
        cap: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Storage(e) => write!(f, "storage error: {e}"),
            CoreError::UnknownDocument(d) => write!(f, "unknown document {d}"),
            CoreError::DuplicateDocument(d) => write!(f, "document {d} already exists"),
            CoreError::InvalidScore(s) => write!(f, "invalid score {s}: must be finite and >= 0"),
            CoreError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            CoreError::CursorEvicted { cap } => write!(
                f,
                "cursor evicted: candidate pool exceeded {cap} entries; re-open the cursor"
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Validate that a score is usable (finite, non-negative).
pub fn check_score(score: f64) -> Result<f64> {
    if score.is_finite() && score >= 0.0 {
        Ok(score)
    } else {
        Err(CoreError::InvalidScore(score))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_validation() {
        assert_eq!(check_score(0.0), Ok(0.0));
        assert_eq!(check_score(123.5), Ok(123.5));
        assert!(check_score(-1.0).is_err());
        assert!(check_score(f64::NAN).is_err());
        assert!(check_score(f64::INFINITY).is_err());
    }

    #[test]
    fn error_display() {
        assert!(CoreError::UnknownDocument(DocId(7))
            .to_string()
            .contains('7'));
        assert!(CoreError::from(StorageError::BadBlobHandle)
            .to_string()
            .contains("storage"));
    }
}
