//! Long (immutable) inverted lists in the blob store, plus streaming
//! cursors and corpus inversion helpers.
//!
//! Formats are the ones defined in [`svr_text::postings`]; here they are
//! decoded *incrementally*, page by page, so early-terminating queries only
//! pay for the prefix of the list they actually visit.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use svr_storage::{BlobHandle, BlobStore, Store};
use svr_text::postings::TermScoredPosting;
use svr_text::{normalized_tf, quantize_term_score};

use crate::byte_stream::ByteStream;
use crate::error::Result;
use crate::short_list::PostingPos;
use crate::types::{DocId, Document, TermId};

/// Long-list layout used by a method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListFormat {
    /// Doc-id order, delta+varint (ID, ID-TermScore; also fancy lists).
    Id { with_scores: bool },
    /// Chunk groups descending, doc ids ascending within (Chunk, Chunk-TS).
    Chunked { with_scores: bool },
    /// `(score, doc)` fixed width, score descending (Score-Threshold).
    Score { with_scores: bool },
}

/// One decoded long-list posting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LongPosting {
    pub pos: PostingPos,
    pub doc: DocId,
    pub tscore: u16,
}

/// Immutable per-term lists in one blob store with an in-memory directory.
///
/// A production deployment would keep the directory (term -> blob handle) in
/// a small B+-tree; it is a few entries per term and always cached, so we
/// hold it in memory to keep the I/O counters focused on what the paper
/// measures (the lists themselves).
pub struct LongListStore {
    blobs: BlobStore,
    format: ListFormat,
    directory: RwLock<HashMap<TermId, BlobHandle>>,
    total_bytes: AtomicU64,
}

impl LongListStore {
    /// Create an empty list store.
    pub fn new(store: Arc<Store>, format: ListFormat) -> LongListStore {
        LongListStore {
            blobs: BlobStore::new(store),
            format,
            directory: RwLock::new(HashMap::new()),
            total_bytes: AtomicU64::new(0),
        }
    }

    /// Layout of the stored lists.
    pub fn format(&self) -> ListFormat {
        self.format
    }

    /// Store (replacing any previous) the encoded list for `term`.
    pub fn set_list(&self, term: TermId, encoded: &[u8]) -> Result<()> {
        let handle = self.blobs.put(encoded)?;
        let mut dir = self.directory.write();
        if let Some(old) = dir.insert(term, handle) {
            self.blobs.free(old)?;
            self.total_bytes.fetch_sub(old.len, Ordering::Relaxed);
        }
        self.total_bytes
            .fetch_add(encoded.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Raw bytes of a term's list (offline merge / tests).
    pub fn raw_list(&self, term: TermId) -> Result<Option<Vec<u8>>> {
        let handle = self.directory.read().get(&term).copied();
        match handle {
            Some(h) => Ok(Some(self.blobs.read_all(h)?)),
            None => Ok(None),
        }
    }

    /// Streaming cursor over a term's list (empty cursor for unknown terms).
    pub fn cursor(&self, term: TermId) -> LongCursor<'_> {
        let handle = self.directory.read().get(&term).copied();
        match handle {
            None => LongCursor::Empty,
            Some(h) => {
                let stream = ByteStream::new(self.blobs.reader(h));
                match self.format {
                    ListFormat::Id { with_scores } => LongCursor::Id(IdCursorState {
                        stream,
                        with_scores,
                        prev: None,
                    }),
                    ListFormat::Chunked { with_scores } => LongCursor::Chunked(ChunkCursorState {
                        stream,
                        with_scores,
                        current_cid: 0,
                        remaining: 0,
                        prev: None,
                    }),
                    ListFormat::Score { with_scores } => LongCursor::Score(ScoreCursorState {
                        stream,
                        with_scores,
                    }),
                }
            }
        }
    }

    /// Total encoded bytes across every term (the paper's Table 1 metric).
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes.load(Ordering::Relaxed)
    }

    /// Number of terms with lists.
    pub fn num_terms(&self) -> usize {
        self.directory.read().len()
    }

    /// Terms with stored lists (unsorted).
    pub fn terms(&self) -> Vec<TermId> {
        self.directory.read().keys().copied().collect()
    }

    /// Pages occupied by a term's list (I/O cost of a full scan).
    pub fn pages_of(&self, term: TermId) -> u64 {
        self.directory.read().get(&term).map_or(0, |h| h.pages)
    }
}

/// Streaming decoder over one term's long list.
pub enum LongCursor<'a> {
    Empty,
    Id(IdCursorState<'a>),
    Chunked(ChunkCursorState<'a>),
    Score(ScoreCursorState<'a>),
}

pub struct IdCursorState<'a> {
    stream: ByteStream<'a>,
    with_scores: bool,
    prev: Option<u32>,
}

pub struct ChunkCursorState<'a> {
    stream: ByteStream<'a>,
    with_scores: bool,
    current_cid: u32,
    remaining: u64,
    prev: Option<u32>,
}

pub struct ScoreCursorState<'a> {
    stream: ByteStream<'a>,
    with_scores: bool,
}

impl LongCursor<'_> {
    /// Next posting in list order, or `None` at the end.
    pub fn next_posting(&mut self) -> Result<Option<LongPosting>> {
        match self {
            LongCursor::Empty => Ok(None),
            LongCursor::Id(state) => {
                if state.stream.is_eof()? {
                    return Ok(None);
                }
                let delta = state.stream.read_varint()? as u32;
                let doc = match state.prev {
                    None => delta,
                    Some(prev) => prev + delta + 1,
                };
                state.prev = Some(doc);
                let tscore = if state.with_scores {
                    state.stream.read_u16_le()?
                } else {
                    0
                };
                Ok(Some(LongPosting {
                    pos: PostingPos::Id,
                    doc: DocId(doc),
                    tscore,
                }))
            }
            LongCursor::Chunked(state) => {
                while state.remaining == 0 {
                    if state.stream.is_eof()? {
                        return Ok(None);
                    }
                    state.current_cid = state.stream.read_varint()? as u32;
                    state.remaining = state.stream.read_varint()?;
                    state.prev = None;
                }
                state.remaining -= 1;
                let delta = state.stream.read_varint()? as u32;
                let doc = match state.prev {
                    None => delta,
                    Some(prev) => prev + delta + 1,
                };
                state.prev = Some(doc);
                let tscore = if state.with_scores {
                    state.stream.read_u16_le()?
                } else {
                    0
                };
                Ok(Some(LongPosting {
                    pos: PostingPos::ByChunk(state.current_cid),
                    doc: DocId(doc),
                    tscore,
                }))
            }
            LongCursor::Score(state) => {
                if state.stream.is_eof()? {
                    return Ok(None);
                }
                let score = state.stream.read_f64_le()?;
                let doc = state.stream.read_u32_le()?;
                let tscore = if state.with_scores {
                    state.stream.read_u16_le()?
                } else {
                    0
                };
                Ok(Some(LongPosting {
                    pos: PostingPos::ByScore(score),
                    doc: DocId(doc),
                    tscore,
                }))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Corpus inversion
// ---------------------------------------------------------------------------

/// Quantized term score for a `(tf, max_tf)` pair.
#[inline]
pub fn posting_term_score(tf: u32, max_tf: u32) -> u16 {
    quantize_term_score(normalized_tf(tf, max_tf))
}

/// Invert a corpus into per-term postings sorted by doc id. Term scores are
/// the quantized normalized TF of each (doc, term) pair.
pub fn invert_corpus(docs: &[Document]) -> HashMap<TermId, Vec<TermScoredPosting>> {
    let mut inverted: HashMap<TermId, Vec<TermScoredPosting>> = HashMap::new();
    let mut sorted: Vec<&Document> = docs.iter().collect();
    sorted.sort_by_key(|d| d.id);
    for doc in sorted {
        let max_tf = doc.max_tf();
        for &(term, tf) in &doc.terms {
            inverted.entry(term).or_default().push(TermScoredPosting {
                doc: doc.id,
                tscore: posting_term_score(tf, max_tf),
            });
        }
    }
    inverted
}

#[cfg(test)]
mod tests {
    use super::*;
    use svr_storage::MemDisk;
    use svr_text::postings::{ChunkGroup, PostingsBuilder};

    fn store() -> Arc<Store> {
        Arc::new(Store::new(Arc::new(MemDisk::new(128)), 8))
    }

    #[test]
    fn id_cursor_streams_pages() {
        let lls = LongListStore::new(store(), ListFormat::Id { with_scores: false });
        let docs: Vec<DocId> = (0..500u32).map(|i| DocId(i * 3)).collect();
        let mut buf = Vec::new();
        PostingsBuilder::encode_id_list(&docs, &mut buf);
        lls.set_list(TermId(1), &buf).unwrap();
        let mut cursor = lls.cursor(TermId(1));
        for &d in &docs {
            let p = cursor.next_posting().unwrap().unwrap();
            assert_eq!(p.doc, d);
            assert_eq!(p.pos, PostingPos::Id);
        }
        assert!(cursor.next_posting().unwrap().is_none());
        assert!(lls.pages_of(TermId(1)) > 1, "list must span pages");
    }

    #[test]
    fn chunked_cursor_streams() {
        let lls = LongListStore::new(store(), ListFormat::Chunked { with_scores: true });
        let groups = vec![
            ChunkGroup {
                cid: 5,
                postings: (0..100u32)
                    .map(|i| TermScoredPosting {
                        doc: DocId(i * 2),
                        tscore: i as u16,
                    })
                    .collect(),
            },
            ChunkGroup {
                cid: 1,
                postings: vec![TermScoredPosting {
                    doc: DocId(7),
                    tscore: 999,
                }],
            },
        ];
        let mut buf = Vec::new();
        PostingsBuilder::encode_chunked_list(&groups, true, &mut buf);
        lls.set_list(TermId(2), &buf).unwrap();
        let mut cursor = lls.cursor(TermId(2));
        let mut seen = Vec::new();
        while let Some(p) = cursor.next_posting().unwrap() {
            seen.push(p);
        }
        assert_eq!(seen.len(), 101);
        assert_eq!(seen[0].pos, PostingPos::ByChunk(5));
        assert_eq!(seen[100].pos, PostingPos::ByChunk(1));
        assert_eq!(seen[100].doc, DocId(7));
        assert_eq!(seen[100].tscore, 999);
    }

    #[test]
    fn score_cursor_streams() {
        let lls = LongListStore::new(store(), ListFormat::Score { with_scores: false });
        let postings = vec![
            (124.2, DocId(9), 0u16),
            (87.13, DocId(2), 0),
            (3.0, DocId(5), 0),
        ];
        let mut buf = Vec::new();
        PostingsBuilder::encode_score_list(&postings, false, &mut buf);
        lls.set_list(TermId(3), &buf).unwrap();
        let mut cursor = lls.cursor(TermId(3));
        let p = cursor.next_posting().unwrap().unwrap();
        assert_eq!(p.pos, PostingPos::ByScore(124.2));
        assert_eq!(p.doc, DocId(9));
    }

    #[test]
    fn unknown_term_is_empty_cursor() {
        let lls = LongListStore::new(store(), ListFormat::Id { with_scores: false });
        assert!(lls.cursor(TermId(99)).next_posting().unwrap().is_none());
        assert_eq!(lls.total_bytes(), 0);
    }

    #[test]
    fn replacing_a_list_updates_bytes() {
        let lls = LongListStore::new(store(), ListFormat::Id { with_scores: false });
        lls.set_list(TermId(1), &[1, 2, 3, 4]).unwrap();
        assert_eq!(lls.total_bytes(), 4);
        lls.set_list(TermId(1), &[1, 2]).unwrap();
        assert_eq!(lls.total_bytes(), 2);
        assert_eq!(lls.num_terms(), 1);
    }

    #[test]
    fn invert_corpus_sorted_by_doc() {
        let docs = vec![
            Document::from_term_freqs(DocId(5), [(TermId(1), 2), (TermId(2), 1)]),
            Document::from_term_freqs(DocId(1), [(TermId(1), 4)]),
        ];
        let inverted = invert_corpus(&docs);
        let t1 = &inverted[&TermId(1)];
        assert_eq!(t1.len(), 2);
        assert_eq!(t1[0].doc, DocId(1));
        assert_eq!(t1[1].doc, DocId(5));
        // Doc 1's term 1 is its max-tf term: normalized score is 1.0.
        assert_eq!(t1[0].tscore, u16::MAX);
    }
}
