//! Long (immutable) inverted lists in the blob store, plus streaming
//! cursors and corpus inversion helpers.
//!
//! Formats are the ones defined in [`svr_text::postings`]; here they are
//! decoded *incrementally*, page by page, so early-terminating queries only
//! pay for the prefix of the list they actually visit.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use svr_storage::{BlobHandle, BlobStore, Store};
use svr_text::postings::TermScoredPosting;
use svr_text::{normalized_tf, quantize_term_score};

use crate::byte_stream::{ByteStream, StreamPos};
use crate::error::Result;
use crate::merge::MergeKey;
use crate::short_list::PostingPos;
use crate::types::{DocId, Document, TermId};

/// Long-list layout used by a method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListFormat {
    /// Doc-id order, delta+varint (ID, ID-TermScore; also fancy lists).
    Id { with_scores: bool },
    /// Chunk groups descending, doc ids ascending within (Chunk, Chunk-TS).
    Chunked { with_scores: bool },
    /// `(score, doc)` fixed width, score descending (Score-Threshold).
    Score { with_scores: bool },
}

/// One decoded long-list posting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LongPosting {
    pub pos: PostingPos,
    pub doc: DocId,
    pub tscore: u16,
}

/// Immutable per-term lists in one blob store with an in-memory directory.
///
/// The hot directory (term -> blob handle) is held in memory to keep the
/// I/O counters focused on what the paper measures (the lists themselves);
/// a **durable** list store additionally mirrors the directory into a small
/// B+-tree in the same store (written only when lists are replaced — build
/// and offline-merge time, never on the query or score-update path), so a
/// reopened store finds its page chains again.
pub struct LongListStore {
    blobs: BlobStore,
    format: ListFormat,
    directory: RwLock<HashMap<TermId, BlobHandle>>,
    /// Durable mirror of `directory` (None for in-memory stores).
    dir_tree: Option<svr_storage::BTree>,
    total_bytes: AtomicU64,
    /// Structural epoch: bumped whenever a list is replaced (offline merge).
    /// A suspended cursor whose recorded epoch no longer matches must not
    /// chase stale page chains; it falls back to a key-skip re-scan (see
    /// [`LongListStore::resume_cursor`]).
    epoch: AtomicU64,
}

/// Encode a directory row: `first_page + 1` (0 = empty blob), len, pages.
fn encode_handle(h: &BlobHandle) -> [u8; 24] {
    let mut v = [0u8; 24];
    v[..8].copy_from_slice(&h.first_page.map_or(0, |p| p + 1).to_le_bytes());
    v[8..16].copy_from_slice(&h.len.to_le_bytes());
    v[16..24].copy_from_slice(&h.pages.to_le_bytes());
    v
}

fn decode_handle(raw: &[u8]) -> Result<BlobHandle> {
    if raw.len() < 24 {
        return Err(crate::error::CoreError::Storage(
            svr_storage::StorageError::Corrupt("long-list directory row"),
        ));
    }
    let first = u64::from_le_bytes(raw[..8].try_into().expect("8 bytes"));
    Ok(BlobHandle {
        first_page: first.checked_sub(1),
        len: u64::from_le_bytes(raw[8..16].try_into().expect("8 bytes")),
        pages: u64::from_le_bytes(raw[16..24].try_into().expect("8 bytes")),
    })
}

impl LongListStore {
    /// Create an empty list store.
    pub fn new(store: Arc<Store>, format: ListFormat) -> LongListStore {
        LongListStore {
            blobs: BlobStore::new(store),
            format,
            directory: RwLock::new(HashMap::new()),
            dir_tree: None,
            total_bytes: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
        }
    }

    /// [`LongListStore::new`] or [`LongListStore::create_durable`] by flag.
    pub fn create_in(
        store: Arc<Store>,
        format: ListFormat,
        durable: bool,
    ) -> Result<LongListStore> {
        if durable {
            LongListStore::create_durable(store, format)
        } else {
            Ok(LongListStore::new(store, format))
        }
    }

    /// Create an empty **durable** list store: the directory tree's
    /// metadata occupies the store's first pages, so
    /// [`LongListStore::open`] can reattach from nothing but the store.
    pub fn create_durable(store: Arc<Store>, format: ListFormat) -> Result<LongListStore> {
        let dir_tree = crate::durable::create_tree(store.clone(), true)?;
        Ok(LongListStore {
            blobs: BlobStore::new(store),
            format,
            directory: RwLock::new(HashMap::new()),
            dir_tree: Some(dir_tree),
            total_bytes: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
        })
    }

    /// Reattach a durable list store, reloading the directory (and the
    /// total-bytes gauge) from its persisted mirror.
    pub fn open(store: Arc<Store>, format: ListFormat) -> Result<LongListStore> {
        let dir_tree = crate::durable::open_tree(store.clone())?;
        let mut directory = HashMap::new();
        let mut total = 0u64;
        {
            let mut cursor = dir_tree.cursor(&[])?;
            while let Some((k, v)) = cursor.next_entry()? {
                if k.len() < 4 {
                    return Err(crate::error::CoreError::Storage(
                        svr_storage::StorageError::Corrupt("long-list directory key"),
                    ));
                }
                let term = TermId(u32::from_be_bytes(k[..4].try_into().expect("4 bytes")));
                let handle = decode_handle(&v)?;
                total += handle.len;
                directory.insert(term, handle);
            }
        }
        Ok(LongListStore {
            blobs: BlobStore::new(store),
            format,
            directory: RwLock::new(directory),
            dir_tree: Some(dir_tree),
            total_bytes: AtomicU64::new(total),
            epoch: AtomicU64::new(0),
        })
    }

    /// Layout of the stored lists.
    pub fn format(&self) -> ListFormat {
        self.format
    }

    /// Structural epoch of the store. Page-level cursor resume is only
    /// valid while this is unchanged.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Store (replacing any previous) the encoded list for `term`.
    pub fn set_list(&self, term: TermId, encoded: &[u8]) -> Result<()> {
        let handle = self.blobs.put(encoded)?;
        if let Some(tree) = &self.dir_tree {
            tree.put(&term.0.to_be_bytes(), &encode_handle(&handle))?;
        }
        let mut dir = self.directory.write();
        if let Some(old) = dir.insert(term, handle) {
            self.blobs.free(old)?;
            self.total_bytes.fetch_sub(old.len, Ordering::Relaxed);
        }
        self.total_bytes
            .fetch_add(encoded.len() as u64, Ordering::Relaxed);
        self.epoch.fetch_add(1, Ordering::Release);
        Ok(())
    }

    /// Raw bytes of a term's list (offline merge / tests).
    pub fn raw_list(&self, term: TermId) -> Result<Option<Vec<u8>>> {
        let handle = self.directory.read().get(&term).copied();
        match handle {
            Some(h) => Ok(Some(self.blobs.read_all(h)?)),
            None => Ok(None),
        }
    }

    /// Streaming cursor over a term's list (empty cursor for unknown terms).
    pub fn cursor(&self, term: TermId) -> LongCursor<'_> {
        let handle = self.directory.read().get(&term).copied();
        match handle {
            None => LongCursor::empty(),
            Some(h) => self.cursor_from(ByteStream::new(self.blobs.reader(h)), None),
        }
    }

    fn cursor_from<'a>(
        &self,
        stream: ByteStream<'a>,
        decode: Option<DecodeState>,
    ) -> LongCursor<'a> {
        let inner = match self.format {
            ListFormat::Id { with_scores } => {
                let prev = match decode {
                    Some(DecodeState::Id { prev }) => prev,
                    _ => None,
                };
                CursorInner::Id(IdCursorState {
                    stream,
                    with_scores,
                    prev,
                })
            }
            ListFormat::Chunked { with_scores } => {
                let (current_cid, remaining, prev) = match decode {
                    Some(DecodeState::Chunked {
                        cid,
                        remaining,
                        prev,
                    }) => (cid, remaining, prev),
                    _ => (0, 0, None),
                };
                CursorInner::Chunked(ChunkCursorState {
                    stream,
                    with_scores,
                    current_cid,
                    remaining,
                    prev,
                })
            }
            ListFormat::Score { with_scores } => CursorInner::Score(ScoreCursorState {
                stream,
                with_scores,
            }),
        };
        LongCursor {
            inner,
            pending: None,
        }
    }

    /// Reopen a suspended cursor.
    ///
    /// While the store's structural [`epoch`](LongListStore::epoch) still
    /// matches the one captured at suspension, this resumes exactly where
    /// the cursor stopped — the incremental cost is at most re-fetching one
    /// (usually cached) page. If the lists were rebuilt in between (offline
    /// merge), the saved page chain is gone; the cursor then degrades
    /// gracefully by re-opening the term's current list and skipping every
    /// posting at or before the last consumed merge position. Positions in
    /// the rebuilt list reflect *current* scores, so a document may be
    /// re-delivered (deduplicated downstream by the executor's seen-set) or
    /// skipped — the documented staleness semantics of suspended cursors.
    pub fn resume_cursor(&self, term: TermId, resume: &LongResume) -> Result<LongCursor<'_>> {
        match &resume.state {
            LongResumeState::Fresh => Ok(self.cursor(term)),
            LongResumeState::Done => {
                if resume.epoch == self.epoch() {
                    Ok(LongCursor::empty())
                } else {
                    self.skip_cursor(term, resume.after)
                }
            }
            LongResumeState::At { pos, decode } => {
                if resume.epoch == self.epoch() {
                    let stream = ByteStream::resume(&self.blobs, *pos)?;
                    Ok(self.cursor_from(stream, Some(*decode)))
                } else {
                    self.skip_cursor(term, resume.after)
                }
            }
            LongResumeState::Skip => self.skip_cursor(term, resume.after),
        }
    }

    /// Fallback resume: fresh scan skipping keys `<= after`.
    fn skip_cursor(&self, term: TermId, after: Option<MergeKey>) -> Result<LongCursor<'_>> {
        let mut cursor = self.cursor(term);
        let Some(after) = after else {
            return Ok(cursor);
        };
        while let Some(p) = cursor.next_posting()? {
            if (p.pos.rank(), p.doc.0) > after {
                cursor.pending = Some(p);
                break;
            }
        }
        Ok(cursor)
    }

    /// Total encoded bytes across every term (the paper's Table 1 metric).
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes.load(Ordering::Relaxed)
    }

    /// Number of terms with lists.
    pub fn num_terms(&self) -> usize {
        self.directory.read().len()
    }

    /// Terms with stored lists (unsorted).
    pub fn terms(&self) -> Vec<TermId> {
        self.directory.read().keys().copied().collect()
    }

    /// Pages occupied by a term's list (I/O cost of a full scan).
    pub fn pages_of(&self, term: TermId) -> u64 {
        self.directory.read().get(&term).map_or(0, |h| h.pages)
    }
}

/// Decoder-internal state captured when a cursor suspends, sufficient to
/// continue delta/group decoding mid-list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecodeState {
    Id {
        prev: Option<u32>,
    },
    Chunked {
        cid: u32,
        remaining: u64,
        prev: Option<u32>,
    },
    Score,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum LongResumeState {
    /// Never opened: resume = plain [`LongListStore::cursor`].
    Fresh,
    /// The scan reached the end of the list.
    Done,
    /// Mid-list: byte position + decoder state.
    At { pos: StreamPos, decode: DecodeState },
    /// Position unknown (e.g. suspended mid-fallback): re-scan the current
    /// list and skip keys `<= after` regardless of epoch.
    Skip,
}

/// Owned suspension state of a [`LongCursor`] — everything needed to
/// continue the scan in a later call without holding any borrow of the
/// store. Produced by [`LongCursor::suspend`], consumed by
/// [`LongListStore::resume_cursor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LongResume {
    /// Store epoch at suspension; a mismatch at resume means the lists were
    /// rebuilt and triggers the key-skip fallback.
    epoch: u64,
    state: LongResumeState,
    /// Merge key of the last posting this cursor delivered (fallback skip
    /// boundary).
    after: Option<MergeKey>,
}

impl LongResume {
    /// Resume state for a cursor that was never opened.
    pub fn fresh() -> LongResume {
        LongResume {
            epoch: 0,
            state: LongResumeState::Fresh,
            after: None,
        }
    }
}

/// Streaming decoder over one term's long list.
pub struct LongCursor<'a> {
    inner: CursorInner<'a>,
    /// One decoded posting pushed back by the key-skip fallback; delivered
    /// before the stream continues.
    pending: Option<LongPosting>,
}

enum CursorInner<'a> {
    Empty,
    Id(IdCursorState<'a>),
    Chunked(ChunkCursorState<'a>),
    Score(ScoreCursorState<'a>),
}

pub struct IdCursorState<'a> {
    stream: ByteStream<'a>,
    with_scores: bool,
    prev: Option<u32>,
}

pub struct ChunkCursorState<'a> {
    stream: ByteStream<'a>,
    with_scores: bool,
    current_cid: u32,
    remaining: u64,
    prev: Option<u32>,
}

pub struct ScoreCursorState<'a> {
    stream: ByteStream<'a>,
    with_scores: bool,
}

impl LongCursor<'_> {
    /// A cursor over nothing (unknown terms; methods without long lists).
    pub fn empty() -> LongCursor<'static> {
        LongCursor {
            inner: CursorInner::Empty,
            pending: None,
        }
    }

    /// Capture this cursor's suspension state. `epoch` is the owning
    /// store's structural epoch ([`LongListStore::epoch`]; 0 for detached
    /// empty cursors) and `after` the merge key of the last posting the
    /// cursor delivered.
    pub fn suspend(&self, epoch: u64, after: Option<MergeKey>) -> LongResume {
        // A pending pushback means the fallback skip already decoded one
        // posting ahead; re-running the skip from `after` reproduces it.
        if self.pending.is_some() {
            return LongResume {
                epoch,
                state: LongResumeState::Skip,
                after,
            };
        }
        let state = match &self.inner {
            CursorInner::Empty => LongResumeState::Done,
            CursorInner::Id(s) => LongResumeState::At {
                pos: s.stream.position(),
                decode: DecodeState::Id { prev: s.prev },
            },
            CursorInner::Chunked(s) => LongResumeState::At {
                pos: s.stream.position(),
                decode: DecodeState::Chunked {
                    cid: s.current_cid,
                    remaining: s.remaining,
                    prev: s.prev,
                },
            },
            CursorInner::Score(s) => LongResumeState::At {
                pos: s.stream.position(),
                decode: DecodeState::Score,
            },
        };
        LongResume {
            epoch,
            state,
            after,
        }
    }

    /// Next posting in list order, or `None` at the end.
    pub fn next_posting(&mut self) -> Result<Option<LongPosting>> {
        if let Some(p) = self.pending.take() {
            return Ok(Some(p));
        }
        match &mut self.inner {
            CursorInner::Empty => Ok(None),
            CursorInner::Id(state) => {
                if state.stream.is_eof()? {
                    return Ok(None);
                }
                let delta = state.stream.read_varint()? as u32;
                let doc = match state.prev {
                    None => delta,
                    Some(prev) => prev + delta + 1,
                };
                state.prev = Some(doc);
                let tscore = if state.with_scores {
                    state.stream.read_u16_le()?
                } else {
                    0
                };
                Ok(Some(LongPosting {
                    pos: PostingPos::Id,
                    doc: DocId(doc),
                    tscore,
                }))
            }
            CursorInner::Chunked(state) => {
                while state.remaining == 0 {
                    if state.stream.is_eof()? {
                        return Ok(None);
                    }
                    state.current_cid = state.stream.read_varint()? as u32;
                    state.remaining = state.stream.read_varint()?;
                    state.prev = None;
                }
                state.remaining -= 1;
                let delta = state.stream.read_varint()? as u32;
                let doc = match state.prev {
                    None => delta,
                    Some(prev) => prev + delta + 1,
                };
                state.prev = Some(doc);
                let tscore = if state.with_scores {
                    state.stream.read_u16_le()?
                } else {
                    0
                };
                Ok(Some(LongPosting {
                    pos: PostingPos::ByChunk(state.current_cid),
                    doc: DocId(doc),
                    tscore,
                }))
            }
            CursorInner::Score(state) => {
                if state.stream.is_eof()? {
                    return Ok(None);
                }
                let score = state.stream.read_f64_le()?;
                let doc = state.stream.read_u32_le()?;
                let tscore = if state.with_scores {
                    state.stream.read_u16_le()?
                } else {
                    0
                };
                Ok(Some(LongPosting {
                    pos: PostingPos::ByScore(score),
                    doc: DocId(doc),
                    tscore,
                }))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Corpus inversion
// ---------------------------------------------------------------------------

/// Quantized term score for a `(tf, max_tf)` pair.
#[inline]
pub fn posting_term_score(tf: u32, max_tf: u32) -> u16 {
    quantize_term_score(normalized_tf(tf, max_tf))
}

/// Invert a corpus into per-term postings sorted by doc id. Term scores are
/// the quantized normalized TF of each (doc, term) pair.
pub fn invert_corpus(docs: &[Document]) -> HashMap<TermId, Vec<TermScoredPosting>> {
    let mut inverted: HashMap<TermId, Vec<TermScoredPosting>> = HashMap::new();
    let mut sorted: Vec<&Document> = docs.iter().collect();
    sorted.sort_by_key(|d| d.id);
    for doc in sorted {
        let max_tf = doc.max_tf();
        for &(term, tf) in &doc.terms {
            inverted.entry(term).or_default().push(TermScoredPosting {
                doc: doc.id,
                tscore: posting_term_score(tf, max_tf),
            });
        }
    }
    inverted
}

#[cfg(test)]
mod tests {
    use super::*;
    use svr_storage::MemDisk;
    use svr_text::postings::{ChunkGroup, PostingsBuilder};

    fn store() -> Arc<Store> {
        Arc::new(Store::new(Arc::new(MemDisk::new(128)), 8))
    }

    #[test]
    fn id_cursor_streams_pages() {
        let lls = LongListStore::new(store(), ListFormat::Id { with_scores: false });
        let docs: Vec<DocId> = (0..500u32).map(|i| DocId(i * 3)).collect();
        let mut buf = Vec::new();
        PostingsBuilder::encode_id_list(&docs, &mut buf);
        lls.set_list(TermId(1), &buf).unwrap();
        let mut cursor = lls.cursor(TermId(1));
        for &d in &docs {
            let p = cursor.next_posting().unwrap().unwrap();
            assert_eq!(p.doc, d);
            assert_eq!(p.pos, PostingPos::Id);
        }
        assert!(cursor.next_posting().unwrap().is_none());
        assert!(lls.pages_of(TermId(1)) > 1, "list must span pages");
    }

    #[test]
    fn chunked_cursor_streams() {
        let lls = LongListStore::new(store(), ListFormat::Chunked { with_scores: true });
        let groups = vec![
            ChunkGroup {
                cid: 5,
                postings: (0..100u32)
                    .map(|i| TermScoredPosting {
                        doc: DocId(i * 2),
                        tscore: i as u16,
                    })
                    .collect(),
            },
            ChunkGroup {
                cid: 1,
                postings: vec![TermScoredPosting {
                    doc: DocId(7),
                    tscore: 999,
                }],
            },
        ];
        let mut buf = Vec::new();
        PostingsBuilder::encode_chunked_list(&groups, true, &mut buf);
        lls.set_list(TermId(2), &buf).unwrap();
        let mut cursor = lls.cursor(TermId(2));
        let mut seen = Vec::new();
        while let Some(p) = cursor.next_posting().unwrap() {
            seen.push(p);
        }
        assert_eq!(seen.len(), 101);
        assert_eq!(seen[0].pos, PostingPos::ByChunk(5));
        assert_eq!(seen[100].pos, PostingPos::ByChunk(1));
        assert_eq!(seen[100].doc, DocId(7));
        assert_eq!(seen[100].tscore, 999);
    }

    #[test]
    fn score_cursor_streams() {
        let lls = LongListStore::new(store(), ListFormat::Score { with_scores: false });
        let postings = vec![
            (124.2, DocId(9), 0u16),
            (87.13, DocId(2), 0),
            (3.0, DocId(5), 0),
        ];
        let mut buf = Vec::new();
        PostingsBuilder::encode_score_list(&postings, false, &mut buf);
        lls.set_list(TermId(3), &buf).unwrap();
        let mut cursor = lls.cursor(TermId(3));
        let p = cursor.next_posting().unwrap().unwrap();
        assert_eq!(p.pos, PostingPos::ByScore(124.2));
        assert_eq!(p.doc, DocId(9));
    }

    #[test]
    fn unknown_term_is_empty_cursor() {
        let lls = LongListStore::new(store(), ListFormat::Id { with_scores: false });
        assert!(lls.cursor(TermId(99)).next_posting().unwrap().is_none());
        assert_eq!(lls.total_bytes(), 0);
    }

    #[test]
    fn replacing_a_list_updates_bytes() {
        let lls = LongListStore::new(store(), ListFormat::Id { with_scores: false });
        lls.set_list(TermId(1), &[1, 2, 3, 4]).unwrap();
        assert_eq!(lls.total_bytes(), 4);
        lls.set_list(TermId(1), &[1, 2]).unwrap();
        assert_eq!(lls.total_bytes(), 2);
        assert_eq!(lls.num_terms(), 1);
    }

    #[test]
    fn invert_corpus_sorted_by_doc() {
        let docs = vec![
            Document::from_term_freqs(DocId(5), [(TermId(1), 2), (TermId(2), 1)]),
            Document::from_term_freqs(DocId(1), [(TermId(1), 4)]),
        ];
        let inverted = invert_corpus(&docs);
        let t1 = &inverted[&TermId(1)];
        assert_eq!(t1.len(), 2);
        assert_eq!(t1[0].doc, DocId(1));
        assert_eq!(t1[1].doc, DocId(5));
        // Doc 1's term 1 is its max-tf term: normalized score is 1.0.
        assert_eq!(t1[0].tscore, u16::MAX);
    }
}
