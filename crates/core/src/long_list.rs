//! Long (immutable) inverted lists in the blob store, plus streaming
//! cursors and corpus inversion helpers.
//!
//! Lists are stored in the codec configured per store ([`CodecKind`]): the
//! flat legacy `svr_text::postings` layouts, or the block-structured codecs
//! of [`crate::codec`] whose per-block skip metadata lets cursors skip
//! whole blocks without decoding them. Either way they are decoded
//! *incrementally*, page by page, so early-terminating queries only pay for
//! the prefix of the list they actually visit.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use svr_storage::{BlobHandle, BlobStore, Store};
use svr_text::postings::{ChunkGroup, TermScoredPosting};
use svr_text::{normalized_tf, quantize_term_score};

use crate::byte_stream::{ByteStream, StreamPos};
use crate::codec::{self, BlockMeta, CodecKind};
use crate::error::{CoreError, Result};
use crate::merge::MergeKey;
use crate::short_list::PostingPos;
use crate::types::{DocId, Document, TermId};

fn corrupt(msg: &'static str) -> CoreError {
    CoreError::Storage(svr_storage::StorageError::Corrupt(msg))
}

/// Long-list layout used by a method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListFormat {
    /// Doc-id order (ID, ID-TermScore; also fancy lists).
    Id { with_scores: bool },
    /// Chunk groups descending, doc ids ascending within (Chunk, Chunk-TS).
    Chunked { with_scores: bool },
    /// `(score, doc)` pairs, score descending (Score-Threshold).
    Score { with_scores: bool },
}

/// One decoded long-list posting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LongPosting {
    pub pos: PostingPos,
    pub doc: DocId,
    pub tscore: u16,
}

/// Directory entry of one stored list.
#[derive(Debug, Clone, Copy)]
struct DirEntry {
    handle: BlobHandle,
    /// Postings in the list (drives the bytes-per-posting diagnostics).
    postings: u64,
}

/// Immutable per-term lists in one blob store with an in-memory directory.
///
/// The hot directory (term -> blob handle) is held in memory to keep the
/// I/O counters focused on what the paper measures (the lists themselves);
/// a **durable** list store additionally mirrors the directory into a small
/// B+-tree in the same store (written only when lists are replaced — build
/// and offline-merge time, never on the query or score-update path), so a
/// reopened store finds its page chains again.
pub struct LongListStore {
    blobs: BlobStore,
    format: ListFormat,
    codec: CodecKind,
    directory: RwLock<HashMap<TermId, DirEntry>>,
    /// Durable mirror of `directory` (None for in-memory stores).
    dir_tree: Option<svr_storage::BTree>,
    total_bytes: AtomicU64,
    total_postings: AtomicU64,
    /// Structural epoch: bumped whenever a list is replaced (offline merge).
    /// A suspended cursor whose recorded epoch no longer matches must not
    /// chase stale page chains; it falls back to a key-skip re-scan (see
    /// [`LongListStore::resume_cursor`]).
    epoch: AtomicU64,
}

/// Encode a directory row: `first_page + 1` (0 = empty blob), len, pages,
/// posting count.
fn encode_entry(e: &DirEntry) -> [u8; 32] {
    let mut v = [0u8; 32];
    v[..8].copy_from_slice(&e.handle.first_page.map_or(0, |p| p + 1).to_le_bytes());
    v[8..16].copy_from_slice(&e.handle.len.to_le_bytes());
    v[16..24].copy_from_slice(&e.handle.pages.to_le_bytes());
    v[24..32].copy_from_slice(&e.postings.to_le_bytes());
    v
}

/// Decode a directory row. Rows written before posting counts existed are
/// 24 bytes; they decode with `postings == 0` (the gauge self-heals at the
/// next offline merge).
fn decode_entry(raw: &[u8]) -> Result<DirEntry> {
    if raw.len() < 24 {
        return Err(corrupt("long-list directory row"));
    }
    let first = u64::from_le_bytes(raw[..8].try_into().expect("8 bytes"));
    let postings = if raw.len() >= 32 {
        u64::from_le_bytes(raw[24..32].try_into().expect("8 bytes"))
    } else {
        0
    };
    Ok(DirEntry {
        handle: BlobHandle {
            first_page: first.checked_sub(1),
            len: u64::from_le_bytes(raw[8..16].try_into().expect("8 bytes")),
            pages: u64::from_le_bytes(raw[16..24].try_into().expect("8 bytes")),
        },
        postings,
    })
}

impl LongListStore {
    /// Create an empty list store.
    pub fn new(store: Arc<Store>, format: ListFormat, codec: CodecKind) -> LongListStore {
        LongListStore {
            blobs: BlobStore::new(store),
            format,
            codec,
            directory: RwLock::new(HashMap::new()),
            dir_tree: None,
            total_bytes: AtomicU64::new(0),
            total_postings: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
        }
    }

    /// [`LongListStore::new`] or [`LongListStore::create_durable`] by flag.
    pub fn create_in(
        store: Arc<Store>,
        format: ListFormat,
        codec: CodecKind,
        durable: bool,
    ) -> Result<LongListStore> {
        if durable {
            LongListStore::create_durable(store, format, codec)
        } else {
            Ok(LongListStore::new(store, format, codec))
        }
    }

    /// Create an empty **durable** list store: the directory tree's
    /// metadata occupies the store's first pages, so
    /// [`LongListStore::open`] can reattach from nothing but the store.
    pub fn create_durable(
        store: Arc<Store>,
        format: ListFormat,
        codec: CodecKind,
    ) -> Result<LongListStore> {
        let dir_tree = crate::durable::create_tree(store.clone(), true)?;
        Ok(LongListStore {
            blobs: BlobStore::new(store),
            format,
            codec,
            directory: RwLock::new(HashMap::new()),
            dir_tree: Some(dir_tree),
            total_bytes: AtomicU64::new(0),
            total_postings: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
        })
    }

    /// Reattach a durable list store, reloading the directory (and the
    /// size gauges) from its persisted mirror. `codec` must be the codec
    /// the store was created with — it is recorded in the engine's index
    /// catalog, never sniffed from list bytes.
    pub fn open(store: Arc<Store>, format: ListFormat, codec: CodecKind) -> Result<LongListStore> {
        let dir_tree = crate::durable::open_tree(store.clone())?;
        let mut directory = HashMap::new();
        let mut total = 0u64;
        let mut postings = 0u64;
        {
            let mut cursor = dir_tree.cursor(&[])?;
            while let Some((k, v)) = cursor.next_entry()? {
                if k.len() < 4 {
                    return Err(corrupt("long-list directory key"));
                }
                let term = TermId(u32::from_be_bytes(k[..4].try_into().expect("4 bytes")));
                let entry = decode_entry(&v)?;
                total += entry.handle.len;
                postings += entry.postings;
                directory.insert(term, entry);
            }
        }
        Ok(LongListStore {
            blobs: BlobStore::new(store),
            format,
            codec,
            directory: RwLock::new(directory),
            dir_tree: Some(dir_tree),
            total_bytes: AtomicU64::new(total),
            total_postings: AtomicU64::new(postings),
            epoch: AtomicU64::new(0),
        })
    }

    /// Layout of the stored lists.
    pub fn format(&self) -> ListFormat {
        self.format
    }

    /// Codec of the stored lists.
    pub fn codec(&self) -> CodecKind {
        self.codec
    }

    /// Structural epoch of the store. Page-level cursor resume is only
    /// valid while this is unchanged.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Store (replacing any previous) the encoded list for `term`.
    /// `postings` is the number of postings in `encoded`; callers should
    /// prefer the typed `put_*_list` builders, which encode with the
    /// store's codec and count for you.
    pub fn set_list(&self, term: TermId, encoded: &[u8], postings: u64) -> Result<()> {
        let handle = self.blobs.put(encoded)?;
        let entry = DirEntry { handle, postings };
        if let Some(tree) = &self.dir_tree {
            tree.put(&term.0.to_be_bytes(), &encode_entry(&entry))?;
        }
        let mut dir = self.directory.write();
        if let Some(old) = dir.insert(term, entry) {
            self.blobs.free(old.handle)?;
            self.total_bytes
                .fetch_sub(old.handle.len, Ordering::Relaxed);
            self.total_postings
                .fetch_sub(old.postings, Ordering::Relaxed);
        }
        self.total_bytes
            .fetch_add(encoded.len() as u64, Ordering::Relaxed);
        self.total_postings.fetch_add(postings, Ordering::Relaxed);
        self.epoch.fetch_add(1, Ordering::Release);
        Ok(())
    }

    /// Encode and store an Id-format list with the store's codec.
    pub fn put_id_list(&self, term: TermId, postings: &[TermScoredPosting]) -> Result<()> {
        let ListFormat::Id { with_scores } = self.format else {
            return Err(CoreError::Unsupported(
                "put_id_list on a non-id long-list store",
            ));
        };
        let mut buf = Vec::new();
        codec::encode_id_list(self.codec, postings, with_scores, &mut buf);
        self.set_list(term, &buf, postings.len() as u64)
    }

    /// Encode and store a chunked list with the store's codec.
    pub fn put_chunked_list(&self, term: TermId, groups: &[ChunkGroup]) -> Result<()> {
        let ListFormat::Chunked { with_scores } = self.format else {
            return Err(CoreError::Unsupported(
                "put_chunked_list on a non-chunked long-list store",
            ));
        };
        let mut buf = Vec::new();
        codec::encode_chunked_list(self.codec, groups, with_scores, &mut buf);
        let count = groups.iter().map(|g| g.postings.len() as u64).sum();
        self.set_list(term, &buf, count)
    }

    /// Encode and store a score-ordered list with the store's codec.
    pub fn put_score_list(&self, term: TermId, rows: &[(f64, DocId, u16)]) -> Result<()> {
        let ListFormat::Score { with_scores } = self.format else {
            return Err(CoreError::Unsupported(
                "put_score_list on a non-score long-list store",
            ));
        };
        let mut buf = Vec::new();
        codec::encode_score_list(self.codec, rows, with_scores, &mut buf);
        self.set_list(term, &buf, rows.len() as u64)
    }

    /// Drop a term's list (stores an empty one).
    pub fn clear_list(&self, term: TermId) -> Result<()> {
        self.set_list(term, &[], 0)
    }

    /// Raw bytes of a term's list (offline merge / tests).
    pub fn raw_list(&self, term: TermId) -> Result<Option<Vec<u8>>> {
        let handle = self.directory.read().get(&term).map(|e| e.handle);
        match handle {
            Some(h) => Ok(Some(self.blobs.read_all(h)?)),
            None => Ok(None),
        }
    }

    /// Decode a term's whole list (offline merge / tests).
    pub fn decoded_list(&self, term: TermId) -> Result<Vec<LongPosting>> {
        match self.raw_list(term)? {
            None => Ok(Vec::new()),
            Some(raw) => codec::decode_list(self.codec, self.format, &raw),
        }
    }

    /// Streaming cursor over a term's list (empty cursor for unknown terms).
    pub fn cursor(&self, term: TermId) -> LongCursor<'_> {
        let handle = self.directory.read().get(&term).map(|e| e.handle);
        match handle {
            None => LongCursor::empty(),
            Some(h) => self.cursor_from(ByteStream::new(self.blobs.reader(h)), None),
        }
    }

    fn cursor_from<'a>(
        &self,
        stream: ByteStream<'a>,
        decode: Option<DecodeState>,
    ) -> LongCursor<'a> {
        if self.codec != CodecKind::Legacy {
            let (skip, header_read) = match decode {
                Some(DecodeState::Block { skip, header_read }) => (skip as usize, header_read),
                _ => (0, false),
            };
            let block_start = stream.position();
            return LongCursor {
                inner: CursorInner::Block(Box::new(BlockCursorState {
                    stream,
                    format: self.format,
                    codec: self.codec,
                    header_read,
                    block_start,
                    decoded: Vec::new(),
                    idx: 0,
                    pending_skip: skip,
                    block_buf: Vec::new(),
                    meta: None,
                    expect_remaining: None,
                    blocks_skipped: 0,
                    blocks_decoded: 0,
                })),
                pending: None,
            };
        }
        let inner = match self.format {
            ListFormat::Id { with_scores } => {
                let prev = match decode {
                    Some(DecodeState::Id { prev }) => prev,
                    _ => None,
                };
                CursorInner::Id(IdCursorState {
                    stream,
                    with_scores,
                    prev,
                })
            }
            ListFormat::Chunked { with_scores } => {
                let (current_cid, remaining, prev) = match decode {
                    Some(DecodeState::Chunked {
                        cid,
                        remaining,
                        prev,
                    }) => (cid, remaining, prev),
                    _ => (0, 0, None),
                };
                CursorInner::Chunked(ChunkCursorState {
                    stream,
                    with_scores,
                    current_cid,
                    remaining,
                    prev,
                })
            }
            ListFormat::Score { with_scores } => CursorInner::Score(ScoreCursorState {
                stream,
                with_scores,
            }),
        };
        LongCursor {
            inner,
            pending: None,
        }
    }

    /// Reopen a suspended cursor.
    ///
    /// While the store's structural [`epoch`](LongListStore::epoch) still
    /// matches the one captured at suspension, this resumes exactly where
    /// the cursor stopped — the incremental cost is at most re-fetching one
    /// (usually cached) page, plus re-decoding the current block for the
    /// block codecs. If the lists were rebuilt in between (offline merge),
    /// the saved page chain is gone; the cursor then degrades gracefully by
    /// re-opening the term's current list and skipping every posting at or
    /// before the last consumed merge position. Positions in the rebuilt
    /// list reflect *current* scores, so a document may be re-delivered
    /// (deduplicated downstream by the executor's seen-set) or skipped —
    /// the documented staleness semantics of suspended cursors.
    pub fn resume_cursor(&self, term: TermId, resume: &LongResume) -> Result<LongCursor<'_>> {
        match &resume.state {
            LongResumeState::Fresh => Ok(self.cursor(term)),
            LongResumeState::Done => {
                if resume.epoch == self.epoch() {
                    Ok(LongCursor::empty())
                } else {
                    self.skip_cursor(term, resume.after)
                }
            }
            LongResumeState::At { pos, decode } => {
                if resume.epoch == self.epoch() {
                    let stream = ByteStream::resume(&self.blobs, *pos)?;
                    Ok(self.cursor_from(stream, Some(*decode)))
                } else {
                    self.skip_cursor(term, resume.after)
                }
            }
            LongResumeState::Skip => self.skip_cursor(term, resume.after),
        }
    }

    /// Fallback resume: fresh scan skipping keys `<= after`.
    fn skip_cursor(&self, term: TermId, after: Option<MergeKey>) -> Result<LongCursor<'_>> {
        let mut cursor = self.cursor(term);
        let Some(after) = after else {
            return Ok(cursor);
        };
        while let Some(p) = cursor.next_posting()? {
            if (p.pos.rank(), p.doc.0) > after {
                cursor.pending = Some(p);
                break;
            }
        }
        Ok(cursor)
    }

    /// Total encoded (physical, post-compression) bytes across every term
    /// (the paper's Table 1 metric).
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes.load(Ordering::Relaxed)
    }

    /// Total postings across every term. Together with
    /// [`total_bytes`](LongListStore::total_bytes) this gives the
    /// bytes-per-posting / compression-ratio diagnostics.
    pub fn total_postings(&self) -> u64 {
        self.total_postings.load(Ordering::Relaxed)
    }

    /// Number of terms with lists.
    pub fn num_terms(&self) -> usize {
        self.directory.read().len()
    }

    /// Terms with stored lists (unsorted).
    pub fn terms(&self) -> Vec<TermId> {
        self.directory.read().keys().copied().collect()
    }

    /// Pages occupied by a term's list (I/O cost of a full scan). Physical
    /// pages of the *encoded* list, so compression shows up directly here.
    pub fn pages_of(&self, term: TermId) -> u64 {
        self.directory
            .read()
            .get(&term)
            .map_or(0, |e| e.handle.pages)
    }
}

/// Decoder-internal state captured when a cursor suspends, sufficient to
/// continue decoding mid-list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecodeState {
    Id {
        prev: Option<u32>,
    },
    Chunked {
        cid: u32,
        remaining: u64,
        prev: Option<u32>,
    },
    Score,
    /// Block codecs: `pos` points at a block header (or the list header when
    /// `header_read` is false); `skip` postings of that block were already
    /// delivered before suspension and are re-decoded and dropped on resume.
    Block {
        skip: u32,
        header_read: bool,
    },
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum LongResumeState {
    /// Never opened: resume = plain [`LongListStore::cursor`].
    Fresh,
    /// The scan reached the end of the list.
    Done,
    /// Mid-list: byte position + decoder state.
    At { pos: StreamPos, decode: DecodeState },
    /// Position unknown (e.g. suspended mid-fallback): re-scan the current
    /// list and skip keys `<= after` regardless of epoch.
    Skip,
}

/// Owned suspension state of a [`LongCursor`] — everything needed to
/// continue the scan in a later call without holding any borrow of the
/// store. Produced by [`LongCursor::suspend`], consumed by
/// [`LongListStore::resume_cursor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LongResume {
    /// Store epoch at suspension; a mismatch at resume means the lists were
    /// rebuilt and triggers the key-skip fallback.
    epoch: u64,
    state: LongResumeState,
    /// Merge key of the last posting this cursor delivered (fallback skip
    /// boundary).
    after: Option<MergeKey>,
}

impl LongResume {
    /// Resume state for a cursor that was never opened.
    pub fn fresh() -> LongResume {
        LongResume {
            epoch: 0,
            state: LongResumeState::Fresh,
            after: None,
        }
    }
}

/// Streaming decoder over one term's long list.
pub struct LongCursor<'a> {
    inner: CursorInner<'a>,
    /// One decoded posting pushed back by the key-skip fallback; delivered
    /// before the stream continues.
    pending: Option<LongPosting>,
}

enum CursorInner<'a> {
    Empty,
    Id(IdCursorState<'a>),
    Chunked(ChunkCursorState<'a>),
    Score(ScoreCursorState<'a>),
    Block(Box<BlockCursorState<'a>>),
}

pub struct IdCursorState<'a> {
    stream: ByteStream<'a>,
    with_scores: bool,
    prev: Option<u32>,
}

pub struct ChunkCursorState<'a> {
    stream: ByteStream<'a>,
    with_scores: bool,
    current_cid: u32,
    remaining: u64,
    prev: Option<u32>,
}

pub struct ScoreCursorState<'a> {
    stream: ByteStream<'a>,
    with_scores: bool,
}

/// Cursor state over a block-structured list: decodes one block at a time
/// into a reused posting buffer, reading each payload through a reused byte
/// buffer (no per-block allocation on the steady state).
struct BlockCursorState<'a> {
    stream: ByteStream<'a>,
    format: ListFormat,
    codec: CodecKind,
    /// Whether the list header has been consumed from the stream.
    header_read: bool,
    /// Stream position of the current block's header (suspension anchor).
    block_start: StreamPos,
    /// Decoded postings of the current block.
    decoded: Vec<LongPosting>,
    /// Next undelivered posting in `decoded`.
    idx: usize,
    /// Postings of the *next decoded* block to drop (resume mid-block).
    pending_skip: usize,
    /// Reused payload read buffer.
    block_buf: Vec<u8>,
    /// Skip metadata of the current block.
    meta: Option<BlockMeta>,
    /// Postings still expected from the stream (fresh scans only) — lets a
    /// full scan detect a truncated list instead of stopping silently.
    expect_remaining: Option<u64>,
    /// Blocks skipped undecoded via [`LongCursor::skip_to_doc`].
    blocks_skipped: u64,
    /// Blocks whose payload was decoded by this cursor.
    blocks_decoded: u64,
}

fn read_list_header_stream(
    stream: &mut ByteStream<'_>,
    codec: CodecKind,
    format: ListFormat,
) -> Result<u64> {
    let magic = stream.read_u8()?;
    let tag = stream.read_u8()?;
    let flags = stream.read_u8()?;
    codec::check_header(codec, format, magic, tag, flags)?;
    stream.read_varint()
}

fn read_block_meta_stream(stream: &mut ByteStream<'_>, format: ListFormat) -> Result<BlockMeta> {
    let count = stream.read_varint()?;
    let payload_len = stream.read_varint()?;
    let max_doc = stream.read_varint()?;
    let max_tscore = stream.read_varint()?;
    let max_score = if matches!(format, ListFormat::Score { .. }) {
        stream.read_f64_le()?
    } else {
        0.0
    };
    let meta = BlockMeta {
        count,
        payload_len,
        max_doc: u32::try_from(max_doc).map_err(|_| corrupt("block max doc out of range"))?,
        max_tscore: u16::try_from(max_tscore)
            .map_err(|_| corrupt("block max term score out of range"))?,
        max_score,
    };
    codec::check_block_meta(&meta)?;
    Ok(meta)
}

impl BlockCursorState<'_> {
    /// Position the stream at the next block header, consuming the list
    /// header first if needed. Returns false (cleanly) at end of list.
    fn at_next_block(&mut self) -> Result<bool> {
        if !self.header_read {
            if self.stream.is_eof()? {
                return Ok(false); // empty list: zero bytes
            }
            let total = read_list_header_stream(&mut self.stream, self.codec, self.format)?;
            self.expect_remaining = Some(total);
            self.header_read = true;
        }
        self.block_start = self.stream.position();
        if self.stream.is_eof()? {
            if self.expect_remaining.is_some_and(|rem| rem != 0) {
                return Err(corrupt("long list truncated before header total"));
            }
            return Ok(false);
        }
        Ok(true)
    }

    /// Decode the block at the stream position into `decoded`.
    fn load_block(&mut self, meta: BlockMeta) -> Result<()> {
        let payload_len =
            usize::try_from(meta.payload_len).map_err(|_| corrupt("block payload length"))?;
        self.stream.read_into(payload_len, &mut self.block_buf)?;
        self.decoded.clear();
        codec::decode_block(
            self.codec,
            self.format,
            &meta,
            &self.block_buf,
            &mut self.decoded,
        )?;
        if let Some(rem) = &mut self.expect_remaining {
            *rem = rem
                .checked_sub(meta.count)
                .ok_or_else(|| corrupt("long list holds more postings than header"))?;
        }
        self.idx = self.pending_skip.min(self.decoded.len());
        self.pending_skip = 0;
        self.meta = Some(meta);
        self.blocks_decoded += 1;
        Ok(())
    }

    /// Advance to the next decoded, undelivered block. False at end of list.
    fn next_block(&mut self) -> Result<bool> {
        if !self.at_next_block()? {
            return Ok(false);
        }
        let meta = read_block_meta_stream(&mut self.stream, self.format)?;
        self.load_block(meta)?;
        Ok(true)
    }
}

impl LongCursor<'_> {
    /// A cursor over nothing (unknown terms; methods without long lists).
    pub fn empty() -> LongCursor<'static> {
        LongCursor {
            inner: CursorInner::Empty,
            pending: None,
        }
    }

    /// Capture this cursor's suspension state. `epoch` is the owning
    /// store's structural epoch ([`LongListStore::epoch`]; 0 for detached
    /// empty cursors) and `after` the merge key of the last posting the
    /// cursor delivered.
    pub fn suspend(&self, epoch: u64, after: Option<MergeKey>) -> LongResume {
        // A pending pushback means the fallback skip already decoded one
        // posting ahead; re-running the skip from `after` reproduces it.
        if self.pending.is_some() {
            return LongResume {
                epoch,
                state: LongResumeState::Skip,
                after,
            };
        }
        let state = match &self.inner {
            CursorInner::Empty => LongResumeState::Done,
            CursorInner::Id(s) => LongResumeState::At {
                pos: s.stream.position(),
                decode: DecodeState::Id { prev: s.prev },
            },
            CursorInner::Chunked(s) => LongResumeState::At {
                pos: s.stream.position(),
                decode: DecodeState::Chunked {
                    cid: s.current_cid,
                    remaining: s.remaining,
                    prev: s.prev,
                },
            },
            CursorInner::Score(s) => LongResumeState::At {
                pos: s.stream.position(),
                decode: DecodeState::Score,
            },
            CursorInner::Block(s) => {
                if s.idx < s.decoded.len() || s.pending_skip > 0 {
                    // Mid-block: anchor at the block header and re-decode
                    // the one block on resume, dropping what was delivered.
                    LongResumeState::At {
                        pos: s.block_start,
                        decode: DecodeState::Block {
                            skip: (s.idx + s.pending_skip) as u32,
                            header_read: true,
                        },
                    }
                } else {
                    // Between blocks: the next unread byte is a block header
                    // (or the list header / EOF).
                    LongResumeState::At {
                        pos: s.stream.position(),
                        decode: DecodeState::Block {
                            skip: 0,
                            header_read: s.header_read,
                        },
                    }
                }
            }
        };
        LongResume {
            epoch,
            state,
            after,
        }
    }

    /// Skip metadata of the block the cursor is currently positioned in
    /// (block codecs, after the first posting). This is the block-max hook
    /// for WAND-style multi-term pruning.
    pub fn block_meta(&self) -> Option<BlockMeta> {
        match &self.inner {
            CursorInner::Block(s) => s.meta,
            _ => None,
        }
    }

    /// Blocks this cursor skipped without decoding (diagnostics).
    pub fn blocks_skipped(&self) -> u64 {
        match &self.inner {
            CursorInner::Block(s) => s.blocks_skipped,
            _ => 0,
        }
    }

    /// Blocks this cursor decoded (diagnostics; 0 for non-block codecs).
    pub fn blocks_decoded(&self) -> u64 {
        match &self.inner {
            CursorInner::Block(s) => s.blocks_decoded,
            _ => 0,
        }
    }

    /// Advance so the next posting is the first with `doc >= target`.
    ///
    /// Only meaningful for doc-ordered (Id-format) lists. Block cursors use
    /// the per-block max-doc metadata to *skip* whole blocks — their
    /// payloads are never copied or decoded; legacy cursors (and non-Id
    /// layouts, where doc ids are not globally ascending) degrade to a
    /// linear scan.
    pub fn skip_to_doc(&mut self, target: DocId) -> Result<()> {
        if let Some(p) = &self.pending {
            if p.doc >= target {
                return Ok(());
            }
            self.pending = None;
        }
        if let CursorInner::Block(s) = &mut self.inner {
            if matches!(s.format, ListFormat::Id { .. }) && s.pending_skip == 0 {
                loop {
                    while s.idx < s.decoded.len() {
                        if s.decoded[s.idx].doc >= target {
                            return Ok(());
                        }
                        s.idx += 1;
                    }
                    if !s.at_next_block()? {
                        return Ok(());
                    }
                    let meta = read_block_meta_stream(&mut s.stream, s.format)?;
                    if meta.max_doc < target.0 {
                        let payload_len = usize::try_from(meta.payload_len)
                            .map_err(|_| corrupt("block payload length"))?;
                        s.stream.skip(payload_len)?;
                        if let Some(rem) = &mut s.expect_remaining {
                            *rem = rem.checked_sub(meta.count).ok_or_else(|| {
                                corrupt("long list holds more postings than header")
                            })?;
                        }
                        s.meta = Some(meta);
                        s.blocks_skipped += 1;
                        continue;
                    }
                    s.load_block(meta)?;
                }
            }
        }
        while let Some(p) = self.next_posting()? {
            if p.doc >= target {
                self.pending = Some(p);
                return Ok(());
            }
        }
        Ok(())
    }

    /// Next posting in list order, or `None` at the end.
    pub fn next_posting(&mut self) -> Result<Option<LongPosting>> {
        if let Some(p) = self.pending.take() {
            return Ok(Some(p));
        }
        match &mut self.inner {
            CursorInner::Empty => Ok(None),
            CursorInner::Id(state) => {
                if state.stream.is_eof()? {
                    return Ok(None);
                }
                let delta = state.stream.read_varint()? as u32;
                let doc = match state.prev {
                    None => delta,
                    Some(prev) => prev + delta + 1,
                };
                state.prev = Some(doc);
                let tscore = if state.with_scores {
                    state.stream.read_u16_le()?
                } else {
                    0
                };
                Ok(Some(LongPosting {
                    pos: PostingPos::Id,
                    doc: DocId(doc),
                    tscore,
                }))
            }
            CursorInner::Chunked(state) => {
                while state.remaining == 0 {
                    if state.stream.is_eof()? {
                        return Ok(None);
                    }
                    state.current_cid = state.stream.read_varint()? as u32;
                    state.remaining = state.stream.read_varint()?;
                    state.prev = None;
                }
                state.remaining -= 1;
                let delta = state.stream.read_varint()? as u32;
                let doc = match state.prev {
                    None => delta,
                    Some(prev) => prev + delta + 1,
                };
                state.prev = Some(doc);
                let tscore = if state.with_scores {
                    state.stream.read_u16_le()?
                } else {
                    0
                };
                Ok(Some(LongPosting {
                    pos: PostingPos::ByChunk(state.current_cid),
                    doc: DocId(doc),
                    tscore,
                }))
            }
            CursorInner::Score(state) => {
                if state.stream.is_eof()? {
                    return Ok(None);
                }
                let score = state.stream.read_f64_le()?;
                let doc = state.stream.read_u32_le()?;
                let tscore = if state.with_scores {
                    state.stream.read_u16_le()?
                } else {
                    0
                };
                Ok(Some(LongPosting {
                    pos: PostingPos::ByScore(score),
                    doc: DocId(doc),
                    tscore,
                }))
            }
            CursorInner::Block(state) => loop {
                if state.idx < state.decoded.len() {
                    let p = state.decoded[state.idx];
                    state.idx += 1;
                    return Ok(Some(p));
                }
                if !state.next_block()? {
                    return Ok(None);
                }
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Corpus inversion
// ---------------------------------------------------------------------------

/// Quantized term score for a `(tf, max_tf)` pair.
#[inline]
pub fn posting_term_score(tf: u32, max_tf: u32) -> u16 {
    quantize_term_score(normalized_tf(tf, max_tf))
}

/// Invert a corpus into per-term postings sorted by doc id. Term scores are
/// the quantized normalized TF of each (doc, term) pair.
pub fn invert_corpus(docs: &[Document]) -> HashMap<TermId, Vec<TermScoredPosting>> {
    let mut inverted: HashMap<TermId, Vec<TermScoredPosting>> = HashMap::new();
    let mut sorted: Vec<&Document> = docs.iter().collect();
    sorted.sort_by_key(|d| d.id);
    for doc in sorted {
        let max_tf = doc.max_tf();
        for &(term, tf) in &doc.terms {
            inverted.entry(term).or_default().push(TermScoredPosting {
                doc: doc.id,
                tscore: posting_term_score(tf, max_tf),
            });
        }
    }
    inverted
}

#[cfg(test)]
mod tests {
    use super::*;
    use svr_storage::MemDisk;
    use svr_text::postings::PostingsBuilder;

    fn store() -> Arc<Store> {
        Arc::new(Store::new(Arc::new(MemDisk::new(128)), 8))
    }

    #[test]
    fn id_cursor_streams_pages() {
        let lls = LongListStore::new(
            store(),
            ListFormat::Id { with_scores: false },
            CodecKind::Legacy,
        );
        let docs: Vec<DocId> = (0..500u32).map(|i| DocId(i * 3)).collect();
        let mut buf = Vec::new();
        PostingsBuilder::encode_id_list(&docs, &mut buf);
        lls.set_list(TermId(1), &buf, docs.len() as u64).unwrap();
        let mut cursor = lls.cursor(TermId(1));
        for &d in &docs {
            let p = cursor.next_posting().unwrap().unwrap();
            assert_eq!(p.doc, d);
            assert_eq!(p.pos, PostingPos::Id);
        }
        assert!(cursor.next_posting().unwrap().is_none());
        assert!(lls.pages_of(TermId(1)) > 1, "list must span pages");
    }

    #[test]
    fn chunked_cursor_streams() {
        let lls = LongListStore::new(
            store(),
            ListFormat::Chunked { with_scores: true },
            CodecKind::Legacy,
        );
        let groups = vec![
            ChunkGroup {
                cid: 5,
                postings: (0..100u32)
                    .map(|i| TermScoredPosting {
                        doc: DocId(i * 2),
                        tscore: i as u16,
                    })
                    .collect(),
            },
            ChunkGroup {
                cid: 1,
                postings: vec![TermScoredPosting {
                    doc: DocId(7),
                    tscore: 999,
                }],
            },
        ];
        lls.put_chunked_list(TermId(2), &groups).unwrap();
        let mut cursor = lls.cursor(TermId(2));
        let mut seen = Vec::new();
        while let Some(p) = cursor.next_posting().unwrap() {
            seen.push(p);
        }
        assert_eq!(seen.len(), 101);
        assert_eq!(seen[0].pos, PostingPos::ByChunk(5));
        assert_eq!(seen[100].pos, PostingPos::ByChunk(1));
        assert_eq!(seen[100].doc, DocId(7));
        assert_eq!(seen[100].tscore, 999);
        assert_eq!(lls.total_postings(), 101);
    }

    #[test]
    fn score_cursor_streams() {
        let lls = LongListStore::new(
            store(),
            ListFormat::Score { with_scores: false },
            CodecKind::Legacy,
        );
        let postings = vec![
            (124.2, DocId(9), 0u16),
            (87.13, DocId(2), 0),
            (3.0, DocId(5), 0),
        ];
        lls.put_score_list(TermId(3), &postings).unwrap();
        let mut cursor = lls.cursor(TermId(3));
        let p = cursor.next_posting().unwrap().unwrap();
        assert_eq!(p.pos, PostingPos::ByScore(124.2));
        assert_eq!(p.doc, DocId(9));
    }

    #[test]
    fn unknown_term_is_empty_cursor() {
        let lls = LongListStore::new(
            store(),
            ListFormat::Id { with_scores: false },
            CodecKind::Legacy,
        );
        assert!(lls.cursor(TermId(99)).next_posting().unwrap().is_none());
        assert_eq!(lls.total_bytes(), 0);
    }

    #[test]
    fn replacing_a_list_updates_bytes_and_postings() {
        let lls = LongListStore::new(
            store(),
            ListFormat::Id { with_scores: false },
            CodecKind::Legacy,
        );
        lls.set_list(TermId(1), &[1, 2, 3, 4], 4).unwrap();
        assert_eq!(lls.total_bytes(), 4);
        assert_eq!(lls.total_postings(), 4);
        lls.set_list(TermId(1), &[1, 2], 2).unwrap();
        assert_eq!(lls.total_bytes(), 2);
        assert_eq!(lls.total_postings(), 2);
        assert_eq!(lls.num_terms(), 1);
    }

    #[test]
    fn directory_rows_without_posting_counts_still_decode() {
        // Rows persisted before the codec upgrade are 24 bytes (no posting
        // count); they must decode with postings == 0, not error.
        let entry = DirEntry {
            handle: BlobHandle {
                first_page: Some(7),
                len: 123,
                pages: 2,
            },
            postings: 55,
        };
        let full = encode_entry(&entry);
        let old = decode_entry(&full[..24]).unwrap();
        assert_eq!(old.handle.first_page, Some(7));
        assert_eq!(old.handle.len, 123);
        assert_eq!(old.handle.pages, 2);
        assert_eq!(old.postings, 0);
        let new = decode_entry(&full).unwrap();
        assert_eq!(new.postings, 55);
        assert!(decode_entry(&full[..20]).is_err());
    }

    #[test]
    fn block_cursor_streams_every_codec_and_format() {
        // Strictly ascending docs with varying deltas (base step 5 dominates
        // the ±2 jitter) so delta codecs see a non-uniform gap pattern.
        let postings: Vec<TermScoredPosting> = (0..700u32)
            .map(|i| TermScoredPosting {
                doc: DocId(i * 5 + (i % 3)),
                tscore: (i % 400) as u16,
            })
            .collect();
        for codec in CodecKind::BLOCK_CODECS {
            for with_scores in [false, true] {
                let lls = LongListStore::new(store(), ListFormat::Id { with_scores }, codec);
                lls.put_id_list(TermId(1), &postings).unwrap();
                let mut cursor = lls.cursor(TermId(1));
                for p in &postings {
                    let got = cursor.next_posting().unwrap().unwrap();
                    assert_eq!(got.doc, p.doc, "{codec:?}");
                    assert_eq!(got.tscore, if with_scores { p.tscore } else { 0 });
                }
                assert!(cursor.next_posting().unwrap().is_none());
                assert_eq!(lls.total_postings(), postings.len() as u64);
            }
        }
    }

    #[test]
    fn block_cursor_suspends_and_resumes_at_every_posting() {
        let postings: Vec<TermScoredPosting> = (0..300u32)
            .map(|i| TermScoredPosting {
                doc: DocId(i * 7),
                tscore: i as u16,
            })
            .collect();
        for codec in CodecKind::BLOCK_CODECS {
            let lls = LongListStore::new(store(), ListFormat::Id { with_scores: true }, codec);
            lls.put_id_list(TermId(1), &postings).unwrap();
            let epoch = lls.epoch();
            // Suspend after every single posting and resume.
            let mut resume = LongResume::fresh();
            for p in &postings {
                let mut cursor = lls.resume_cursor(TermId(1), &resume).unwrap();
                let got = cursor.next_posting().unwrap().unwrap();
                assert_eq!(got.doc, p.doc, "{codec:?}");
                assert_eq!(got.tscore, p.tscore, "{codec:?}");
                resume = cursor.suspend(epoch, Some((got.pos.rank(), got.doc.0)));
            }
            let mut cursor = lls.resume_cursor(TermId(1), &resume).unwrap();
            assert!(cursor.next_posting().unwrap().is_none(), "{codec:?}");
        }
    }

    #[test]
    fn skip_to_doc_skips_whole_blocks_undecoded() {
        let postings: Vec<TermScoredPosting> = (0..4000u32)
            .map(|i| TermScoredPosting {
                doc: DocId(i * 2),
                tscore: 0,
            })
            .collect();
        for codec in CodecKind::BLOCK_CODECS {
            let lls = LongListStore::new(store(), ListFormat::Id { with_scores: false }, codec);
            lls.put_id_list(TermId(1), &postings).unwrap();
            let mut cursor = lls.cursor(TermId(1));
            cursor.skip_to_doc(DocId(6000)).unwrap();
            assert!(
                cursor.blocks_skipped() >= 20,
                "{codec:?}: skipped only {} blocks",
                cursor.blocks_skipped()
            );
            let p = cursor.next_posting().unwrap().unwrap();
            assert_eq!(p.doc, DocId(6000), "{codec:?}");
            // Block metadata is exposed for block-max pruning.
            let meta = cursor.block_meta().unwrap();
            assert!(meta.max_doc >= 6000);
            // Seeking past the end drains cleanly.
            cursor.skip_to_doc(DocId(u32::MAX)).unwrap();
            assert!(cursor.next_posting().unwrap().is_none());
        }
        // Legacy cursors answer the same question by linear scan.
        let lls = LongListStore::new(
            store(),
            ListFormat::Id { with_scores: false },
            CodecKind::Legacy,
        );
        lls.put_id_list(TermId(1), &postings).unwrap();
        let mut cursor = lls.cursor(TermId(1));
        cursor.skip_to_doc(DocId(6001)).unwrap();
        assert_eq!(cursor.blocks_skipped(), 0);
        assert_eq!(cursor.next_posting().unwrap().unwrap().doc, DocId(6002));
    }

    #[test]
    fn truncated_block_list_errors_cleanly() {
        let postings: Vec<TermScoredPosting> = (0..600u32)
            .map(|i| TermScoredPosting {
                doc: DocId(i),
                tscore: 0,
            })
            .collect();
        for codec in CodecKind::BLOCK_CODECS {
            let mut buf = Vec::new();
            codec::encode_id_list(codec, &postings, false, &mut buf);
            // Cut at a block boundary: the stream ends cleanly but the list
            // header promises more postings.
            let lls = LongListStore::new(store(), ListFormat::Id { with_scores: false }, codec);
            lls.set_list(TermId(1), &buf[..buf.len() / 2], 0).unwrap();
            let mut cursor = lls.cursor(TermId(1));
            let mut result = Ok(());
            loop {
                match cursor.next_posting() {
                    Ok(Some(_)) => continue,
                    Ok(None) => break,
                    Err(e) => {
                        result = Err(e);
                        break;
                    }
                }
            }
            assert!(result.is_err(), "{codec:?}: truncation must surface");
        }
    }

    #[test]
    fn invert_corpus_sorted_by_doc() {
        let docs = vec![
            Document::from_term_freqs(DocId(5), [(TermId(1), 2), (TermId(2), 1)]),
            Document::from_term_freqs(DocId(1), [(TermId(1), 4)]),
        ];
        let inverted = invert_corpus(&docs);
        let t1 = &inverted[&TermId(1)];
        assert_eq!(t1.len(), 2);
        assert_eq!(t1[0].doc, DocId(1));
        assert_eq!(t1[1].doc, DocId(5));
        // Doc 1's term 1 is its max-tf term: normalized score is 1.0.
        assert_eq!(t1[0].tscore, u16::MAX);
    }
}
