//! # svr-core
//!
//! The primary contribution of *"Efficient Inverted Lists and Query
//! Algorithms for Structured Value Ranking in Update-Intensive Relational
//! Databases"* (Guo, Shanmugasundaram, Beyer, Shekita — ICDE 2005): a family
//! of inverted-list indexes and top-k query algorithms that stay fast when
//! document scores change frequently.
//!
//! The six methods (behind the [`SearchIndex`] trait):
//!
//! * [`methods::IdMethod`] — classic ID-ordered lists; O(1) score updates,
//!   full-scan queries;
//! * [`methods::ScoreMethod`] — score-ordered lists; early-terminating
//!   queries, ruinous updates;
//! * [`methods::ScoreThresholdMethod`] — score-ordered long + short lists
//!   with a threshold ratio trading update for query time (Algorithms 1-2);
//! * [`methods::ChunkMethod`] — the paper's headline index: chunked,
//!   score-free long lists with a chunk-ratio knob;
//! * [`methods::IdTermMethod`] / [`methods::ChunkTermMethod`] — the
//!   combined SVR + term-score variants (Algorithm 3, fancy lists).
//!
//! ```
//! use std::collections::HashMap;
//! use svr_core::{build_index, IndexConfig, MethodKind, Query};
//! use svr_core::types::{DocId, Document, TermId};
//!
//! let docs = vec![
//!     Document::from_term_freqs(DocId(1), [(TermId(1), 1), (TermId(2), 1)]),
//!     Document::from_term_freqs(DocId(2), [(TermId(1), 2)]),
//! ];
//! let scores = HashMap::from([(DocId(1), 10.0), (DocId(2), 90.0)]);
//! let index = build_index(MethodKind::Chunk, &docs, &scores, &IndexConfig::default()).unwrap();
//!
//! // Doc 2 wins on its structured-value score...
//! let hits = index.query(&Query::conjunctive([TermId(1)], 1)).unwrap();
//! assert_eq!(hits[0].doc, DocId(2));
//!
//! // ...until doc 1's popularity explodes.
//! index.update_score(DocId(1), 5000.0).unwrap();
//! let hits = index.query(&Query::conjunctive([TermId(1)], 1)).unwrap();
//! assert_eq!(hits[0].doc, DocId(1));
//! ```
//!
//! ## Storage format
//!
//! Long inverted lists are stored per-index in one of four codecs
//! ([`CodecKind`], selected via `IndexConfig::codec` / SQL
//! `OPTIONS (codec = ...)`): the flat `legacy` layout, or the
//! block-structured `uncompressed` / `varint` / `bitpacked` codecs, which
//! group postings into fixed-size blocks carrying skip metadata (max doc
//! id, max term score, max SVR score, posting count). See the [`codec`]
//! module docs for the byte-level layout, the skip-metadata contract, and
//! the codec-versioning rules.

pub mod aux_table;
pub mod byte_stream;
pub mod chunk_map;
pub mod codec;
pub mod config;
pub mod cursor;
pub mod doc_store;
pub(crate) mod durable;
pub mod error;
pub mod heap;
pub mod long_list;
pub mod maintenance;
pub mod merge;
pub mod methods;
pub mod multiterm;
pub mod oracle;
pub mod score_table;
pub mod short_list;
pub mod types;

pub use chunk_map::ChunkMap;
pub use codec::CodecKind;
pub use config::IndexConfig;
pub use cursor::MethodCursor;
pub use error::{CoreError, Result};
pub use methods::{
    build_index, build_index_at, open_index_at, shard_of_doc, store_names, IndexLocation,
    MethodKind, RefreshGroupStats, ScoreMap, ScoreRead, SearchIndex, ShardStats, ShardedIndex,
};
pub use multiterm::{SeekStats, SeekingIterator};
pub use oracle::Oracle;
pub use types::{Query, QueryMode, SearchHit};
