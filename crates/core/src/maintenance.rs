//! Offline maintenance: merging short lists back into the long lists.
//!
//! "Note also that the short lists will be periodically merged with the
//! long lists bringing down document insertion cost again" (App. A.3). The
//! paper performs this offline and excludes it from the measured operations
//! (§5.1); here it is implemented as a full regeneration of the long lists
//! from the live forward index and Score table — the simplest correct
//! policy, and the natural point to recompute chunk boundaries for the
//! Chunk methods. Lists are re-encoded with the store's **own** codec
//! ([`LongListStore::codec`]): a merge never migrates an index between
//! codecs, so a legacy-format index stays byte-compatible after upgrades.

use std::collections::{HashMap, HashSet};

use svr_text::postings::TermScoredPosting;

use crate::chunk_map::ChunkMap;
use crate::error::Result;
use crate::long_list::{posting_term_score, LongListStore};
use crate::methods::base::MethodBase;
use crate::methods::chunk::group_by_chunk;
use crate::types::{DocId, Score, TermId};

/// Invert the live collection from the forward index, producing per-term
/// postings in doc-id order plus each doc's current score.
#[allow(clippy::type_complexity)]
fn invert_live(
    base: &MethodBase,
) -> Result<(
    HashMap<TermId, Vec<TermScoredPosting>>,
    HashMap<DocId, Score>,
)> {
    let live = base.score_table.live_scores()?;
    let mut inverted: HashMap<TermId, Vec<TermScoredPosting>> = HashMap::new();
    let mut scores = HashMap::with_capacity(live.len());
    for (doc, score) in live {
        scores.insert(doc, score);
        let Some(terms) = base.doc_store.get(doc)? else {
            continue;
        };
        let max_tf = terms.iter().map(|&(_, tf)| tf).max().unwrap_or(0);
        for (term, tf) in terms {
            inverted.entry(term).or_default().push(TermScoredPosting {
                doc,
                tscore: posting_term_score(tf, max_tf),
            });
        }
    }
    // live_scores is doc-ordered, so each term's postings already are too.
    Ok((inverted, scores))
}

/// Clear lists for terms no longer present in the fresh inversion.
fn clear_vanished<'a>(long: &LongListStore, fresh: impl Iterator<Item = &'a TermId>) -> Result<()> {
    let fresh: HashSet<TermId> = fresh.copied().collect();
    for term in long.terms() {
        if !fresh.contains(&term) {
            long.clear_list(term)?;
        }
    }
    Ok(())
}

/// Rebuild ID-ordered long lists (ID / ID-TermScore methods).
pub(crate) fn rebuild_id_lists(base: &MethodBase, long: &LongListStore) -> Result<()> {
    let (inverted, _) = invert_live(base)?;
    clear_vanished(long, inverted.keys())?;
    for (term, postings) in inverted {
        long.put_id_list(term, &postings)?;
    }
    Ok(())
}

/// Rebuild score-ordered long lists (Score-Threshold method) using the
/// *current* scores — after the merge, list scores are exact again.
pub(crate) fn rebuild_score_lists(base: &MethodBase, long: &LongListStore) -> Result<()> {
    let (inverted, scores) = invert_live(base)?;
    clear_vanished(long, inverted.keys())?;
    for (term, postings) in inverted {
        let mut rows: Vec<(f64, DocId, u16)> = postings
            .iter()
            .map(|p| (scores.get(&p.doc).copied().unwrap_or(0.0), p.doc, p.tscore))
            .collect();
        rows.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        long.put_score_list(term, &rows)?;
    }
    Ok(())
}

/// Rebuild chunked long lists (Chunk method); returns the new chunk map
/// computed from the live score distribution with the caller's parameters.
pub(crate) fn rebuild_chunked_lists(
    base: &MethodBase,
    long: &LongListStore,
    chunk_ratio: f64,
    min_chunk_docs: usize,
    old_map: ChunkMap,
) -> Result<ChunkMap> {
    let (inverted, scores) = invert_live(base)?;
    let all_scores: Vec<Score> = scores.values().copied().collect();
    let new_map = if all_scores.is_empty() {
        old_map
    } else {
        ChunkMap::from_scores(&all_scores, chunk_ratio, min_chunk_docs)
    };
    clear_vanished(long, inverted.keys())?;
    for (term, postings) in inverted {
        let groups = group_by_chunk(&postings, |doc| {
            new_map.chunk_of(scores.get(&doc).copied().unwrap_or(0.0))
        });
        long.put_chunked_list(term, &groups)?;
    }
    Ok(new_map)
}

/// Rebuild score-ordered long lists with term scores *and* fancy lists
/// (Score-Threshold-TermScore); returns per-term `(minF, complete)` fancy
/// metadata. After the merge, list scores are exact again.
pub(crate) fn rebuild_score_term_lists(
    base: &MethodBase,
    long: &LongListStore,
    fancy: &LongListStore,
    fancy_size: usize,
) -> Result<HashMap<TermId, (u16, bool)>> {
    let (inverted, scores) = invert_live(base)?;
    let mut meta = HashMap::with_capacity(inverted.len());
    clear_vanished(long, inverted.keys())?;
    clear_vanished(fancy, inverted.keys())?;
    for (term, postings) in inverted {
        let mut rows: Vec<(f64, DocId, u16)> = postings
            .iter()
            .map(|p| (scores.get(&p.doc).copied().unwrap_or(0.0), p.doc, p.tscore))
            .collect();
        rows.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        long.put_score_list(term, &rows)?;

        let mut ranked = postings.clone();
        ranked.sort_by(|a, b| b.tscore.cmp(&a.tscore).then_with(|| a.doc.cmp(&b.doc)));
        ranked.truncate(fancy_size);
        let complete = ranked.len() == postings.len();
        let min_ts = ranked.iter().map(|p| p.tscore).min().unwrap_or(0);
        ranked.sort_by_key(|p| p.doc);
        fancy.put_id_list(term, &ranked)?;
        meta.insert(term, (min_ts, complete));
    }
    Ok(meta)
}

/// Rebuild chunked long lists *and* fancy lists (Chunk-TermScore); returns
/// the new chunk map and per-term `(minF, complete)` fancy metadata.
#[allow(clippy::type_complexity)]
pub(crate) fn rebuild_chunk_term_lists(
    base: &MethodBase,
    long: &LongListStore,
    fancy: &LongListStore,
    fancy_size: usize,
    chunk_ratio: f64,
    min_chunk_docs: usize,
    old_map: ChunkMap,
) -> Result<(ChunkMap, HashMap<TermId, (u16, bool)>)> {
    let (inverted, scores) = invert_live(base)?;
    let all_scores: Vec<Score> = scores.values().copied().collect();
    let new_map = if all_scores.is_empty() {
        old_map
    } else {
        ChunkMap::from_scores(&all_scores, chunk_ratio, min_chunk_docs)
    };
    let mut meta = HashMap::with_capacity(inverted.len());
    clear_vanished(long, inverted.keys())?;
    clear_vanished(fancy, inverted.keys())?;
    for (term, postings) in inverted {
        let groups = group_by_chunk(&postings, |doc| {
            new_map.chunk_of(scores.get(&doc).copied().unwrap_or(0.0))
        });
        long.put_chunked_list(term, &groups)?;

        let mut ranked = postings.clone();
        ranked.sort_by(|a, b| b.tscore.cmp(&a.tscore).then_with(|| a.doc.cmp(&b.doc)));
        ranked.truncate(fancy_size);
        let complete = ranked.len() == postings.len();
        let min_ts = ranked.iter().map(|p| p.tscore).min().unwrap_or(0);
        ranked.sort_by_key(|p| p.doc);
        fancy.put_id_list(term, &ranked)?;
        meta.insert(term, (min_ts, complete));
    }
    Ok((new_map, meta))
}
