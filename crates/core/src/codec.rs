//! Block-structured posting-list codecs — the on-disk storage format of
//! long inverted lists.
//!
//! # Storage format
//!
//! A long list is stored in one of two families of layouts, selected
//! per-index by [`CodecKind`] (`IndexConfig::codec`, SQL
//! `OPTIONS (codec = ...)`):
//!
//! * **`Legacy`** — the flat formats of [`svr_text::postings`], byte for
//!   byte: one undelimited run of postings with no framing. This is the
//!   format every index built before the block codecs existed uses, and it
//!   remains the default; stores are *never* silently re-encoded (offline
//!   merges rewrite lists with the index's own codec, so a legacy index
//!   stays legacy until it is dropped and rebuilt).
//!
//! * **Block codecs** (`Uncompressed`, `Varint`, `Bitpacked`) — postings
//!   grouped into fixed-size blocks ([`BLOCK_POSTINGS`] per block), each
//!   block prefixed with skip metadata. The encoded list is:
//!
//!   ```text
//!   list header:  [magic 0xB7] [codec tag] [flags] [varint total postings]
//!   block*:       [varint count] [varint payload len]
//!                 [varint max doc] [varint max tscore]
//!                 [f64 max score]            (Score-format lists only)
//!                 payload (count postings, codec- and format-specific)
//!   ```
//!
//!   `flags` carries the list format (bits 1–2: 0 = Id, 1 = Chunked,
//!   2 = Score) and whether postings carry term scores (bit 0), so a
//!   decoder can verify the store configuration against what is actually
//!   on disk. An **empty list encodes to zero bytes** in every codec.
//!
//!   Each block is self-contained: delta coding restarts at every block
//!   boundary and chunked lists re-emit a `[cid][count]` group header for
//!   a chunk group that continues across a block boundary. A reader can
//!   therefore (a) decode any block knowing only the list header, which is
//!   what makes suspended cursors cheap to resume mid-list, and (b) *skip*
//!   a whole block — `payload len` bytes — without decoding it when the
//!   block's `max doc` / `max tscore` / `max score` metadata proves it
//!   cannot contain a qualifying posting. The per-block maxima are exactly
//!   the block-max bounds WAND-style multi-term pruning needs (see
//!   ROADMAP, "Multi-term query engine with seek-based skipping").
//!
//! ## Block payloads
//!
//! | format  | `Uncompressed`            | `Varint`                         | `Bitpacked`                            |
//! |---------|---------------------------|----------------------------------|----------------------------------------|
//! | Id      | `u32 doc` (+`u16 ts`)     | varint Δdoc (+`u16 ts`)          | first doc + FOR-packed Δdocs (+packed ts) |
//! | Chunked | `[u32 cid][u32 n]` groups | `[varint cid][varint n]` groups  | varint group header + packed Δdocs     |
//! | Score   | `f64 + u32` (+`u16 ts`)   | `f64` + varint doc (+varint ts)  | `f64`s, then bit-packed docs (+ts)     |
//!
//! Delta coding matches the legacy convention: the first doc id of a block
//! (or of a chunk group) is stored raw, every later one as
//! `doc - prev - 1`. Frame-of-reference bit packing stores a per-block
//! (per-group for chunked lists) bit width followed by the deltas packed
//! LSB-first; a run of consecutive doc ids packs to **zero** payload bits.
//! Scores (`f64`) are kept bit-exact in every codec — rankings must not
//! change with the codec.
//!
//! ## Codec versioning rules
//!
//! * The codec of a store is fixed at index build time, persisted in the
//!   engine's index catalog record (`INDEX_RECORD_V2` carries the codec
//!   tag; V1 records decode as `Legacy`), and applies to *every* list in
//!   the store, fancy lists included. There is no per-list sniffing — a
//!   legacy list may legitimately begin with the magic byte.
//! * New codecs get new tags; decoding an unknown tag is a clean
//!   [`CoreError::Storage`] corruption error, never a misread.
//! * Hostile input (truncated blocks, garbage headers, overflowing
//!   varints, absurd counts) must produce clean errors: every decode path
//!   here bounds its allocations and uses checked arithmetic.

use svr_storage::codec::{read_varint, write_varint};
use svr_text::postings::{ChunkGroup, PostingsBuilder, TermScoredPosting};

use crate::error::{CoreError, Result};
use crate::long_list::{ListFormat, LongPosting};
use crate::short_list::PostingPos;
use crate::types::DocId;

/// Posting-list codec of one long-list store (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodecKind {
    /// Flat `svr_text::postings` layout, no blocks (pre-upgrade stores).
    Legacy,
    /// Block-structured, fixed-width postings — the baseline the
    /// compressed codecs are measured against.
    Uncompressed,
    /// Block-structured, delta + varint doc ids.
    Varint,
    /// Block-structured, frame-of-reference bit-packed deltas.
    Bitpacked,
}

impl CodecKind {
    /// Stable on-disk / catalog tag.
    pub fn tag(self) -> u8 {
        match self {
            CodecKind::Legacy => 0,
            CodecKind::Uncompressed => 1,
            CodecKind::Varint => 2,
            CodecKind::Bitpacked => 3,
        }
    }

    /// Inverse of [`CodecKind::tag`].
    pub fn from_tag(tag: u8) -> Option<CodecKind> {
        Some(match tag {
            0 => CodecKind::Legacy,
            1 => CodecKind::Uncompressed,
            2 => CodecKind::Varint,
            3 => CodecKind::Bitpacked,
            _ => return None,
        })
    }

    /// Lowercase name (SQL `OPTIONS (codec = ...)`, EXPLAIN).
    pub fn name(self) -> &'static str {
        match self {
            CodecKind::Legacy => "legacy",
            CodecKind::Uncompressed => "uncompressed",
            CodecKind::Varint => "varint",
            CodecKind::Bitpacked => "bitpacked",
        }
    }

    /// Inverse of [`CodecKind::name`] (case-insensitive).
    pub fn from_name(name: &str) -> Option<CodecKind> {
        Some(match name.to_ascii_lowercase().as_str() {
            "legacy" => CodecKind::Legacy,
            "uncompressed" => CodecKind::Uncompressed,
            "varint" => CodecKind::Varint,
            "bitpacked" => CodecKind::Bitpacked,
            _ => return None,
        })
    }

    /// The block codecs (everything but the flat legacy layout).
    pub const BLOCK_CODECS: [CodecKind; 3] = [
        CodecKind::Uncompressed,
        CodecKind::Varint,
        CodecKind::Bitpacked,
    ];

    /// Every codec.
    pub const ALL: [CodecKind; 4] = [
        CodecKind::Legacy,
        CodecKind::Uncompressed,
        CodecKind::Varint,
        CodecKind::Bitpacked,
    ];
}

/// Postings per block. Small enough that a suspended cursor re-decodes at
/// most this many postings on resume, large enough that the per-block
/// header (~6–10 bytes) is noise.
pub const BLOCK_POSTINGS: usize = 128;

/// Magic first byte of a block-structured list.
pub const LIST_MAGIC: u8 = 0xB7;

/// Decode-side sanity bounds: a corrupt header must not drive a huge
/// allocation before the payload read fails.
const MAX_BLOCK_COUNT: u64 = 1 << 20;
const MAX_BLOCK_PAYLOAD: u64 = 1 << 26;

fn corrupt(msg: &'static str) -> CoreError {
    CoreError::Storage(svr_storage::StorageError::Corrupt(msg))
}

fn format_tag(format: ListFormat) -> u8 {
    match format {
        ListFormat::Id { .. } => 0,
        ListFormat::Chunked { .. } => 1,
        ListFormat::Score { .. } => 2,
    }
}

fn format_with_scores(format: ListFormat) -> bool {
    match format {
        ListFormat::Id { with_scores }
        | ListFormat::Chunked { with_scores }
        | ListFormat::Score { with_scores } => with_scores,
    }
}

/// Flags byte of the list header.
fn flags_for(format: ListFormat) -> u8 {
    (format_with_scores(format) as u8) | (format_tag(format) << 1)
}

/// Fixed-width bytes per posting of a format — the baseline the
/// compression-ratio diagnostics compare physical bytes against.
pub fn fixed_posting_width(format: ListFormat) -> u64 {
    let ts = if format_with_scores(format) { 2 } else { 0 };
    match format {
        ListFormat::Id { .. } | ListFormat::Chunked { .. } => 4 + ts,
        ListFormat::Score { .. } => 12 + ts,
    }
}

/// Parsed list header of a block-structured list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ListHeader {
    pub codec: CodecKind,
    pub total_postings: u64,
}

/// Skip metadata of one block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockMeta {
    /// Postings in the block.
    pub count: u64,
    /// Encoded payload bytes following the header.
    pub payload_len: u64,
    /// Largest doc id in the block.
    pub max_doc: u32,
    /// Largest quantized term score in the block (0 without term scores).
    pub max_tscore: u16,
    /// Largest SVR score in the block (Score-format lists; 0.0 otherwise).
    pub max_score: f64,
}

/// Validate a parsed list header against the store's configuration.
pub(crate) fn check_header(
    codec: CodecKind,
    format: ListFormat,
    magic: u8,
    tag: u8,
    flags: u8,
) -> Result<()> {
    if magic != LIST_MAGIC {
        return Err(corrupt("bad long-list magic"));
    }
    if tag != codec.tag() {
        return Err(corrupt("long-list codec does not match store codec"));
    }
    if flags != flags_for(format) {
        return Err(corrupt("long-list flags do not match store format"));
    }
    Ok(())
}

pub(crate) fn check_block_meta(meta: &BlockMeta) -> Result<()> {
    if meta.count == 0 || meta.count > MAX_BLOCK_COUNT {
        return Err(corrupt("implausible block posting count"));
    }
    if meta.payload_len > MAX_BLOCK_PAYLOAD {
        return Err(corrupt("implausible block payload length"));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Bit packing (frame of reference)
// ---------------------------------------------------------------------------

fn bits_needed(v: u32) -> u8 {
    (32 - v.leading_zeros()) as u8
}

/// Pack `values` LSB-first at `bits` bits each. `bits == 0` packs nothing
/// (all values are zero).
fn pack_bits(values: &[u32], bits: u8, out: &mut Vec<u8>) {
    if bits == 0 {
        return;
    }
    debug_assert!(bits <= 32);
    let mut acc: u64 = 0;
    let mut nbits: u32 = 0;
    for &v in values {
        acc |= u64::from(v) << nbits;
        nbits += u32::from(bits);
        while nbits >= 8 {
            out.push(acc as u8);
            acc >>= 8;
            nbits -= 8;
        }
    }
    if nbits > 0 {
        out.push(acc as u8);
    }
}

/// Unpack `count` values of `bits` bits each from `buf` at `*pos`.
fn unpack_bits(
    buf: &[u8],
    pos: &mut usize,
    bits: u8,
    count: usize,
    out: &mut Vec<u32>,
) -> Result<()> {
    if bits > 32 {
        return Err(corrupt("bit width exceeds 32"));
    }
    if bits == 0 {
        out.extend(std::iter::repeat_n(0, count));
        return Ok(());
    }
    let mask = if bits == 32 {
        u32::MAX
    } else {
        (1u32 << bits) - 1
    };
    let mut acc: u64 = 0;
    let mut nbits: u32 = 0;
    for _ in 0..count {
        while nbits < u32::from(bits) {
            let byte = *buf
                .get(*pos)
                .ok_or_else(|| corrupt("truncated bit-packed frame"))?;
            *pos += 1;
            acc |= u64::from(byte) << nbits;
            nbits += 8;
        }
        out.push((acc as u32) & mask);
        acc >>= bits;
        nbits -= u32::from(bits);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn write_list_header(codec: CodecKind, format: ListFormat, total: u64, out: &mut Vec<u8>) {
    out.push(LIST_MAGIC);
    out.push(codec.tag());
    out.push(flags_for(format));
    write_varint(out, total);
}

/// One (cid, posting) pair flattened out of a chunked list; `cid` is 0 for
/// Id and Score formats.
#[derive(Clone, Copy)]
struct Wire {
    cid: u32,
    doc: DocId,
    tscore: u16,
    score: f64,
}

fn write_block(codec: CodecKind, format: ListFormat, block: &[Wire], out: &mut Vec<u8>) {
    let with_scores = format_with_scores(format);
    let mut payload = Vec::with_capacity(block.len() * 4);
    match format {
        ListFormat::Id { .. } => encode_id_payload(codec, block, with_scores, &mut payload),
        ListFormat::Chunked { .. } => {
            encode_chunked_payload(codec, block, with_scores, &mut payload)
        }
        ListFormat::Score { .. } => encode_score_payload(codec, block, with_scores, &mut payload),
    }
    let max_doc = block.iter().map(|w| w.doc.0).max().unwrap_or(0);
    let max_tscore = block.iter().map(|w| w.tscore).max().unwrap_or(0);
    write_varint(out, block.len() as u64);
    write_varint(out, payload.len() as u64);
    write_varint(out, u64::from(max_doc));
    write_varint(out, u64::from(max_tscore));
    if matches!(format, ListFormat::Score { .. }) {
        let max_score = block
            .iter()
            .map(|w| w.score)
            .fold(f64::NEG_INFINITY, f64::max);
        out.extend_from_slice(&max_score.to_le_bytes());
    }
    out.extend_from_slice(&payload);
}

fn encode_blocks(codec: CodecKind, format: ListFormat, wires: &[Wire], out: &mut Vec<u8>) {
    if wires.is_empty() {
        return;
    }
    write_list_header(codec, format, wires.len() as u64, out);
    for block in wires.chunks(BLOCK_POSTINGS) {
        write_block(codec, format, block, out);
    }
}

fn encode_id_payload(codec: CodecKind, block: &[Wire], with_scores: bool, out: &mut Vec<u8>) {
    match codec {
        CodecKind::Uncompressed => {
            for w in block {
                out.extend_from_slice(&w.doc.0.to_le_bytes());
                if with_scores {
                    out.extend_from_slice(&w.tscore.to_le_bytes());
                }
            }
        }
        CodecKind::Varint => {
            let mut prev: Option<u32> = None;
            for w in block {
                let delta = match prev {
                    None => w.doc.0,
                    Some(p) => w.doc.0 - p - 1,
                };
                write_varint(out, u64::from(delta));
                if with_scores {
                    // Fixed u16: quantized term scores use the full 16-bit
                    // range, so a varint would usually cost 3 bytes.
                    out.extend_from_slice(&w.tscore.to_le_bytes());
                }
                prev = Some(w.doc.0);
            }
        }
        CodecKind::Bitpacked => {
            let deltas: Vec<u32> = block
                .windows(2)
                .map(|w| w[1].doc.0 - w[0].doc.0 - 1)
                .collect();
            let bits = deltas.iter().copied().map(bits_needed).max().unwrap_or(0);
            write_varint(out, u64::from(block[0].doc.0));
            out.push(bits);
            pack_bits(&deltas, bits, out);
            if with_scores {
                let ts: Vec<u32> = block.iter().map(|w| u32::from(w.tscore)).collect();
                let tbits = ts.iter().map(|&v| bits_needed(v)).max().unwrap_or(0);
                out.push(tbits);
                pack_bits(&ts, tbits, out);
            }
        }
        CodecKind::Legacy => unreachable!("legacy lists are not block-encoded"),
    }
}

fn encode_chunked_payload(codec: CodecKind, block: &[Wire], with_scores: bool, out: &mut Vec<u8>) {
    // Split the block into runs of equal cid; every run re-emits a group
    // header, so groups continuing from the previous block decode cleanly.
    let mut start = 0;
    while start < block.len() {
        let cid = block[start].cid;
        let mut end = start + 1;
        while end < block.len() && block[end].cid == cid {
            end += 1;
        }
        let group = &block[start..end];
        match codec {
            CodecKind::Uncompressed => {
                out.extend_from_slice(&cid.to_le_bytes());
                out.extend_from_slice(&(group.len() as u32).to_le_bytes());
                for w in group {
                    out.extend_from_slice(&w.doc.0.to_le_bytes());
                    if with_scores {
                        out.extend_from_slice(&w.tscore.to_le_bytes());
                    }
                }
            }
            CodecKind::Varint => {
                write_varint(out, u64::from(cid));
                write_varint(out, group.len() as u64);
                let mut prev: Option<u32> = None;
                for w in group {
                    let delta = match prev {
                        None => w.doc.0,
                        Some(p) => w.doc.0 - p - 1,
                    };
                    write_varint(out, u64::from(delta));
                    if with_scores {
                        out.extend_from_slice(&w.tscore.to_le_bytes());
                    }
                    prev = Some(w.doc.0);
                }
            }
            CodecKind::Bitpacked => {
                write_varint(out, u64::from(cid));
                write_varint(out, group.len() as u64);
                let deltas: Vec<u32> = group
                    .windows(2)
                    .map(|w| w[1].doc.0 - w[0].doc.0 - 1)
                    .collect();
                let bits = deltas.iter().copied().map(bits_needed).max().unwrap_or(0);
                write_varint(out, u64::from(group[0].doc.0));
                out.push(bits);
                pack_bits(&deltas, bits, out);
                if with_scores {
                    let ts: Vec<u32> = group.iter().map(|w| u32::from(w.tscore)).collect();
                    let tbits = ts.iter().map(|&v| bits_needed(v)).max().unwrap_or(0);
                    out.push(tbits);
                    pack_bits(&ts, tbits, out);
                }
            }
            CodecKind::Legacy => unreachable!("legacy lists are not block-encoded"),
        }
        start = end;
    }
}

fn encode_score_payload(codec: CodecKind, block: &[Wire], with_scores: bool, out: &mut Vec<u8>) {
    match codec {
        CodecKind::Uncompressed => {
            for w in block {
                out.extend_from_slice(&w.score.to_le_bytes());
                out.extend_from_slice(&w.doc.0.to_le_bytes());
                if with_scores {
                    out.extend_from_slice(&w.tscore.to_le_bytes());
                }
            }
        }
        CodecKind::Varint => {
            for w in block {
                out.extend_from_slice(&w.score.to_le_bytes());
                write_varint(out, u64::from(w.doc.0));
                if with_scores {
                    write_varint(out, u64::from(w.tscore));
                }
            }
        }
        CodecKind::Bitpacked => {
            for w in block {
                out.extend_from_slice(&w.score.to_le_bytes());
            }
            let docs: Vec<u32> = block.iter().map(|w| w.doc.0).collect();
            let dbits = docs.iter().copied().map(bits_needed).max().unwrap_or(0);
            out.push(dbits);
            pack_bits(&docs, dbits, out);
            if with_scores {
                let ts: Vec<u32> = block.iter().map(|w| u32::from(w.tscore)).collect();
                let tbits = ts.iter().map(|&v| bits_needed(v)).max().unwrap_or(0);
                out.push(tbits);
                pack_bits(&ts, tbits, out);
            }
        }
        CodecKind::Legacy => unreachable!("legacy lists are not block-encoded"),
    }
}

/// Encode an Id-format list (ascending by doc). With `CodecKind::Legacy`
/// this produces exactly the bytes of
/// [`PostingsBuilder::encode_id_list`] / `encode_id_term_list`.
pub fn encode_id_list(
    codec: CodecKind,
    postings: &[TermScoredPosting],
    with_scores: bool,
    out: &mut Vec<u8>,
) {
    if codec == CodecKind::Legacy {
        if with_scores {
            PostingsBuilder::encode_id_term_list(postings, out);
        } else {
            let ids: Vec<DocId> = postings.iter().map(|p| p.doc).collect();
            PostingsBuilder::encode_id_list(&ids, out);
        }
        return;
    }
    let wires: Vec<Wire> = postings
        .iter()
        .map(|p| Wire {
            cid: 0,
            doc: p.doc,
            tscore: if with_scores { p.tscore } else { 0 },
            score: 0.0,
        })
        .collect();
    encode_blocks(codec, ListFormat::Id { with_scores }, &wires, out);
}

/// Encode a chunked list (groups descending by cid, docs ascending within).
pub fn encode_chunked_list(
    codec: CodecKind,
    groups: &[ChunkGroup],
    with_scores: bool,
    out: &mut Vec<u8>,
) {
    if codec == CodecKind::Legacy {
        PostingsBuilder::encode_chunked_list(groups, with_scores, out);
        return;
    }
    let wires: Vec<Wire> = groups
        .iter()
        .flat_map(|g| {
            g.postings.iter().map(move |p| Wire {
                cid: g.cid,
                doc: p.doc,
                tscore: if with_scores { p.tscore } else { 0 },
                score: 0.0,
            })
        })
        .collect();
    encode_blocks(codec, ListFormat::Chunked { with_scores }, &wires, out);
}

/// Encode a score-ordered list (score descending, doc ascending on ties).
pub fn encode_score_list(
    codec: CodecKind,
    rows: &[(f64, DocId, u16)],
    with_scores: bool,
    out: &mut Vec<u8>,
) {
    if codec == CodecKind::Legacy {
        PostingsBuilder::encode_score_list(rows, with_scores, out);
        return;
    }
    let wires: Vec<Wire> = rows
        .iter()
        .map(|&(score, doc, tscore)| Wire {
            cid: 0,
            doc,
            tscore: if with_scores { tscore } else { 0 },
            score,
        })
        .collect();
    encode_blocks(codec, ListFormat::Score { with_scores }, &wires, out);
}

// ---------------------------------------------------------------------------
// Decoding (slice level; the streaming cursor reuses decode_block)
// ---------------------------------------------------------------------------

fn read_varint_or(buf: &[u8], pos: &mut usize, msg: &'static str) -> Result<u64> {
    read_varint(buf, pos).ok_or_else(|| corrupt(msg))
}

/// Parse a list header from a slice.
pub(crate) fn read_list_header_slice(
    codec: CodecKind,
    format: ListFormat,
    buf: &[u8],
    pos: &mut usize,
) -> Result<ListHeader> {
    let need = |b: &[u8], p: &mut usize| -> Result<u8> {
        let v = *b.get(*p).ok_or_else(|| corrupt("truncated list header"))?;
        *p += 1;
        Ok(v)
    };
    let magic = need(buf, pos)?;
    let tag = need(buf, pos)?;
    let flags = need(buf, pos)?;
    check_header(codec, format, magic, tag, flags)?;
    let total_postings = read_varint_or(buf, pos, "truncated list header")?;
    Ok(ListHeader {
        codec,
        total_postings,
    })
}

/// Parse one block's skip metadata from a slice.
pub(crate) fn read_block_meta_slice(
    format: ListFormat,
    buf: &[u8],
    pos: &mut usize,
) -> Result<BlockMeta> {
    let count = read_varint_or(buf, pos, "truncated block header")?;
    let payload_len = read_varint_or(buf, pos, "truncated block header")?;
    let max_doc = read_varint_or(buf, pos, "truncated block header")?;
    let max_tscore = read_varint_or(buf, pos, "truncated block header")?;
    let max_score = if matches!(format, ListFormat::Score { .. }) {
        let end = pos
            .checked_add(8)
            .ok_or_else(|| corrupt("truncated block header"))?;
        let bytes = buf
            .get(*pos..end)
            .ok_or_else(|| corrupt("truncated block header"))?;
        *pos = end;
        f64::from_le_bytes(bytes.try_into().expect("8 bytes"))
    } else {
        0.0
    };
    let meta = BlockMeta {
        count,
        payload_len,
        max_doc: u32::try_from(max_doc).map_err(|_| corrupt("block max doc out of range"))?,
        max_tscore: u16::try_from(max_tscore)
            .map_err(|_| corrupt("block max term score out of range"))?,
        max_score,
    };
    check_block_meta(&meta)?;
    Ok(meta)
}

/// Decode one block payload into postings. `payload` must be exactly
/// `meta.payload_len` bytes; `meta.count` postings are produced or an error
/// is returned — never a panic, whatever the bytes.
pub fn decode_block(
    codec: CodecKind,
    format: ListFormat,
    meta: &BlockMeta,
    payload: &[u8],
    out: &mut Vec<LongPosting>,
) -> Result<()> {
    let with_scores = format_with_scores(format);
    let count = usize::try_from(meta.count).map_err(|_| corrupt("block count out of range"))?;
    let mut pos = 0usize;
    match format {
        ListFormat::Id { .. } => {
            decode_id_payload(codec, payload, &mut pos, count, with_scores, out)?
        }
        ListFormat::Chunked { .. } => {
            decode_chunked_payload(codec, payload, &mut pos, count, with_scores, out)?
        }
        ListFormat::Score { .. } => {
            decode_score_payload(codec, payload, &mut pos, count, with_scores, out)?
        }
    }
    if pos != payload.len() {
        return Err(corrupt("trailing bytes in block payload"));
    }
    Ok(())
}

fn read_u16_at(buf: &[u8], pos: &mut usize) -> Result<u16> {
    let end = pos
        .checked_add(2)
        .ok_or_else(|| corrupt("truncated posting"))?;
    let b = buf
        .get(*pos..end)
        .ok_or_else(|| corrupt("truncated posting"))?;
    *pos = end;
    Ok(u16::from_le_bytes(b.try_into().expect("2 bytes")))
}

fn read_u32_at(buf: &[u8], pos: &mut usize) -> Result<u32> {
    let end = pos
        .checked_add(4)
        .ok_or_else(|| corrupt("truncated posting"))?;
    let b = buf
        .get(*pos..end)
        .ok_or_else(|| corrupt("truncated posting"))?;
    *pos = end;
    Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
}

fn read_f64_at(buf: &[u8], pos: &mut usize) -> Result<f64> {
    let end = pos
        .checked_add(8)
        .ok_or_else(|| corrupt("truncated posting"))?;
    let b = buf
        .get(*pos..end)
        .ok_or_else(|| corrupt("truncated posting"))?;
    *pos = end;
    Ok(f64::from_le_bytes(b.try_into().expect("8 bytes")))
}

fn undelta(prev: Option<u32>, delta: u64) -> Result<u32> {
    let delta = u32::try_from(delta).map_err(|_| corrupt("doc delta out of range"))?;
    match prev {
        None => Ok(delta),
        Some(p) => p
            .checked_add(delta)
            .and_then(|v| v.checked_add(1))
            .ok_or_else(|| corrupt("doc id overflow")),
    }
}

fn decode_id_payload(
    codec: CodecKind,
    buf: &[u8],
    pos: &mut usize,
    count: usize,
    with_scores: bool,
    out: &mut Vec<LongPosting>,
) -> Result<()> {
    match codec {
        CodecKind::Uncompressed => {
            for _ in 0..count {
                let doc = read_u32_at(buf, pos)?;
                let tscore = if with_scores {
                    read_u16_at(buf, pos)?
                } else {
                    0
                };
                out.push(LongPosting {
                    pos: PostingPos::Id,
                    doc: DocId(doc),
                    tscore,
                });
            }
        }
        CodecKind::Varint => {
            let mut prev: Option<u32> = None;
            for _ in 0..count {
                let delta = read_varint_or(buf, pos, "truncated posting")?;
                let doc = undelta(prev, delta)?;
                prev = Some(doc);
                let tscore = if with_scores {
                    read_u16_at(buf, pos)?
                } else {
                    0
                };
                out.push(LongPosting {
                    pos: PostingPos::Id,
                    doc: DocId(doc),
                    tscore,
                });
            }
        }
        CodecKind::Bitpacked => {
            let first = read_varint_or(buf, pos, "truncated posting")?;
            let first = u32::try_from(first).map_err(|_| corrupt("doc id out of range"))?;
            let bits = *buf.get(*pos).ok_or_else(|| corrupt("truncated posting"))?;
            *pos += 1;
            let mut deltas = Vec::with_capacity(count.saturating_sub(1));
            unpack_bits(buf, pos, bits, count - 1, &mut deltas)?;
            let mut docs = Vec::with_capacity(count);
            docs.push(first);
            let mut prev = first;
            for d in deltas {
                prev = undelta(Some(prev), u64::from(d))?;
                docs.push(prev);
            }
            let tscores = if with_scores {
                let tbits = *buf.get(*pos).ok_or_else(|| corrupt("truncated posting"))?;
                *pos += 1;
                let mut ts = Vec::with_capacity(count);
                unpack_bits(buf, pos, tbits, count, &mut ts)?;
                ts
            } else {
                vec![0; count]
            };
            for (doc, ts) in docs.into_iter().zip(tscores) {
                out.push(LongPosting {
                    pos: PostingPos::Id,
                    doc: DocId(doc),
                    tscore: u16::try_from(ts).map_err(|_| corrupt("term score out of range"))?,
                });
            }
        }
        CodecKind::Legacy => return Err(corrupt("legacy lists have no blocks")),
    }
    Ok(())
}

fn decode_chunked_payload(
    codec: CodecKind,
    buf: &[u8],
    pos: &mut usize,
    count: usize,
    with_scores: bool,
    out: &mut Vec<LongPosting>,
) -> Result<()> {
    let mut decoded = 0usize;
    while decoded < count {
        let (cid, n) = match codec {
            CodecKind::Uncompressed => {
                let cid = read_u32_at(buf, pos)?;
                let n = read_u32_at(buf, pos)? as u64;
                (cid, n)
            }
            _ => {
                let cid = read_varint_or(buf, pos, "truncated group header")?;
                let cid = u32::try_from(cid).map_err(|_| corrupt("chunk id out of range"))?;
                let n = read_varint_or(buf, pos, "truncated group header")?;
                (cid, n)
            }
        };
        let n = usize::try_from(n).map_err(|_| corrupt("group count out of range"))?;
        if n == 0 || n > count - decoded {
            return Err(corrupt("group count exceeds block count"));
        }
        match codec {
            CodecKind::Uncompressed => {
                for _ in 0..n {
                    let doc = read_u32_at(buf, pos)?;
                    let tscore = if with_scores {
                        read_u16_at(buf, pos)?
                    } else {
                        0
                    };
                    out.push(LongPosting {
                        pos: PostingPos::ByChunk(cid),
                        doc: DocId(doc),
                        tscore,
                    });
                }
            }
            CodecKind::Varint => {
                let mut prev: Option<u32> = None;
                for _ in 0..n {
                    let delta = read_varint_or(buf, pos, "truncated posting")?;
                    let doc = undelta(prev, delta)?;
                    prev = Some(doc);
                    let tscore = if with_scores {
                        read_u16_at(buf, pos)?
                    } else {
                        0
                    };
                    out.push(LongPosting {
                        pos: PostingPos::ByChunk(cid),
                        doc: DocId(doc),
                        tscore,
                    });
                }
            }
            CodecKind::Bitpacked => {
                let first = read_varint_or(buf, pos, "truncated posting")?;
                let first = u32::try_from(first).map_err(|_| corrupt("doc id out of range"))?;
                let bits = *buf.get(*pos).ok_or_else(|| corrupt("truncated posting"))?;
                *pos += 1;
                let mut deltas = Vec::with_capacity(n.saturating_sub(1));
                unpack_bits(buf, pos, bits, n - 1, &mut deltas)?;
                let mut docs = Vec::with_capacity(n);
                docs.push(first);
                let mut prev = first;
                for d in deltas {
                    prev = undelta(Some(prev), u64::from(d))?;
                    docs.push(prev);
                }
                let tscores = if with_scores {
                    let tbits = *buf.get(*pos).ok_or_else(|| corrupt("truncated posting"))?;
                    *pos += 1;
                    let mut ts = Vec::with_capacity(n);
                    unpack_bits(buf, pos, tbits, n, &mut ts)?;
                    ts
                } else {
                    vec![0; n]
                };
                for (doc, ts) in docs.into_iter().zip(tscores) {
                    out.push(LongPosting {
                        pos: PostingPos::ByChunk(cid),
                        doc: DocId(doc),
                        tscore: u16::try_from(ts)
                            .map_err(|_| corrupt("term score out of range"))?,
                    });
                }
            }
            CodecKind::Legacy => return Err(corrupt("legacy lists have no blocks")),
        }
        decoded += n;
    }
    Ok(())
}

fn decode_score_payload(
    codec: CodecKind,
    buf: &[u8],
    pos: &mut usize,
    count: usize,
    with_scores: bool,
    out: &mut Vec<LongPosting>,
) -> Result<()> {
    match codec {
        CodecKind::Uncompressed => {
            for _ in 0..count {
                let score = read_f64_at(buf, pos)?;
                let doc = read_u32_at(buf, pos)?;
                let tscore = if with_scores {
                    read_u16_at(buf, pos)?
                } else {
                    0
                };
                out.push(LongPosting {
                    pos: PostingPos::ByScore(score),
                    doc: DocId(doc),
                    tscore,
                });
            }
        }
        CodecKind::Varint => {
            for _ in 0..count {
                let score = read_f64_at(buf, pos)?;
                let doc = read_varint_or(buf, pos, "truncated posting")?;
                let doc = u32::try_from(doc).map_err(|_| corrupt("doc id out of range"))?;
                let tscore = if with_scores {
                    let ts = read_varint_or(buf, pos, "truncated posting")?;
                    u16::try_from(ts).map_err(|_| corrupt("term score out of range"))?
                } else {
                    0
                };
                out.push(LongPosting {
                    pos: PostingPos::ByScore(score),
                    doc: DocId(doc),
                    tscore,
                });
            }
        }
        CodecKind::Bitpacked => {
            let mut scores = Vec::with_capacity(count);
            for _ in 0..count {
                scores.push(read_f64_at(buf, pos)?);
            }
            let dbits = *buf.get(*pos).ok_or_else(|| corrupt("truncated posting"))?;
            *pos += 1;
            let mut docs = Vec::with_capacity(count);
            unpack_bits(buf, pos, dbits, count, &mut docs)?;
            let tscores = if with_scores {
                let tbits = *buf.get(*pos).ok_or_else(|| corrupt("truncated posting"))?;
                *pos += 1;
                let mut ts = Vec::with_capacity(count);
                unpack_bits(buf, pos, tbits, count, &mut ts)?;
                ts
            } else {
                vec![0; count]
            };
            for ((score, doc), ts) in scores.into_iter().zip(docs).zip(tscores) {
                out.push(LongPosting {
                    pos: PostingPos::ByScore(score),
                    doc: DocId(doc),
                    tscore: u16::try_from(ts).map_err(|_| corrupt("term score out of range"))?,
                });
            }
        }
        CodecKind::Legacy => return Err(corrupt("legacy lists have no blocks")),
    }
    Ok(())
}

/// Decode a whole encoded list from a slice (tests, diagnostics, hostile
/// input validation). For `Legacy` this runs the flat `svr_text` decoders;
/// for block codecs it validates the list header, every block header, every
/// payload, and that the posting count matches the header total.
pub fn decode_list(codec: CodecKind, format: ListFormat, buf: &[u8]) -> Result<Vec<LongPosting>> {
    let with_scores = format_with_scores(format);
    if codec == CodecKind::Legacy {
        return Ok(match format {
            ListFormat::Id { .. } => svr_text::postings::IdPostingsIter::new(buf, with_scores)
                .map(|p| LongPosting {
                    pos: PostingPos::Id,
                    doc: p.doc,
                    tscore: p.tscore,
                })
                .collect(),
            ListFormat::Chunked { .. } => {
                svr_text::postings::ChunkedPostingsIter::new(buf, with_scores)
                    .map(|(cid, p)| LongPosting {
                        pos: PostingPos::ByChunk(cid),
                        doc: p.doc,
                        tscore: p.tscore,
                    })
                    .collect()
            }
            ListFormat::Score { .. } => {
                svr_text::postings::ScorePostingsIter::new(buf, with_scores)
                    .map(|(score, doc, tscore)| LongPosting {
                        pos: PostingPos::ByScore(score),
                        doc,
                        tscore,
                    })
                    .collect()
            }
        });
    }
    if buf.is_empty() {
        return Ok(Vec::new());
    }
    let mut pos = 0usize;
    let header = read_list_header_slice(codec, format, buf, &mut pos)?;
    let mut out = Vec::new();
    while pos < buf.len() {
        let meta = read_block_meta_slice(format, buf, &mut pos)?;
        let payload_len =
            usize::try_from(meta.payload_len).map_err(|_| corrupt("payload length"))?;
        let end = pos
            .checked_add(payload_len)
            .ok_or_else(|| corrupt("truncated block"))?;
        let payload = buf
            .get(pos..end)
            .ok_or_else(|| corrupt("truncated block"))?;
        pos = end;
        decode_block(codec, format, &meta, payload, &mut out)?;
    }
    if out.len() as u64 != header.total_postings {
        return Err(corrupt("list posting count does not match header"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tsp(doc: u32, tscore: u16) -> TermScoredPosting {
        TermScoredPosting {
            doc: DocId(doc),
            tscore,
        }
    }

    #[test]
    fn bit_packing_roundtrip() {
        for bits in [0u8, 1, 3, 8, 13, 17, 32] {
            let mask = if bits == 0 {
                0
            } else if bits == 32 {
                u32::MAX
            } else {
                (1u32 << bits) - 1
            };
            let values: Vec<u32> = (0..77u32)
                .map(|i| (i.wrapping_mul(0x9E37_79B9)) & mask)
                .collect();
            let mut buf = Vec::new();
            pack_bits(&values, bits, &mut buf);
            let mut pos = 0;
            let mut out = Vec::new();
            unpack_bits(&buf, &mut pos, bits, values.len(), &mut out).unwrap();
            assert_eq!(out, values, "bits={bits}");
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn id_list_roundtrips_every_codec() {
        let postings: Vec<TermScoredPosting> = (0..1000u32)
            .map(|i| tsp(i * 3 + (i % 7), (i % 300) as u16))
            .collect();
        let mut postings = postings;
        postings.sort_by_key(|p| p.doc);
        postings.dedup_by_key(|p| p.doc);
        for codec in CodecKind::ALL {
            for with_scores in [false, true] {
                let mut buf = Vec::new();
                encode_id_list(codec, &postings, with_scores, &mut buf);
                let decoded = decode_list(codec, ListFormat::Id { with_scores }, &buf).unwrap();
                assert_eq!(decoded.len(), postings.len(), "{codec:?}");
                for (d, p) in decoded.iter().zip(&postings) {
                    assert_eq!(d.doc, p.doc, "{codec:?}");
                    assert_eq!(d.tscore, if with_scores { p.tscore } else { 0 });
                }
            }
        }
    }

    #[test]
    fn chunked_list_roundtrips_every_codec() {
        // A group large enough to straddle several blocks plus tiny ones.
        let groups = vec![
            ChunkGroup {
                cid: 9,
                postings: (0..400u32).map(|i| tsp(i * 2, i as u16)).collect(),
            },
            ChunkGroup {
                cid: 4,
                postings: vec![tsp(7, 65535)],
            },
            ChunkGroup {
                cid: 1,
                postings: (0..130u32).map(|i| tsp(i + 3, 9)).collect(),
            },
        ];
        let want: Vec<(u32, u32)> = groups
            .iter()
            .flat_map(|g| g.postings.iter().map(move |p| (g.cid, p.doc.0)))
            .collect();
        for codec in CodecKind::ALL {
            for with_scores in [false, true] {
                let mut buf = Vec::new();
                encode_chunked_list(codec, &groups, with_scores, &mut buf);
                let decoded =
                    decode_list(codec, ListFormat::Chunked { with_scores }, &buf).unwrap();
                let got: Vec<(u32, u32)> = decoded
                    .iter()
                    .map(|p| match p.pos {
                        PostingPos::ByChunk(cid) => (cid, p.doc.0),
                        _ => panic!("wrong pos kind"),
                    })
                    .collect();
                assert_eq!(got, want, "{codec:?} with_scores={with_scores}");
            }
        }
    }

    #[test]
    fn score_list_roundtrips_every_codec() {
        let mut rows: Vec<(f64, DocId, u16)> = (0..300u32)
            .map(|i| {
                (
                    1e6 / f64::from(i + 1),
                    DocId(i * 17 % 1000),
                    (i % 70) as u16,
                )
            })
            .collect();
        rows.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        rows.dedup_by_key(|r| (r.0.to_bits(), r.1));
        for codec in CodecKind::ALL {
            for with_scores in [false, true] {
                let mut buf = Vec::new();
                encode_score_list(codec, &rows, with_scores, &mut buf);
                let decoded = decode_list(codec, ListFormat::Score { with_scores }, &buf).unwrap();
                assert_eq!(decoded.len(), rows.len());
                for (d, r) in decoded.iter().zip(&rows) {
                    assert_eq!(d.pos, PostingPos::ByScore(r.0), "{codec:?}");
                    assert_eq!(d.doc, r.1);
                    assert_eq!(d.tscore, if with_scores { r.2 } else { 0 });
                }
            }
        }
    }

    #[test]
    fn varint_blocks_compress_dense_ids_at_least_2x_vs_fixed_width() {
        let postings: Vec<TermScoredPosting> = (0..10_000u32).map(|i| tsp(i, 0)).collect();
        let mut fixed = Vec::new();
        encode_id_list(CodecKind::Uncompressed, &postings, false, &mut fixed);
        let mut varint = Vec::new();
        encode_id_list(CodecKind::Varint, &postings, false, &mut varint);
        let mut packed = Vec::new();
        encode_id_list(CodecKind::Bitpacked, &postings, false, &mut packed);
        assert!(
            fixed.len() >= 2 * varint.len(),
            "varint must halve dense fixed-width lists: {} vs {}",
            fixed.len(),
            varint.len()
        );
        assert!(
            varint.len() > packed.len(),
            "bitpacking must beat varint on consecutive ids: {} vs {}",
            varint.len(),
            packed.len()
        );
    }

    #[test]
    fn empty_lists_encode_to_nothing() {
        for codec in CodecKind::ALL {
            let mut buf = Vec::new();
            encode_id_list(codec, &[], false, &mut buf);
            assert!(buf.is_empty(), "{codec:?}");
            assert!(
                decode_list(codec, ListFormat::Id { with_scores: false }, &buf)
                    .unwrap()
                    .is_empty()
            );
        }
    }

    #[test]
    fn truncations_and_garbage_decode_to_clean_errors() {
        let postings: Vec<TermScoredPosting> = (0..500u32).map(|i| tsp(i * 5, i as u16)).collect();
        for codec in CodecKind::BLOCK_CODECS {
            let mut buf = Vec::new();
            encode_id_list(codec, &postings, true, &mut buf);
            let format = ListFormat::Id { with_scores: true };
            // Every proper prefix must fail cleanly (truncation is either a
            // header/payload error or a count-mismatch error), never panic.
            for cut in 1..buf.len() {
                assert!(
                    decode_list(codec, format, &buf[..cut]).is_err(),
                    "{codec:?} cut={cut}"
                );
            }
            // Flipped header bytes must be rejected.
            let mut bad = buf.clone();
            bad[0] ^= 0xff;
            assert!(decode_list(codec, format, &bad).is_err());
            let mut bad = buf.clone();
            bad[1] ^= 0x01;
            assert!(decode_list(codec, format, &bad).is_err());
            // Pure garbage with a valid-looking header prefix.
            let mut garbage = vec![LIST_MAGIC, codec.tag(), 0b0000_0001];
            garbage.extend_from_slice(&[0xfe; 64]);
            assert!(decode_list(codec, format, &garbage).is_err());
        }
    }

    #[test]
    fn codec_tags_and_names_roundtrip() {
        for codec in CodecKind::ALL {
            assert_eq!(CodecKind::from_tag(codec.tag()), Some(codec));
            assert_eq!(CodecKind::from_name(codec.name()), Some(codec));
        }
        assert_eq!(CodecKind::from_tag(99), None);
        assert_eq!(CodecKind::from_name("zstd"), None);
    }
}
