//! The ID method (§4.2.1): postings in doc-id order, scores in the Score
//! table.
//!
//! Score updates touch only the Score table (the fastest possible update),
//! but every query must scan the *entire* inverted list of each query term
//! and probe the Score table per candidate — "the main disadvantage of this
//! method is that we need to scan all the postings ... even if the user only
//! wants the top-k results".

use std::sync::Arc;

use svr_storage::StorageEnv;

use crate::config::IndexConfig;
use crate::cursor::{merge_next_batch, open_merge, CursorBackend, MethodCursor};
use crate::error::Result;
use crate::long_list::{invert_corpus, ListFormat, LongListStore};
use crate::merge::{Candidate, UnionCursor, UnionResume};
use crate::methods::base::{MethodBase, ShardContext};
use crate::methods::{store_names, MethodKind, ScoreMap, SearchIndex, ShardStats};
use crate::multiterm::{wand_topk, SeekCounters, SeekStats};
use crate::short_list::{Op, PostingPos, ShortLists, ShortOrder};
use crate::types::{DocId, Document, Query, Score, SearchHit, TermId};

/// The ID method.
pub struct IdMethod {
    base: MethodBase,
    long: LongListStore,
    short: ShortLists,
    counters: SeekCounters,
}

impl IdMethod {
    /// Build from a corpus and initial scores.
    pub fn build(docs: &[Document], scores: &ScoreMap, config: &IndexConfig) -> Result<IdMethod> {
        IdMethod::build_in(ShardContext::standalone(config), docs, scores, config)
    }

    /// Build inside an existing shard context (shared environment and
    /// corpus statistics).
    pub(crate) fn build_in(
        ctx: ShardContext,
        docs: &[Document],
        scores: &ScoreMap,
        config: &IndexConfig,
    ) -> Result<IdMethod> {
        let base = MethodBase::with_context(ctx, config)?;
        base.bulk_load(docs, scores)?;
        let long_store = base.create_store(store_names::LONG, config.long_cache_pages);
        let short_store = base.create_store(store_names::SHORT, config.small_cache_pages);
        let long = LongListStore::create_in(
            long_store,
            ListFormat::Id { with_scores: false },
            config.codec,
            base.durable,
        )?;
        let short = ShortLists::create_in(short_store, ShortOrder::ById, base.durable)?;
        for (term, postings) in invert_corpus(docs) {
            long.put_id_list(term, &postings)?;
        }
        Ok(IdMethod {
            base,
            long,
            short,
            counters: SeekCounters::default(),
        })
    }

    /// Reattach a durable shard from its recovered stores (see
    /// [`crate::open_index_at`]).
    pub(crate) fn open_in(ctx: ShardContext, config: &IndexConfig) -> Result<IdMethod> {
        let base = MethodBase::open_with_context(ctx, config)?;
        let long = LongListStore::open(
            base.create_store(store_names::LONG, config.long_cache_pages),
            ListFormat::Id { with_scores: false },
            config.codec,
        )?;
        let short = ShortLists::open(
            base.create_store(store_names::SHORT, config.small_cache_pages),
            ShortOrder::ById,
        )?;
        Ok(IdMethod {
            base,
            long,
            short,
            counters: SeekCounters::default(),
        })
    }
}

impl CursorBackend for IdMethod {
    fn cursor_kind(&self) -> MethodKind {
        MethodKind::Id
    }

    fn pool_cap(&self) -> usize {
        self.base.pool_cap
    }

    fn long_epoch(&self) -> u64 {
        self.long.epoch()
    }

    fn stream(&self, term: TermId, resume: &UnionResume) -> Result<UnionCursor<'_>> {
        Ok(UnionCursor::resume(
            self.long.resume_cursor(term, resume.long_resume())?,
            self.short.cursor_after(term, resume.short_resume_key())?,
            resume,
        ))
    }

    fn is_deleted(&self, doc: DocId) -> bool {
        self.base.is_deleted(doc)
    }

    fn resolve(&self, candidate: &Candidate, _idfs: &[f64]) -> Result<Option<Score>> {
        // Score table probe for every candidate — the ID method's cost.
        let Some(entry) = self.base.score_table.get(candidate.doc)? else {
            return Ok(None);
        };
        if entry.deleted {
            return Ok(None);
        }
        Ok(Some(entry.score))
    }

    fn svr_bound(&self, pos: Option<PostingPos>) -> Score {
        // ID lists are unordered by score: nothing can be emitted until the
        // scan completes ("we need to scan all the postings").
        match pos {
            Some(_) => f64::INFINITY,
            None => f64::NEG_INFINITY,
        }
    }

    fn doc_ordered(&self) -> bool {
        true
    }

    fn record_stats(&self, stats: SeekStats) {
        self.counters.record(stats);
    }
}

impl SearchIndex for IdMethod {
    fn kind(&self) -> MethodKind {
        MethodKind::Id
    }

    fn update_score(&self, doc: DocId, new_score: Score) -> Result<()> {
        // The whole update: one Score-table write.
        self.base.current_score(doc)?;
        self.base.score_table.set(doc, new_score)?;
        Ok(())
    }

    fn open_cursor(&self, query: &Query) -> Result<MethodCursor> {
        Ok(open_merge(MethodKind::Id, query, Vec::new()))
    }

    fn next_batch(&self, cursor: &mut MethodCursor, n: usize) -> Result<Vec<SearchHit>> {
        merge_next_batch(self, cursor, n)
    }

    fn query(&self, query: &Query) -> Result<Vec<SearchHit>> {
        // One-shot queries know `k` up front, so they run the block-max
        // WAND executor instead of a cursor drain. The ID method carries no
        // term scores (IDF weights are zero), so score-based skipping never
        // fires — but conjunctive leapfrogging still skips whole blocks via
        // the max-doc skip metadata.
        if query.terms.is_empty() {
            return Ok(Vec::new());
        }
        let streams = query
            .terms
            .iter()
            .map(|&t| self.stream(t, &UnionResume::fresh()))
            .collect::<Result<Vec<_>>>()?;
        let zeros = vec![0.0; query.terms.len()];
        let svr_ub = self.base.score_table.max_score_bound();
        let (hits, _) = wand_topk(self, streams, query, &zeros, &zeros, svr_ub)?;
        Ok(hits)
    }

    fn insert_document(&self, doc: &Document, score: Score) -> Result<()> {
        self.base.register_insert(doc, score)?;
        for term in doc.term_ids() {
            self.short.put(term, PostingPos::Id, doc.id, Op::Add, 0)?;
        }
        Ok(())
    }

    fn delete_document(&self, doc: DocId) -> Result<()> {
        self.base.register_delete(doc)
    }

    fn uninsert_document(&self, doc: DocId) -> Result<()> {
        // ID lists keep no per-doc list state; postings a concurrent merge
        // moved to the long lists dangle harmlessly (resolve skips docs
        // with no Score-table row) and vanish at the next merge.
        self.base
            .uninsert_postings_at(&self.short, doc, PostingPos::Id, true)?;
        Ok(())
    }

    fn undelete_document(&self, doc: DocId) -> Result<()> {
        // Tombstoning kept the postings: reviving is pure bookkeeping.
        self.base.register_undelete(doc)?;
        Ok(())
    }

    fn update_content(&self, doc: &Document) -> Result<()> {
        let (old, new) = self.base.register_content(doc)?;
        let old_terms: std::collections::HashSet<TermId> = old.iter().map(|&(t, _)| t).collect();
        let new_terms: std::collections::HashSet<TermId> = new.iter().map(|&(t, _)| t).collect();
        for &term in new_terms.difference(&old_terms) {
            self.short.put(term, PostingPos::Id, doc.id, Op::Add, 0)?;
        }
        for &term in old_terms.difference(&new_terms) {
            self.short.put(term, PostingPos::Id, doc.id, Op::Rem, 0)?;
        }
        Ok(())
    }

    fn merge_short_lists(&self) -> Result<()> {
        crate::maintenance::rebuild_id_lists(&self.base, &self.long)?;
        self.short.clear()
    }

    fn shard_stats(&self) -> Vec<ShardStats> {
        self.base.single_shard_stats(
            self.long.total_bytes(),
            self.long.total_postings(),
            self.short.len(),
        )
    }

    fn long_list_bytes(&self) -> u64 {
        self.long.total_bytes()
    }

    fn clear_long_cache(&self) -> Result<()> {
        if let Some(store) = self.base.store(store_names::LONG) {
            store.clear_cache()?;
        }
        Ok(())
    }

    fn env(&self) -> &Arc<StorageEnv> {
        &self.base.env
    }

    fn current_score(&self, doc: DocId) -> Result<Score> {
        self.base.current_score(doc)
    }

    fn logs_over(&self, threshold: u64) -> bool {
        self.base.logs_over(
            &[
                store_names::SCORE,
                store_names::DOCS,
                store_names::LONG,
                store_names::SHORT,
            ],
            threshold,
        )
    }

    fn maybe_checkpoint(&self, threshold: u64) -> Result<()> {
        self.base.maybe_checkpoint(
            &[
                store_names::SCORE,
                store_names::DOCS,
                store_names::LONG,
                store_names::SHORT,
            ],
            threshold,
        )
    }

    fn term_dfs(&self) -> Vec<(TermId, u64)> {
        self.base.term_dfs()
    }

    fn corpus_num_docs(&self) -> u64 {
        self.base.corpus_num_docs()
    }

    fn seek_stats(&self) -> SeekStats {
        self.counters.snapshot()
    }
}
