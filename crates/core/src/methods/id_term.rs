//! The ID-TermScore method (§5.2): the ID method "extended to additionally
//! store term-based scores" in the postings, used as the baseline for the
//! combined-score experiments (Fig. 9 / Fig. 10).
//!
//! Ranking uses `f(svr, Σ ts) = svr + w·Σ idf(t)·ts(d,t)`. Like the ID
//! method, queries must scan every posting: with an unbounded, frequently
//! changing SVR component, no term-score-only early termination is sound.

use std::collections::HashSet;
use std::sync::Arc;

use svr_storage::StorageEnv;
use svr_text::unquantize_term_score;

use crate::config::IndexConfig;
use crate::cursor::{merge_next_batch, open_merge, CursorBackend, MethodCursor};
use crate::error::Result;
use crate::long_list::{invert_corpus, posting_term_score, ListFormat, LongListStore};
use crate::merge::{Candidate, UnionCursor, UnionResume};
use crate::methods::base::{MethodBase, ShardContext};
use crate::methods::{store_names, MethodKind, ScoreMap, SearchIndex, ShardStats};
use crate::multiterm::{wand_topk, SeekCounters, SeekStats};
use crate::short_list::{Op, PostingPos, ShortLists, ShortOrder};
use crate::types::{DocId, Document, Query, Score, SearchHit, TermId};

/// The ID-TermScore baseline.
pub struct IdTermMethod {
    base: MethodBase,
    long: LongListStore,
    short: ShortLists,
    counters: SeekCounters,
}

impl IdTermMethod {
    /// Build from a corpus and initial scores.
    pub fn build(
        docs: &[Document],
        scores: &ScoreMap,
        config: &IndexConfig,
    ) -> Result<IdTermMethod> {
        IdTermMethod::build_in(ShardContext::standalone(config), docs, scores, config)
    }

    /// Build inside an existing shard context (shared environment and
    /// corpus statistics — the IDF weights stay collection-wide).
    pub(crate) fn build_in(
        ctx: ShardContext,
        docs: &[Document],
        scores: &ScoreMap,
        config: &IndexConfig,
    ) -> Result<IdTermMethod> {
        let base = MethodBase::with_context(ctx, config)?;
        base.bulk_load(docs, scores)?;
        let long_store = base.create_store(store_names::LONG, config.long_cache_pages);
        let short_store = base.create_store(store_names::SHORT, config.small_cache_pages);
        let long = LongListStore::create_in(
            long_store,
            ListFormat::Id { with_scores: true },
            config.codec,
            base.durable,
        )?;
        let short = ShortLists::create_in(short_store, ShortOrder::ById, base.durable)?;
        for (term, postings) in invert_corpus(docs) {
            long.put_id_list(term, &postings)?;
        }
        Ok(IdTermMethod {
            base,
            long,
            short,
            counters: SeekCounters::default(),
        })
    }

    /// Reattach a durable shard from its recovered stores (see
    /// [`crate::open_index_at`]).
    pub(crate) fn open_in(ctx: ShardContext, config: &IndexConfig) -> Result<IdTermMethod> {
        let base = MethodBase::open_with_context(ctx, config)?;
        let long = LongListStore::open(
            base.create_store(store_names::LONG, config.long_cache_pages),
            ListFormat::Id { with_scores: true },
            config.codec,
        )?;
        let short = ShortLists::open(
            base.create_store(store_names::SHORT, config.small_cache_pages),
            ShortOrder::ById,
        )?;
        Ok(IdTermMethod {
            base,
            long,
            short,
            counters: SeekCounters::default(),
        })
    }
}

impl CursorBackend for IdTermMethod {
    fn cursor_kind(&self) -> MethodKind {
        MethodKind::IdTermScore
    }

    fn pool_cap(&self) -> usize {
        self.base.pool_cap
    }

    fn long_epoch(&self) -> u64 {
        self.long.epoch()
    }

    fn stream(&self, term: TermId, resume: &UnionResume) -> Result<UnionCursor<'_>> {
        Ok(UnionCursor::resume(
            self.long.resume_cursor(term, resume.long_resume())?,
            self.short.cursor_after(term, resume.short_resume_key())?,
            resume,
        ))
    }

    fn is_deleted(&self, doc: DocId) -> bool {
        self.base.is_deleted(doc)
    }

    fn resolve(&self, candidate: &Candidate, idfs: &[f64]) -> Result<Option<Score>> {
        let Some(entry) = self.base.score_table.get(candidate.doc)? else {
            return Ok(None);
        };
        if entry.deleted {
            return Ok(None);
        }
        let mut ts_sum = 0.0;
        for (i, m) in candidate.matches.iter().enumerate() {
            if let Some(m) = m {
                ts_sum += idfs[i] * unquantize_term_score(m.tscore);
            }
        }
        Ok(Some(self.base.combine(entry.score, ts_sum)))
    }

    fn svr_bound(&self, pos: Option<PostingPos>) -> Score {
        // Like the ID method: no term-score-only early termination is
        // sound, so nothing is emitted until the scan completes.
        match pos {
            Some(_) => f64::INFINITY,
            None => f64::NEG_INFINITY,
        }
    }

    fn combine(&self, svr: Score, ts_sum: f64) -> Score {
        self.base.combine(svr, ts_sum)
    }

    fn doc_ordered(&self) -> bool {
        true
    }

    fn record_stats(&self, stats: SeekStats) {
        self.counters.record(stats);
    }
}

impl SearchIndex for IdTermMethod {
    fn kind(&self) -> MethodKind {
        MethodKind::IdTermScore
    }

    fn update_score(&self, doc: DocId, new_score: Score) -> Result<()> {
        self.base.current_score(doc)?;
        self.base.score_table.set(doc, new_score)?;
        Ok(())
    }

    fn open_cursor(&self, query: &Query) -> Result<MethodCursor> {
        let idfs: Vec<f64> = query.terms.iter().map(|&t| self.base.idf(t)).collect();
        Ok(open_merge(MethodKind::IdTermScore, query, idfs))
    }

    fn next_batch(&self, cursor: &mut MethodCursor, n: usize) -> Result<Vec<SearchHit>> {
        merge_next_batch(self, cursor, n)
    }

    fn query(&self, query: &Query) -> Result<Vec<SearchHit>> {
        // One-shot queries run the block-max WAND executor: per-block
        // `(max doc, max tscore)` metadata bounds the term-score part,
        // the Score table's monotone maximum bounds the SVR part, and
        // windows that cannot beat the k-th score are skipped undecoded.
        if query.terms.is_empty() {
            return Ok(Vec::new());
        }
        let idfs: Vec<f64> = query.terms.iter().map(|&t| self.base.idf(t)).collect();
        let short_bounds: Vec<f64> = query
            .terms
            .iter()
            .map(|&t| self.short.max_add_tscore(t).map(unquantize_term_score))
            .collect::<Result<_>>()?;
        let streams = query
            .terms
            .iter()
            .map(|&t| self.stream(t, &UnionResume::fresh()))
            .collect::<Result<Vec<_>>>()?;
        let svr_ub = self.base.score_table.max_score_bound();
        let (hits, _) = wand_topk(self, streams, query, &idfs, &short_bounds, svr_ub)?;
        Ok(hits)
    }

    fn insert_document(&self, doc: &Document, score: Score) -> Result<()> {
        self.base.register_insert(doc, score)?;
        let max_tf = doc.max_tf();
        for &(term, tf) in &doc.terms {
            let ts = posting_term_score(tf, max_tf);
            self.short.put(term, PostingPos::Id, doc.id, Op::Add, ts)?;
        }
        Ok(())
    }

    fn delete_document(&self, doc: DocId) -> Result<()> {
        self.base.register_delete(doc)
    }

    fn uninsert_document(&self, doc: DocId) -> Result<()> {
        // ID lists keep no per-doc list state; postings a concurrent merge
        // moved to the long lists dangle harmlessly (resolve skips docs
        // with no Score-table row) and vanish at the next merge.
        self.base
            .uninsert_postings_at(&self.short, doc, PostingPos::Id, true)?;
        Ok(())
    }

    fn undelete_document(&self, doc: DocId) -> Result<()> {
        // Tombstoning kept the postings: reviving is pure bookkeeping.
        self.base.register_undelete(doc)?;
        Ok(())
    }

    fn update_content(&self, doc: &Document) -> Result<()> {
        let (old, new) = self.base.register_content(doc)?;
        let old_terms: HashSet<TermId> = old.iter().map(|&(t, _)| t).collect();
        let max_tf = doc.max_tf();
        // New or changed terms: ADD postings override the long posting at
        // the same (term, doc) position.
        for &(term, tf) in &new {
            self.short.put(
                term,
                PostingPos::Id,
                doc.id,
                Op::Add,
                posting_term_score(tf, max_tf),
            )?;
        }
        let new_terms: HashSet<TermId> = new.iter().map(|&(t, _)| t).collect();
        for &term in old_terms.difference(&new_terms) {
            self.short.put(term, PostingPos::Id, doc.id, Op::Rem, 0)?;
        }
        Ok(())
    }

    fn merge_short_lists(&self) -> Result<()> {
        crate::maintenance::rebuild_id_lists(&self.base, &self.long)?;
        self.short.clear()
    }

    fn shard_stats(&self) -> Vec<ShardStats> {
        self.base.single_shard_stats(
            self.long.total_bytes(),
            self.long.total_postings(),
            self.short.len(),
        )
    }

    fn long_list_bytes(&self) -> u64 {
        self.long.total_bytes()
    }

    fn clear_long_cache(&self) -> Result<()> {
        if let Some(store) = self.base.store(store_names::LONG) {
            store.clear_cache()?;
        }
        Ok(())
    }

    fn env(&self) -> &Arc<StorageEnv> {
        &self.base.env
    }

    fn current_score(&self, doc: DocId) -> Result<Score> {
        self.base.current_score(doc)
    }

    fn logs_over(&self, threshold: u64) -> bool {
        self.base.logs_over(
            &[
                store_names::SCORE,
                store_names::DOCS,
                store_names::LONG,
                store_names::SHORT,
            ],
            threshold,
        )
    }

    fn maybe_checkpoint(&self, threshold: u64) -> Result<()> {
        self.base.maybe_checkpoint(
            &[
                store_names::SCORE,
                store_names::DOCS,
                store_names::LONG,
                store_names::SHORT,
            ],
            threshold,
        )
    }

    fn term_dfs(&self) -> Vec<(TermId, u64)> {
        self.base.term_dfs()
    }

    fn corpus_num_docs(&self) -> u64 {
        self.base.corpus_num_docs()
    }

    fn seek_stats(&self) -> SeekStats {
        self.counters.snapshot()
    }
}
