//! The ID-TermScore method (§5.2): the ID method "extended to additionally
//! store term-based scores" in the postings, used as the baseline for the
//! combined-score experiments (Fig. 9 / Fig. 10).
//!
//! Ranking uses `f(svr, Σ ts) = svr + w·Σ idf(t)·ts(d,t)`. Like the ID
//! method, queries must scan every posting: with an unbounded, frequently
//! changing SVR component, no term-score-only early termination is sound.

use std::collections::HashSet;
use std::sync::Arc;

use svr_storage::StorageEnv;
use svr_text::postings::PostingsBuilder;
use svr_text::unquantize_term_score;

use crate::config::IndexConfig;
use crate::error::Result;
use crate::heap::TopKHeap;
use crate::long_list::{invert_corpus, posting_term_score, ListFormat, LongListStore};
use crate::merge::{MultiMerge, UnionCursor};
use crate::methods::base::{MethodBase, ShardContext};
use crate::methods::{store_names, MethodKind, ScoreMap, SearchIndex, ShardStats};
use crate::short_list::{Op, PostingPos, ShortLists, ShortOrder};
use crate::types::{DocId, Document, Query, QueryMode, Score, SearchHit, TermId};

/// The ID-TermScore baseline.
pub struct IdTermMethod {
    base: MethodBase,
    long: LongListStore,
    short: ShortLists,
}

impl IdTermMethod {
    /// Build from a corpus and initial scores.
    pub fn build(
        docs: &[Document],
        scores: &ScoreMap,
        config: &IndexConfig,
    ) -> Result<IdTermMethod> {
        IdTermMethod::build_in(ShardContext::standalone(config), docs, scores, config)
    }

    /// Build inside an existing shard context (shared environment and
    /// corpus statistics — the IDF weights stay collection-wide).
    pub(crate) fn build_in(
        ctx: ShardContext,
        docs: &[Document],
        scores: &ScoreMap,
        config: &IndexConfig,
    ) -> Result<IdTermMethod> {
        let base = MethodBase::with_context(ctx, config)?;
        base.bulk_load(docs, scores)?;
        let long_store = base.create_store(store_names::LONG, config.long_cache_pages);
        let short_store = base.create_store(store_names::SHORT, config.small_cache_pages);
        let long = LongListStore::new(long_store, ListFormat::Id { with_scores: true });
        let short = ShortLists::create(short_store, ShortOrder::ById)?;
        for (term, postings) in invert_corpus(docs) {
            let mut buf = Vec::new();
            PostingsBuilder::encode_id_term_list(&postings, &mut buf);
            long.set_list(term, &buf)?;
        }
        Ok(IdTermMethod { base, long, short })
    }
}

impl SearchIndex for IdTermMethod {
    fn kind(&self) -> MethodKind {
        MethodKind::IdTermScore
    }

    fn update_score(&self, doc: DocId, new_score: Score) -> Result<()> {
        self.base.current_score(doc)?;
        self.base.score_table.set(doc, new_score)?;
        Ok(())
    }

    fn query(&self, query: &Query) -> Result<Vec<SearchHit>> {
        let required = match query.mode {
            QueryMode::Conjunctive => query.terms.len(),
            QueryMode::Disjunctive => 1,
        };
        let idfs: Vec<f64> = query.terms.iter().map(|&t| self.base.idf(t)).collect();
        let streams: Vec<UnionCursor<'_>> = query
            .terms
            .iter()
            .map(|&t| Ok(UnionCursor::new(self.long.cursor(t), self.short.cursor(t)?)))
            .collect::<Result<_>>()?;
        let mut merge = MultiMerge::new(streams);
        let mut heap = TopKHeap::new(query.k);
        while let Some(candidate) = merge.next_candidate()? {
            if candidate.match_count() < required {
                continue;
            }
            if self.base.is_deleted(candidate.doc) {
                continue;
            }
            let Some(entry) = self.base.score_table.get(candidate.doc)? else {
                continue;
            };
            if entry.deleted {
                continue;
            }
            let mut ts_sum = 0.0;
            for (i, m) in candidate.matches.iter().enumerate() {
                if let Some(m) = m {
                    ts_sum += idfs[i] * unquantize_term_score(m.tscore);
                }
            }
            heap.add(candidate.doc, self.base.combine(entry.score, ts_sum));
        }
        Ok(heap.into_ranked())
    }

    fn insert_document(&self, doc: &Document, score: Score) -> Result<()> {
        self.base.register_insert(doc, score)?;
        let max_tf = doc.max_tf();
        for &(term, tf) in &doc.terms {
            let ts = posting_term_score(tf, max_tf);
            self.short.put(term, PostingPos::Id, doc.id, Op::Add, ts)?;
        }
        Ok(())
    }

    fn delete_document(&self, doc: DocId) -> Result<()> {
        self.base.register_delete(doc)
    }

    fn update_content(&self, doc: &Document) -> Result<()> {
        let (old, new) = self.base.register_content(doc)?;
        let old_terms: HashSet<TermId> = old.iter().map(|&(t, _)| t).collect();
        let max_tf = doc.max_tf();
        // New or changed terms: ADD postings override the long posting at
        // the same (term, doc) position.
        for &(term, tf) in &new {
            self.short.put(
                term,
                PostingPos::Id,
                doc.id,
                Op::Add,
                posting_term_score(tf, max_tf),
            )?;
        }
        let new_terms: HashSet<TermId> = new.iter().map(|&(t, _)| t).collect();
        for &term in old_terms.difference(&new_terms) {
            self.short.put(term, PostingPos::Id, doc.id, Op::Rem, 0)?;
        }
        Ok(())
    }

    fn merge_short_lists(&self) -> Result<()> {
        crate::maintenance::rebuild_id_lists(&self.base, &self.long, true)?;
        self.short.clear()
    }

    fn shard_stats(&self) -> Vec<ShardStats> {
        self.base
            .single_shard_stats(self.long.total_bytes(), self.short.len())
    }

    fn long_list_bytes(&self) -> u64 {
        self.long.total_bytes()
    }

    fn clear_long_cache(&self) -> Result<()> {
        if let Some(store) = self.base.store(store_names::LONG) {
            store.clear_cache()?;
        }
        Ok(())
    }

    fn env(&self) -> &Arc<StorageEnv> {
        &self.base.env
    }

    fn current_score(&self, doc: DocId) -> Result<Score> {
        self.base.current_score(doc)
    }
}
