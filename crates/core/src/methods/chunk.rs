//! The Chunk method (§4.3.2) — the paper's headline index.
//!
//! Documents are partitioned into chunks by their build-time scores; long
//! lists store postings in (chunk desc, doc asc) order with **no scores**,
//! so they are nearly as compact as ID lists. A document's short-list
//! postings move only when its score climbs *two or more chunks*
//! (`thresholdValueOf(cid) = cid + 1`), and queries scan to the end of one
//! extra chunk before stopping.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use parking_lot::RwLock;
use svr_storage::StorageEnv;
use svr_text::postings::{ChunkGroup, TermScoredPosting};

use crate::aux_table::{ListChunkEntry, ListChunkTable};
use crate::chunk_map::ChunkMap;
use crate::config::IndexConfig;
use crate::cursor::{merge_next_batch, open_merge, CursorBackend, MethodCursor};
use crate::error::Result;
use crate::long_list::{invert_corpus, ListFormat, LongListStore};
use crate::merge::{Candidate, UnionCursor, UnionResume};
use crate::methods::base::{MethodBase, ShardContext};
use crate::methods::{store_names, MethodKind, ScoreMap, SearchIndex, ShardStats};
use crate::short_list::{Op, PostingPos, ShortLists, ShortOrder};
use crate::types::{ChunkId, DocId, Document, Query, Score, SearchHit, TermId};

/// The Chunk method.
pub struct ChunkMethod {
    base: MethodBase,
    config: IndexConfig,
    long: LongListStore,
    short: ShortLists,
    list_chunk: ListChunkTable,
    /// Rebuilt by the offline merge; immutable between merges.
    chunk_map: RwLock<ChunkMap>,
    /// Durable shard metadata: the chunk boundaries are persisted here at
    /// build and merge time, so a reopen sees the exact map the long lists
    /// were laid out by (re-deriving it from the *current* scores would
    /// misalign it against the stored chunk groups).
    meta: crate::durable::MetaTable,
}

/// Group per-term postings by a chunk map, descending chunk, ascending doc.
pub(crate) fn group_by_chunk(
    postings: &[TermScoredPosting],
    chunk_of: impl Fn(DocId) -> ChunkId,
) -> Vec<ChunkGroup> {
    let mut by_chunk: HashMap<ChunkId, Vec<TermScoredPosting>> = HashMap::new();
    for p in postings {
        by_chunk.entry(chunk_of(p.doc)).or_default().push(*p);
    }
    let mut groups: Vec<ChunkGroup> = by_chunk
        .into_iter()
        .map(|(cid, mut postings)| {
            postings.sort_by_key(|p| p.doc);
            ChunkGroup { cid, postings }
        })
        .collect();
    groups.sort_by_key(|g| std::cmp::Reverse(g.cid));
    groups
}

impl ChunkMethod {
    /// Build from a corpus and initial scores.
    pub fn build(
        docs: &[Document],
        scores: &ScoreMap,
        config: &IndexConfig,
    ) -> Result<ChunkMethod> {
        ChunkMethod::build_in(ShardContext::standalone(config), docs, scores, config)
    }

    /// Build inside an existing shard context (shared environment and
    /// corpus statistics). A shard's chunk map covers its own documents'
    /// score distribution — chunk ids are never compared across shards.
    pub(crate) fn build_in(
        ctx: ShardContext,
        docs: &[Document],
        scores: &ScoreMap,
        config: &IndexConfig,
    ) -> Result<ChunkMethod> {
        let base = MethodBase::with_context(ctx, config)?;
        base.bulk_load(docs, scores)?;
        let long_store = base.create_store(store_names::LONG, config.long_cache_pages);
        let short_store = base.create_store(store_names::SHORT, config.small_cache_pages);
        let aux_store = base.create_store(store_names::AUX, config.small_cache_pages);
        let meta_store = base.create_store(store_names::META, config.small_cache_pages);
        let long = LongListStore::create_in(
            long_store,
            ListFormat::Chunked { with_scores: false },
            config.codec,
            base.durable,
        )?;
        let short = ShortLists::create_in(short_store, ShortOrder::ByChunkDesc, base.durable)?;
        let list_chunk = ListChunkTable::create_in(aux_store, base.durable)?;
        let meta = crate::durable::MetaTable::create(meta_store, base.durable)?;

        let all_scores: Vec<Score> = docs
            .iter()
            .map(|d| MethodBase::initial_score(scores, d.id))
            .collect();
        let chunk_map =
            ChunkMap::from_scores(&all_scores, config.chunk_ratio, config.min_chunk_docs);
        meta.put_chunk_map(chunk_map.boundaries())?;
        for (term, postings) in invert_corpus(docs) {
            let groups = group_by_chunk(&postings, |doc| {
                chunk_map.chunk_of(MethodBase::initial_score(scores, doc))
            });
            long.put_chunked_list(term, &groups)?;
        }
        Ok(ChunkMethod {
            base,
            config: config.clone(),
            long,
            short,
            list_chunk,
            chunk_map: RwLock::new(chunk_map),
            meta,
        })
    }

    /// Reattach a durable shard from its recovered stores (see
    /// [`crate::open_index_at`]): structures reopen, the chunk map reloads
    /// from the shard metadata.
    pub(crate) fn open_in(ctx: ShardContext, config: &IndexConfig) -> Result<ChunkMethod> {
        let base = MethodBase::open_with_context(ctx, config)?;
        let long = LongListStore::open(
            base.create_store(store_names::LONG, config.long_cache_pages),
            ListFormat::Chunked { with_scores: false },
            config.codec,
        )?;
        let short = ShortLists::open(
            base.create_store(store_names::SHORT, config.small_cache_pages),
            ShortOrder::ByChunkDesc,
        )?;
        let list_chunk =
            ListChunkTable::open(base.create_store(store_names::AUX, config.small_cache_pages))?;
        let meta = crate::durable::MetaTable::open(
            base.create_store(store_names::META, config.small_cache_pages),
        )?;
        let chunk_map = meta
            .chunk_map()?
            .and_then(ChunkMap::from_boundaries)
            .ok_or(crate::error::CoreError::Storage(
                svr_storage::StorageError::Corrupt("missing or invalid persisted chunk map"),
            ))?;
        Ok(ChunkMethod {
            base,
            config: config.clone(),
            long,
            short,
            list_chunk,
            chunk_map: RwLock::new(chunk_map),
            meta,
        })
    }

    /// The document's list chunk and short-list flag (Algorithm 1 adapted:
    /// an absent ListChunk entry means "never updated", in which case the
    /// current score is still the build score and locates the long posting).
    fn list_state(&self, doc: DocId, current_score: Score) -> Result<ListChunkEntry> {
        match self.list_chunk.get(doc)? {
            Some(entry) => Ok(entry),
            None => Ok(ListChunkEntry {
                l_chunk: self.chunk_map.read().chunk_of(current_score),
                in_short_list: false,
            }),
        }
    }

    /// Exposed for tests and benches: the current chunk map.
    pub fn chunk_map_snapshot(&self) -> ChunkMap {
        self.chunk_map.read().clone()
    }

    /// Number of short-list postings (diagnostics).
    pub fn short_list_len(&self) -> u64 {
        self.short.len()
    }
}

impl CursorBackend for ChunkMethod {
    fn cursor_kind(&self) -> MethodKind {
        MethodKind::Chunk
    }

    fn pool_cap(&self) -> usize {
        self.base.pool_cap
    }

    fn long_epoch(&self) -> u64 {
        self.long.epoch()
    }

    fn stream(&self, term: TermId, resume: &UnionResume) -> Result<UnionCursor<'_>> {
        Ok(UnionCursor::resume(
            self.long.resume_cursor(term, resume.long_resume())?,
            self.short.cursor_after(term, resume.short_resume_key())?,
            resume,
        ))
    }

    fn is_deleted(&self, doc: DocId) -> bool {
        self.base.is_deleted(doc)
    }

    fn resolve(&self, candidate: &Candidate, _idfs: &[f64]) -> Result<Option<Score>> {
        if candidate.all_short() {
            return Ok(Some(self.base.score_table.score_of(candidate.doc)?));
        }
        match self.list_chunk.get(candidate.doc)? {
            // Superseded by the short-list occurrence.
            Some(entry) if entry.in_short_list => Ok(None),
            // Long lists carry no scores: always consult the Score table
            // (it is small and stays cached).
            _ => Ok(Some(self.base.score_table.score_of(candidate.doc)?)),
        }
    }

    /// A document whose posting sits in chunk `<= c` moved to the short
    /// lists only after crossing *two* boundaries, so its current score is
    /// below the lower bound of chunk `c + 2`.
    fn svr_bound(&self, pos: Option<PostingPos>) -> Score {
        match pos {
            Some(PostingPos::ByChunk(c)) => self.chunk_map.read().max_possible_score(c),
            Some(_) => f64::INFINITY,
            None => f64::NEG_INFINITY,
        }
    }
}

impl SearchIndex for ChunkMethod {
    fn kind(&self) -> MethodKind {
        MethodKind::Chunk
    }

    /// Algorithm 1, with chunk ids in place of scores and
    /// `thresholdValueOf(c) = c + 1`.
    fn update_score(&self, doc: DocId, new_score: Score) -> Result<()> {
        let old_score = self.base.current_score(doc)?;
        self.base.score_table.set(doc, new_score)?;
        let entry = self.list_state(doc, old_score)?;
        if self.list_chunk.get(doc)?.is_none() {
            self.list_chunk.put(
                doc,
                ListChunkEntry {
                    l_chunk: entry.l_chunk,
                    in_short_list: false,
                },
            )?;
        }
        let new_chunk = self.chunk_map.read().chunk_of(new_score);
        // Move only when the score crosses *two* chunk boundaries.
        if new_chunk > entry.l_chunk + 1 {
            let terms = self.base.doc_store.get(doc)?.unwrap_or_default();
            for (term, _) in terms {
                if entry.in_short_list {
                    self.short
                        .delete(term, PostingPos::ByChunk(entry.l_chunk), doc)?;
                }
                self.short
                    .put(term, PostingPos::ByChunk(new_chunk), doc, Op::Add, 0)?;
            }
            self.list_chunk.put(
                doc,
                ListChunkEntry {
                    l_chunk: new_chunk,
                    in_short_list: true,
                },
            )?;
        }
        Ok(())
    }

    /// Algorithm 2 adapted to chunks, as an any-k enumeration (see
    /// [`crate::cursor`]): a document listed in chunk `c` can have drifted
    /// up to (but not into) chunk `c + 2`, which is the executor's
    /// emission bound.
    fn open_cursor(&self, query: &Query) -> Result<MethodCursor> {
        Ok(open_merge(MethodKind::Chunk, query, Vec::new()))
    }

    fn next_batch(&self, cursor: &mut MethodCursor, n: usize) -> Result<Vec<SearchHit>> {
        merge_next_batch(self, cursor, n)
    }

    /// Appendix A.2: an insertion is short-list ADD postings at the score's
    /// chunk.
    fn insert_document(&self, doc: &Document, score: Score) -> Result<()> {
        self.base.register_insert(doc, score)?;
        let chunk = self.chunk_map.read().chunk_of(score);
        for term in doc.term_ids() {
            self.short
                .put(term, PostingPos::ByChunk(chunk), doc.id, Op::Add, 0)?;
        }
        self.list_chunk.put(
            doc.id,
            ListChunkEntry {
                l_chunk: chunk,
                in_short_list: true,
            },
        )?;
        Ok(())
    }

    fn delete_document(&self, doc: DocId) -> Result<()> {
        self.base.register_delete(doc)
    }

    fn uninsert_document(&self, doc: DocId) -> Result<()> {
        // No ListChunk entry means the offline merge already folded the
        // insert's postings into the long lists (merges clear ListChunk):
        // the helper's merged-document fallback handles both that and an
        // entry relocated off the short lists.
        let (pos, in_short_list) = match self.list_chunk.get(doc)? {
            Some(entry) => (PostingPos::ByChunk(entry.l_chunk), entry.in_short_list),
            None => (PostingPos::ByChunk(0), false),
        };
        if self
            .base
            .uninsert_postings_at(&self.short, doc, pos, in_short_list)?
        {
            self.list_chunk.delete(doc)?;
        }
        Ok(())
    }

    fn undelete_document(&self, doc: DocId) -> Result<()> {
        // Tombstoning kept the postings: reviving is pure bookkeeping.
        self.base.register_undelete(doc)?;
        Ok(())
    }

    /// Appendix A.1: ADD/REM postings co-located with the document's live
    /// postings.
    fn update_content(&self, doc: &Document) -> Result<()> {
        let current = self.base.current_score(doc.id)?;
        let entry = self.list_state(doc.id, current)?;
        let (old, new) = self.base.register_content(doc)?;
        let old_terms: HashSet<TermId> = old.iter().map(|&(t, _)| t).collect();
        let new_terms: HashSet<TermId> = new.iter().map(|&(t, _)| t).collect();
        let pos = PostingPos::ByChunk(entry.l_chunk);
        for &term in new_terms.difference(&old_terms) {
            self.short.put(term, pos, doc.id, Op::Add, 0)?;
        }
        for &term in old_terms.difference(&new_terms) {
            if entry.in_short_list {
                self.short.delete(term, pos, doc.id)?;
            } else {
                self.short.put(term, pos, doc.id, Op::Rem, 0)?;
            }
        }
        Ok(())
    }

    /// Offline merge: rebuild the chunk map from the live score distribution
    /// and regenerate the long lists; clear short lists and ListChunk.
    fn merge_short_lists(&self) -> Result<()> {
        let new_map = crate::maintenance::rebuild_chunked_lists(
            &self.base,
            &self.long,
            self.config.chunk_ratio,
            self.config.min_chunk_docs,
            self.chunk_map.read().clone(),
        )?;
        self.meta.put_chunk_map(new_map.boundaries())?;
        *self.chunk_map.write() = new_map;
        self.short.clear()?;
        self.list_chunk.clear()
    }

    fn shard_stats(&self) -> Vec<ShardStats> {
        self.base.single_shard_stats(
            self.long.total_bytes(),
            self.long.total_postings(),
            self.short.len(),
        )
    }

    fn long_list_bytes(&self) -> u64 {
        self.long.total_bytes()
    }

    fn clear_long_cache(&self) -> Result<()> {
        if let Some(store) = self.base.store(store_names::LONG) {
            store.clear_cache()?;
        }
        Ok(())
    }

    fn env(&self) -> &Arc<StorageEnv> {
        &self.base.env
    }

    fn current_score(&self, doc: DocId) -> Result<Score> {
        self.base.current_score(doc)
    }

    fn logs_over(&self, threshold: u64) -> bool {
        self.base.logs_over(
            &[
                store_names::SCORE,
                store_names::DOCS,
                store_names::LONG,
                store_names::SHORT,
                store_names::AUX,
                store_names::META,
            ],
            threshold,
        )
    }

    fn maybe_checkpoint(&self, threshold: u64) -> Result<()> {
        self.base.maybe_checkpoint(
            &[
                store_names::SCORE,
                store_names::DOCS,
                store_names::LONG,
                store_names::SHORT,
                store_names::AUX,
                store_names::META,
            ],
            threshold,
        )
    }

    fn term_dfs(&self) -> Vec<(TermId, u64)> {
        self.base.term_dfs()
    }

    fn corpus_num_docs(&self) -> u64 {
        self.base.corpus_num_docs()
    }
}
