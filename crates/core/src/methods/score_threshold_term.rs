//! The Score-Threshold-TermScore method: the §4.3.3 generalization the
//! paper sketches in one sentence ("the generalization for the
//! Score-Threshold method is similar") but never builds.
//!
//! It is to Score-Threshold what Chunk-TermScore is to Chunk: the long
//! lists stay in (score desc, doc asc) order but additionally carry a
//! quantized term score per posting, and each term gains a *fancy list*
//! (Long & Suel) of its highest-term-score postings, so queries rank by the
//! combined function `f(svr, ts) = svr + w·Σ idf(t)·ts(d,t)` and support
//! both conjunctive and disjunctive modes.
//!
//! Query processing is Algorithm 3 with the chunk-boundary SVR upper bound
//! replaced by the Score-Threshold bound: at merge position `listScore`,
//! no unseen document's current SVR score can exceed
//! `thresholdValueOf(listScore)` (Lemma 1.2), so the stopping rule becomes
//! `f(thresholdValueOf(listScore), termScoreBound) ≤ resultHeap.minScore(k)`.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use parking_lot::RwLock;
use svr_storage::StorageEnv;
use svr_text::postings::TermScoredPosting;
use svr_text::unquantize_term_score;

use crate::aux_table::{ListScoreEntry, ListScoreTable};
use crate::config::IndexConfig;
use crate::cursor::{merge_next_batch, CursorBackend, MergeState, MethodCursor};
use crate::error::Result;
use crate::long_list::{invert_corpus, posting_term_score, ListFormat, LongListStore};
use crate::merge::{Candidate, UnionCursor, UnionResume};
use crate::methods::base::{MethodBase, ShardContext};
use crate::methods::{store_names, MethodKind, ScoreMap, SearchIndex, ShardStats};
use crate::short_list::{Op, PostingPos, ShortLists, ShortOrder};
use crate::types::{DocId, Document, Query, Score, SearchHit, TermId};

/// Per-term fancy-list metadata (same role as in Chunk-TermScore).
#[derive(Debug, Clone, Copy, Default)]
struct FancyMeta {
    min_ts: u16,
    complete: bool,
    inserted_max: u16,
}

impl FancyMeta {
    fn bound(&self) -> u16 {
        let base = if self.complete { 0 } else { self.min_ts };
        base.max(self.inserted_max)
    }
}

/// The Score-Threshold-TermScore method.
pub struct ScoreThresholdTermMethod {
    base: MethodBase,
    config: IndexConfig,
    long: LongListStore,
    short: ShortLists,
    fancy: LongListStore,
    list_score: ListScoreTable,
    fancy_meta: RwLock<HashMap<TermId, FancyMeta>>,
    /// Docs whose content changed since the last offline merge; their fancy
    /// postings cannot be trusted in phase 1 (see Chunk-TermScore).
    content_dirty: RwLock<HashSet<DocId>>,
    /// Durable shard metadata: per-term `(min_ts, complete)` at build/merge
    /// time and content-dirty markers, mirroring Chunk-TermScore.
    meta: crate::durable::MetaTable,
}

/// Select the fancy list exactly as Chunk-TermScore does.
fn build_fancy(
    postings: &[TermScoredPosting],
    fancy_size: usize,
) -> (Vec<TermScoredPosting>, FancyMeta) {
    let mut ranked: Vec<TermScoredPosting> = postings.to_vec();
    ranked.sort_by(|a, b| b.tscore.cmp(&a.tscore).then_with(|| a.doc.cmp(&b.doc)));
    ranked.truncate(fancy_size);
    let complete = ranked.len() == postings.len();
    let min_ts = ranked.iter().map(|p| p.tscore).min().unwrap_or(0);
    ranked.sort_by_key(|p| p.doc);
    (
        ranked,
        FancyMeta {
            min_ts,
            complete,
            inserted_max: 0,
        },
    )
}

impl ScoreThresholdTermMethod {
    /// Build from a corpus and initial scores.
    pub fn build(
        docs: &[Document],
        scores: &ScoreMap,
        config: &IndexConfig,
    ) -> Result<ScoreThresholdTermMethod> {
        ScoreThresholdTermMethod::build_in(ShardContext::standalone(config), docs, scores, config)
    }

    /// Build inside an existing shard context (shared environment and
    /// corpus statistics — the IDF weights stay collection-wide).
    pub(crate) fn build_in(
        ctx: ShardContext,
        docs: &[Document],
        scores: &ScoreMap,
        config: &IndexConfig,
    ) -> Result<ScoreThresholdTermMethod> {
        let base = MethodBase::with_context(ctx, config)?;
        base.bulk_load(docs, scores)?;
        let long_store = base.create_store(store_names::LONG, config.long_cache_pages);
        let short_store = base.create_store(store_names::SHORT, config.small_cache_pages);
        let aux_store = base.create_store(store_names::AUX, config.small_cache_pages);
        let fancy_store = base.create_store(store_names::FANCY, config.small_cache_pages);
        let meta_store = base.create_store(store_names::META, config.small_cache_pages);
        let long = LongListStore::create_in(
            long_store,
            ListFormat::Score { with_scores: true },
            config.codec,
            base.durable,
        )?;
        let short = ShortLists::create_in(short_store, ShortOrder::ByScoreDesc, base.durable)?;
        let fancy = LongListStore::create_in(
            fancy_store,
            ListFormat::Id { with_scores: true },
            config.codec,
            base.durable,
        )?;
        let list_score = ListScoreTable::create_in(aux_store, base.durable)?;
        let meta_table = crate::durable::MetaTable::create(meta_store, base.durable)?;

        let mut fancy_meta = HashMap::new();
        for (term, postings) in invert_corpus(docs) {
            let mut rows: Vec<(f64, DocId, u16)> = postings
                .iter()
                .map(|p| (MethodBase::initial_score(scores, p.doc), p.doc, p.tscore))
                .collect();
            rows.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
            long.put_score_list(term, &rows)?;

            let (fancy_postings, meta) = build_fancy(&postings, config.fancy_size);
            fancy.put_id_list(term, &fancy_postings)?;
            fancy_meta.insert(term, meta);
        }
        meta_table.put_fancy_meta(fancy_meta.iter().map(|(&t, m)| (t, (m.min_ts, m.complete))))?;
        Ok(ScoreThresholdTermMethod {
            base,
            config: config.clone(),
            long,
            short,
            fancy,
            list_score,
            fancy_meta: RwLock::new(fancy_meta),
            content_dirty: RwLock::new(HashSet::new()),
            meta: meta_table,
        })
    }

    /// Reattach a durable shard from its recovered stores (see
    /// [`crate::open_index_at`]) — structures reopen, fancy metadata and
    /// content-dirty markers reload, and the insert-time bound widening is
    /// re-derived from the short lists (soundly looser, never wrong).
    pub(crate) fn open_in(
        ctx: ShardContext,
        config: &IndexConfig,
    ) -> Result<ScoreThresholdTermMethod> {
        let base = MethodBase::open_with_context(ctx, config)?;
        let long = LongListStore::open(
            base.create_store(store_names::LONG, config.long_cache_pages),
            ListFormat::Score { with_scores: true },
            config.codec,
        )?;
        let short = ShortLists::open(
            base.create_store(store_names::SHORT, config.small_cache_pages),
            ShortOrder::ByScoreDesc,
        )?;
        let fancy = LongListStore::open(
            base.create_store(store_names::FANCY, config.small_cache_pages),
            ListFormat::Id { with_scores: true },
            config.codec,
        )?;
        let list_score =
            ListScoreTable::open(base.create_store(store_names::AUX, config.small_cache_pages))?;
        let meta_table = crate::durable::MetaTable::open(
            base.create_store(store_names::META, config.small_cache_pages),
        )?;
        let mut fancy_meta: HashMap<TermId, FancyMeta> = meta_table
            .fancy_meta()?
            .into_iter()
            .map(|(t, (min_ts, complete))| {
                (
                    t,
                    FancyMeta {
                        min_ts,
                        complete,
                        inserted_max: 0,
                    },
                )
            })
            .collect();
        for (term, max_ts) in short.max_add_tscores()? {
            let m = fancy_meta.entry(term).or_default();
            m.inserted_max = m.inserted_max.max(max_ts);
        }
        let content_dirty = meta_table.dirty_docs()?;
        Ok(ScoreThresholdTermMethod {
            base,
            config: config.clone(),
            long,
            short,
            fancy,
            list_score,
            fancy_meta: RwLock::new(fancy_meta),
            content_dirty: RwLock::new(content_dirty),
            meta: meta_table,
        })
    }

    fn list_state(&self, doc: DocId, fallback_score: Score) -> Result<ListScoreEntry> {
        match self.list_score.get(doc)? {
            Some(entry) => Ok(entry),
            None => Ok(ListScoreEntry {
                l_score: fallback_score,
                in_short_list: false,
            }),
        }
    }

    /// Total postings across all short lists (tests and diagnostics).
    pub fn short_list_len(&self) -> u64 {
        self.short.len()
    }

    fn widen_fancy_bound(&self, term: TermId, ts: u16) {
        let mut meta = self.fancy_meta.write();
        let m = meta.entry(term).or_default();
        m.inserted_max = m.inserted_max.max(ts);
    }

    fn fancy_bound(&self, term: TermId) -> f64 {
        let meta = self.fancy_meta.read();
        unquantize_term_score(meta.get(&term).map(|m| m.bound()).unwrap_or(0))
    }
}

impl CursorBackend for ScoreThresholdTermMethod {
    fn cursor_kind(&self) -> MethodKind {
        MethodKind::ScoreThresholdTermScore
    }

    fn pool_cap(&self) -> usize {
        self.base.pool_cap
    }

    fn long_epoch(&self) -> u64 {
        self.long.epoch()
    }

    fn stream(&self, term: TermId, resume: &UnionResume) -> Result<UnionCursor<'_>> {
        Ok(UnionCursor::resume(
            self.long.resume_cursor(term, resume.long_resume())?,
            self.short.cursor_after(term, resume.short_resume_key())?,
            resume,
        ))
    }

    fn is_deleted(&self, doc: DocId) -> bool {
        self.base.is_deleted(doc)
    }

    /// SVR score resolution exactly as in Score-Threshold, plus the
    /// matched term-score contributions.
    fn resolve(&self, candidate: &Candidate, idfs: &[f64]) -> Result<Option<Score>> {
        let PostingPos::ByScore(list_score) = candidate.pos else {
            unreachable!("score-threshold-term candidates are score-ordered");
        };
        let svr = if candidate.all_short() {
            self.base.score_table.score_of(candidate.doc)?
        } else {
            match self.list_score.get(candidate.doc)? {
                None => list_score,
                Some(entry) if !entry.in_short_list => {
                    self.base.score_table.score_of(candidate.doc)?
                }
                Some(_) => return Ok(None), // superseded by a short occurrence
            }
        };
        let mut ts_sum = 0.0;
        for (i, matched) in candidate.matches.iter().enumerate() {
            if let Some(mt) = matched {
                ts_sum += idfs[i] * unquantize_term_score(mt.tscore);
            }
        }
        Ok(Some(self.base.combine(svr, ts_sum)))
    }

    /// Lemma 1.2: `thresholdValueOf(listScore)` bounds any unresolved
    /// doc's current SVR score.
    fn svr_bound(&self, pos: Option<PostingPos>) -> Score {
        match pos {
            Some(PostingPos::ByScore(s)) => self.config.threshold_value_of(s),
            Some(_) => f64::INFINITY,
            None => f64::NEG_INFINITY,
        }
    }

    fn term_fancy_bound(&self, term: TermId) -> f64 {
        self.fancy_bound(term)
    }

    fn combine(&self, svr: Score, ts_sum: f64) -> Score {
        self.base.combine(svr, ts_sum)
    }
}

impl SearchIndex for ScoreThresholdTermMethod {
    fn kind(&self) -> MethodKind {
        MethodKind::ScoreThresholdTermScore
    }

    /// Algorithm 1, with the document's stored term scores replicated into
    /// the short postings (as for Chunk-TermScore).
    fn update_score(&self, doc: DocId, new_score: Score) -> Result<()> {
        let old_score = self.base.current_score(doc)?;
        self.base.score_table.set(doc, new_score)?;
        let entry = self.list_state(doc, old_score)?;
        if self.list_score.get(doc)?.is_none() {
            self.list_score.put(
                doc,
                ListScoreEntry {
                    l_score: old_score,
                    in_short_list: false,
                },
            )?;
        }
        if new_score > self.config.threshold_value_of(entry.l_score) {
            let terms = self.base.doc_store.get(doc)?.unwrap_or_default();
            let max_tf = terms.iter().map(|&(_, tf)| tf).max().unwrap_or(0);
            for (term, tf) in terms {
                if entry.in_short_list {
                    self.short
                        .delete(term, PostingPos::ByScore(entry.l_score), doc)?;
                }
                let ts = posting_term_score(tf, max_tf);
                self.short
                    .put(term, PostingPos::ByScore(new_score), doc, Op::Add, ts)?;
            }
            self.list_score.put(
                doc,
                ListScoreEntry {
                    l_score: new_score,
                    in_short_list: true,
                },
            )?;
        }
        Ok(())
    }

    /// Algorithm 3 over score-ordered lists, as an any-k enumeration:
    /// phase 1 (fancy-list merge) runs at open time; phase 2 is the
    /// suspendable score-ordered merge driven by [`crate::cursor`].
    fn open_cursor(&self, query: &Query) -> Result<MethodCursor> {
        let m = query.terms.len();
        let idfs: Vec<f64> = query.terms.iter().map(|&t| self.base.idf(t)).collect();
        let mut state = MergeState::new(m, idfs);

        let mut fancy_docs: HashMap<DocId, Vec<Option<f64>>> = HashMap::new();
        for (i, &term) in query.terms.iter().enumerate() {
            let mut cursor = self.fancy.cursor(term);
            while let Some(p) = cursor.next_posting()? {
                fancy_docs.entry(p.doc).or_insert_with(|| vec![None; m])[i] =
                    Some(state.idfs[i] * unquantize_term_score(p.tscore));
            }
        }
        let content_dirty = self.content_dirty.read();
        for (doc, known) in fancy_docs {
            if self.base.is_deleted(doc) || content_dirty.contains(&doc) {
                continue;
            }
            if known.iter().all(Option::is_some) {
                let svr = self.base.score_table.score_of(doc)?;
                let ts_sum: f64 = known.iter().flatten().sum();
                state.admit(doc, self.base.combine(svr, ts_sum));
            } else {
                state.remain.insert(doc, known);
            }
        }
        drop(content_dirty);
        Ok(MethodCursor::merge(
            MethodKind::ScoreThresholdTermScore,
            query.clone(),
            state,
        ))
    }

    fn next_batch(&self, cursor: &mut MethodCursor, n: usize) -> Result<Vec<SearchHit>> {
        merge_next_batch(self, cursor, n)
    }

    fn insert_document(&self, doc: &Document, score: Score) -> Result<()> {
        self.base.register_insert(doc, score)?;
        let max_tf = doc.max_tf();
        for &(term, tf) in &doc.terms {
            let ts = posting_term_score(tf, max_tf);
            self.short
                .put(term, PostingPos::ByScore(score), doc.id, Op::Add, ts)?;
            self.widen_fancy_bound(term, ts);
        }
        self.list_score.put(
            doc.id,
            ListScoreEntry {
                l_score: score,
                in_short_list: true,
            },
        )?;
        Ok(())
    }

    fn delete_document(&self, doc: DocId) -> Result<()> {
        self.base.register_delete(doc)
    }

    fn uninsert_document(&self, doc: DocId) -> Result<()> {
        // Fancy bounds widened by the insertion stay widened: they are
        // upper bounds, looser but never wrong. A missing ListScore entry
        // means a concurrent merge folded the insert away (merges clear
        // ListScore) — the helper's fallback covers it.
        let (pos, in_short_list) = match self.list_score.get(doc)? {
            Some(entry) => (PostingPos::ByScore(entry.l_score), entry.in_short_list),
            None => (PostingPos::ByScore(0.0), false),
        };
        if self
            .base
            .uninsert_postings_at(&self.short, doc, pos, in_short_list)?
        {
            self.list_score.delete(doc)?;
        }
        Ok(())
    }

    fn undelete_document(&self, doc: DocId) -> Result<()> {
        // Tombstoning kept the postings: reviving is pure bookkeeping.
        self.base.register_undelete(doc)?;
        Ok(())
    }

    fn update_content(&self, doc: &Document) -> Result<()> {
        let current = self.base.current_score(doc.id)?;
        let entry = self.list_state(doc.id, current)?;
        let (old, new) = self.base.register_content(doc)?;
        let old_terms: HashSet<TermId> = old.iter().map(|&(t, _)| t).collect();
        let new_terms: HashSet<TermId> = new.iter().map(|&(t, _)| t).collect();
        let pos = PostingPos::ByScore(entry.l_score);
        let max_tf = doc.max_tf();
        // New or re-weighted terms get ADD postings at the live position.
        for &(term, tf) in &new {
            let ts = posting_term_score(tf, max_tf);
            self.short.put(term, pos, doc.id, Op::Add, ts)?;
            self.widen_fancy_bound(term, ts);
        }
        for &term in old_terms.difference(&new_terms) {
            if entry.in_short_list {
                self.short.delete(term, pos, doc.id)?;
            } else {
                self.short.put(term, pos, doc.id, Op::Rem, 0)?;
            }
        }
        self.meta.mark_dirty(doc.id)?;
        self.content_dirty.write().insert(doc.id);
        Ok(())
    }

    fn merge_short_lists(&self) -> Result<()> {
        let new_meta = crate::maintenance::rebuild_score_term_lists(
            &self.base,
            &self.long,
            &self.fancy,
            self.config.fancy_size,
        )?;
        self.meta
            .put_fancy_meta(new_meta.iter().map(|(&t, &m)| (t, m)))?;
        self.meta.clear_dirty()?;
        *self.fancy_meta.write() = new_meta
            .into_iter()
            .map(|(t, (min_ts, complete))| {
                (
                    t,
                    FancyMeta {
                        min_ts,
                        complete,
                        inserted_max: 0,
                    },
                )
            })
            .collect();
        self.content_dirty.write().clear();
        self.short.clear()?;
        self.list_score.clear()
    }

    fn shard_stats(&self) -> Vec<ShardStats> {
        self.base.single_shard_stats(
            self.long.total_bytes(),
            self.long.total_postings(),
            self.short.len(),
        )
    }

    fn long_list_bytes(&self) -> u64 {
        self.long.total_bytes()
    }

    fn clear_long_cache(&self) -> Result<()> {
        for name in [store_names::LONG, store_names::FANCY] {
            if let Some(store) = self.base.store(name) {
                store.clear_cache()?;
            }
        }
        Ok(())
    }

    fn env(&self) -> &Arc<StorageEnv> {
        &self.base.env
    }

    fn current_score(&self, doc: DocId) -> Result<Score> {
        self.base.current_score(doc)
    }

    fn logs_over(&self, threshold: u64) -> bool {
        self.base.logs_over(
            &[
                store_names::SCORE,
                store_names::DOCS,
                store_names::LONG,
                store_names::SHORT,
                store_names::AUX,
                store_names::FANCY,
                store_names::META,
            ],
            threshold,
        )
    }

    fn maybe_checkpoint(&self, threshold: u64) -> Result<()> {
        self.base.maybe_checkpoint(
            &[
                store_names::SCORE,
                store_names::DOCS,
                store_names::LONG,
                store_names::SHORT,
                store_names::AUX,
                store_names::FANCY,
                store_names::META,
            ],
            threshold,
        )
    }

    fn term_dfs(&self) -> Vec<(TermId, u64)> {
        self.base.term_dfs()
    }

    fn corpus_num_docs(&self) -> u64 {
        self.base.corpus_num_docs()
    }
}
