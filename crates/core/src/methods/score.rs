//! The Score method (§4.2.2): postings ordered by decreasing score.
//!
//! Queries terminate as soon as the top-k is secure (the inverted lists are
//! already in result order), but a score update must rewrite the postings of
//! *every distinct term of the document* — "likely to be very expensive
//! because documents usually have hundreds to thousands of terms".
//!
//! Because its long list is updated in place, it is stored as a clustered
//! B+-tree (as in the paper's BerkeleyDB implementation), not as an
//! immutable blob — which is also why its Table 1 footprint is the largest.

use std::sync::Arc;

use svr_storage::StorageEnv;

use crate::config::IndexConfig;
use crate::cursor::{merge_next_batch, open_merge, CursorBackend, MethodCursor};
use crate::error::Result;
use crate::long_list::{invert_corpus, LongCursor};
use crate::merge::{Candidate, UnionCursor, UnionResume};
use crate::methods::base::{MethodBase, ShardContext};
use crate::methods::{store_names, MethodKind, ScoreMap, SearchIndex, ShardStats};
use crate::short_list::{Op, PostingPos, ShortLists, ShortOrder};
use crate::types::{DocId, Document, Query, Score, SearchHit, TermId};

/// The Score method.
pub struct ScoreMethod {
    base: MethodBase,
    /// The clustered, score-ordered long list: key `(term, score desc, doc)`.
    /// Structurally identical to a score-ordered short list, so the type is
    /// reused; every posting is an `Add`.
    list: ShortLists,
}

impl ScoreMethod {
    /// Build from a corpus and initial scores.
    pub fn build(
        docs: &[Document],
        scores: &ScoreMap,
        config: &IndexConfig,
    ) -> Result<ScoreMethod> {
        ScoreMethod::build_in(ShardContext::standalone(config), docs, scores, config)
    }

    /// Build inside an existing shard context (shared environment and
    /// corpus statistics).
    pub(crate) fn build_in(
        ctx: ShardContext,
        docs: &[Document],
        scores: &ScoreMap,
        config: &IndexConfig,
    ) -> Result<ScoreMethod> {
        let base = MethodBase::with_context(ctx, config)?;
        base.bulk_load(docs, scores)?;
        let long_store = base.create_store(store_names::LONG, config.long_cache_pages);
        let list = ShortLists::create_in(long_store, ShortOrder::ByScoreDesc, base.durable)?;
        for (term, postings) in invert_corpus(docs) {
            for p in postings {
                let score = MethodBase::initial_score(scores, p.doc);
                list.put(term, PostingPos::ByScore(score), p.doc, Op::Add, p.tscore)?;
            }
        }
        Ok(ScoreMethod { base, list })
    }

    /// Reattach a durable shard from its recovered stores (see
    /// [`crate::open_index_at`]). The clustered list is a single B+-tree,
    /// so reopening it is the whole job.
    pub(crate) fn open_in(ctx: ShardContext, config: &IndexConfig) -> Result<ScoreMethod> {
        let base = MethodBase::open_with_context(ctx, config)?;
        let list = ShortLists::open(
            base.create_store(store_names::LONG, config.long_cache_pages),
            ShortOrder::ByScoreDesc,
        )?;
        Ok(ScoreMethod { base, list })
    }
}

impl CursorBackend for ScoreMethod {
    fn cursor_kind(&self) -> MethodKind {
        MethodKind::Score
    }

    fn pool_cap(&self) -> usize {
        self.base.pool_cap
    }

    fn long_epoch(&self) -> u64 {
        // The clustered list is a B+-tree resumed by key; there is no page
        // chain to invalidate.
        0
    }

    fn stream(&self, term: TermId, resume: &UnionResume) -> Result<UnionCursor<'_>> {
        Ok(UnionCursor::resume(
            LongCursor::empty(),
            self.list.cursor_after(term, resume.short_resume_key())?,
            resume,
        ))
    }

    fn is_deleted(&self, doc: DocId) -> bool {
        self.base.is_deleted(doc)
    }

    fn resolve(&self, candidate: &Candidate, _idfs: &[f64]) -> Result<Option<Score>> {
        let PostingPos::ByScore(score) = candidate.pos else {
            unreachable!("score method produces score-ordered candidates");
        };
        // The list scores are always current: the position is the score.
        Ok(Some(score))
    }

    fn svr_bound(&self, pos: Option<PostingPos>) -> Score {
        // Candidates arrive in descending current-score order.
        match pos {
            Some(PostingPos::ByScore(s)) => s,
            Some(_) => f64::INFINITY,
            None => f64::NEG_INFINITY,
        }
    }
}

impl SearchIndex for ScoreMethod {
    fn kind(&self) -> MethodKind {
        MethodKind::Score
    }

    fn update_score(&self, doc: DocId, new_score: Score) -> Result<()> {
        let old = self.base.current_score(doc)?;
        self.base.score_table.set(doc, new_score)?;
        if old == new_score {
            return Ok(());
        }
        // Rewrite the posting of every distinct term of the document.
        let terms = self.base.doc_store.get(doc)?.unwrap_or_default();
        for (term, _) in terms {
            if let Some((op, tscore)) = self.list.get(term, PostingPos::ByScore(old), doc)? {
                self.list.delete(term, PostingPos::ByScore(old), doc)?;
                self.list
                    .put(term, PostingPos::ByScore(new_score), doc, op, tscore)?;
            }
        }
        Ok(())
    }

    fn open_cursor(&self, query: &Query) -> Result<MethodCursor> {
        Ok(open_merge(MethodKind::Score, query, Vec::new()))
    }

    fn next_batch(&self, cursor: &mut MethodCursor, n: usize) -> Result<Vec<SearchHit>> {
        merge_next_batch(self, cursor, n)
    }

    fn insert_document(&self, doc: &Document, score: Score) -> Result<()> {
        self.base.register_insert(doc, score)?;
        let max_tf = doc.max_tf();
        for &(term, tf) in &doc.terms {
            let ts = crate::long_list::posting_term_score(tf, max_tf);
            self.list
                .put(term, PostingPos::ByScore(score), doc.id, Op::Add, ts)?;
        }
        Ok(())
    }

    fn delete_document(&self, doc: DocId) -> Result<()> {
        // Remove the postings eagerly: the Score method's list is mutable
        // anyway, and tombstone checks would erode its only advantage.
        let score = self.base.current_score(doc)?;
        let terms = self.base.doc_store.get(doc)?.unwrap_or_default();
        for (term, _) in terms {
            self.list.delete(term, PostingPos::ByScore(score), doc)?;
        }
        self.base.register_delete(doc)
    }

    fn uninsert_document(&self, doc: DocId) -> Result<()> {
        let score = self.base.current_score(doc)?;
        let terms = self.base.unregister_insert(doc)?;
        for (term, _) in terms {
            self.list.delete(term, PostingPos::ByScore(score), doc)?;
        }
        Ok(())
    }

    fn undelete_document(&self, doc: DocId) -> Result<()> {
        // Deletion removed the postings eagerly: re-add them at the revived
        // score, exactly as the insertion path lays them out.
        let score = self.base.register_undelete(doc)?;
        let terms = self.base.doc_store.get(doc)?.unwrap_or_default();
        let max_tf = terms.iter().map(|&(_, tf)| tf).max().unwrap_or(1);
        for &(term, tf) in &terms {
            let ts = crate::long_list::posting_term_score(tf, max_tf);
            self.list
                .put(term, PostingPos::ByScore(score), doc, Op::Add, ts)?;
        }
        Ok(())
    }

    fn update_content(&self, doc: &Document) -> Result<()> {
        let score = self.base.current_score(doc.id)?;
        let (old, new) = self.base.register_content(doc)?;
        for (term, _) in &old {
            self.list
                .delete(*term, PostingPos::ByScore(score), doc.id)?;
        }
        let max_tf = doc.max_tf();
        let _ = new;
        for &(term, tf) in &doc.terms {
            let ts = crate::long_list::posting_term_score(tf, max_tf);
            self.list
                .put(term, PostingPos::ByScore(score), doc.id, Op::Add, ts)?;
        }
        Ok(())
    }

    fn merge_short_lists(&self) -> Result<()> {
        // The Score method has no short lists; nothing to merge.
        Ok(())
    }

    fn shard_stats(&self) -> Vec<ShardStats> {
        self.base.single_shard_stats(self.long_list_bytes(), 0, 0)
    }

    fn long_list_bytes(&self) -> u64 {
        // The clustered tree's disk footprint, including B+-tree overhead —
        // the paper's Table 1 charges the Score method for exactly this.
        self.base
            .store(store_names::LONG)
            .map(|s| s.disk().num_pages() * s.page_size() as u64)
            .unwrap_or(0)
    }

    fn clear_long_cache(&self) -> Result<()> {
        // Both the page cache and the decoded-node cache must go: the
        // clustered long list is a B+-tree.
        self.list.clear_caches()
    }

    fn env(&self) -> &Arc<StorageEnv> {
        &self.base.env
    }

    fn current_score(&self, doc: DocId) -> Result<Score> {
        self.base.current_score(doc)
    }

    fn logs_over(&self, threshold: u64) -> bool {
        self.base.logs_over(
            &[store_names::SCORE, store_names::DOCS, store_names::LONG],
            threshold,
        )
    }

    fn maybe_checkpoint(&self, threshold: u64) -> Result<()> {
        self.base.maybe_checkpoint(
            &[store_names::SCORE, store_names::DOCS, store_names::LONG],
            threshold,
        )
    }

    fn term_dfs(&self) -> Vec<(TermId, u64)> {
        self.base.term_dfs()
    }

    fn corpus_num_docs(&self) -> u64 {
        self.base.corpus_num_docs()
    }
}
