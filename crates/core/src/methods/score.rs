//! The Score method (§4.2.2): postings ordered by decreasing score.
//!
//! Queries terminate as soon as the top-k is secure (the inverted lists are
//! already in result order), but a score update must rewrite the postings of
//! *every distinct term of the document* — "likely to be very expensive
//! because documents usually have hundreds to thousands of terms".
//!
//! Because its long list is updated in place, it is stored as a clustered
//! B+-tree (as in the paper's BerkeleyDB implementation), not as an
//! immutable blob — which is also why its Table 1 footprint is the largest.

use std::sync::Arc;

use svr_storage::StorageEnv;

use crate::config::IndexConfig;
use crate::error::Result;
use crate::heap::TopKHeap;
use crate::long_list::{invert_corpus, LongCursor};
use crate::merge::{MultiMerge, UnionCursor};
use crate::methods::base::{MethodBase, ShardContext};
use crate::methods::{store_names, MethodKind, ScoreMap, SearchIndex, ShardStats};
use crate::short_list::{Op, PostingPos, ShortLists, ShortOrder};
use crate::types::{DocId, Document, Query, QueryMode, Score, SearchHit};

/// The Score method.
pub struct ScoreMethod {
    base: MethodBase,
    /// The clustered, score-ordered long list: key `(term, score desc, doc)`.
    /// Structurally identical to a score-ordered short list, so the type is
    /// reused; every posting is an `Add`.
    list: ShortLists,
}

impl ScoreMethod {
    /// Build from a corpus and initial scores.
    pub fn build(
        docs: &[Document],
        scores: &ScoreMap,
        config: &IndexConfig,
    ) -> Result<ScoreMethod> {
        ScoreMethod::build_in(ShardContext::standalone(config), docs, scores, config)
    }

    /// Build inside an existing shard context (shared environment and
    /// corpus statistics).
    pub(crate) fn build_in(
        ctx: ShardContext,
        docs: &[Document],
        scores: &ScoreMap,
        config: &IndexConfig,
    ) -> Result<ScoreMethod> {
        let base = MethodBase::with_context(ctx, config)?;
        base.bulk_load(docs, scores)?;
        let long_store = base.create_store(store_names::LONG, config.long_cache_pages);
        let list = ShortLists::create(long_store, ShortOrder::ByScoreDesc)?;
        for (term, postings) in invert_corpus(docs) {
            for p in postings {
                let score = MethodBase::initial_score(scores, p.doc);
                list.put(term, PostingPos::ByScore(score), p.doc, Op::Add, p.tscore)?;
            }
        }
        Ok(ScoreMethod { base, list })
    }
}

impl SearchIndex for ScoreMethod {
    fn kind(&self) -> MethodKind {
        MethodKind::Score
    }

    fn update_score(&self, doc: DocId, new_score: Score) -> Result<()> {
        let old = self.base.current_score(doc)?;
        self.base.score_table.set(doc, new_score)?;
        if old == new_score {
            return Ok(());
        }
        // Rewrite the posting of every distinct term of the document.
        let terms = self.base.doc_store.get(doc)?.unwrap_or_default();
        for (term, _) in terms {
            if let Some((op, tscore)) = self.list.get(term, PostingPos::ByScore(old), doc)? {
                self.list.delete(term, PostingPos::ByScore(old), doc)?;
                self.list
                    .put(term, PostingPos::ByScore(new_score), doc, op, tscore)?;
            }
        }
        Ok(())
    }

    fn query(&self, query: &Query) -> Result<Vec<SearchHit>> {
        let required = match query.mode {
            QueryMode::Conjunctive => query.terms.len(),
            QueryMode::Disjunctive => 1,
        };
        let streams: Vec<UnionCursor<'_>> = query
            .terms
            .iter()
            .map(|&t| Ok(UnionCursor::new(LongCursor::Empty, self.list.cursor(t)?)))
            .collect::<Result<_>>()?;
        let mut merge = MultiMerge::new(streams);
        let mut heap = TopKHeap::new(query.k);
        while let Some(candidate) = merge.next_candidate()? {
            let PostingPos::ByScore(score) = candidate.pos else {
                unreachable!("score method produces score-ordered candidates");
            };
            // Early termination: candidates arrive in descending score
            // order and the list scores are always current.
            if let Some(min) = heap.min_score() {
                if score < min {
                    break;
                }
            }
            if candidate.match_count() < required {
                continue;
            }
            if self.base.is_deleted(candidate.doc) {
                continue;
            }
            heap.add(candidate.doc, score);
        }
        Ok(heap.into_ranked())
    }

    fn insert_document(&self, doc: &Document, score: Score) -> Result<()> {
        self.base.register_insert(doc, score)?;
        let max_tf = doc.max_tf();
        for &(term, tf) in &doc.terms {
            let ts = crate::long_list::posting_term_score(tf, max_tf);
            self.list
                .put(term, PostingPos::ByScore(score), doc.id, Op::Add, ts)?;
        }
        Ok(())
    }

    fn delete_document(&self, doc: DocId) -> Result<()> {
        // Remove the postings eagerly: the Score method's list is mutable
        // anyway, and tombstone checks would erode its only advantage.
        let score = self.base.current_score(doc)?;
        let terms = self.base.doc_store.get(doc)?.unwrap_or_default();
        for (term, _) in terms {
            self.list.delete(term, PostingPos::ByScore(score), doc)?;
        }
        self.base.register_delete(doc)
    }

    fn update_content(&self, doc: &Document) -> Result<()> {
        let score = self.base.current_score(doc.id)?;
        let (old, new) = self.base.register_content(doc)?;
        for (term, _) in &old {
            self.list
                .delete(*term, PostingPos::ByScore(score), doc.id)?;
        }
        let max_tf = doc.max_tf();
        let _ = new;
        for &(term, tf) in &doc.terms {
            let ts = crate::long_list::posting_term_score(tf, max_tf);
            self.list
                .put(term, PostingPos::ByScore(score), doc.id, Op::Add, ts)?;
        }
        Ok(())
    }

    fn merge_short_lists(&self) -> Result<()> {
        // The Score method has no short lists; nothing to merge.
        Ok(())
    }

    fn shard_stats(&self) -> Vec<ShardStats> {
        self.base.single_shard_stats(self.long_list_bytes(), 0)
    }

    fn long_list_bytes(&self) -> u64 {
        // The clustered tree's disk footprint, including B+-tree overhead —
        // the paper's Table 1 charges the Score method for exactly this.
        self.base
            .store(store_names::LONG)
            .map(|s| s.disk().num_pages() * s.page_size() as u64)
            .unwrap_or(0)
    }

    fn clear_long_cache(&self) -> Result<()> {
        // Both the page cache and the decoded-node cache must go: the
        // clustered long list is a B+-tree.
        self.list.clear_caches()
    }

    fn env(&self) -> &Arc<StorageEnv> {
        &self.base.env
    }

    fn current_score(&self, doc: DocId) -> Result<Score> {
        self.base.current_score(doc)
    }
}
