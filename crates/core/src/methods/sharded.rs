//! Document-partitioned write sharding: parallel same-collection writers.
//!
//! The paper's deployment is single-writer — one update stream from the
//! materialized Score view — so every structure in §4 assumes at most one
//! mutator. [`ShardedIndex`] lifts that limit for update-intensive serving:
//! the collection is hash-partitioned by **document id** into `N` shards,
//! and each shard is a complete method instance (its own Score-table
//! region, short-list store, long-list store, chunk map and maintenance
//! state) behind an independent writer lock. Score updates, insertions,
//! deletions and content updates touch exactly one shard, so writers of
//! documents in different shards run in parallel; batch refreshes group
//! their documents by shard and apply the groups concurrently.
//!
//! Partitioning by document (not by term) is what keeps rankings exact:
//!
//! * every shard holds the *complete* postings of its documents, so the
//!   conjunctive merge alignment of [`crate::merge::MultiMerge`] — which
//!   matches a document across per-term streams at one list position —
//!   never spans shards;
//! * a top-k query runs the method's own early-terminating algorithm
//!   inside each shard and the per-shard top-k results are merged: the
//!   global top-k is a subset of the union of the shard top-k sets, so the
//!   merged answer equals the unsharded one;
//! * document frequencies and the live document count are shared across
//!   shards ([`base::CorpusStats`]), so the term-score methods compute the
//!   same collection-wide IDF at any shard count.
//!
//! All shards live in one [`StorageEnv`] under per-shard store-name
//! prefixes, so I/O accounting and the cold-cache query protocol keep
//! working unchanged.

use std::collections::VecDeque;
use std::sync::Arc;

use svr_storage::StorageEnv;

use crate::config::IndexConfig;
use crate::cursor::{CursorState, MethodCursor, ShardSlot};
use crate::error::{CoreError, Result};
use crate::heap::{ranks_above, TopKHeap};
use crate::methods::base::{CorpusStats, ShardContext};
use crate::methods::{LockedIndex, MethodKind, ScoreMap, ScoreRead, SearchIndex, ShardStats};
use crate::types::{DocId, Document, Query, Score, SearchHit};

/// The shard owning `doc` among `num_shards` partitions. Fibonacci hashing
/// spreads sequential primary keys evenly instead of striping them.
#[inline]
pub fn shard_of_doc(doc: DocId, num_shards: usize) -> usize {
    if num_shards <= 1 {
        return 0;
    }
    (doc.0.wrapping_mul(0x9E37_79B1) >> 16) as usize % num_shards
}

/// A document-partitioned index: `N` complete method instances, each behind
/// its own writer lock. Built through [`crate::build_index`] with
/// `IndexConfig::num_shards > 1`.
pub struct ShardedIndex<I> {
    env: Arc<StorageEnv>,
    shards: Vec<LockedIndex<I>>,
}

impl<I: SearchIndex> ShardedIndex<I> {
    /// Partition `docs` by shard and build one method instance per shard in
    /// a shared environment with shared corpus statistics.
    pub(crate) fn build_with(
        docs: &[Document],
        scores: &ScoreMap,
        config: &IndexConfig,
        build: impl Fn(ShardContext, &[Document], &ScoreMap, &IndexConfig) -> Result<I>,
    ) -> Result<ShardedIndex<I>> {
        let loc = crate::methods::IndexLocation::new(
            Arc::new(StorageEnv::new(config.page_size)),
            String::new(),
        );
        ShardedIndex::build_rooted(
            &loc,
            Arc::new(CorpusStats::default()),
            docs,
            scores,
            config,
            build,
        )
    }

    /// [`ShardedIndex::build_with`] into a caller-owned environment rooted
    /// at `loc.prefix` (durable when the environment is) with caller-owned
    /// shared statistics.
    pub(crate) fn build_rooted(
        loc: &crate::methods::IndexLocation,
        stats: Arc<CorpusStats>,
        docs: &[Document],
        scores: &ScoreMap,
        config: &IndexConfig,
        build: impl Fn(ShardContext, &[Document], &ScoreMap, &IndexConfig) -> Result<I>,
    ) -> Result<ShardedIndex<I>> {
        let n = config.num_shards.max(1);
        let env = loc.env.clone();
        let durable = env.is_durable();
        // One pass over the corpus, not one per shard.
        let mut partitions: Vec<(Vec<Document>, ScoreMap)> =
            (0..n).map(|_| Default::default()).collect();
        for doc in docs {
            let (shard_docs, shard_scores) = &mut partitions[shard_of_doc(doc.id, n)];
            if let Some(&score) = scores.get(&doc.id) {
                shard_scores.insert(doc.id, score);
            }
            shard_docs.push(doc.clone());
        }
        let mut shards = Vec::with_capacity(n);
        for (s, (shard_docs, shard_scores)) in partitions.into_iter().enumerate() {
            let ctx = ShardContext::shard(env.clone(), stats.clone(), &loc.prefix, s, durable);
            shards.push(LockedIndex::new(build(
                ctx,
                &shard_docs,
                &shard_scores,
                config,
            )?));
        }
        Ok(ShardedIndex { env, shards })
    }

    /// Reattach a sharded index previously built durably at `loc`: every
    /// shard reopens from its recovered stores and repopulates the shared
    /// corpus statistics from its own forward index. Shard count comes
    /// from `config` (the engine persists the build configuration).
    pub(crate) fn open_rooted(
        loc: &crate::methods::IndexLocation,
        stats: Arc<CorpusStats>,
        config: &IndexConfig,
        open: impl Fn(ShardContext, &IndexConfig) -> Result<I>,
    ) -> Result<ShardedIndex<I>> {
        let n = config.num_shards.max(1);
        let env = loc.env.clone();
        let mut shards = Vec::with_capacity(n);
        for s in 0..n {
            let ctx = ShardContext::shard(env.clone(), stats.clone(), &loc.prefix, s, true);
            shards.push(LockedIndex::new(open(ctx, config)?));
        }
        Ok(ShardedIndex { env, shards })
    }

    #[inline]
    fn shard(&self, doc: DocId) -> &LockedIndex<I> {
        &self.shards[shard_of_doc(doc, self.shards.len())]
    }
}

impl<I: SearchIndex> SearchIndex for ShardedIndex<I> {
    fn kind(&self) -> MethodKind {
        self.shards[0].kind()
    }

    /// Routed to the owning shard: updates of documents in different shards
    /// take different locks and proceed in parallel.
    fn update_score(&self, doc: DocId, new_score: Score) -> Result<()> {
        self.shard(doc).update_score(doc, new_score)
    }

    /// Group by shard, then apply the groups in parallel — one thread per
    /// touched shard, each under its own shard lock, each re-reading scores
    /// under that lock (the stale-proofing contract of the trait).
    fn refresh_scores(&self, docs: &[DocId], read: ScoreRead) -> Result<()> {
        let n = self.shards.len();
        let mut groups: Vec<Vec<DocId>> = vec![Vec::new(); n];
        for &doc in docs {
            groups[shard_of_doc(doc, n)].push(doc);
        }
        let touched = groups.iter().filter(|g| !g.is_empty()).count();
        if touched <= 1 {
            for (s, group) in groups.iter().enumerate() {
                if !group.is_empty() {
                    self.shards[s].refresh_scores(group, read)?;
                }
            }
            return Ok(());
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .iter()
                .enumerate()
                .filter(|(_, group)| !group.is_empty())
                .map(|(s, group)| {
                    let shard = &self.shards[s];
                    scope.spawn(move || shard.refresh_scores(group, read))
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(result) => result?,
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
            Ok(())
        })
    }

    /// Open one enumeration per shard; batches k-way-merge them lazily.
    fn open_cursor(&self, query: &Query) -> Result<MethodCursor> {
        let slots = self
            .shards
            .iter()
            .map(|shard| {
                Ok(ShardSlot {
                    cursor: shard.open_cursor(query)?,
                    buf: VecDeque::new(),
                    done: false,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(MethodCursor::sharded(self.kind(), query.clone(), slots))
    }

    /// k-way merge over the per-shard cursors: each emission takes the
    /// best buffered head across shards, and a shard is pulled (under its
    /// own read lock, in request-sized batches) only when its buffer runs
    /// dry — the merge never pays for ranks a shard is not asked for.
    fn next_batch(&self, cursor: &mut MethodCursor, n: usize) -> Result<Vec<SearchHit>> {
        let CursorState::Sharded(slots) = &mut cursor.state else {
            return Err(CoreError::Unsupported(
                "unsharded cursor used on a sharded index",
            ));
        };
        if slots.len() != self.shards.len() {
            return Err(CoreError::Unsupported(
                "cursor was opened by an index with a different shard count",
            ));
        }
        let mut out = Vec::with_capacity(n.min(64));
        while out.len() < n {
            for (shard, slot) in self.shards.iter().zip(slots.iter_mut()) {
                if slot.buf.is_empty() && !slot.done {
                    let pulled = shard.next_batch(&mut slot.cursor, n - out.len())?;
                    if pulled.is_empty() {
                        slot.done = true;
                    }
                    slot.buf.extend(pulled);
                }
            }
            let best = slots
                .iter_mut()
                .filter_map(|slot| slot.buf.front().copied().map(|hit| (hit, slot)))
                .reduce(|a, b| if ranks_above(&b.0, &a.0) { b } else { a });
            match best {
                None => break,
                Some((hit, slot)) => {
                    slot.buf.pop_front();
                    out.push(hit);
                }
            }
        }
        Ok(out)
    }

    /// Fan out to every shard and merge the per-shard top-k sets. Each
    /// shard runs the method's own early-terminating algorithm over its
    /// complete per-document postings, so the merged ranking equals the
    /// unsharded one.
    fn query(&self, query: &Query) -> Result<Vec<SearchHit>> {
        let mut heap = TopKHeap::new(query.k);
        for shard in &self.shards {
            for hit in shard.query(query)? {
                heap.add(hit.doc, hit.score);
            }
        }
        Ok(heap.into_ranked())
    }

    fn insert_document(&self, doc: &Document, score: Score) -> Result<()> {
        self.shard(doc.id).insert_document(doc, score)
    }

    fn delete_document(&self, doc: DocId) -> Result<()> {
        self.shard(doc).delete_document(doc)
    }

    fn uninsert_document(&self, doc: DocId) -> Result<()> {
        self.shard(doc).uninsert_document(doc)
    }

    fn undelete_document(&self, doc: DocId) -> Result<()> {
        self.shard(doc).undelete_document(doc)
    }

    fn update_content(&self, doc: &Document) -> Result<()> {
        self.shard(doc.id).update_content(doc)
    }

    /// Merge every shard, one thread per shard: shard `s`'s merge only
    /// excludes writers of shard `s`, so maintenance of a busy collection
    /// no longer stalls every writer at once.
    fn merge_short_lists(&self) -> Result<()> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|shard| scope.spawn(move || shard.merge_short_lists()))
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(result) => result?,
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
            Ok(())
        })
    }

    fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, doc: DocId) -> usize {
        shard_of_doc(doc, self.shards.len())
    }

    fn merge_shard(&self, shard: usize) -> Result<()> {
        self.shards
            .get(shard)
            .ok_or(CoreError::Unsupported("shard index out of range"))?
            .merge_short_lists()
    }

    fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(s, shard)| {
                let mut stats = shard.shard_stats().remove(0);
                stats.shard = s;
                stats
            })
            .collect()
    }

    fn long_list_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.long_list_bytes()).sum()
    }

    fn clear_long_cache(&self) -> Result<()> {
        for shard in &self.shards {
            shard.clear_long_cache()?;
        }
        Ok(())
    }

    fn env(&self) -> &Arc<StorageEnv> {
        &self.env
    }

    fn current_score(&self, doc: DocId) -> Result<Score> {
        self.shard(doc).current_score(doc)
    }

    fn logs_over(&self, threshold: u64) -> bool {
        self.shards.iter().any(|s| s.logs_over(threshold))
    }

    fn maybe_checkpoint(&self, threshold: u64) -> Result<()> {
        // Each shard gates lock-free and checkpoints under its own writer
        // lock only when its own logs are past threshold.
        for shard in &self.shards {
            shard.maybe_checkpoint(threshold)?;
        }
        Ok(())
    }

    fn term_dfs(&self) -> Vec<(crate::types::TermId, u64)> {
        // Statistics are shared across shards; any shard reports them all.
        self.shards[0].term_dfs()
    }

    fn corpus_num_docs(&self) -> u64 {
        self.shards[0].corpus_num_docs()
    }

    fn set_group_refresh(&self, enabled: bool) {
        for shard in &self.shards {
            shard.set_group_refresh(enabled);
        }
    }

    fn group_refresh_enabled(&self) -> bool {
        self.shards.iter().any(|s| s.group_refresh_enabled())
    }

    fn refresh_group_stats(&self) -> crate::methods::RefreshGroupStats {
        let mut total = crate::methods::RefreshGroupStats::default();
        for shard in &self.shards {
            total.merge(&shard.refresh_group_stats());
        }
        total
    }

    fn seek_stats(&self) -> crate::multiterm::SeekStats {
        self.shards
            .iter()
            .map(|s| s.seek_stats())
            .fold(crate::multiterm::SeekStats::default(), |acc, s| acc + s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_and_in_range() {
        for n in [1usize, 2, 3, 8] {
            for id in 0..1_000u32 {
                let s = shard_of_doc(DocId(id), n);
                assert!(s < n);
                assert_eq!(s, shard_of_doc(DocId(id), n), "stable");
            }
        }
    }

    #[test]
    fn sequential_ids_spread_across_shards() {
        let n = 8;
        let mut counts = vec![0usize; n];
        for id in 0..4_000u32 {
            counts[shard_of_doc(DocId(id), n)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                c > 4_000 / n / 2 && c < 4_000 / n * 2,
                "shard {s} unbalanced: {c}"
            );
        }
    }
}
