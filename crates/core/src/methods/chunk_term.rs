//! The Chunk-TermScore method (§4.3.3, Algorithm 3): the Chunk method
//! extended with per-posting term scores and per-term *fancy lists* (Long &
//! Suel) so it can rank by the combined function
//! `f(svr, ts) = svr + w·Σ idf(t)·ts(d,t)` and answer both conjunctive and
//! disjunctive queries with early termination.
//!
//! Query processing:
//! 1. merge the fancy lists; docs present in *all* of them become exact
//!    tentative results; docs present in *some* go to the `remainList`;
//! 2. merge short ∪ long lists chunk by chunk as in the Chunk method,
//!    removing encountered docs from the remainList;
//! 3. at each chunk boundary, prune the remainList with the combined upper
//!    bound and stop once it is empty and no unseen document can beat the
//!    secured top-k.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use parking_lot::RwLock;
use svr_storage::StorageEnv;
use svr_text::postings::TermScoredPosting;
use svr_text::unquantize_term_score;

use crate::aux_table::{ListChunkEntry, ListChunkTable};
use crate::chunk_map::ChunkMap;
use crate::config::IndexConfig;
use crate::cursor::{merge_next_batch, CursorBackend, MergeState, MethodCursor};
use crate::error::Result;
use crate::long_list::{invert_corpus, posting_term_score, ListFormat, LongListStore};
use crate::merge::{Candidate, UnionCursor, UnionResume};
use crate::methods::base::{MethodBase, ShardContext};
use crate::methods::chunk::group_by_chunk;
use crate::methods::{store_names, MethodKind, ScoreMap, SearchIndex, ShardStats};
use crate::short_list::{Op, PostingPos, ShortLists, ShortOrder};
use crate::types::{DocId, Document, Query, Score, SearchHit, TermId};

/// Per-term fancy-list metadata.
#[derive(Debug, Clone, Copy, Default)]
struct FancyMeta {
    /// Minimum quantized term score among fancy postings (`minF`).
    min_ts: u16,
    /// True when the fancy list holds the term's *entire* posting list, so
    /// any non-fancy doc has term score 0 for it.
    complete: bool,
    /// Max quantized term score among postings added since the last offline
    /// merge (insertions / content updates can exceed `minF` and must widen
    /// the stopping bound).
    inserted_max: u16,
}

impl FancyMeta {
    /// Effective upper bound on the term score of any doc outside the fancy
    /// list.
    fn bound(&self) -> u16 {
        let base = if self.complete { 0 } else { self.min_ts };
        base.max(self.inserted_max)
    }
}

/// The Chunk-TermScore method.
pub struct ChunkTermMethod {
    base: MethodBase,
    config: IndexConfig,
    long: LongListStore,
    short: ShortLists,
    fancy: LongListStore,
    list_chunk: ListChunkTable,
    chunk_map: RwLock<ChunkMap>,
    fancy_meta: RwLock<HashMap<TermId, FancyMeta>>,
    /// Docs whose content changed since the last offline merge: their fancy
    /// postings may list terms they no longer contain (or stale term
    /// scores), so phase 1 must not trust them. Their live postings are
    /// found in phase 2, and `widen_fancy_bound` keeps the stopping bound
    /// sound for their new term scores.
    content_dirty: RwLock<HashSet<DocId>>,
    /// Durable shard metadata: chunk boundaries + per-term `(min_ts,
    /// complete)` (build/merge time) and content-dirty markers (content
    /// updates), so a reopen reconstructs the exact query behavior. The
    /// insert-time `inserted_max` widening is re-derived from the short
    /// lists at open instead of being written per insert.
    meta: crate::durable::MetaTable,
}

/// Select the fancy list: the `fancy_size` postings with the highest term
/// scores (ties by doc id), returned in doc-id order together with metadata.
fn build_fancy(
    postings: &[TermScoredPosting],
    fancy_size: usize,
) -> (Vec<TermScoredPosting>, FancyMeta) {
    let mut ranked: Vec<TermScoredPosting> = postings.to_vec();
    ranked.sort_by(|a, b| b.tscore.cmp(&a.tscore).then_with(|| a.doc.cmp(&b.doc)));
    ranked.truncate(fancy_size);
    let complete = ranked.len() == postings.len();
    let min_ts = ranked.iter().map(|p| p.tscore).min().unwrap_or(0);
    ranked.sort_by_key(|p| p.doc);
    (
        ranked,
        FancyMeta {
            min_ts,
            complete,
            inserted_max: 0,
        },
    )
}

impl ChunkTermMethod {
    /// Build from a corpus and initial scores.
    pub fn build(
        docs: &[Document],
        scores: &ScoreMap,
        config: &IndexConfig,
    ) -> Result<ChunkTermMethod> {
        ChunkTermMethod::build_in(ShardContext::standalone(config), docs, scores, config)
    }

    /// Build inside an existing shard context (shared environment and
    /// corpus statistics — the IDF weights stay collection-wide).
    pub(crate) fn build_in(
        ctx: ShardContext,
        docs: &[Document],
        scores: &ScoreMap,
        config: &IndexConfig,
    ) -> Result<ChunkTermMethod> {
        let base = MethodBase::with_context(ctx, config)?;
        base.bulk_load(docs, scores)?;
        let long_store = base.create_store(store_names::LONG, config.long_cache_pages);
        let short_store = base.create_store(store_names::SHORT, config.small_cache_pages);
        let aux_store = base.create_store(store_names::AUX, config.small_cache_pages);
        let fancy_store = base.create_store(store_names::FANCY, config.small_cache_pages);
        let meta_store = base.create_store(store_names::META, config.small_cache_pages);
        let long = LongListStore::create_in(
            long_store,
            ListFormat::Chunked { with_scores: true },
            config.codec,
            base.durable,
        )?;
        let short = ShortLists::create_in(short_store, ShortOrder::ByChunkDesc, base.durable)?;
        let fancy = LongListStore::create_in(
            fancy_store,
            ListFormat::Id { with_scores: true },
            config.codec,
            base.durable,
        )?;
        let list_chunk = ListChunkTable::create_in(aux_store, base.durable)?;
        let meta_table = crate::durable::MetaTable::create(meta_store, base.durable)?;

        let all_scores: Vec<Score> = docs
            .iter()
            .map(|d| MethodBase::initial_score(scores, d.id))
            .collect();
        let chunk_map =
            ChunkMap::from_scores(&all_scores, config.chunk_ratio, config.min_chunk_docs);
        let mut fancy_meta = HashMap::new();
        for (term, postings) in invert_corpus(docs) {
            let groups = group_by_chunk(&postings, |doc| {
                chunk_map.chunk_of(MethodBase::initial_score(scores, doc))
            });
            long.put_chunked_list(term, &groups)?;

            let (fancy_postings, meta) = build_fancy(&postings, config.fancy_size);
            fancy.put_id_list(term, &fancy_postings)?;
            fancy_meta.insert(term, meta);
        }
        meta_table.put_chunk_map(chunk_map.boundaries())?;
        meta_table.put_fancy_meta(fancy_meta.iter().map(|(&t, m)| (t, (m.min_ts, m.complete))))?;
        Ok(ChunkTermMethod {
            base,
            config: config.clone(),
            long,
            short,
            fancy,
            list_chunk,
            chunk_map: RwLock::new(chunk_map),
            fancy_meta: RwLock::new(fancy_meta),
            content_dirty: RwLock::new(HashSet::new()),
            meta: meta_table,
        })
    }

    /// Reattach a durable shard from its recovered stores (see
    /// [`crate::open_index_at`]): structures reopen; the chunk map, fancy
    /// metadata and content-dirty set reload from the shard metadata; the
    /// fancy bounds' insert-time widening is re-derived from the short
    /// lists' surviving `Add` postings (an over-approximation is sound —
    /// bounds only get looser).
    pub(crate) fn open_in(ctx: ShardContext, config: &IndexConfig) -> Result<ChunkTermMethod> {
        let base = MethodBase::open_with_context(ctx, config)?;
        let long = LongListStore::open(
            base.create_store(store_names::LONG, config.long_cache_pages),
            ListFormat::Chunked { with_scores: true },
            config.codec,
        )?;
        let short = ShortLists::open(
            base.create_store(store_names::SHORT, config.small_cache_pages),
            ShortOrder::ByChunkDesc,
        )?;
        let fancy = LongListStore::open(
            base.create_store(store_names::FANCY, config.small_cache_pages),
            ListFormat::Id { with_scores: true },
            config.codec,
        )?;
        let list_chunk =
            ListChunkTable::open(base.create_store(store_names::AUX, config.small_cache_pages))?;
        let meta_table = crate::durable::MetaTable::open(
            base.create_store(store_names::META, config.small_cache_pages),
        )?;
        let chunk_map = meta_table
            .chunk_map()?
            .and_then(ChunkMap::from_boundaries)
            .ok_or(crate::error::CoreError::Storage(
                svr_storage::StorageError::Corrupt("missing or invalid persisted chunk map"),
            ))?;
        let mut fancy_meta: HashMap<TermId, FancyMeta> = meta_table
            .fancy_meta()?
            .into_iter()
            .map(|(t, (min_ts, complete))| {
                (
                    t,
                    FancyMeta {
                        min_ts,
                        complete,
                        inserted_max: 0,
                    },
                )
            })
            .collect();
        for (term, max_ts) in short.max_add_tscores()? {
            let m = fancy_meta.entry(term).or_default();
            m.inserted_max = m.inserted_max.max(max_ts);
        }
        let content_dirty = meta_table.dirty_docs()?;
        Ok(ChunkTermMethod {
            base,
            config: config.clone(),
            long,
            short,
            fancy,
            list_chunk,
            chunk_map: RwLock::new(chunk_map),
            fancy_meta: RwLock::new(fancy_meta),
            content_dirty: RwLock::new(content_dirty),
            meta: meta_table,
        })
    }

    fn list_state(&self, doc: DocId, current_score: Score) -> Result<ListChunkEntry> {
        match self.list_chunk.get(doc)? {
            Some(entry) => Ok(entry),
            None => Ok(ListChunkEntry {
                l_chunk: self.chunk_map.read().chunk_of(current_score),
                in_short_list: false,
            }),
        }
    }

    /// Record that a posting with `ts` entered the index outside the fancy
    /// lists (insertion / content update): the stopping bound must cover it.
    fn widen_fancy_bound(&self, term: TermId, ts: u16) {
        let mut meta = self.fancy_meta.write();
        let m = meta.entry(term).or_default();
        m.inserted_max = m.inserted_max.max(ts);
    }

    /// Per-term upper bound on term scores of docs outside the fancy list.
    fn fancy_bound(&self, term: TermId) -> f64 {
        let meta = self.fancy_meta.read();
        unquantize_term_score(meta.get(&term).map(|m| m.bound()).unwrap_or(0))
    }
}

impl CursorBackend for ChunkTermMethod {
    fn cursor_kind(&self) -> MethodKind {
        MethodKind::ChunkTermScore
    }

    fn pool_cap(&self) -> usize {
        self.base.pool_cap
    }

    fn long_epoch(&self) -> u64 {
        self.long.epoch()
    }

    fn stream(&self, term: TermId, resume: &UnionResume) -> Result<UnionCursor<'_>> {
        Ok(UnionCursor::resume(
            self.long.resume_cursor(term, resume.long_resume())?,
            self.short.cursor_after(term, resume.short_resume_key())?,
            resume,
        ))
    }

    fn is_deleted(&self, doc: DocId) -> bool {
        self.base.is_deleted(doc)
    }

    /// Phase-2 scoring of Algorithm 3: SVR resolution as in the Chunk
    /// method plus the matched term-score contributions.
    fn resolve(&self, candidate: &Candidate, idfs: &[f64]) -> Result<Option<Score>> {
        let svr = if candidate.all_short() {
            self.base.score_table.score_of(candidate.doc)?
        } else {
            match self.list_chunk.get(candidate.doc)? {
                Some(entry) if entry.in_short_list => return Ok(None), // superseded
                _ => self.base.score_table.score_of(candidate.doc)?,
            }
        };
        let mut ts_sum = 0.0;
        for (i, matched) in candidate.matches.iter().enumerate() {
            if let Some(mt) = matched {
                ts_sum += idfs[i] * unquantize_term_score(mt.tscore);
            }
        }
        Ok(Some(self.base.combine(svr, ts_sum)))
    }

    fn svr_bound(&self, pos: Option<PostingPos>) -> Score {
        match pos {
            Some(PostingPos::ByChunk(c)) => self.chunk_map.read().max_possible_score(c),
            Some(_) => f64::INFINITY,
            None => f64::NEG_INFINITY,
        }
    }

    fn term_fancy_bound(&self, term: TermId) -> f64 {
        self.fancy_bound(term)
    }

    fn combine(&self, svr: Score, ts_sum: f64) -> Score {
        self.base.combine(svr, ts_sum)
    }
}

impl SearchIndex for ChunkTermMethod {
    fn kind(&self) -> MethodKind {
        MethodKind::ChunkTermScore
    }

    /// "The score update algorithm for the Chunk-TermScore method is the
    /// same as the Chunk method" — with the document's stored term scores
    /// replicated into the short postings.
    fn update_score(&self, doc: DocId, new_score: Score) -> Result<()> {
        let old_score = self.base.current_score(doc)?;
        self.base.score_table.set(doc, new_score)?;
        let entry = self.list_state(doc, old_score)?;
        if self.list_chunk.get(doc)?.is_none() {
            self.list_chunk.put(
                doc,
                ListChunkEntry {
                    l_chunk: entry.l_chunk,
                    in_short_list: false,
                },
            )?;
        }
        let new_chunk = self.chunk_map.read().chunk_of(new_score);
        if new_chunk > entry.l_chunk + 1 {
            let terms = self.base.doc_store.get(doc)?.unwrap_or_default();
            let max_tf = terms.iter().map(|&(_, tf)| tf).max().unwrap_or(0);
            for (term, tf) in terms {
                if entry.in_short_list {
                    self.short
                        .delete(term, PostingPos::ByChunk(entry.l_chunk), doc)?;
                }
                let ts = posting_term_score(tf, max_tf);
                self.short
                    .put(term, PostingPos::ByChunk(new_chunk), doc, Op::Add, ts)?;
            }
            self.list_chunk.put(
                doc,
                ListChunkEntry {
                    l_chunk: new_chunk,
                    in_short_list: true,
                },
            )?;
        }
        Ok(())
    }

    /// Algorithm 3 as an any-k enumeration: phase 1 (fancy-list merge,
    /// lines 8-9) runs at open time and pre-fills the cursor's pool and
    /// `remainList`; phase 2 is the suspendable chunk-by-chunk merge driven
    /// by [`crate::cursor`].
    fn open_cursor(&self, query: &Query) -> Result<MethodCursor> {
        let m = query.terms.len();
        let idfs: Vec<f64> = query.terms.iter().map(|&t| self.base.idf(t)).collect();
        let mut state = MergeState::new(m, idfs);

        let mut fancy_docs: HashMap<DocId, Vec<Option<f64>>> = HashMap::new();
        for (i, &term) in query.terms.iter().enumerate() {
            let mut cursor = self.fancy.cursor(term);
            while let Some(p) = cursor.next_posting()? {
                fancy_docs.entry(p.doc).or_insert_with(|| vec![None; m])[i] =
                    Some(state.idfs[i] * unquantize_term_score(p.tscore));
            }
        }
        let content_dirty = self.content_dirty.read();
        for (doc, known) in fancy_docs {
            if self.base.is_deleted(doc) || content_dirty.contains(&doc) {
                continue;
            }
            if known.iter().all(Option::is_some) {
                // In every fancy list: an exact (SVR from the Score table,
                // term scores from the fancy postings) result.
                let svr = self.base.score_table.score_of(doc)?;
                let ts_sum: f64 = known.iter().flatten().sum();
                state.admit(doc, self.base.combine(svr, ts_sum));
            } else {
                state.remain.insert(doc, known);
            }
        }
        drop(content_dirty);
        Ok(MethodCursor::merge(
            MethodKind::ChunkTermScore,
            query.clone(),
            state,
        ))
    }

    fn next_batch(&self, cursor: &mut MethodCursor, n: usize) -> Result<Vec<SearchHit>> {
        merge_next_batch(self, cursor, n)
    }

    fn insert_document(&self, doc: &Document, score: Score) -> Result<()> {
        self.base.register_insert(doc, score)?;
        let chunk = self.chunk_map.read().chunk_of(score);
        let max_tf = doc.max_tf();
        for &(term, tf) in &doc.terms {
            let ts = posting_term_score(tf, max_tf);
            self.short
                .put(term, PostingPos::ByChunk(chunk), doc.id, Op::Add, ts)?;
            self.widen_fancy_bound(term, ts);
        }
        self.list_chunk.put(
            doc.id,
            ListChunkEntry {
                l_chunk: chunk,
                in_short_list: true,
            },
        )?;
        Ok(())
    }

    fn delete_document(&self, doc: DocId) -> Result<()> {
        self.base.register_delete(doc)
    }

    fn uninsert_document(&self, doc: DocId) -> Result<()> {
        // Fancy bounds widened by the insertion stay widened: they are
        // upper bounds, looser but never wrong. A missing ListChunk entry
        // means a concurrent merge folded the insert away (merges clear
        // ListChunk) — the helper's fallback covers it.
        let (pos, in_short_list) = match self.list_chunk.get(doc)? {
            Some(entry) => (PostingPos::ByChunk(entry.l_chunk), entry.in_short_list),
            None => (PostingPos::ByChunk(0), false),
        };
        if self
            .base
            .uninsert_postings_at(&self.short, doc, pos, in_short_list)?
        {
            self.list_chunk.delete(doc)?;
        }
        Ok(())
    }

    fn undelete_document(&self, doc: DocId) -> Result<()> {
        // Tombstoning kept the postings: reviving is pure bookkeeping.
        self.base.register_undelete(doc)?;
        Ok(())
    }

    fn update_content(&self, doc: &Document) -> Result<()> {
        let current = self.base.current_score(doc.id)?;
        let entry = self.list_state(doc.id, current)?;
        let (old, new) = self.base.register_content(doc)?;
        let old_terms: HashSet<TermId> = old.iter().map(|&(t, _)| t).collect();
        let new_terms: HashSet<TermId> = new.iter().map(|&(t, _)| t).collect();
        let pos = PostingPos::ByChunk(entry.l_chunk);
        let max_tf = doc.max_tf();
        // New or re-weighted terms get ADD postings at the live position.
        for &(term, tf) in &new {
            let ts = posting_term_score(tf, max_tf);
            self.short.put(term, pos, doc.id, Op::Add, ts)?;
            self.widen_fancy_bound(term, ts);
        }
        for &term in old_terms.difference(&new_terms) {
            if entry.in_short_list {
                self.short.delete(term, pos, doc.id)?;
            } else {
                self.short.put(term, pos, doc.id, Op::Rem, 0)?;
            }
        }
        self.meta.mark_dirty(doc.id)?;
        self.content_dirty.write().insert(doc.id);
        Ok(())
    }

    fn merge_short_lists(&self) -> Result<()> {
        let (new_map, new_meta) = crate::maintenance::rebuild_chunk_term_lists(
            &self.base,
            &self.long,
            &self.fancy,
            self.config.fancy_size,
            self.config.chunk_ratio,
            self.config.min_chunk_docs,
            self.chunk_map.read().clone(),
        )?;
        self.meta.put_chunk_map(new_map.boundaries())?;
        self.meta
            .put_fancy_meta(new_meta.iter().map(|(&t, &m)| (t, m)))?;
        self.meta.clear_dirty()?;
        *self.chunk_map.write() = new_map;
        *self.fancy_meta.write() = new_meta
            .into_iter()
            .map(|(t, (min_ts, complete))| {
                (
                    t,
                    FancyMeta {
                        min_ts,
                        complete,
                        inserted_max: 0,
                    },
                )
            })
            .collect();
        self.content_dirty.write().clear();
        self.short.clear()?;
        self.list_chunk.clear()
    }

    fn shard_stats(&self) -> Vec<ShardStats> {
        self.base.single_shard_stats(
            self.long.total_bytes(),
            self.long.total_postings(),
            self.short.len(),
        )
    }

    fn long_list_bytes(&self) -> u64 {
        self.long.total_bytes()
    }

    fn clear_long_cache(&self) -> Result<()> {
        for name in [store_names::LONG, store_names::FANCY] {
            if let Some(store) = self.base.store(name) {
                store.clear_cache()?;
            }
        }
        Ok(())
    }

    fn env(&self) -> &Arc<StorageEnv> {
        &self.base.env
    }

    fn current_score(&self, doc: DocId) -> Result<Score> {
        self.base.current_score(doc)
    }

    fn logs_over(&self, threshold: u64) -> bool {
        self.base.logs_over(
            &[
                store_names::SCORE,
                store_names::DOCS,
                store_names::LONG,
                store_names::SHORT,
                store_names::AUX,
                store_names::FANCY,
                store_names::META,
            ],
            threshold,
        )
    }

    fn maybe_checkpoint(&self, threshold: u64) -> Result<()> {
        self.base.maybe_checkpoint(
            &[
                store_names::SCORE,
                store_names::DOCS,
                store_names::LONG,
                store_names::SHORT,
                store_names::AUX,
                store_names::FANCY,
                store_names::META,
            ],
            threshold,
        )
    }

    fn term_dfs(&self) -> Vec<(TermId, u64)> {
        self.base.term_dfs()
    }

    fn corpus_num_docs(&self) -> u64 {
        self.base.corpus_num_docs()
    }
}
