//! The Score-Threshold method (§4.3.1).
//!
//! An immutable, score-ordered long list plus a score-ordered short list per
//! term. A score update touches the inverted lists only when the new score
//! exceeds `thresholdValueOf(listScore) = t · listScore` (Algorithm 1); the
//! query algorithm (Algorithm 2) keeps scanning past the first k results
//! until the bounded staleness of list scores can no longer change the
//! answer, and always reports scores from the Score table.

use std::collections::HashSet;
use std::sync::Arc;

use svr_storage::StorageEnv;
use svr_text::postings::PostingsBuilder;

use crate::aux_table::{ListScoreEntry, ListScoreTable};
use crate::config::IndexConfig;
use crate::error::Result;
use crate::heap::TopKHeap;
use crate::long_list::{invert_corpus, ListFormat, LongListStore};
use crate::merge::{MultiMerge, UnionCursor};
use crate::methods::base::{MethodBase, ShardContext};
use crate::methods::{store_names, MethodKind, ScoreMap, SearchIndex, ShardStats};
use crate::short_list::{Op, PostingPos, ShortLists, ShortOrder};
use crate::types::{DocId, Document, Query, QueryMode, Score, SearchHit, TermId};

/// The Score-Threshold method.
pub struct ScoreThresholdMethod {
    base: MethodBase,
    config: IndexConfig,
    long: LongListStore,
    short: ShortLists,
    list_score: ListScoreTable,
}

impl ScoreThresholdMethod {
    /// Build from a corpus and initial scores.
    pub fn build(
        docs: &[Document],
        scores: &ScoreMap,
        config: &IndexConfig,
    ) -> Result<ScoreThresholdMethod> {
        ScoreThresholdMethod::build_in(ShardContext::standalone(config), docs, scores, config)
    }

    /// Build inside an existing shard context (shared environment and
    /// corpus statistics).
    pub(crate) fn build_in(
        ctx: ShardContext,
        docs: &[Document],
        scores: &ScoreMap,
        config: &IndexConfig,
    ) -> Result<ScoreThresholdMethod> {
        let base = MethodBase::with_context(ctx, config)?;
        base.bulk_load(docs, scores)?;
        let long_store = base.create_store(store_names::LONG, config.long_cache_pages);
        let short_store = base.create_store(store_names::SHORT, config.small_cache_pages);
        let aux_store = base.create_store(store_names::AUX, config.small_cache_pages);
        let long = LongListStore::new(long_store, ListFormat::Score { with_scores: false });
        let short = ShortLists::create(short_store, ShortOrder::ByScoreDesc)?;
        let list_score = ListScoreTable::create(aux_store)?;

        for (term, mut postings) in invert_corpus(docs) {
            // (score desc, doc asc) order.
            let mut rows: Vec<(f64, DocId, u16)> = postings
                .drain(..)
                .map(|p| (MethodBase::initial_score(scores, p.doc), p.doc, p.tscore))
                .collect();
            rows.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
            let mut buf = Vec::new();
            PostingsBuilder::encode_score_list(&rows, false, &mut buf);
            long.set_list(term, &buf)?;
        }
        Ok(ScoreThresholdMethod {
            base,
            config: config.clone(),
            long,
            short,
            list_score,
        })
    }

    /// The document's list score and whether its postings are in the short
    /// lists (Algorithm 1 lines 9-17).
    fn list_state(&self, doc: DocId, fallback_score: Score) -> Result<ListScoreEntry> {
        match self.list_score.get(doc)? {
            Some(entry) => Ok(entry),
            None => Ok(ListScoreEntry {
                l_score: fallback_score,
                in_short_list: false,
            }),
        }
    }
}

impl SearchIndex for ScoreThresholdMethod {
    fn kind(&self) -> MethodKind {
        MethodKind::ScoreThreshold
    }

    /// Algorithm 1.
    fn update_score(&self, doc: DocId, new_score: Score) -> Result<()> {
        let old_score = self.base.current_score(doc)?;
        self.base.score_table.set(doc, new_score)?;
        let entry = self.list_state(doc, old_score)?;
        if self.list_score.get(doc)?.is_none() {
            // First-ever update: remember the (long) list score.
            self.list_score.put(
                doc,
                ListScoreEntry {
                    l_score: old_score,
                    in_short_list: false,
                },
            )?;
        }
        if new_score > self.config.threshold_value_of(entry.l_score) {
            let terms = self.base.doc_store.get(doc)?.unwrap_or_default();
            for (term, _) in terms {
                if entry.in_short_list {
                    // Relocate the existing short posting.
                    self.short
                        .delete(term, PostingPos::ByScore(entry.l_score), doc)?;
                }
                self.short
                    .put(term, PostingPos::ByScore(new_score), doc, Op::Add, 0)?;
            }
            self.list_score.put(
                doc,
                ListScoreEntry {
                    l_score: new_score,
                    in_short_list: true,
                },
            )?;
        }
        Ok(())
    }

    /// Algorithm 2.
    fn query(&self, query: &Query) -> Result<Vec<SearchHit>> {
        let required = match query.mode {
            QueryMode::Conjunctive => query.terms.len(),
            QueryMode::Disjunctive => 1,
        };
        let streams: Vec<UnionCursor<'_>> = query
            .terms
            .iter()
            .map(|&t| Ok(UnionCursor::new(self.long.cursor(t), self.short.cursor(t)?)))
            .collect::<Result<_>>()?;
        let mut merge = MultiMerge::new(streams);
        let mut heap = TopKHeap::new(query.k);
        let mut seen: HashSet<DocId> = HashSet::new();
        // The stopping threshold: set once we have k results whose current
        // scores are at least the current list score (lines 22-24).
        let mut threshold: Option<Score> = None;

        while let Some(candidate) = merge.next_candidate()? {
            let PostingPos::ByScore(list_score) = candidate.pos else {
                unreachable!("score-threshold candidates are score-ordered");
            };
            // Line 9-11: no upcoming current score can exceed
            // thresholdValueOf(listScore); stop when that bound cannot beat
            // the secured top-k.
            if let Some(threshold) = threshold {
                if self.config.threshold_value_of(list_score) <= threshold {
                    break;
                }
            }
            if candidate.match_count() >= required
                && !self.base.is_deleted(candidate.doc)
                && !seen.contains(&candidate.doc)
            {
                if candidate.all_short() {
                    // Lines 12-14: short-list result; scores in the short
                    // list may lag the Score table.
                    let current = self.base.score_table.score_of(candidate.doc)?;
                    heap.add(candidate.doc, current);
                    seen.insert(candidate.doc);
                } else {
                    // Lines 15-21: long-list (or mixed) result.
                    match self.list_score.get(candidate.doc)? {
                        None => {
                            // Never updated: the list score is current.
                            heap.add(candidate.doc, list_score);
                            seen.insert(candidate.doc);
                        }
                        Some(entry) if !entry.in_short_list => {
                            let current = self.base.score_table.score_of(candidate.doc)?;
                            heap.add(candidate.doc, current);
                            seen.insert(candidate.doc);
                        }
                        Some(_) => {
                            // In the short list: this (stale) long posting is
                            // superseded by the short occurrence.
                        }
                    }
                }
            }
            // Lines 22-24: arm the stopping threshold.
            if threshold.is_none() {
                if let Some(min) = heap.min_score() {
                    if min >= list_score {
                        threshold = Some(list_score);
                    }
                }
            }
        }
        Ok(heap.into_ranked())
    }

    fn insert_document(&self, doc: &Document, score: Score) -> Result<()> {
        self.base.register_insert(doc, score)?;
        for term in doc.term_ids() {
            self.short
                .put(term, PostingPos::ByScore(score), doc.id, Op::Add, 0)?;
        }
        self.list_score.put(
            doc.id,
            ListScoreEntry {
                l_score: score,
                in_short_list: true,
            },
        )?;
        Ok(())
    }

    fn delete_document(&self, doc: DocId) -> Result<()> {
        self.base.register_delete(doc)
    }

    fn update_content(&self, doc: &Document) -> Result<()> {
        let current = self.base.current_score(doc.id)?;
        let entry = self.list_state(doc.id, current)?;
        let (old, new) = self.base.register_content(doc)?;
        let old_terms: HashSet<TermId> = old.iter().map(|&(t, _)| t).collect();
        let new_terms: HashSet<TermId> = new.iter().map(|&(t, _)| t).collect();
        let pos = PostingPos::ByScore(entry.l_score);
        for &term in new_terms.difference(&old_terms) {
            self.short.put(term, pos, doc.id, Op::Add, 0)?;
        }
        for &term in old_terms.difference(&new_terms) {
            if entry.in_short_list {
                // The live posting is a short one: drop it directly.
                self.short.delete(term, pos, doc.id)?;
            } else {
                // Tombstone the long posting at its list position.
                self.short.put(term, pos, doc.id, Op::Rem, 0)?;
            }
        }
        Ok(())
    }

    fn merge_short_lists(&self) -> Result<()> {
        crate::maintenance::rebuild_score_lists(&self.base, &self.long)?;
        self.short.clear()?;
        self.list_score.clear()
    }

    fn shard_stats(&self) -> Vec<ShardStats> {
        self.base
            .single_shard_stats(self.long.total_bytes(), self.short.len())
    }

    fn long_list_bytes(&self) -> u64 {
        self.long.total_bytes()
    }

    fn clear_long_cache(&self) -> Result<()> {
        if let Some(store) = self.base.store(store_names::LONG) {
            store.clear_cache()?;
        }
        Ok(())
    }

    fn env(&self) -> &Arc<StorageEnv> {
        &self.base.env
    }

    fn current_score(&self, doc: DocId) -> Result<Score> {
        self.base.current_score(doc)
    }
}
