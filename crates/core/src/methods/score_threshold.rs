//! The Score-Threshold method (§4.3.1).
//!
//! An immutable, score-ordered long list plus a score-ordered short list per
//! term. A score update touches the inverted lists only when the new score
//! exceeds `thresholdValueOf(listScore) = t · listScore` (Algorithm 1); the
//! query algorithm (Algorithm 2) keeps scanning past the first k results
//! until the bounded staleness of list scores can no longer change the
//! answer, and always reports scores from the Score table.

use std::collections::HashSet;
use std::sync::Arc;

use svr_storage::StorageEnv;

use crate::aux_table::{ListScoreEntry, ListScoreTable};
use crate::config::IndexConfig;
use crate::cursor::{merge_next_batch, open_merge, CursorBackend, MethodCursor};
use crate::error::Result;
use crate::long_list::{invert_corpus, ListFormat, LongListStore};
use crate::merge::{Candidate, UnionCursor, UnionResume};
use crate::methods::base::{MethodBase, ShardContext};
use crate::methods::{store_names, MethodKind, ScoreMap, SearchIndex, ShardStats};
use crate::short_list::{Op, PostingPos, ShortLists, ShortOrder};
use crate::types::{DocId, Document, Query, Score, SearchHit, TermId};

/// The Score-Threshold method.
pub struct ScoreThresholdMethod {
    base: MethodBase,
    config: IndexConfig,
    long: LongListStore,
    short: ShortLists,
    list_score: ListScoreTable,
}

impl ScoreThresholdMethod {
    /// Build from a corpus and initial scores.
    pub fn build(
        docs: &[Document],
        scores: &ScoreMap,
        config: &IndexConfig,
    ) -> Result<ScoreThresholdMethod> {
        ScoreThresholdMethod::build_in(ShardContext::standalone(config), docs, scores, config)
    }

    /// Build inside an existing shard context (shared environment and
    /// corpus statistics).
    pub(crate) fn build_in(
        ctx: ShardContext,
        docs: &[Document],
        scores: &ScoreMap,
        config: &IndexConfig,
    ) -> Result<ScoreThresholdMethod> {
        let base = MethodBase::with_context(ctx, config)?;
        base.bulk_load(docs, scores)?;
        let long_store = base.create_store(store_names::LONG, config.long_cache_pages);
        let short_store = base.create_store(store_names::SHORT, config.small_cache_pages);
        let aux_store = base.create_store(store_names::AUX, config.small_cache_pages);
        let long = LongListStore::create_in(
            long_store,
            ListFormat::Score { with_scores: false },
            config.codec,
            base.durable,
        )?;
        let short = ShortLists::create_in(short_store, ShortOrder::ByScoreDesc, base.durable)?;
        let list_score = ListScoreTable::create_in(aux_store, base.durable)?;

        for (term, mut postings) in invert_corpus(docs) {
            // (score desc, doc asc) order.
            let mut rows: Vec<(f64, DocId, u16)> = postings
                .drain(..)
                .map(|p| (MethodBase::initial_score(scores, p.doc), p.doc, p.tscore))
                .collect();
            rows.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
            long.put_score_list(term, &rows)?;
        }
        Ok(ScoreThresholdMethod {
            base,
            config: config.clone(),
            long,
            short,
            list_score,
        })
    }

    /// Reattach a durable shard from its recovered stores (see
    /// [`crate::open_index_at`]).
    pub(crate) fn open_in(ctx: ShardContext, config: &IndexConfig) -> Result<ScoreThresholdMethod> {
        let base = MethodBase::open_with_context(ctx, config)?;
        let long = LongListStore::open(
            base.create_store(store_names::LONG, config.long_cache_pages),
            ListFormat::Score { with_scores: false },
            config.codec,
        )?;
        let short = ShortLists::open(
            base.create_store(store_names::SHORT, config.small_cache_pages),
            ShortOrder::ByScoreDesc,
        )?;
        let list_score =
            ListScoreTable::open(base.create_store(store_names::AUX, config.small_cache_pages))?;
        Ok(ScoreThresholdMethod {
            base,
            config: config.clone(),
            long,
            short,
            list_score,
        })
    }

    /// The document's list score and whether its postings are in the short
    /// lists (Algorithm 1 lines 9-17).
    fn list_state(&self, doc: DocId, fallback_score: Score) -> Result<ListScoreEntry> {
        match self.list_score.get(doc)? {
            Some(entry) => Ok(entry),
            None => Ok(ListScoreEntry {
                l_score: fallback_score,
                in_short_list: false,
            }),
        }
    }
}

impl CursorBackend for ScoreThresholdMethod {
    fn cursor_kind(&self) -> MethodKind {
        MethodKind::ScoreThreshold
    }

    fn pool_cap(&self) -> usize {
        self.base.pool_cap
    }

    fn long_epoch(&self) -> u64 {
        self.long.epoch()
    }

    fn stream(&self, term: TermId, resume: &UnionResume) -> Result<UnionCursor<'_>> {
        Ok(UnionCursor::resume(
            self.long.resume_cursor(term, resume.long_resume())?,
            self.short.cursor_after(term, resume.short_resume_key())?,
            resume,
        ))
    }

    fn is_deleted(&self, doc: DocId) -> bool {
        self.base.is_deleted(doc)
    }

    /// Algorithm 2 lines 12-21: score resolution per occurrence.
    fn resolve(&self, candidate: &Candidate, _idfs: &[f64]) -> Result<Option<Score>> {
        let PostingPos::ByScore(list_score) = candidate.pos else {
            unreachable!("score-threshold candidates are score-ordered");
        };
        if candidate.all_short() {
            // Short-list result; scores in the short list may lag the
            // Score table.
            return Ok(Some(self.base.score_table.score_of(candidate.doc)?));
        }
        // Long-list (or mixed) result.
        match self.list_score.get(candidate.doc)? {
            // Never updated: the list score is current.
            None => Ok(Some(list_score)),
            Some(entry) if !entry.in_short_list => {
                Ok(Some(self.base.score_table.score_of(candidate.doc)?))
            }
            // In the short list: this (stale) long posting is superseded by
            // the short occurrence.
            Some(_) => Ok(None),
        }
    }

    /// Lemma 1.2: no document at or past list position `s` can currently
    /// score above `thresholdValueOf(s)`.
    fn svr_bound(&self, pos: Option<PostingPos>) -> Score {
        match pos {
            Some(PostingPos::ByScore(s)) => self.config.threshold_value_of(s),
            Some(_) => f64::INFINITY,
            None => f64::NEG_INFINITY,
        }
    }
}

impl SearchIndex for ScoreThresholdMethod {
    fn kind(&self) -> MethodKind {
        MethodKind::ScoreThreshold
    }

    /// Algorithm 1.
    fn update_score(&self, doc: DocId, new_score: Score) -> Result<()> {
        let old_score = self.base.current_score(doc)?;
        self.base.score_table.set(doc, new_score)?;
        let entry = self.list_state(doc, old_score)?;
        if self.list_score.get(doc)?.is_none() {
            // First-ever update: remember the (long) list score.
            self.list_score.put(
                doc,
                ListScoreEntry {
                    l_score: old_score,
                    in_short_list: false,
                },
            )?;
        }
        if new_score > self.config.threshold_value_of(entry.l_score) {
            let terms = self.base.doc_store.get(doc)?.unwrap_or_default();
            for (term, _) in terms {
                if entry.in_short_list {
                    // Relocate the existing short posting.
                    self.short
                        .delete(term, PostingPos::ByScore(entry.l_score), doc)?;
                }
                self.short
                    .put(term, PostingPos::ByScore(new_score), doc, Op::Add, 0)?;
            }
            self.list_score.put(
                doc,
                ListScoreEntry {
                    l_score: new_score,
                    in_short_list: true,
                },
            )?;
        }
        Ok(())
    }

    /// Algorithm 2, as an any-k enumeration (see [`crate::cursor`]).
    fn open_cursor(&self, query: &Query) -> Result<MethodCursor> {
        Ok(open_merge(MethodKind::ScoreThreshold, query, Vec::new()))
    }

    fn next_batch(&self, cursor: &mut MethodCursor, n: usize) -> Result<Vec<SearchHit>> {
        merge_next_batch(self, cursor, n)
    }

    fn insert_document(&self, doc: &Document, score: Score) -> Result<()> {
        self.base.register_insert(doc, score)?;
        for term in doc.term_ids() {
            self.short
                .put(term, PostingPos::ByScore(score), doc.id, Op::Add, 0)?;
        }
        self.list_score.put(
            doc.id,
            ListScoreEntry {
                l_score: score,
                in_short_list: true,
            },
        )?;
        Ok(())
    }

    fn delete_document(&self, doc: DocId) -> Result<()> {
        self.base.register_delete(doc)
    }

    fn uninsert_document(&self, doc: DocId) -> Result<()> {
        // No ListScore entry means the offline merge already folded the
        // insert's postings into the long lists (merges clear ListScore) —
        // the helper's merged-document fallback covers it.
        let (pos, in_short_list) = match self.list_score.get(doc)? {
            Some(entry) => (PostingPos::ByScore(entry.l_score), entry.in_short_list),
            None => (PostingPos::ByScore(0.0), false),
        };
        if self
            .base
            .uninsert_postings_at(&self.short, doc, pos, in_short_list)?
        {
            self.list_score.delete(doc)?;
        }
        Ok(())
    }

    fn undelete_document(&self, doc: DocId) -> Result<()> {
        // Tombstoning kept the postings: reviving is pure bookkeeping.
        self.base.register_undelete(doc)?;
        Ok(())
    }

    fn update_content(&self, doc: &Document) -> Result<()> {
        let current = self.base.current_score(doc.id)?;
        let entry = self.list_state(doc.id, current)?;
        let (old, new) = self.base.register_content(doc)?;
        let old_terms: HashSet<TermId> = old.iter().map(|&(t, _)| t).collect();
        let new_terms: HashSet<TermId> = new.iter().map(|&(t, _)| t).collect();
        let pos = PostingPos::ByScore(entry.l_score);
        for &term in new_terms.difference(&old_terms) {
            self.short.put(term, pos, doc.id, Op::Add, 0)?;
        }
        for &term in old_terms.difference(&new_terms) {
            if entry.in_short_list {
                // The live posting is a short one: drop it directly.
                self.short.delete(term, pos, doc.id)?;
            } else {
                // Tombstone the long posting at its list position.
                self.short.put(term, pos, doc.id, Op::Rem, 0)?;
            }
        }
        Ok(())
    }

    fn merge_short_lists(&self) -> Result<()> {
        crate::maintenance::rebuild_score_lists(&self.base, &self.long)?;
        self.short.clear()?;
        self.list_score.clear()
    }

    fn shard_stats(&self) -> Vec<ShardStats> {
        self.base.single_shard_stats(
            self.long.total_bytes(),
            self.long.total_postings(),
            self.short.len(),
        )
    }

    fn long_list_bytes(&self) -> u64 {
        self.long.total_bytes()
    }

    fn clear_long_cache(&self) -> Result<()> {
        if let Some(store) = self.base.store(store_names::LONG) {
            store.clear_cache()?;
        }
        Ok(())
    }

    fn env(&self) -> &Arc<StorageEnv> {
        &self.base.env
    }

    fn current_score(&self, doc: DocId) -> Result<Score> {
        self.base.current_score(doc)
    }

    fn logs_over(&self, threshold: u64) -> bool {
        self.base.logs_over(
            &[
                store_names::SCORE,
                store_names::DOCS,
                store_names::LONG,
                store_names::SHORT,
                store_names::AUX,
            ],
            threshold,
        )
    }

    fn maybe_checkpoint(&self, threshold: u64) -> Result<()> {
        self.base.maybe_checkpoint(
            &[
                store_names::SCORE,
                store_names::DOCS,
                store_names::LONG,
                store_names::SHORT,
                store_names::AUX,
            ],
            threshold,
        )
    }

    fn term_dfs(&self) -> Vec<(TermId, u64)> {
        self.base.term_dfs()
    }

    fn corpus_num_docs(&self) -> u64 {
        self.base.corpus_num_docs()
    }
}
