//! The six index methods behind one trait.
//!
//! | Method            | Long-list order      | Score updates | Top-k queries |
//! |-------------------|----------------------|---------------|---------------|
//! | ID                | doc id               | O(1)          | full scan     |
//! | Score             | score (clustered)    | very costly   | early stop    |
//! | Score-Threshold   | score + short lists  | thresholded   | bounded scan  |
//! | Chunk             | chunk/doc + short    | thresholded   | bounded scan  |
//! | ID-TermScore      | doc id + term scores | O(1)          | full scan     |
//! | Chunk-TermScore   | chunk + fancy lists  | thresholded   | bounded scan  |
//!
//! A seventh method, **Score-Threshold-TermScore**, realizes the §4.3.3
//! remark that "the generalization for the Score-Threshold method is
//! similar": score-ordered long lists with term scores plus fancy lists.

pub(crate) mod base;
pub(crate) mod chunk;
mod chunk_term;
mod id;
mod id_term;
mod score;
mod score_threshold;
mod score_threshold_term;
mod sharded;

pub use chunk::ChunkMethod;
pub use chunk_term::ChunkTermMethod;
pub use id::IdMethod;
pub use id_term::IdTermMethod;
pub use score::ScoreMethod;
pub use score_threshold::ScoreThresholdMethod;
pub use score_threshold_term::ScoreThresholdTermMethod;
pub use sharded::{shard_of_doc, ShardedIndex};

use std::collections::HashMap;
use std::sync::Arc;

use svr_storage::StorageEnv;

use crate::config::IndexConfig;
use crate::cursor::MethodCursor;
use crate::error::Result;
use crate::types::{DocId, Document, Query, Score, SearchHit, TermId};

/// Store names used by every method inside its [`StorageEnv`], so benchmarks
/// can inspect / cold-start individual components.
pub mod store_names {
    /// Long inverted lists (blobs, or the Score method's clustered tree).
    pub const LONG: &str = "long";
    /// Short inverted lists.
    pub const SHORT: &str = "short";
    /// The Score table.
    pub const SCORE: &str = "score";
    /// Forward index (document contents).
    pub const DOCS: &str = "docs";
    /// ListScore / ListChunk table.
    pub const AUX: &str = "aux";
    /// Fancy lists (Chunk-TermScore).
    pub const FANCY: &str = "fancy";
    /// Per-shard durable metadata (chunk boundaries, fancy-list metadata,
    /// content-dirty markers) — what a reopen reads instead of rebuilding.
    pub const META: &str = "meta";
    /// Prefix of a write shard's region: shard `s` of a partitioned index
    /// names its stores `shard-<s>/<name>` inside the shared environment.
    pub const SHARD_PREFIX: &str = "shard-";
}

/// Which index method to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodKind {
    Id,
    Score,
    ScoreThreshold,
    Chunk,
    IdTermScore,
    ChunkTermScore,
    /// The §4.3.3 generalization of Score-Threshold to combined scoring
    /// (not evaluated in the paper; see
    /// [`ScoreThresholdTermMethod`]).
    ScoreThresholdTermScore,
}

impl MethodKind {
    /// The paper's six methods, in its presentation order.
    pub const ALL: [MethodKind; 6] = [
        MethodKind::Id,
        MethodKind::Score,
        MethodKind::ScoreThreshold,
        MethodKind::Chunk,
        MethodKind::IdTermScore,
        MethodKind::ChunkTermScore,
    ];

    /// Every implemented method, including the Score-Threshold-TermScore
    /// extension.
    pub const ALL_EXTENDED: [MethodKind; 7] = [
        MethodKind::Id,
        MethodKind::Score,
        MethodKind::ScoreThreshold,
        MethodKind::Chunk,
        MethodKind::IdTermScore,
        MethodKind::ChunkTermScore,
        MethodKind::ScoreThresholdTermScore,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            MethodKind::Id => "ID",
            MethodKind::Score => "Score",
            MethodKind::ScoreThreshold => "Score-Threshold",
            MethodKind::Chunk => "Chunk",
            MethodKind::IdTermScore => "ID-TermScore",
            MethodKind::ChunkTermScore => "Chunk-TermScore",
            MethodKind::ScoreThresholdTermScore => "Score-Threshold-TermScore",
        }
    }

    /// True for the methods that rank by SVR + term scores.
    pub fn uses_term_scores(&self) -> bool {
        matches!(
            self,
            MethodKind::IdTermScore
                | MethodKind::ChunkTermScore
                | MethodKind::ScoreThresholdTermScore
        )
    }
}

impl std::fmt::Display for MethodKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Initial `doc -> score` assignment for a build.
pub type ScoreMap = HashMap<DocId, Score>;

/// Per-shard list statistics (`EXPLAIN`, monitoring). An unsharded index
/// reports exactly one entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index (0-based).
    pub shard: usize,
    /// Live documents owned by the shard.
    pub docs: u64,
    /// Bytes of the shard's long inverted lists.
    pub long_list_bytes: u64,
    /// Postings stored in the shard's long inverted lists (`0` for the
    /// Score method, whose clustered tree is not posting-addressed) — with
    /// `long_list_bytes`, yields bytes-per-posting and the compression
    /// ratio `EXPLAIN` reports.
    pub long_postings: u64,
    /// Postings currently parked in the shard's short lists (merged away by
    /// maintenance).
    pub short_postings: u64,
}

/// A callback that re-reads the *authoritative* score of a document at
/// refresh time, so deferred score propagation can never apply a stale
/// value (see [`SearchIndex::refresh_scores`]). Returning `Ok(None)` means
/// "no current score" (the row is gone) and skips the document.
pub type ScoreRead<'a> = &'a (dyn Fn(DocId) -> Result<Option<Score>> + Sync);

/// Contention counters of a shard's group-commit refresh queue (summed
/// across shards by [`ShardedIndex`]). All zeros while group-commit
/// draining is off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RefreshGroupStats {
    /// Refresh batches that went through the queue.
    pub enqueued: u64,
    /// Refresh batches applied under some lock hold (own + piggybacked).
    pub applied: u64,
    /// Write-lock holds that drained at least one batch. `applied -
    /// drain_holds` batches rode along on another writer's lock hold.
    pub drain_holds: u64,
    /// Deepest the queue ever got.
    pub max_depth: u64,
    /// Batches queued right now.
    pub depth: u64,
}

impl RefreshGroupStats {
    /// Element-wise sum (shard aggregation).
    pub fn merge(&mut self, other: &RefreshGroupStats) {
        self.enqueued += other.enqueued;
        self.applied += other.applied;
        self.drain_holds += other.drain_holds;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.depth += other.depth;
    }
}

/// The common interface of all six index methods.
///
/// All operations take `&self`: the structures use interior mutability
/// (B+-trees are internally locked), matching a single-writer /
/// many-reader deployment.
pub trait SearchIndex: Send + Sync {
    /// Which method this is.
    fn kind(&self) -> MethodKind;

    /// Apply a document score update (the paper's Algorithm 1 for the
    /// threshold-based methods).
    fn update_score(&self, doc: DocId, new_score: Score) -> Result<()>;

    /// Refresh the scores of `docs` from an authoritative source.
    ///
    /// `read` is evaluated **while holding the lock that serializes score
    /// writes for the document** (the shard's writer lock), so when several
    /// threads defer score propagation the last applier always re-reads a
    /// value at least as fresh as every committed write — stale captured
    /// scores cannot win. Documents whose `read` returns `Ok(None)` and
    /// documents unknown to the index (deleted or never inserted) are
    /// skipped; both mean the row vanished between commit and refresh.
    ///
    /// Sharded indexes group `docs` by shard and apply the groups in
    /// parallel, one thread per shard, each under its own shard lock.
    fn refresh_scores(&self, docs: &[DocId], read: ScoreRead) -> Result<()> {
        for &doc in docs {
            let Some(score) = read(doc)? else { continue };
            match self.update_score(doc, score) {
                Ok(()) | Err(crate::error::CoreError::UnknownDocument(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Open a resumable ranked enumeration for `query` (see
    /// [`crate::cursor`]). The cursor is bound to this index: feed it back
    /// through [`SearchIndex::next_batch`] on the same instance.
    fn open_cursor(&self, query: &Query) -> Result<MethodCursor>;

    /// Emit the next `n` results in exact rank order, resuming the
    /// suspended traversal. Returns fewer than `n` hits only when the
    /// enumeration is exhausted.
    fn next_batch(&self, cursor: &mut MethodCursor, n: usize) -> Result<Vec<SearchHit>>;

    /// Evaluate a top-k query against the *latest* scores (Algorithms 2/3).
    /// One-shot queries are nothing but an opened cursor drained once for
    /// `query.k` results.
    fn query(&self, query: &Query) -> Result<Vec<SearchHit>> {
        let mut cursor = self.open_cursor(query)?;
        self.next_batch(&mut cursor, query.k)
    }

    /// Insert a new document with its initial score (Appendix A.2).
    fn insert_document(&self, doc: &Document, score: Score) -> Result<()>;

    /// Delete a document (Appendix A.2).
    fn delete_document(&self, doc: DocId) -> Result<()>;

    /// Batch-rollback inverse of [`SearchIndex::insert_document`]: remove
    /// the document's bookkeeping *and* the postings the insertion added,
    /// leaving the id free for re-use (unlike [`delete_document`], which
    /// tombstones and reserves it).
    ///
    /// Only sound while the document's postings are exactly the ones its
    /// insertion added — i.e. when every later operation on the document
    /// has already been undone. An undo log replayed in reverse order
    /// guarantees that; this is not a general-purpose "hard delete".
    /// Term-score fancy bounds widened by the insertion may stay widened
    /// (they are upper bounds: looser, never wrong).
    ///
    /// If concurrent offline maintenance merged the fresh postings into
    /// the long lists before the rollback ran (merges take no table lock),
    /// the uninsert degrades to the tombstoning [`delete_document`]
    /// semantics: the document stays invisible to every query, only its id
    /// remains reserved (see `MethodBase::uninsert_postings_at`).
    ///
    /// [`delete_document`]: SearchIndex::delete_document
    fn uninsert_document(&self, doc: DocId) -> Result<()>;

    /// Batch-rollback inverse of [`SearchIndex::delete_document`]: revive
    /// the tombstoned document with the score it carried when deleted.
    /// Methods that tombstone (everything except Score) kept the postings,
    /// so reviving is pure bookkeeping; the Score method re-adds the
    /// postings its deletion removed.
    fn undelete_document(&self, doc: DocId) -> Result<()>;

    /// Replace a document's content, keeping its score (Appendix A.1).
    fn update_content(&self, doc: &Document) -> Result<()>;

    /// Offline maintenance: merge short lists into the long lists and reset
    /// the auxiliary tables ("this is done offline and does not impact the
    /// performance of the operational system", §5.1). Sharded indexes merge
    /// every shard, each under its own writer lock.
    fn merge_short_lists(&self) -> Result<()>;

    /// Number of write shards (1 unless the index was built with
    /// `num_shards > 1`).
    fn num_shards(&self) -> usize {
        1
    }

    /// The shard owning `doc`'s postings and score.
    fn shard_of(&self, _doc: DocId) -> usize {
        0
    }

    /// Merge one shard's short lists, leaving the other shards' writers
    /// undisturbed — the scheduling granule for incremental maintenance.
    fn merge_shard(&self, shard: usize) -> Result<()> {
        if shard == 0 {
            self.merge_short_lists()
        } else {
            Err(crate::error::CoreError::Unsupported(
                "shard index out of range",
            ))
        }
    }

    /// Per-shard list statistics (one entry per shard).
    fn shard_stats(&self) -> Vec<ShardStats>;

    /// Total bytes of the long inverted lists (Table 1).
    fn long_list_bytes(&self) -> u64;

    /// Drop cached long-list pages, reproducing the paper's cold-cache query
    /// protocol. Small structures (Score table, short lists) stay warm.
    fn clear_long_cache(&self) -> Result<()>;

    /// The index's storage environment (I/O statistics, store inspection).
    fn env(&self) -> &Arc<StorageEnv>;

    /// Current score of a live document.
    fn current_score(&self, doc: DocId) -> Result<Score>;

    /// Lock-free check: does any of the index's write-ahead logs exceed
    /// `threshold` bytes? The cheap hot-path gate in front of
    /// [`SearchIndex::maybe_checkpoint`] — reads counters only, takes no
    /// writer lock.
    fn logs_over(&self, _threshold: u64) -> bool {
        false
    }

    /// Checkpoint any of the index's stores whose write-ahead log outgrew
    /// `threshold` bytes (flush dirty pages, truncate the log). A no-op for
    /// non-logged stores. Implementations serialize against their writers,
    /// so this is safe to call from a maintenance sweep at any time.
    fn maybe_checkpoint(&self, _threshold: u64) -> Result<()> {
        Ok(())
    }

    /// Snapshot of the collection-wide live document frequencies (sorted by
    /// term id) — shared across every shard of one index, exposed for
    /// restart-equivalence checks and diagnostics.
    fn term_dfs(&self) -> Vec<(TermId, u64)> {
        Vec::new()
    }

    /// The collection-wide live document count backing IDF.
    fn corpus_num_docs(&self) -> u64 {
        self.shard_stats().iter().map(|s| s.docs).sum()
    }

    /// Toggle group-commit draining of deferred score refreshes: when on,
    /// a [`SearchIndex::refresh_scores`] caller that wins the shard's
    /// writer lock applies the refresh batches *other* writers queued
    /// while they waited, before releasing — under write skew one lock
    /// hold retires many writers' propagation work. Only the locking
    /// decorators ([`LockedIndex`], [`ShardedIndex`]) have a queue; plain
    /// method instances ignore the toggle.
    ///
    /// Requires every concurrent `refresh_scores` caller of this index to
    /// supply a semantically equivalent authoritative [`ScoreRead`] (the
    /// engine always does): a drainer re-reads peers' documents through
    /// its own callback.
    fn set_group_refresh(&self, _enabled: bool) {}

    /// True when group-commit refresh draining is on.
    fn group_refresh_enabled(&self) -> bool {
        false
    }

    /// Contention counters of the group-commit refresh queue (all zeros
    /// when the index has no queue or draining was never enabled).
    fn refresh_group_stats(&self) -> RefreshGroupStats {
        RefreshGroupStats::default()
    }

    /// Cumulative long-list block skip/decode counters across every query
    /// and cursor batch this index has served (summed over shards). All
    /// zeros for methods without block-structured long lists.
    fn seek_stats(&self) -> crate::multiterm::SeekStats {
        crate::multiterm::SeekStats::default()
    }
}

/// Concurrency decorator: one writer at a time, queries share a read lock.
///
/// The method implementations use streaming B+-tree cursors that assume no
/// concurrent structural mutation (the same discipline BerkeleyDB enforces
/// with page latches and cursor stability). This wrapper provides that
/// discipline for multi-threaded use: mutations take the write lock,
/// queries run concurrently under read locks. [`build_index`] always
/// returns wrapped indexes.
pub struct LockedIndex<I> {
    inner: I,
    lock: svr_storage::sync::OrderedRwLock<()>,
    group: GroupQueue,
}

/// One queued refresh batch: the documents plus a slot its owner blocks on
/// until some lock holder (the owner itself, or a peer draining the queue)
/// deposits the batch's result.
struct RefreshTicket {
    docs: Vec<DocId>,
    result: std::sync::Mutex<Option<Result<()>>>,
    done: std::sync::Condvar,
}

/// The group-commit refresh queue of one [`LockedIndex`] shard.
struct GroupQueue {
    enabled: std::sync::atomic::AtomicBool,
    queue: std::sync::Mutex<std::collections::VecDeque<Arc<RefreshTicket>>>,
    enqueued: std::sync::atomic::AtomicU64,
    applied: std::sync::atomic::AtomicU64,
    drain_holds: std::sync::atomic::AtomicU64,
    max_depth: std::sync::atomic::AtomicU64,
}

/// Cap on batches one lock hold may drain, so a single writer cannot be
/// conscripted into applying the whole fleet's refreshes indefinitely
/// under sustained load.
const MAX_DRAIN_PER_HOLD: u64 = 128;

impl<I: SearchIndex> LockedIndex<I> {
    /// Wrap an index.
    pub fn new(inner: I) -> LockedIndex<I> {
        LockedIndex {
            inner,
            lock: svr_storage::sync::OrderedRwLock::new(svr_storage::sync::LockClass::Shard, ()),
            group: GroupQueue {
                enabled: std::sync::atomic::AtomicBool::new(false),
                queue: std::sync::Mutex::new(std::collections::VecDeque::new()),
                enqueued: std::sync::atomic::AtomicU64::new(0),
                applied: std::sync::atomic::AtomicU64::new(0),
                drain_holds: std::sync::atomic::AtomicU64::new(0),
                max_depth: std::sync::atomic::AtomicU64::new(0),
            },
        }
    }

    /// Apply one refresh batch; the caller holds the write lock.
    fn apply_refresh(&self, docs: &[DocId], read: ScoreRead) -> Result<()> {
        for &doc in docs {
            let Some(score) = read(doc)? else { continue };
            match self.inner.update_score(doc, score) {
                Ok(()) | Err(crate::error::CoreError::UnknownDocument(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// The group-commit refresh path: queue the batch, then either win the
    /// writer lock and drain every queued batch under the one hold, or
    /// wait for a winning peer to deposit this batch's result.
    fn refresh_grouped(&self, docs: &[DocId], read: ScoreRead) -> Result<()> {
        let ticket = Arc::new(RefreshTicket {
            docs: docs.to_vec(),
            result: std::sync::Mutex::new(None),
            done: std::sync::Condvar::new(),
        });
        {
            let mut queue = self.group.queue.lock().expect("refresh queue poisoned"); // svr-lint: allow(no-unwrap): poisoned = a peer panicked mid-update; dying is the safe response
            queue.push_back(ticket.clone());
            self.group
                .enqueued
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.group
                .max_depth
                .fetch_max(queue.len() as u64, std::sync::atomic::Ordering::Relaxed);
        }
        loop {
            // svr-lint: allow(no-unwrap): poisoned = a peer panicked mid-update; dying is the safe response
            if let Some(result) = ticket.result.lock().expect("ticket poisoned").take() {
                return result;
            }
            if let Some(_shard_guard) = self.lock.try_write() {
                let mut applied = 0u64;
                while applied < MAX_DRAIN_PER_HOLD {
                    let next = self
                        .group
                        .queue
                        .lock()
                        .expect("refresh queue poisoned") // svr-lint: allow(no-unwrap): poisoned = a peer panicked mid-update; dying is the safe response
                        .pop_front();
                    let Some(t) = next else { break };
                    let result = self.apply_refresh(&t.docs, read);
                    *t.result.lock().expect("ticket poisoned") = Some(result); // svr-lint: allow(no-unwrap): poisoned = a peer panicked mid-update; dying is the safe response
                    t.done.notify_all();
                    applied += 1;
                }
                if applied > 0 {
                    self.group
                        .drain_holds
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    self.group
                        .applied
                        .fetch_add(applied, std::sync::atomic::Ordering::Relaxed);
                }
                // Own ticket was normally among the drained; if a peer beat
                // us to it (or the per-hold cap left it queued), loop.
            } else {
                let slot = ticket.result.lock().expect("ticket poisoned"); // svr-lint: allow(no-unwrap): poisoned = a peer panicked mid-update; dying is the safe response
                if slot.is_none() {
                    // Bounded wait: a racing holder may resolve the ticket
                    // between the check and the wait; the timeout self-heals
                    // a missed notification.
                    let _ = ticket
                        .done
                        .wait_timeout(slot, std::time::Duration::from_millis(1))
                        .expect("ticket poisoned"); // svr-lint: allow(no-unwrap): poisoned = a peer panicked mid-update; dying is the safe response
                }
            }
        }
    }
}

impl<I: SearchIndex> SearchIndex for LockedIndex<I> {
    fn kind(&self) -> MethodKind {
        self.inner.kind()
    }

    fn update_score(&self, doc: DocId, new_score: Score) -> Result<()> {
        let _shard_guard = self.lock.write();
        self.inner.update_score(doc, new_score)
    }

    fn refresh_scores(&self, docs: &[DocId], read: ScoreRead) -> Result<()> {
        if self
            .group
            .enabled
            .load(std::sync::atomic::Ordering::Relaxed)
        {
            return self.refresh_grouped(docs, read);
        }
        // One write-lock acquisition for the whole batch; `read` runs under
        // it, which is what makes deferred propagation stale-proof (see the
        // trait docs).
        let _shard_guard = self.lock.write();
        self.apply_refresh(docs, read)
    }

    fn open_cursor(&self, query: &Query) -> Result<MethodCursor> {
        let _shard_guard = self.lock.read();
        self.inner.open_cursor(query)
    }

    fn next_batch(&self, cursor: &mut MethodCursor, n: usize) -> Result<Vec<SearchHit>> {
        // Each batch runs under one read-lock acquisition: batches are
        // individually snapshot-consistent, and the lock is *not* held
        // while the cursor is suspended between batches.
        let _shard_guard = self.lock.read();
        self.inner.next_batch(cursor, n)
    }

    fn query(&self, query: &Query) -> Result<Vec<SearchHit>> {
        // One lock acquisition for open + drain, as the one-shot path
        // always had.
        let _shard_guard = self.lock.read();
        self.inner.query(query)
    }

    fn insert_document(&self, doc: &Document, score: Score) -> Result<()> {
        let _shard_guard = self.lock.write();
        self.inner.insert_document(doc, score)
    }

    fn delete_document(&self, doc: DocId) -> Result<()> {
        let _shard_guard = self.lock.write();
        self.inner.delete_document(doc)
    }

    fn uninsert_document(&self, doc: DocId) -> Result<()> {
        let _shard_guard = self.lock.write();
        self.inner.uninsert_document(doc)
    }

    fn undelete_document(&self, doc: DocId) -> Result<()> {
        let _shard_guard = self.lock.write();
        self.inner.undelete_document(doc)
    }

    fn update_content(&self, doc: &Document) -> Result<()> {
        let _shard_guard = self.lock.write();
        self.inner.update_content(doc)
    }

    fn merge_short_lists(&self) -> Result<()> {
        let _shard_guard = self.lock.write();
        self.inner.merge_short_lists()
    }

    fn merge_shard(&self, shard: usize) -> Result<()> {
        let _shard_guard = self.lock.write();
        self.inner.merge_shard(shard)
    }

    fn shard_stats(&self) -> Vec<ShardStats> {
        let _shard_guard = self.lock.read();
        self.inner.shard_stats()
    }

    fn long_list_bytes(&self) -> u64 {
        self.inner.long_list_bytes()
    }

    fn clear_long_cache(&self) -> Result<()> {
        let _shard_guard = self.lock.write();
        self.inner.clear_long_cache()
    }

    fn env(&self) -> &Arc<StorageEnv> {
        self.inner.env()
    }

    fn current_score(&self, doc: DocId) -> Result<Score> {
        let _shard_guard = self.lock.read();
        self.inner.current_score(doc)
    }

    fn logs_over(&self, threshold: u64) -> bool {
        self.inner.logs_over(threshold)
    }

    fn maybe_checkpoint(&self, threshold: u64) -> Result<()> {
        // Cheap lock-free gate first: mutation hot paths call this on every
        // refresh, and below threshold it must not touch the writer lock.
        if !self.inner.logs_over(threshold) {
            return Ok(());
        }
        // Exclusive: a checkpoint must not truncate log records whose pages
        // a concurrent mutation has not flushed.
        let _shard_guard = self.lock.write();
        self.inner.maybe_checkpoint(threshold)
    }

    fn term_dfs(&self) -> Vec<(TermId, u64)> {
        self.inner.term_dfs()
    }

    fn corpus_num_docs(&self) -> u64 {
        self.inner.corpus_num_docs()
    }

    fn set_group_refresh(&self, enabled: bool) {
        self.group
            .enabled
            .store(enabled, std::sync::atomic::Ordering::Relaxed);
    }

    fn group_refresh_enabled(&self) -> bool {
        self.group
            .enabled
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    fn seek_stats(&self) -> crate::multiterm::SeekStats {
        self.inner.seek_stats()
    }

    fn refresh_group_stats(&self) -> RefreshGroupStats {
        use std::sync::atomic::Ordering::Relaxed;
        RefreshGroupStats {
            enqueued: self.group.enqueued.load(Relaxed),
            applied: self.group.applied.load(Relaxed),
            drain_holds: self.group.drain_holds.load(Relaxed),
            max_depth: self.group.max_depth.load(Relaxed),
            depth: self
                .group
                .queue
                .lock()
                .expect("refresh queue poisoned") // svr-lint: allow(no-unwrap): poisoned = a peer panicked mid-update; dying is the safe response
                .len() as u64,
        }
    }
}

/// Build an index of the requested kind over `docs` with initial `scores`.
///
/// With `config.num_shards == 1` (the default) the returned index is safe
/// for one writer and many concurrent readers (see [`LockedIndex`]). With
/// `num_shards > 1` the collection is hash-partitioned by document id into
/// that many shards, each behind an independent writer lock, so writers of
/// documents in different shards proceed in parallel (see
/// [`ShardedIndex`]); rankings are identical at any shard count.
pub fn build_index(
    kind: MethodKind,
    docs: &[Document],
    scores: &ScoreMap,
    config: &IndexConfig,
) -> Result<Box<dyn SearchIndex>> {
    let config = config.clone().validated();
    if config.num_shards > 1 {
        return Ok(match kind {
            MethodKind::Id => Box::new(ShardedIndex::build_with(
                docs,
                scores,
                &config,
                IdMethod::build_in,
            )?),
            MethodKind::Score => Box::new(ShardedIndex::build_with(
                docs,
                scores,
                &config,
                ScoreMethod::build_in,
            )?),
            MethodKind::ScoreThreshold => Box::new(ShardedIndex::build_with(
                docs,
                scores,
                &config,
                ScoreThresholdMethod::build_in,
            )?),
            MethodKind::Chunk => Box::new(ShardedIndex::build_with(
                docs,
                scores,
                &config,
                ChunkMethod::build_in,
            )?),
            MethodKind::IdTermScore => Box::new(ShardedIndex::build_with(
                docs,
                scores,
                &config,
                IdTermMethod::build_in,
            )?),
            MethodKind::ChunkTermScore => Box::new(ShardedIndex::build_with(
                docs,
                scores,
                &config,
                ChunkTermMethod::build_in,
            )?),
            MethodKind::ScoreThresholdTermScore => Box::new(ShardedIndex::build_with(
                docs,
                scores,
                &config,
                ScoreThresholdTermMethod::build_in,
            )?),
        });
    }
    Ok(match kind {
        MethodKind::Id => Box::new(LockedIndex::new(IdMethod::build(docs, scores, &config)?)),
        MethodKind::Score => Box::new(LockedIndex::new(ScoreMethod::build(docs, scores, &config)?)),
        MethodKind::ScoreThreshold => Box::new(LockedIndex::new(ScoreThresholdMethod::build(
            docs, scores, &config,
        )?)),
        MethodKind::Chunk => Box::new(LockedIndex::new(ChunkMethod::build(docs, scores, &config)?)),
        MethodKind::IdTermScore => Box::new(LockedIndex::new(IdTermMethod::build(
            docs, scores, &config,
        )?)),
        MethodKind::ChunkTermScore => Box::new(LockedIndex::new(ChunkTermMethod::build(
            docs, scores, &config,
        )?)),
        MethodKind::ScoreThresholdTermScore => Box::new(LockedIndex::new(
            ScoreThresholdTermMethod::build(docs, scores, &config)?,
        )),
    })
}

/// Where an index's stores live inside a caller-owned [`StorageEnv`]: the
/// environment plus a store-name prefix (e.g. `idx/movie_idx/`) carving out
/// the index's region. Durability follows the environment: indexes located
/// in a durable environment create reopenable structures and can be
/// reattached with [`open_index_at`].
#[derive(Clone)]
pub struct IndexLocation {
    pub env: Arc<StorageEnv>,
    pub prefix: String,
}

impl IndexLocation {
    /// Locate an index at `prefix` inside `env`.
    pub fn new(env: Arc<StorageEnv>, prefix: impl Into<String>) -> IndexLocation {
        IndexLocation {
            env,
            prefix: prefix.into(),
        }
    }
}

/// [`build_index`] into a caller-owned environment at a store-name prefix —
/// the engine's durable build path. Identical semantics otherwise.
pub fn build_index_at(
    loc: &IndexLocation,
    kind: MethodKind,
    docs: &[Document],
    scores: &ScoreMap,
    config: &IndexConfig,
) -> Result<Box<dyn SearchIndex>> {
    use crate::methods::base::{CorpusStats, ShardContext};
    let config = config.clone().validated();
    let durable = loc.env.is_durable();
    let stats = Arc::new(CorpusStats::default());
    if config.num_shards > 1 {
        return Ok(match kind {
            MethodKind::Id => Box::new(ShardedIndex::build_rooted(
                loc,
                stats,
                docs,
                scores,
                &config,
                IdMethod::build_in,
            )?),
            MethodKind::Score => Box::new(ShardedIndex::build_rooted(
                loc,
                stats,
                docs,
                scores,
                &config,
                ScoreMethod::build_in,
            )?),
            MethodKind::ScoreThreshold => Box::new(ShardedIndex::build_rooted(
                loc,
                stats,
                docs,
                scores,
                &config,
                ScoreThresholdMethod::build_in,
            )?),
            MethodKind::Chunk => Box::new(ShardedIndex::build_rooted(
                loc,
                stats,
                docs,
                scores,
                &config,
                ChunkMethod::build_in,
            )?),
            MethodKind::IdTermScore => Box::new(ShardedIndex::build_rooted(
                loc,
                stats,
                docs,
                scores,
                &config,
                IdTermMethod::build_in,
            )?),
            MethodKind::ChunkTermScore => Box::new(ShardedIndex::build_rooted(
                loc,
                stats,
                docs,
                scores,
                &config,
                ChunkTermMethod::build_in,
            )?),
            MethodKind::ScoreThresholdTermScore => Box::new(ShardedIndex::build_rooted(
                loc,
                stats,
                docs,
                scores,
                &config,
                ScoreThresholdTermMethod::build_in,
            )?),
        });
    }
    let ctx = || ShardContext::rooted(loc.env.clone(), stats.clone(), loc.prefix.clone(), durable);
    Ok(match kind {
        MethodKind::Id => Box::new(LockedIndex::new(IdMethod::build_in(
            ctx(),
            docs,
            scores,
            &config,
        )?)),
        MethodKind::Score => Box::new(LockedIndex::new(ScoreMethod::build_in(
            ctx(),
            docs,
            scores,
            &config,
        )?)),
        MethodKind::ScoreThreshold => Box::new(LockedIndex::new(ScoreThresholdMethod::build_in(
            ctx(),
            docs,
            scores,
            &config,
        )?)),
        MethodKind::Chunk => Box::new(LockedIndex::new(ChunkMethod::build_in(
            ctx(),
            docs,
            scores,
            &config,
        )?)),
        MethodKind::IdTermScore => Box::new(LockedIndex::new(IdTermMethod::build_in(
            ctx(),
            docs,
            scores,
            &config,
        )?)),
        MethodKind::ChunkTermScore => Box::new(LockedIndex::new(ChunkTermMethod::build_in(
            ctx(),
            docs,
            scores,
            &config,
        )?)),
        MethodKind::ScoreThresholdTermScore => Box::new(LockedIndex::new(
            ScoreThresholdTermMethod::build_in(ctx(), docs, scores, &config)?,
        )),
    })
}

/// Reattach an index previously built with [`build_index_at`] in a durable
/// environment: every shard's structures reopen from their recovered
/// stores, the in-memory mirrors (tombstones, chunk maps, fancy bounds,
/// corpus df / num_docs statistics) are rebuilt from the index's own
/// durable state, and **no base row is read or re-tokenized**. The caller
/// supplies the same `kind` and `config` the index was built with (the
/// engine persists both in its catalog).
pub fn open_index_at(
    loc: &IndexLocation,
    kind: MethodKind,
    config: &IndexConfig,
) -> Result<Box<dyn SearchIndex>> {
    use crate::methods::base::{CorpusStats, ShardContext};
    let config = config.clone().validated();
    let stats = Arc::new(CorpusStats::default());
    if config.num_shards > 1 {
        return Ok(match kind {
            MethodKind::Id => Box::new(ShardedIndex::open_rooted(
                loc,
                stats,
                &config,
                IdMethod::open_in,
            )?),
            MethodKind::Score => Box::new(ShardedIndex::open_rooted(
                loc,
                stats,
                &config,
                ScoreMethod::open_in,
            )?),
            MethodKind::ScoreThreshold => Box::new(ShardedIndex::open_rooted(
                loc,
                stats,
                &config,
                ScoreThresholdMethod::open_in,
            )?),
            MethodKind::Chunk => Box::new(ShardedIndex::open_rooted(
                loc,
                stats,
                &config,
                ChunkMethod::open_in,
            )?),
            MethodKind::IdTermScore => Box::new(ShardedIndex::open_rooted(
                loc,
                stats,
                &config,
                IdTermMethod::open_in,
            )?),
            MethodKind::ChunkTermScore => Box::new(ShardedIndex::open_rooted(
                loc,
                stats,
                &config,
                ChunkTermMethod::open_in,
            )?),
            MethodKind::ScoreThresholdTermScore => Box::new(ShardedIndex::open_rooted(
                loc,
                stats,
                &config,
                ScoreThresholdTermMethod::open_in,
            )?),
        });
    }
    let ctx = ShardContext::rooted(loc.env.clone(), stats, loc.prefix.clone(), true);
    Ok(match kind {
        MethodKind::Id => Box::new(LockedIndex::new(IdMethod::open_in(ctx, &config)?)),
        MethodKind::Score => Box::new(LockedIndex::new(ScoreMethod::open_in(ctx, &config)?)),
        MethodKind::ScoreThreshold => Box::new(LockedIndex::new(ScoreThresholdMethod::open_in(
            ctx, &config,
        )?)),
        MethodKind::Chunk => Box::new(LockedIndex::new(ChunkMethod::open_in(ctx, &config)?)),
        MethodKind::IdTermScore => Box::new(LockedIndex::new(IdTermMethod::open_in(ctx, &config)?)),
        MethodKind::ChunkTermScore => {
            Box::new(LockedIndex::new(ChunkTermMethod::open_in(ctx, &config)?))
        }
        MethodKind::ScoreThresholdTermScore => Box::new(LockedIndex::new(
            ScoreThresholdTermMethod::open_in(ctx, &config)?,
        )),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_match_paper() {
        assert_eq!(MethodKind::Chunk.name(), "Chunk");
        assert_eq!(MethodKind::ChunkTermScore.to_string(), "Chunk-TermScore");
        assert_eq!(MethodKind::ALL.len(), 6);
        assert!(MethodKind::IdTermScore.uses_term_scores());
        assert!(!MethodKind::Chunk.uses_term_scores());
    }
}
