//! Shared state and bookkeeping for every index method: the Score table,
//! the forward doc store, deletion tombstones and live document-frequency
//! statistics (for the term-score methods).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use svr_storage::StorageEnv;
use svr_text::idf;

use crate::config::IndexConfig;
use crate::doc_store::DocStore;
use crate::error::{check_score, CoreError, Result};
use crate::methods::store_names;
use crate::score_table::ScoreTable;
use crate::types::{DocId, Document, Score, TermId};

/// Common per-index state.
pub(crate) struct MethodBase {
    pub env: Arc<StorageEnv>,
    pub score_table: ScoreTable,
    pub doc_store: DocStore,
    /// In-memory tombstones mirroring the Score table's deleted flags, so
    /// query-time filtering costs no I/O.
    pub deleted: RwLock<HashSet<DocId>>,
    /// Live document frequencies (term-score methods compute IDF from these).
    pub df: RwLock<HashMap<TermId, u64>>,
    pub num_docs: AtomicU64,
    pub term_weight: f64,
}

impl MethodBase {
    /// Create the environment and the structures every method shares.
    pub fn new(config: &IndexConfig) -> Result<MethodBase> {
        let env = Arc::new(StorageEnv::new(config.page_size));
        let score_store = env.create_store(store_names::SCORE, config.small_cache_pages);
        let docs_store = env.create_store(store_names::DOCS, config.small_cache_pages);
        Ok(MethodBase {
            env,
            score_table: ScoreTable::create(score_store)?,
            doc_store: DocStore::create(docs_store)?,
            deleted: RwLock::new(HashSet::new()),
            df: RwLock::new(HashMap::new()),
            num_docs: AtomicU64::new(0),
            term_weight: config.term_weight,
        })
    }

    /// Bulk-load documents and scores at build time.
    pub fn bulk_load(&self, docs: &[Document], scores: &HashMap<DocId, Score>) -> Result<()> {
        let mut df = self.df.write();
        for doc in docs {
            let score = scores.get(&doc.id).copied().unwrap_or(0.0);
            self.score_table.set(doc.id, check_score(score)?)?;
            self.doc_store.put(doc)?;
            for term in doc.term_ids() {
                *df.entry(term).or_insert(0) += 1;
            }
        }
        self.num_docs.store(docs.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Score for `doc` stored in the score map at build time.
    pub fn initial_score(scores: &HashMap<DocId, Score>, doc: DocId) -> Score {
        scores.get(&doc).copied().unwrap_or(0.0)
    }

    /// True if the document is tombstoned.
    pub fn is_deleted(&self, doc: DocId) -> bool {
        self.deleted.read().contains(&doc)
    }

    /// IDF weight of a term under the live df statistics.
    pub fn idf(&self, term: TermId) -> f64 {
        let df_count = self.df.read().get(&term).copied().unwrap_or(0);
        idf(self.num_docs.load(Ordering::Relaxed), df_count)
    }

    /// The combined scoring function `f(svr, Σ term scores)` of §4.3.3.
    #[inline]
    pub fn combine(&self, svr: Score, ts_sum: f64) -> Score {
        svr + self.term_weight * ts_sum
    }

    /// Validate and register a brand-new document; returns an error if the
    /// id is already in use by a live or deleted document.
    pub fn register_insert(&self, doc: &Document, score: Score) -> Result<()> {
        check_score(score)?;
        if self.score_table.get(doc.id)?.is_some() {
            return Err(CoreError::DuplicateDocument(doc.id));
        }
        self.score_table.set(doc.id, score)?;
        self.doc_store.put(doc)?;
        let mut df = self.df.write();
        for term in doc.term_ids() {
            *df.entry(term).or_insert(0) += 1;
        }
        self.num_docs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Tombstone a document.
    pub fn register_delete(&self, doc: DocId) -> Result<()> {
        if self.is_deleted(doc) {
            return Err(CoreError::UnknownDocument(doc));
        }
        self.score_table.mark_deleted(doc)?;
        let terms = self.doc_store.term_ids(doc)?;
        let mut df = self.df.write();
        for term in terms {
            if let Some(count) = df.get_mut(&term) {
                *count = count.saturating_sub(1);
            }
        }
        self.num_docs.fetch_sub(1, Ordering::Relaxed);
        self.deleted.write().insert(doc);
        Ok(())
    }

    /// Replace a document's stored content; returns `(old_terms, new_terms)`
    /// as `(term, tf)` lists for the caller's posting maintenance.
    #[allow(clippy::type_complexity)]
    pub fn register_content(
        &self,
        doc: &Document,
    ) -> Result<(Vec<(TermId, u32)>, Vec<(TermId, u32)>)> {
        if self.is_deleted(doc.id) {
            return Err(CoreError::UnknownDocument(doc.id));
        }
        let old = self
            .doc_store
            .get(doc.id)?
            .ok_or(CoreError::UnknownDocument(doc.id))?;
        self.doc_store.put(doc)?;
        let old_set: HashSet<TermId> = old.iter().map(|&(t, _)| t).collect();
        let new_set: HashSet<TermId> = doc.term_ids().collect();
        let mut df = self.df.write();
        for term in new_set.difference(&old_set) {
            *df.entry(*term).or_insert(0) += 1;
        }
        for term in old_set.difference(&new_set) {
            if let Some(count) = df.get_mut(term) {
                *count = count.saturating_sub(1);
            }
        }
        Ok((old, doc.terms.clone()))
    }

    /// Current (live) score of a doc.
    pub fn current_score(&self, doc: DocId) -> Result<Score> {
        if self.is_deleted(doc) {
            return Err(CoreError::UnknownDocument(doc));
        }
        self.score_table.score_of(doc)
    }
}
