//! Shared state and bookkeeping for every index method: the Score table,
//! the forward doc store, deletion tombstones and live document-frequency
//! statistics (for the term-score methods).
//!
//! A method instance is either **standalone** (one partition owning the
//! whole collection — the paper's layout) or **one shard of a partitioned
//! index** (see [`crate::methods::ShardedIndex`]). Shards share one
//! [`StorageEnv`] (store names are prefixed per shard) and one
//! [`CorpusStats`] — document frequencies and the live document count are
//! collection-wide so the term-score methods compute the same IDF weights
//! at any shard count — while the Score table, forward index and tombstones
//! are per shard, so score writes in different shards never contend.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use svr_storage::{StorageEnv, Store};
use svr_text::idf;

use crate::config::IndexConfig;
use crate::doc_store::DocStore;
use crate::error::{check_score, CoreError, Result};
use crate::methods::store_names;
use crate::score_table::ScoreTable;
use crate::types::{DocId, Document, Score, TermId};

/// Collection-wide statistics shared by every shard of one index: live
/// document frequencies and the live document count, from which the
/// term-score methods compute IDF. Internally synchronized — shards update
/// it concurrently under their own writer locks.
#[derive(Default)]
pub(crate) struct CorpusStats {
    df: RwLock<HashMap<TermId, u64>>,
    num_docs: AtomicU64,
}

/// Where a method instance lives: its storage environment, the shared
/// corpus statistics, the store-name prefix carving out this shard's
/// region of the environment, and whether its structures are **durable**
/// (reopenable after a crash or restart via the method's `open_in` path).
pub(crate) struct ShardContext {
    pub env: Arc<StorageEnv>,
    pub stats: Arc<CorpusStats>,
    pub prefix: String,
    pub durable: bool,
}

impl ShardContext {
    /// Context for a standalone (unsharded) index: fresh environment, fresh
    /// statistics, unprefixed store names.
    pub fn standalone(config: &IndexConfig) -> ShardContext {
        ShardContext {
            env: Arc::new(StorageEnv::new(config.page_size)),
            stats: Arc::new(CorpusStats::default()),
            prefix: String::new(),
            durable: false,
        }
    }

    /// Context for shard `shard` of a partitioned index sharing `env` and
    /// `stats`, rooted at `base_prefix` inside the environment.
    pub fn shard(
        env: Arc<StorageEnv>,
        stats: Arc<CorpusStats>,
        base_prefix: &str,
        shard: usize,
        durable: bool,
    ) -> ShardContext {
        ShardContext {
            env,
            stats,
            prefix: format!("{base_prefix}{}{shard}/", store_names::SHARD_PREFIX),
            durable,
        }
    }

    /// Context rooted at an explicit prefix of a caller-owned environment
    /// (the engine's durable lifecycle: every index lives in the engine's
    /// environment under `idx/<name>/...`).
    pub fn rooted(
        env: Arc<StorageEnv>,
        stats: Arc<CorpusStats>,
        prefix: String,
        durable: bool,
    ) -> ShardContext {
        ShardContext {
            env,
            stats,
            prefix,
            durable,
        }
    }
}

/// Common per-shard state.
pub(crate) struct MethodBase {
    pub env: Arc<StorageEnv>,
    /// Store-name prefix of this shard's region in `env` (empty when
    /// standalone).
    prefix: String,
    /// True when this shard's structures are reopenable (created through
    /// the durable create paths; see [`crate::durable`]).
    pub durable: bool,
    pub score_table: ScoreTable,
    pub doc_store: DocStore,
    /// In-memory tombstones mirroring the Score table's deleted flags, so
    /// query-time filtering costs no I/O.
    pub deleted: RwLock<HashSet<DocId>>,
    /// Collection-wide df / doc-count statistics (shared across shards).
    stats: Arc<CorpusStats>,
    /// Live documents in *this* shard (diagnostics; the IDF denominator is
    /// the shared collection-wide count).
    local_docs: AtomicU64,
    pub term_weight: f64,
    /// Candidate-pool cap for cursors opened on this shard
    /// (`IndexConfig::cursor_pool_cap`; 0 = unbounded).
    pub pool_cap: usize,
}

impl MethodBase {
    /// Create the shared structures inside an existing context (one shard
    /// of a partitioned index, or a standalone root).
    pub fn with_context(ctx: ShardContext, config: &IndexConfig) -> Result<MethodBase> {
        let ShardContext {
            env,
            stats,
            prefix,
            durable,
        } = ctx;
        let score_store = env.create_store(
            &format!("{prefix}{}", store_names::SCORE),
            config.small_cache_pages,
        );
        let docs_store = env.create_store(
            &format!("{prefix}{}", store_names::DOCS),
            config.small_cache_pages,
        );
        Ok(MethodBase {
            env,
            prefix,
            durable,
            score_table: ScoreTable::create_in(score_store, durable)?,
            doc_store: DocStore::create_in(docs_store, durable)?,
            deleted: RwLock::new(HashSet::new()),
            stats,
            local_docs: AtomicU64::new(0),
            term_weight: config.term_weight,
            pool_cap: config.cursor_pool_cap,
        })
    }

    /// Reattach a durable shard: reopen the Score table and forward index
    /// from their recovered stores and rebuild every in-memory mirror from
    /// them — the tombstone set from the Score table's deleted flags, the
    /// live-document count, and the shard's contribution to the shared
    /// collection-wide df / num_docs statistics from the forward index.
    /// No base row is touched and nothing is re-tokenized.
    pub fn open_with_context(ctx: ShardContext, config: &IndexConfig) -> Result<MethodBase> {
        let ShardContext {
            env,
            stats,
            prefix,
            durable: _,
        } = ctx;
        let score_store = env.create_store(
            &format!("{prefix}{}", store_names::SCORE),
            config.small_cache_pages,
        );
        let docs_store = env.create_store(
            &format!("{prefix}{}", store_names::DOCS),
            config.small_cache_pages,
        );
        let score_table = ScoreTable::open(score_store)?;
        let doc_store = DocStore::open(docs_store)?;
        let mut deleted = HashSet::new();
        let mut live = 0u64;
        {
            let mut df = stats.df.write();
            for (doc, entry) in score_table.all_entries()? {
                // Seed the monotone max-score bound from every row,
                // tombstoned included — undelete revives the stored score.
                score_table.note_score(entry.score);
                if entry.deleted {
                    deleted.insert(doc);
                    continue;
                }
                live += 1;
                if let Some(terms) = doc_store.get(doc)? {
                    for (term, _) in terms {
                        *df.entry(term).or_insert(0) += 1;
                    }
                }
            }
        }
        stats.num_docs.fetch_add(live, Ordering::Relaxed);
        Ok(MethodBase {
            env,
            prefix,
            durable: true,
            score_table,
            doc_store,
            deleted: RwLock::new(deleted),
            stats,
            local_docs: AtomicU64::new(live),
            term_weight: config.term_weight,
            pool_cap: config.cursor_pool_cap,
        })
    }

    /// Snapshot of the shared collection-wide `(term, df)` statistics.
    pub fn term_dfs(&self) -> Vec<(TermId, u64)> {
        let df = self.stats.df.read();
        let mut out: Vec<(TermId, u64)> = df.iter().map(|(&t, &c)| (t, c)).collect();
        out.sort_unstable_by_key(|&(t, _)| t);
        out
    }

    /// The shared collection-wide live document count.
    pub fn corpus_num_docs(&self) -> u64 {
        self.stats.num_docs.load(Ordering::Relaxed)
    }

    /// Lock-free check: does any named store's log exceed `threshold`?
    /// The cheap gate in front of [`MethodBase::maybe_checkpoint`], safe
    /// on the hot path without the shard's writer lock.
    pub fn logs_over(&self, names: &[&str], threshold: u64) -> bool {
        names
            .iter()
            .any(|name| self.store(name).is_some_and(|s| s.log_over(threshold)))
    }

    /// Checkpoint (flush + truncate log) every named store of this shard
    /// whose write-ahead log outgrew `threshold` bytes. Call while holding
    /// the shard's writer lock — a checkpoint racing a mutation could
    /// truncate records whose pages were not yet flushed.
    pub fn maybe_checkpoint(&self, names: &[&str], threshold: u64) -> Result<()> {
        for name in names {
            if let Some(store) = self.store(name) {
                store
                    .maybe_checkpoint(threshold)
                    .map_err(crate::error::CoreError::Storage)?;
            }
        }
        Ok(())
    }

    /// Create (or fetch) a store in this shard's region of the environment.
    pub fn create_store(&self, name: &str, cache_pages: usize) -> Arc<Store> {
        self.env
            .create_store(&format!("{}{name}", self.prefix), cache_pages)
    }

    /// Fetch a previously created store of this shard's region.
    pub fn store(&self, name: &str) -> Option<Arc<Store>> {
        self.env.store(&format!("{}{name}", self.prefix))
    }

    /// Bulk-load documents and scores at build time.
    pub fn bulk_load(&self, docs: &[Document], scores: &HashMap<DocId, Score>) -> Result<()> {
        let mut df = self.stats.df.write();
        for doc in docs {
            let score = scores.get(&doc.id).copied().unwrap_or(0.0);
            self.score_table.set(doc.id, check_score(score)?)?;
            self.doc_store.put(doc)?;
            for term in doc.term_ids() {
                *df.entry(term).or_insert(0) += 1;
            }
        }
        // Accumulate (not store): sibling shards load into the same shared
        // counter.
        self.stats
            .num_docs
            .fetch_add(docs.len() as u64, Ordering::Relaxed);
        self.local_docs.store(docs.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Score for `doc` stored in the score map at build time.
    pub fn initial_score(scores: &HashMap<DocId, Score>, doc: DocId) -> Score {
        scores.get(&doc).copied().unwrap_or(0.0)
    }

    /// True if the document is tombstoned.
    pub fn is_deleted(&self, doc: DocId) -> bool {
        self.deleted.read().contains(&doc)
    }

    /// Live documents in this shard.
    pub fn live_docs(&self) -> u64 {
        self.local_docs.load(Ordering::Relaxed)
    }

    /// The one-entry statistics list an unsharded method reports from
    /// `SearchIndex::shard_stats` (a `ShardedIndex` renumbers the entry
    /// per shard).
    pub fn single_shard_stats(
        &self,
        long_list_bytes: u64,
        long_postings: u64,
        short_postings: u64,
    ) -> Vec<crate::methods::ShardStats> {
        vec![crate::methods::ShardStats {
            shard: 0,
            docs: self.live_docs(),
            long_list_bytes,
            long_postings,
            short_postings,
        }]
    }

    /// IDF weight of a term under the live collection-wide df statistics.
    pub fn idf(&self, term: TermId) -> f64 {
        let df_count = self.stats.df.read().get(&term).copied().unwrap_or(0);
        idf(self.stats.num_docs.load(Ordering::Relaxed), df_count)
    }

    /// The combined scoring function `f(svr, Σ term scores)` of §4.3.3.
    #[inline]
    pub fn combine(&self, svr: Score, ts_sum: f64) -> Score {
        svr + self.term_weight * ts_sum
    }

    /// Validate and register a brand-new document; returns an error if the
    /// id is already in use by a live or deleted document.
    pub fn register_insert(&self, doc: &Document, score: Score) -> Result<()> {
        check_score(score)?;
        if self.score_table.get(doc.id)?.is_some() {
            return Err(CoreError::DuplicateDocument(doc.id));
        }
        self.score_table.set(doc.id, score)?;
        self.doc_store.put(doc)?;
        let mut df = self.stats.df.write();
        for term in doc.term_ids() {
            *df.entry(term).or_insert(0) += 1;
        }
        self.stats.num_docs.fetch_add(1, Ordering::Relaxed);
        self.local_docs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Tombstone a document.
    pub fn register_delete(&self, doc: DocId) -> Result<()> {
        if self.is_deleted(doc) {
            return Err(CoreError::UnknownDocument(doc));
        }
        self.score_table.mark_deleted(doc)?;
        let terms = self.doc_store.term_ids(doc)?;
        let mut df = self.stats.df.write();
        for term in terms {
            if let Some(count) = df.get_mut(&term) {
                *count = count.saturating_sub(1);
            }
        }
        self.stats.num_docs.fetch_sub(1, Ordering::Relaxed);
        self.local_docs.fetch_sub(1, Ordering::Relaxed);
        self.deleted.write().insert(doc);
        Ok(())
    }

    /// Exact inverse of [`MethodBase::register_delete`] for batch rollback:
    /// revive a tombstoned document. Tombstoning keeps the Score-table row
    /// (with its last live score), the forward entry and — for the
    /// tombstone-based methods — the postings, so reviving is pure
    /// bookkeeping: clear the flag and re-count the document. Returns the
    /// revived score.
    pub fn register_undelete(&self, doc: DocId) -> Result<Score> {
        if !self.is_deleted(doc) {
            return Err(CoreError::UnknownDocument(doc));
        }
        let entry = self
            .score_table
            .get(doc)?
            .ok_or(CoreError::UnknownDocument(doc))?;
        // `set` stores the row live (deleted flag cleared).
        self.score_table.set(doc, entry.score)?;
        let terms = self.doc_store.term_ids(doc)?;
        {
            let mut df = self.stats.df.write();
            for term in terms {
                *df.entry(term).or_insert(0) += 1;
            }
        }
        self.stats.num_docs.fetch_add(1, Ordering::Relaxed);
        self.local_docs.fetch_add(1, Ordering::Relaxed);
        self.deleted.write().remove(&doc);
        Ok(entry.score)
    }

    /// Exact inverse of [`MethodBase::register_insert`] for batch rollback:
    /// remove the document's bookkeeping entirely (unlike a deletion, which
    /// tombstones and keeps the id reserved — a rolled-back insert must
    /// leave the id free for re-use). Returns the stored `(term, tf)` rows
    /// so the caller can remove the postings its insertion added. Only
    /// sound while those postings are exactly the ones `insert_document`
    /// added; the engine's reverse-order undo replay guarantees that.
    pub fn unregister_insert(&self, doc: DocId) -> Result<Vec<(TermId, u32)>> {
        if self.is_deleted(doc) {
            return Err(CoreError::UnknownDocument(doc));
        }
        let terms = self
            .doc_store
            .get(doc)?
            .ok_or(CoreError::UnknownDocument(doc))?;
        self.score_table.remove(doc)?;
        self.doc_store.delete(doc)?;
        {
            let mut df = self.stats.df.write();
            for &(term, _) in &terms {
                if let Some(count) = df.get_mut(&term) {
                    *count = count.saturating_sub(1);
                }
            }
        }
        self.stats.num_docs.fetch_sub(1, Ordering::Relaxed);
        self.local_docs.fetch_sub(1, Ordering::Relaxed);
        Ok(terms)
    }

    /// Shared body of `SearchIndex::uninsert_document` for the short-list
    /// methods: remove the document's bookkeeping and the short postings
    /// its insertion added at `pos`. Returns `true` when fully uninserted
    /// (the caller should drop its list-state entry for the doc).
    ///
    /// When `in_short_list` is false the insert's postings were already
    /// merged into the long lists by concurrent maintenance (the offline
    /// merge deliberately takes no table lock, so it can land between an
    /// in-flight transaction's insert and its rollback). Long postings
    /// cannot be surgically removed, so the rollback degrades to the
    /// tombstoning delete — queries still see no trace of the document,
    /// only the id stays reserved like any deleted id — and returns
    /// `false` (the caller must keep its list-state entry: the tombstoned
    /// doc's long postings still resolve through it).
    pub fn uninsert_postings_at(
        &self,
        short: &crate::short_list::ShortLists,
        doc: DocId,
        pos: crate::short_list::PostingPos,
        in_short_list: bool,
    ) -> Result<bool> {
        if !in_short_list {
            self.register_delete(doc)?;
            return Ok(false);
        }
        let terms = self.unregister_insert(doc)?;
        for (term, _) in terms {
            short.delete(term, pos, doc)?;
        }
        Ok(true)
    }

    /// Replace a document's stored content; returns `(old_terms, new_terms)`
    /// as `(term, tf)` lists for the caller's posting maintenance.
    #[allow(clippy::type_complexity)]
    pub fn register_content(
        &self,
        doc: &Document,
    ) -> Result<(Vec<(TermId, u32)>, Vec<(TermId, u32)>)> {
        if self.is_deleted(doc.id) {
            return Err(CoreError::UnknownDocument(doc.id));
        }
        let old = self
            .doc_store
            .get(doc.id)?
            .ok_or(CoreError::UnknownDocument(doc.id))?;
        self.doc_store.put(doc)?;
        let old_set: HashSet<TermId> = old.iter().map(|&(t, _)| t).collect();
        let new_set: HashSet<TermId> = doc.term_ids().collect();
        let mut df = self.stats.df.write();
        for term in new_set.difference(&old_set) {
            *df.entry(*term).or_insert(0) += 1;
        }
        for term in old_set.difference(&new_set) {
            if let Some(count) = df.get_mut(term) {
                *count = count.saturating_sub(1);
            }
        }
        Ok((old, doc.terms.clone()))
    }

    /// Current (live) score of a doc.
    pub fn current_score(&self, doc: DocId) -> Result<Score> {
        if self.is_deleted(doc) {
            return Err(CoreError::UnknownDocument(doc));
        }
        self.score_table.score_of(doc)
    }
}
