//! Brute-force reference implementation used by tests.
//!
//! The oracle keeps the whole collection in memory and answers queries by
//! scanning every document. Every index method must agree with it after any
//! sequence of score updates, insertions, deletions and content updates —
//! this is the executable form of the paper's Theorems 1 and 2.

use std::collections::HashMap;

use svr_text::{quantize_term_score, unquantize_term_score};

use crate::error::{CoreError, Result};
use crate::heap::ranks_above;
use crate::types::{DocId, Document, Query, QueryMode, Score, SearchHit, TermId};

/// In-memory model of the collection.
pub struct Oracle {
    docs: HashMap<DocId, Document>,
    scores: HashMap<DocId, Score>,
    deleted: HashMap<DocId, bool>,
    df: HashMap<TermId, u64>,
    num_docs: u64,
    /// Weight of the term-score component; 0 disables term scoring (pure
    /// SVR methods).
    pub term_weight: f64,
}

impl Oracle {
    /// Build from the same corpus/scores as the index under test.
    pub fn build(docs: &[Document], scores: &HashMap<DocId, Score>, term_weight: f64) -> Oracle {
        let mut oracle = Oracle {
            docs: HashMap::new(),
            scores: HashMap::new(),
            deleted: HashMap::new(),
            df: HashMap::new(),
            num_docs: 0,
            term_weight,
        };
        for doc in docs {
            let score = scores.get(&doc.id).copied().unwrap_or(0.0);
            oracle
                .insert_document(doc, score)
                .expect("oracle build must not fail"); // svr-lint: allow(no-unwrap): the oracle's contract is to panic on divergence
        }
        oracle
    }

    /// Mirror of [`crate::methods::SearchIndex::update_score`].
    pub fn update_score(&mut self, doc: DocId, new_score: Score) -> Result<()> {
        if !self.is_live(doc) {
            return Err(CoreError::UnknownDocument(doc));
        }
        self.scores.insert(doc, new_score);
        Ok(())
    }

    /// Mirror of `insert_document`.
    pub fn insert_document(&mut self, doc: &Document, score: Score) -> Result<()> {
        if self.docs.contains_key(&doc.id) {
            return Err(CoreError::DuplicateDocument(doc.id));
        }
        self.docs.insert(doc.id, doc.clone());
        self.scores.insert(doc.id, score);
        self.deleted.insert(doc.id, false);
        for term in doc.term_ids() {
            *self.df.entry(term).or_insert(0) += 1;
        }
        self.num_docs += 1;
        Ok(())
    }

    /// Mirror of `delete_document`.
    pub fn delete_document(&mut self, doc: DocId) -> Result<()> {
        if !self.is_live(doc) {
            return Err(CoreError::UnknownDocument(doc));
        }
        self.deleted.insert(doc, true);
        let terms: Vec<TermId> = self.docs[&doc].term_ids().collect();
        for term in terms {
            if let Some(c) = self.df.get_mut(&term) {
                *c = c.saturating_sub(1);
            }
        }
        self.num_docs -= 1;
        Ok(())
    }

    /// Mirror of `update_content`.
    pub fn update_content(&mut self, doc: &Document) -> Result<()> {
        if !self.is_live(doc.id) {
            return Err(CoreError::UnknownDocument(doc.id));
        }
        let old: Vec<TermId> = self.docs[&doc.id].term_ids().collect();
        for term in old {
            if let Some(c) = self.df.get_mut(&term) {
                *c = c.saturating_sub(1);
            }
        }
        for term in doc.term_ids() {
            *self.df.entry(term).or_insert(0) += 1;
        }
        self.docs.insert(doc.id, doc.clone());
        Ok(())
    }

    /// True for a known, non-deleted doc.
    pub fn is_live(&self, doc: DocId) -> bool {
        self.docs.contains_key(&doc) && !self.deleted.get(&doc).copied().unwrap_or(true)
    }

    /// Current score of a live doc.
    pub fn score_of(&self, doc: DocId) -> Option<Score> {
        if self.is_live(doc) {
            self.scores.get(&doc).copied()
        } else {
            None
        }
    }

    /// Live document ids.
    pub fn live_docs(&self) -> Vec<DocId> {
        let mut out: Vec<DocId> = self
            .docs
            .keys()
            .copied()
            .filter(|&d| self.is_live(d))
            .collect();
        out.sort();
        out
    }

    fn idf(&self, term: TermId) -> f64 {
        svr_text::idf(self.num_docs, self.df.get(&term).copied().unwrap_or(0))
    }

    /// The combined score an index should report for `doc` on this query,
    /// or `None` if the doc does not qualify.
    pub fn query_score(&self, query: &Query, doc: DocId) -> Option<Score> {
        if !self.is_live(doc) {
            return None;
        }
        let d = self.docs.get(&doc)?;
        let matched = query.terms.iter().filter(|&&t| d.contains(t)).count();
        let qualifies = match query.mode {
            QueryMode::Conjunctive => matched == query.terms.len(),
            QueryMode::Disjunctive => matched >= 1,
        };
        if !qualifies || query.terms.is_empty() {
            return None;
        }
        let svr = self.scores.get(&doc).copied().unwrap_or(0.0);
        if self.term_weight == 0.0 {
            return Some(svr);
        }
        // Mirror the index arithmetic exactly: quantized normalized TF,
        // unquantized, times IDF, summed in query-term order.
        let max_tf = d.max_tf();
        let mut ts_sum = 0.0;
        for &t in &query.terms {
            let tf = d.tf(t);
            if tf > 0 {
                let q = quantize_term_score(svr_text::normalized_tf(tf, max_tf));
                ts_sum += self.idf(t) * unquantize_term_score(q);
            }
        }
        Some(svr + self.term_weight * ts_sum)
    }

    /// Ground-truth top-k.
    pub fn query(&self, query: &Query) -> Vec<SearchHit> {
        let mut hits: Vec<SearchHit> = self
            .docs
            .keys()
            .filter_map(|&doc| {
                self.query_score(query, doc)
                    .map(|score| SearchHit { doc, score })
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then_with(|| a.doc.0.cmp(&b.doc.0))
        });
        hits.truncate(query.k);
        hits
    }

    /// Assert that `hits` is a correct top-k answer for `query`.
    ///
    /// Verifies: (1) each returned doc qualifies and its score matches the
    /// ground truth within `eps`; (2) results are ranked; (3) no missing doc
    /// ranks strictly above a returned one (beyond `eps`); (4) the result
    /// count equals `min(k, qualifying docs)`.
    pub fn assert_topk_valid(&self, query: &Query, hits: &[SearchHit], eps: f64) {
        let truth = self.query(query);
        assert_eq!(
            hits.len(),
            truth.len(),
            "result count mismatch for {query:?}: got {hits:?}, want {truth:?}"
        );
        for w in hits.windows(2) {
            assert!(
                ranks_above(&w[0], &w[1]),
                "results not ranked: {:?} before {:?}",
                w[0],
                w[1]
            );
        }
        for hit in hits {
            let want = self
                .query_score(query, hit.doc)
                .unwrap_or_else(|| panic!("doc {} does not qualify for {query:?}", hit.doc)); // svr-lint: allow(no-unwrap): the oracle's contract is to panic on divergence
            assert!(
                (hit.score - want).abs() <= eps,
                "score mismatch for doc {}: got {}, want {want}",
                hit.doc,
                hit.score
            );
        }
        // No non-returned doc may beat the worst returned doc.
        if let Some(worst) = hits.last() {
            let returned: std::collections::HashSet<DocId> = hits.iter().map(|h| h.doc).collect();
            for &doc in self.docs.keys() {
                if returned.contains(&doc) {
                    continue;
                }
                if let Some(score) = self.query_score(query, doc) {
                    let contender = SearchHit {
                        doc,
                        score: score - eps,
                    };
                    assert!(
                        !ranks_above(&contender, worst),
                        "doc {doc} (score {score}) should have beaten {worst:?} in {query:?}"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(id: u32, terms: &[u32]) -> Document {
        Document::from_term_freqs(DocId(id), terms.iter().map(|&t| (TermId(t), 1)))
    }

    fn setup() -> Oracle {
        let docs = vec![doc(1, &[10, 20]), doc(2, &[10]), doc(3, &[20, 30])];
        let scores = HashMap::from([(DocId(1), 100.0), (DocId(2), 50.0), (DocId(3), 200.0)]);
        Oracle::build(&docs, &scores, 0.0)
    }

    #[test]
    fn conjunctive_filtering() {
        let o = setup();
        let hits = o.query(&Query::conjunctive([TermId(10), TermId(20)], 10));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc, DocId(1));
    }

    #[test]
    fn disjunctive_ranking() {
        let o = setup();
        let hits = o.query(&Query::disjunctive([TermId(10), TermId(20)], 10));
        assert_eq!(
            hits.iter().map(|h| h.doc.0).collect::<Vec<_>>(),
            vec![3, 1, 2]
        );
    }

    #[test]
    fn updates_and_deletes_respected() {
        let mut o = setup();
        o.update_score(DocId(2), 1000.0).unwrap();
        o.delete_document(DocId(3)).unwrap();
        let hits = o.query(&Query::disjunctive([TermId(10), TermId(20)], 10));
        assert_eq!(hits[0].doc, DocId(2));
        assert!(hits.iter().all(|h| h.doc != DocId(3)));
        assert!(o.update_score(DocId(3), 5.0).is_err());
    }

    #[test]
    fn assert_topk_valid_accepts_truth() {
        let o = setup();
        let q = Query::disjunctive([TermId(10), TermId(20), TermId(30)], 2);
        let truth = o.query(&q);
        o.assert_topk_valid(&q, &truth, 1e-9);
    }

    #[test]
    #[should_panic(expected = "should have beaten")]
    fn assert_topk_valid_rejects_wrong_answer() {
        let o = setup();
        let q = Query::disjunctive([TermId(10), TermId(20)], 1);
        let wrong = vec![SearchHit {
            doc: DocId(2),
            score: 50.0,
        }];
        o.assert_topk_valid(&q, &wrong, 1e-9);
    }

    #[test]
    fn term_scores_affect_ranking() {
        let d1 = Document::from_term_freqs(DocId(1), [(TermId(1), 10)]);
        let d2 = Document::from_term_freqs(DocId(2), [(TermId(1), 1), (TermId(2), 10)]);
        let scores = HashMap::from([(DocId(1), 10.0), (DocId(2), 10.0)]);
        let o = Oracle::build(&[d1, d2], &scores, 100.0);
        let hits = o.query(&Query::disjunctive([TermId(1)], 2));
        // Doc 1 has the maximal normalized TF for term 1; doc 2's is low.
        assert_eq!(hits[0].doc, DocId(1));
        assert!(hits[0].score > hits[1].score);
    }
}
