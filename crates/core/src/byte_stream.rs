//! Buffered byte stream over a page-chained blob.
//!
//! Long inverted lists are "read in a page at a time during query
//! processing" (§5.2). This wrapper turns a [`BlobReader`] into a byte
//! stream with varint / fixed-width primitives, pulling pages lazily so a
//! query that terminates early never touches the rest of the list.

use bytes::Bytes;
use svr_storage::{BlobReader, BlobStore, PageId, StorageError};

use crate::error::{CoreError, Result};

/// A suspension point inside a page-chained blob: the page holding the next
/// unread byte plus the byte's offset within that page's payload. `page ==
/// None` means the stream is exhausted. Captured with
/// [`ByteStream::position`], reopened with [`ByteStream::resume`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamPos {
    pub page: Option<PageId>,
    pub offset: usize,
}

/// Lazily-buffered reader over a blob.
pub struct ByteStream<'a> {
    reader: BlobReader<'a>,
    buf: Bytes,
    pos: usize,
    /// Page that produced `buf` (None before the first refill).
    buf_page: Option<PageId>,
}

impl<'a> ByteStream<'a> {
    /// Wrap a blob reader.
    pub fn new(reader: BlobReader<'a>) -> ByteStream<'a> {
        ByteStream {
            reader,
            buf: Bytes::new(),
            pos: 0,
            buf_page: None,
        }
    }

    /// Continue a suspended stream: start at `pos.page`, skipping
    /// `pos.offset` payload bytes of it. The caller must guarantee the page
    /// still belongs to the same blob (see `LongListStore`'s epoch check).
    pub fn resume(blobs: &'a BlobStore, pos: StreamPos) -> Result<ByteStream<'a>> {
        let mut stream = ByteStream::new(blobs.reader_from(pos.page));
        if pos.offset > 0 {
            if !stream.refill()? || pos.offset > stream.buf.len() {
                return Err(CoreError::Storage(StorageError::Corrupt(
                    "stale stream resume offset",
                )));
            }
            stream.pos = pos.offset;
        }
        Ok(stream)
    }

    /// The stream's current suspension point: where the next unread byte
    /// lives. When the current page is fully consumed this is the head of
    /// the next page (offset 0).
    pub fn position(&self) -> StreamPos {
        if self.pos < self.buf.len() {
            StreamPos {
                page: self.buf_page,
                offset: self.pos,
            }
        } else {
            StreamPos {
                page: self.reader.next_page_id(),
                offset: 0,
            }
        }
    }

    /// Ensure at least one unread byte is buffered; false at end of blob.
    fn refill(&mut self) -> Result<bool> {
        while self.pos >= self.buf.len() {
            let page = self.reader.next_page_id();
            match self.reader.next_chunk()? {
                Some(chunk) => {
                    self.buf = chunk;
                    self.pos = 0;
                    self.buf_page = page;
                }
                None => return Ok(false),
            }
        }
        Ok(true)
    }

    /// True when the stream is exhausted.
    pub fn is_eof(&mut self) -> Result<bool> {
        Ok(!self.refill()?)
    }

    /// Next byte; errors at EOF.
    pub fn read_u8(&mut self) -> Result<u8> {
        if !self.refill()? {
            return Err(CoreError::Storage(StorageError::Corrupt(
                "unexpected end of list",
            )));
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        Ok(b)
    }

    /// Fill `out` exactly; errors if the stream ends first.
    pub fn read_exact(&mut self, out: &mut [u8]) -> Result<()> {
        let mut written = 0;
        while written < out.len() {
            if !self.refill()? {
                return Err(CoreError::Storage(StorageError::Corrupt(
                    "unexpected end of list",
                )));
            }
            let take = (out.len() - written).min(self.buf.len() - self.pos);
            out[written..written + take].copy_from_slice(&self.buf[self.pos..self.pos + take]);
            self.pos += take;
            written += take;
        }
        Ok(())
    }

    /// Skip exactly `n` bytes; errors if the stream ends first. Skipped
    /// pages still have to be walked (blob pages are chained), but their
    /// payload is never copied or decoded — this is what block-level
    /// skipping buys.
    pub fn skip(&mut self, mut n: usize) -> Result<()> {
        while n > 0 {
            if !self.refill()? {
                return Err(CoreError::Storage(StorageError::Corrupt(
                    "unexpected end of list",
                )));
            }
            let take = n.min(self.buf.len() - self.pos);
            self.pos += take;
            n -= take;
        }
        Ok(())
    }

    /// Read exactly `n` bytes into `out`, reusing its capacity. Block
    /// cursors call this with one long-lived buffer per cursor so decoding
    /// never allocates per block.
    pub fn read_into(&mut self, n: usize, out: &mut Vec<u8>) -> Result<()> {
        out.clear();
        out.resize(n, 0);
        self.read_exact(&mut out[..])
    }

    /// LEB128 varint, possibly spanning page boundaries.
    pub fn read_varint(&mut self) -> Result<u64> {
        // Fast path: the whole varint sits in the buffered page — decode it
        // straight off the slice instead of byte-at-a-time refill checks.
        if self.pos < self.buf.len() {
            let mut p = self.pos;
            if let Some(v) = svr_storage::codec::read_varint(&self.buf, &mut p) {
                self.pos = p;
                return Ok(v);
            }
        }
        let mut result = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.read_u8()?;
            result |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
            if shift >= 64 {
                return Err(CoreError::Storage(StorageError::Corrupt("varint overflow")));
            }
        }
    }

    /// Little-endian u16.
    pub fn read_u16_le(&mut self) -> Result<u16> {
        let mut b = [0u8; 2];
        self.read_exact(&mut b)?;
        Ok(u16::from_le_bytes(b))
    }

    /// Little-endian u32.
    pub fn read_u32_le(&mut self) -> Result<u32> {
        let mut b = [0u8; 4];
        self.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Little-endian f64.
    pub fn read_f64_le(&mut self) -> Result<f64> {
        let mut b = [0u8; 8];
        self.read_exact(&mut b)?;
        Ok(f64::from_le_bytes(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use svr_storage::codec::write_varint;
    use svr_storage::{BlobStore, MemDisk, Store};

    fn blob_store() -> BlobStore {
        // Tiny pages so multi-page boundaries are exercised constantly.
        BlobStore::new(Arc::new(Store::new(Arc::new(MemDisk::new(64)), 8)))
    }

    #[test]
    fn varints_across_page_boundaries() {
        let bs = blob_store();
        let values: Vec<u64> = (0..500).map(|i| i * 37 + (i << 9)).collect();
        let mut data = Vec::new();
        for &v in &values {
            write_varint(&mut data, v);
        }
        let handle = bs.put(&data).unwrap();
        assert!(handle.pages > 5, "must span many pages");
        let mut stream = ByteStream::new(bs.reader(handle));
        for &v in &values {
            assert_eq!(stream.read_varint().unwrap(), v);
        }
        assert!(stream.is_eof().unwrap());
    }

    #[test]
    fn fixed_width_reads_across_boundaries() {
        let bs = blob_store();
        let mut data = Vec::new();
        for i in 0..100u32 {
            data.extend_from_slice(&(i as f64 * 1.5).to_le_bytes());
            data.extend_from_slice(&i.to_le_bytes());
            data.extend_from_slice(&(i as u16).to_le_bytes());
        }
        let handle = bs.put(&data).unwrap();
        let mut stream = ByteStream::new(bs.reader(handle));
        for i in 0..100u32 {
            assert_eq!(stream.read_f64_le().unwrap(), i as f64 * 1.5);
            assert_eq!(stream.read_u32_le().unwrap(), i);
            assert_eq!(stream.read_u16_le().unwrap(), i as u16);
        }
        assert!(stream.is_eof().unwrap());
    }

    #[test]
    fn position_roundtrip_resumes_exactly() {
        let bs = blob_store();
        let values: Vec<u64> = (0..400).map(|i| i * 91 + 7).collect();
        let mut data = Vec::new();
        for &v in &values {
            write_varint(&mut data, v);
        }
        let handle = bs.put(&data).unwrap();
        // Suspend after every read and resume from the captured position.
        let mut pos = ByteStream::new(bs.reader(handle)).position();
        for &v in &values {
            let mut stream = ByteStream::resume(&bs, pos).unwrap();
            assert_eq!(stream.read_varint().unwrap(), v);
            pos = stream.position();
        }
        let mut stream = ByteStream::resume(&bs, pos).unwrap();
        assert!(stream.is_eof().unwrap());
        assert_eq!(stream.position().page, None);
    }

    #[test]
    fn eof_is_an_error_for_reads() {
        let bs = blob_store();
        let handle = bs.put(&[0x80]).unwrap(); // truncated varint
        let mut stream = ByteStream::new(bs.reader(handle));
        assert!(stream.read_varint().is_err());
        let empty = bs.put(&[]).unwrap();
        let mut stream = ByteStream::new(bs.reader(empty));
        assert!(stream.is_eof().unwrap());
        assert!(stream.read_u8().is_err());
    }
}
