//! Durable-structure plumbing shared by the index methods.
//!
//! Every reopenable structure in a store follows one convention: **its
//! B+-tree metadata page is the store's first allocation (page 0)**, so a
//! structure can be reattached from nothing but its store. This module
//! holds the create/open helpers enforcing that, plus [`MetaTable`] — the
//! small per-shard record store where a method persists the state it would
//! otherwise keep only in memory (chunk boundaries, fancy-list metadata,
//! content-dirty markers), written at build/merge/content-update time, read
//! once at open.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use svr_storage::codec::{read_varint, write_varint};
use svr_storage::{BTree, Store};

use crate::error::{CoreError, Result};
use crate::types::{DocId, Score, TermId};

/// Create a structure's backing tree: durable (reopenable; meta page first)
/// when `durable`, plain otherwise.
pub(crate) fn create_tree(store: Arc<Store>, durable: bool) -> Result<BTree> {
    if durable {
        BTree::create_durable(store).map_err(CoreError::Storage)
    } else {
        BTree::create(store).map_err(CoreError::Storage)
    }
}

/// Reattach a durable structure's tree from its store (metadata at page 0,
/// per the module convention).
pub(crate) fn open_tree(store: Arc<Store>) -> Result<BTree> {
    BTree::reopen(store, 0).map_err(CoreError::Storage)
}

/// Record-key prefixes inside a [`MetaTable`].
const KEY_CHUNK_MAP: u8 = b'c';
const KEY_FANCY: u8 = b'f';
const KEY_DIRTY: u8 = b'd';

/// Per-shard durable metadata records.
pub(crate) struct MetaTable {
    tree: BTree,
}

impl MetaTable {
    /// Create an empty table (durable when the shard is).
    pub fn create(store: Arc<Store>, durable: bool) -> Result<MetaTable> {
        Ok(MetaTable {
            tree: create_tree(store, durable)?,
        })
    }

    /// Reattach an existing table.
    pub fn open(store: Arc<Store>) -> Result<MetaTable> {
        Ok(MetaTable {
            tree: open_tree(store)?,
        })
    }

    fn clear_prefix(&self, prefix: u8) -> Result<()> {
        let keys: Vec<Vec<u8>> = self
            .tree
            .scan_prefix(&[prefix])?
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        for k in keys {
            self.tree.delete(&k)?;
        }
        Ok(())
    }

    /// Persist the chunk boundary list (replacing any previous one). Long
    /// lists are laid out by these boundaries, so they must reopen exactly;
    /// the list is split across records to respect the tree's entry-size
    /// cap.
    pub fn put_chunk_map(&self, boundaries: &[Score]) -> Result<()> {
        self.clear_prefix(KEY_CHUNK_MAP)?;
        let per = ((self.tree.max_entry_size() - 16) / 8).max(1);
        for (seq, chunk) in boundaries.chunks(per).enumerate() {
            let mut key = vec![KEY_CHUNK_MAP];
            key.extend_from_slice(&(seq as u32).to_be_bytes());
            let mut val = Vec::with_capacity(2 + chunk.len() * 8);
            write_varint(&mut val, chunk.len() as u64);
            for &b in chunk {
                val.extend_from_slice(&b.to_le_bytes());
            }
            self.tree.put(&key, &val)?;
        }
        Ok(())
    }

    /// The persisted chunk boundaries, or `None` when never written.
    pub fn chunk_map(&self) -> Result<Option<Vec<Score>>> {
        let rows = self.tree.scan_prefix(&[KEY_CHUNK_MAP])?;
        if rows.is_empty() {
            return Ok(None);
        }
        let mut out = Vec::new();
        for (_, val) in rows {
            let mut pos = 0;
            let n = read_varint(&val, &mut pos).ok_or(CoreError::Storage(
                svr_storage::StorageError::Corrupt("chunk-map record"),
            ))? as usize;
            for _ in 0..n {
                let end = pos + 8;
                let bytes = val.get(pos..end).ok_or(CoreError::Storage(
                    svr_storage::StorageError::Corrupt("chunk-map record"),
                ))?;
                out.push(f64::from_le_bytes(bytes.try_into().expect("8 bytes")));
                pos = end;
            }
        }
        Ok(Some(out))
    }

    /// Replace the persisted per-term fancy-list metadata
    /// (`term -> (min_ts, complete)`), written at build and merge time.
    /// The insert-time `inserted_max` widening is *not* stored here — it is
    /// re-derived from the short lists at open.
    pub fn put_fancy_meta<'a>(
        &self,
        entries: impl Iterator<Item = (TermId, (u16, bool))> + 'a,
    ) -> Result<()> {
        self.clear_prefix(KEY_FANCY)?;
        for (term, (min_ts, complete)) in entries {
            let mut key = vec![KEY_FANCY];
            key.extend_from_slice(&term.0.to_be_bytes());
            let mut val = [0u8; 3];
            val[..2].copy_from_slice(&min_ts.to_le_bytes());
            val[2] = complete as u8;
            self.tree.put(&key, &val)?;
        }
        Ok(())
    }

    /// The persisted fancy-list metadata.
    pub fn fancy_meta(&self) -> Result<HashMap<TermId, (u16, bool)>> {
        let mut out = HashMap::new();
        for (key, val) in self.tree.scan_prefix(&[KEY_FANCY])? {
            if key.len() < 5 || val.len() < 3 {
                return Err(CoreError::Storage(svr_storage::StorageError::Corrupt(
                    "fancy-meta record",
                )));
            }
            let term = TermId(u32::from_be_bytes(key[1..5].try_into().expect("4 bytes")));
            let min_ts = u16::from_le_bytes(val[..2].try_into().expect("2 bytes"));
            out.insert(term, (min_ts, val[2] != 0));
        }
        Ok(out)
    }

    /// Mark a document content-dirty (fancy postings untrustworthy until
    /// the next merge).
    pub fn mark_dirty(&self, doc: DocId) -> Result<()> {
        let mut key = vec![KEY_DIRTY];
        key.extend_from_slice(&doc.0.to_be_bytes());
        self.tree.put(&key, &[])?;
        Ok(())
    }

    /// Drop every content-dirty marker (after a merge).
    pub fn clear_dirty(&self) -> Result<()> {
        self.clear_prefix(KEY_DIRTY)
    }

    /// The persisted content-dirty set.
    pub fn dirty_docs(&self) -> Result<HashSet<DocId>> {
        let mut out = HashSet::new();
        for (key, _) in self.tree.scan_prefix(&[KEY_DIRTY])? {
            if key.len() < 5 {
                return Err(CoreError::Storage(svr_storage::StorageError::Corrupt(
                    "dirty record",
                )));
            }
            out.insert(DocId(u32::from_be_bytes(
                key[1..5].try_into().expect("4 bytes"),
            )));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svr_storage::MemDisk;

    fn table() -> MetaTable {
        let store = Arc::new(Store::new(Arc::new(MemDisk::new(512)), 64));
        MetaTable::create(store, true).unwrap()
    }

    #[test]
    fn chunk_map_roundtrip_spans_records() {
        let t = table();
        assert_eq!(t.chunk_map().unwrap(), None);
        // 200 boundaries far exceed one 512-byte page entry.
        let bounds: Vec<f64> = (0..200).map(|i| i as f64 * 1.5).collect();
        t.put_chunk_map(&bounds).unwrap();
        assert_eq!(t.chunk_map().unwrap().unwrap(), bounds);
        // Replacement drops the old records entirely.
        t.put_chunk_map(&[0.0, 7.0]).unwrap();
        assert_eq!(t.chunk_map().unwrap().unwrap(), vec![0.0, 7.0]);
    }

    #[test]
    fn fancy_meta_and_dirty_roundtrip() {
        let t = table();
        let mut meta = HashMap::new();
        meta.insert(TermId(3), (9u16, true));
        meta.insert(TermId(77), (0u16, false));
        t.put_fancy_meta(meta.iter().map(|(&k, &v)| (k, v)))
            .unwrap();
        assert_eq!(t.fancy_meta().unwrap(), meta);
        t.mark_dirty(DocId(5)).unwrap();
        t.mark_dirty(DocId(6)).unwrap();
        assert_eq!(t.dirty_docs().unwrap().len(), 2);
        t.clear_dirty().unwrap();
        assert!(t.dirty_docs().unwrap().is_empty());
    }
}
