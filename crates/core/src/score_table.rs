//! The Score table: `doc id -> (current score, deleted flag)`.
//!
//! "A Score table is used to store the ID and score of each document (there
//! is only one such Score table for the entire collection)... An index is
//! built on the ID column of the Score table so that score lookups by ID are
//! efficient" (§4.2.1). In this implementation the table *is* its B+-tree
//! index, keyed by document id. Appendix A.2 adds the deleted flag.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use svr_storage::{BTree, Store};

use crate::error::{check_score, CoreError, Result};
use crate::types::{DocId, Score};

/// One row of the Score table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreEntry {
    pub score: Score,
    pub deleted: bool,
}

/// B+-tree-backed Score table.
pub struct ScoreTable {
    tree: BTree,
    /// Monotone upper bound on every score ever written (f64 bits; valid
    /// because [`check_score`] rejects negatives, so the IEEE-754 bit
    /// pattern of a non-negative f64 orders like the value). Never lowered
    /// on score decreases — loose but sound for WAND pruning. Reseeded by
    /// the reopen scan ([`ScoreTable::all_entries`] callers) via
    /// [`ScoreTable::note_score`].
    max_bound: AtomicU64,
}

impl ScoreTable {
    /// Create an empty table in `store`.
    pub fn create(store: Arc<Store>) -> Result<ScoreTable> {
        ScoreTable::create_in(store, false)
    }

    /// Create an empty table, durable (reopenable via [`ScoreTable::open`])
    /// when requested.
    pub fn create_in(store: Arc<Store>, durable: bool) -> Result<ScoreTable> {
        Ok(ScoreTable {
            tree: crate::durable::create_tree(store, durable)?,
            max_bound: AtomicU64::new(0),
        })
    }

    /// Reattach a durable table from its store.
    pub fn open(store: Arc<Store>) -> Result<ScoreTable> {
        Ok(ScoreTable {
            tree: crate::durable::open_tree(store)?,
            max_bound: AtomicU64::new(0),
        })
    }

    fn key(doc: DocId) -> [u8; 4] {
        doc.0.to_be_bytes()
    }

    fn value(entry: ScoreEntry) -> [u8; 9] {
        let mut v = [0u8; 9];
        v[..8].copy_from_slice(&entry.score.to_le_bytes());
        v[8] = entry.deleted as u8;
        v
    }

    fn decode(raw: &[u8]) -> ScoreEntry {
        ScoreEntry {
            score: f64::from_le_bytes(raw[..8].try_into().expect("short score row")),
            deleted: raw.get(8).copied().unwrap_or(0) != 0,
        }
    }

    /// Fetch a row.
    pub fn get(&self, doc: DocId) -> Result<Option<ScoreEntry>> {
        Ok(self.tree.get(&Self::key(doc))?.map(|v| Self::decode(&v)))
    }

    /// Current score of a live document; errors on unknown or deleted docs.
    pub fn score_of(&self, doc: DocId) -> Result<Score> {
        match self.get(doc)? {
            Some(entry) if !entry.deleted => Ok(entry.score),
            _ => Err(CoreError::UnknownDocument(doc)),
        }
    }

    /// Fold a score into the monotone upper bound without writing a row —
    /// used by the reopen scan to reseed the bound from existing rows
    /// (including tombstoned ones: undelete revives their score).
    pub fn note_score(&self, score: Score) {
        self.max_bound.fetch_max(score.to_bits(), Ordering::Relaxed);
    }

    /// Monotone upper bound on every score ever written to this table
    /// (never lowered when scores decrease; `0.0` for an empty table).
    pub fn max_score_bound(&self) -> Score {
        f64::from_bits(self.max_bound.load(Ordering::Relaxed))
    }

    /// Insert or overwrite a row; validates the score.
    pub fn set(&self, doc: DocId, score: Score) -> Result<Option<ScoreEntry>> {
        let score = check_score(score)?;
        self.note_score(score);
        let prev = self.tree.put(
            &Self::key(doc),
            &Self::value(ScoreEntry {
                score,
                deleted: false,
            }),
        )?;
        Ok(prev.map(|v| Self::decode(&v)))
    }

    /// Mark a document deleted (Appendix A.2: "add a new field in the Score
    /// table that indicates whether a document with a given ID is deleted").
    pub fn mark_deleted(&self, doc: DocId) -> Result<()> {
        let entry = self.get(doc)?.ok_or(CoreError::UnknownDocument(doc))?;
        self.tree.put(
            &Self::key(doc),
            &Self::value(ScoreEntry {
                deleted: true,
                ..entry
            }),
        )?;
        Ok(())
    }

    /// Remove a row entirely — the batch-rollback inverse of the insert
    /// path. Regular deletion *tombstones* via
    /// [`ScoreTable::mark_deleted`] so the id stays reserved; removal is
    /// only sound when undoing an insert that the same batch performed.
    pub fn remove(&self, doc: DocId) -> Result<()> {
        self.tree.delete(&Self::key(doc))?;
        Ok(())
    }

    /// Number of rows (live + deleted).
    pub fn len(&self) -> u64 {
        self.tree.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Every row — live and tombstoned — in doc-id order: the scan a
    /// reopened shard rebuilds its in-memory tombstone set and live count
    /// from.
    pub fn all_entries(&self) -> Result<Vec<(DocId, ScoreEntry)>> {
        let mut cursor = self.tree.cursor(&[])?;
        let mut out = Vec::new();
        while let Some((k, v)) = cursor.next_entry()? {
            let doc = DocId(u32::from_be_bytes(k[..4].try_into().expect("short key")));
            out.push((doc, Self::decode(&v)));
        }
        Ok(out)
    }

    /// All live `(doc, score)` rows in doc-id order (used when (re)building
    /// chunk maps).
    pub fn live_scores(&self) -> Result<Vec<(DocId, Score)>> {
        let mut cursor = self.tree.cursor(&[])?;
        let mut out = Vec::new();
        while let Some((k, v)) = cursor.next_entry()? {
            let entry = Self::decode(&v);
            if !entry.deleted {
                let doc = DocId(u32::from_be_bytes(k[..4].try_into().expect("short key")));
                out.push((doc, entry.score));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svr_storage::{MemDisk, Store};

    fn table() -> ScoreTable {
        let store = Arc::new(Store::new(Arc::new(MemDisk::new(4096)), 64));
        ScoreTable::create(store).unwrap()
    }

    #[test]
    fn set_get_roundtrip() {
        let t = table();
        assert_eq!(t.set(DocId(15), 87.13).unwrap(), None);
        assert_eq!(t.score_of(DocId(15)).unwrap(), 87.13);
        let prev = t.set(DocId(15), 124.2).unwrap().unwrap();
        assert_eq!(prev.score, 87.13);
        assert_eq!(t.score_of(DocId(15)).unwrap(), 124.2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn unknown_doc_errors() {
        let t = table();
        assert_eq!(
            t.score_of(DocId(1)),
            Err(CoreError::UnknownDocument(DocId(1)))
        );
        assert!(t.mark_deleted(DocId(1)).is_err());
    }

    #[test]
    fn deleted_docs_hidden_from_score_of_and_live_scores() {
        let t = table();
        t.set(DocId(1), 10.0).unwrap();
        t.set(DocId(2), 20.0).unwrap();
        t.mark_deleted(DocId(1)).unwrap();
        assert!(t.score_of(DocId(1)).is_err());
        assert!(t.get(DocId(1)).unwrap().unwrap().deleted);
        assert_eq!(t.live_scores().unwrap(), vec![(DocId(2), 20.0)]);
    }

    #[test]
    fn invalid_scores_rejected() {
        let t = table();
        assert!(t.set(DocId(1), -3.0).is_err());
        assert!(t.set(DocId(1), f64::NAN).is_err());
    }

    #[test]
    fn max_score_bound_is_monotone() {
        let t = table();
        assert_eq!(t.max_score_bound(), 0.0);
        t.set(DocId(1), 10.0).unwrap();
        t.set(DocId(2), 90.0).unwrap();
        assert_eq!(t.max_score_bound(), 90.0);
        // Lowering a score never lowers the bound (loose but sound).
        t.set(DocId(2), 5.0).unwrap();
        assert_eq!(t.max_score_bound(), 90.0);
        t.note_score(250.0);
        assert_eq!(t.max_score_bound(), 250.0);
    }

    #[test]
    fn reinsert_after_delete_revives() {
        let t = table();
        t.set(DocId(1), 10.0).unwrap();
        t.mark_deleted(DocId(1)).unwrap();
        t.set(DocId(1), 30.0).unwrap();
        assert_eq!(t.score_of(DocId(1)).unwrap(), 30.0);
    }
}
