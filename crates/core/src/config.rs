//! Configuration knobs for the index methods.

use crate::codec::CodecKind;

/// Tunable parameters shared by the index builders.
///
/// The two knobs the paper's evaluation revolves around are
/// [`threshold_ratio`](IndexConfig::threshold_ratio) (Score-Threshold) and
/// [`chunk_ratio`](IndexConfig::chunk_ratio) (Chunk): both trade update time
/// for query time. Defaults are the paper's chosen operating points (§5.3.1:
/// "we fix chunk ratio at 6.12 and the threshold ratio at 11.24").
#[derive(Debug, Clone)]
pub struct IndexConfig {
    /// `thresholdValueOf(score) = threshold_ratio * score` for the
    /// Score-Threshold method. Must be > 1.
    pub threshold_ratio: f64,
    /// Ratio between the lowest scores of adjacent chunks for the Chunk
    /// methods. Must be > 1.
    pub chunk_ratio: f64,
    /// Minimum number of documents per chunk ("we also set a minimum size of
    /// a chunk so that each chunk has at least 100 documents").
    pub min_chunk_docs: usize,
    /// Number of postings in each term's fancy list (Chunk-TermScore).
    pub fancy_size: usize,
    /// Weight of the term-score component in the combined scoring function
    /// `f(svr, ts) = svr + term_weight * ts` (§4.3.3). The paper's `f` is a
    /// plain sum; the weight lets workloads put the two components on
    /// comparable scales.
    pub term_weight: f64,
    /// Storage page size in bytes. The paper's BerkeleyDB deployment uses
    /// 4 KiB pages; scaled-down experiments use smaller pages so that page
    /// counts (the unit of the cost model) stay discriminating on short
    /// posting lists.
    pub page_size: usize,
    /// Buffer-pool pages for the long-inverted-list store.
    pub long_cache_pages: usize,
    /// Buffer-pool pages for each small structure (Score table, short lists,
    /// ListScore/ListChunk, doc store). These are "easily maintained in the
    /// database cache" (§5.3.1), so the default is generous.
    pub small_cache_pages: usize,
    /// Cap on a suspended cursor's candidate pool (resolved-but-unemitted
    /// results). `0` = unbounded (the library default). Long-lived network
    /// cursors should set a cap: a full-scan method's first batch resolves
    /// every match into the pool, and an abandoned cursor would pin that
    /// memory until swept. Exceeding the cap evicts the cursor with
    /// [`CoreError::CursorEvicted`](crate::CoreError::CursorEvicted).
    pub cursor_pool_cap: usize,
    /// Number of write shards the index is partitioned into (beyond the
    /// paper, which is single-writer). Documents are hash-partitioned by
    /// doc id; each shard owns its own Score-table region, short/long list
    /// stores, chunk map and maintenance state behind an independent writer
    /// lock, so score updates to documents in different shards proceed in
    /// parallel. `1` (the default) keeps the paper's single-partition
    /// layout. Queries stay exact at any shard count: every shard holds the
    /// complete postings of its documents and answers the query locally,
    /// and the per-shard top-k results are merged.
    pub num_shards: usize,
    /// On-disk codec of the long posting lists (SQL `OPTIONS (codec =
    /// ...)`). `Legacy` — the flat pre-block formats — is the default and
    /// keeps the paper's Table 1 byte counts; the block codecs
    /// (`uncompressed` / `varint` / `bitpacked`) add per-block skip
    /// metadata and, for the compressed two, shrink the lists. Fixed at
    /// build time and persisted in the index catalog. See
    /// [`crate::codec`].
    pub codec: CodecKind,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            threshold_ratio: 11.24,
            chunk_ratio: 6.12,
            min_chunk_docs: 100,
            fancy_size: 64,
            term_weight: 1.0,
            page_size: svr_storage::DEFAULT_PAGE_SIZE,
            long_cache_pages: 4096,
            small_cache_pages: 16384,
            cursor_pool_cap: 0,
            num_shards: 1,
            codec: CodecKind::Legacy,
        }
    }
}

impl IndexConfig {
    /// Validate invariants; panics on nonsensical settings (these are
    /// programmer-supplied constants, not runtime data).
    pub fn validated(self) -> Self {
        assert!(
            self.page_size >= 256,
            "page size must be at least 256 bytes"
        );
        assert!(self.threshold_ratio > 1.0, "threshold ratio must be > 1");
        assert!(self.chunk_ratio > 1.0, "chunk ratio must be > 1");
        assert!(self.fancy_size > 0, "fancy list size must be positive");
        assert!(self.term_weight >= 0.0, "term weight must be non-negative");
        assert!(self.num_shards >= 1, "shard count must be at least 1");
        self
    }

    /// `thresholdValueOf` for the Score-Threshold method.
    #[inline]
    pub fn threshold_value_of(&self, score: f64) -> f64 {
        self.threshold_ratio * score
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_operating_points() {
        let c = IndexConfig::default().validated();
        assert_eq!(c.threshold_ratio, 11.24);
        assert_eq!(c.chunk_ratio, 6.12);
        assert_eq!(c.min_chunk_docs, 100);
    }

    #[test]
    fn threshold_value_of_scales() {
        let c = IndexConfig {
            threshold_ratio: 2.0,
            ..IndexConfig::default()
        };
        assert_eq!(c.threshold_value_of(50.0), 100.0);
        // thresholdValueOf(score) >= score is required for correctness.
        for s in [0.0, 1.0, 87.13, 1e6] {
            assert!(c.threshold_value_of(s) >= s);
        }
    }

    #[test]
    #[should_panic(expected = "chunk ratio")]
    fn bad_chunk_ratio_panics() {
        let _ = IndexConfig {
            chunk_ratio: 0.9,
            ..IndexConfig::default()
        }
        .validated();
    }
}
