//! The ListScore / ListChunk tables.
//!
//! "A ListScore table contains an entry for each document whose score has
//! been updated. Each entry contains the ID of the document, its score in
//! the (short or long) inverted list, and an inShortList field" (§4.3.1).
//! The Chunk method's ListChunk table is the same structure with a chunk id
//! in place of the score (§4.3.2).

use std::sync::Arc;

use svr_storage::{BTree, Store};

use crate::error::{CoreError, Result};
use crate::types::{ChunkId, DocId, Score};

/// A ListScore row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ListScoreEntry {
    /// The document's score as recorded in the (short or long) inverted
    /// list — *not* necessarily its current score.
    pub l_score: Score,
    /// True when the document's postings live in the short lists.
    pub in_short_list: bool,
}

/// B+-tree-backed ListScore table (Score-Threshold method).
pub struct ListScoreTable {
    tree: BTree,
}

impl ListScoreTable {
    pub fn create(store: Arc<Store>) -> Result<ListScoreTable> {
        ListScoreTable::create_in(store, false)
    }

    /// Create, durable (reopenable) when requested.
    pub fn create_in(store: Arc<Store>, durable: bool) -> Result<ListScoreTable> {
        Ok(ListScoreTable {
            tree: crate::durable::create_tree(store, durable)?,
        })
    }

    /// Reattach a durable table.
    pub fn open(store: Arc<Store>) -> Result<ListScoreTable> {
        Ok(ListScoreTable {
            tree: crate::durable::open_tree(store)?,
        })
    }

    pub fn get(&self, doc: DocId) -> Result<Option<ListScoreEntry>> {
        match self.tree.get(&doc.0.to_be_bytes())? {
            Some(raw) => {
                let l_score = f64::from_le_bytes(raw[..8].try_into().map_err(|_| {
                    CoreError::Storage(svr_storage::StorageError::Corrupt("listscore row"))
                })?);
                Ok(Some(ListScoreEntry {
                    l_score,
                    in_short_list: raw.get(8) == Some(&1),
                }))
            }
            None => Ok(None),
        }
    }

    pub fn put(&self, doc: DocId, entry: ListScoreEntry) -> Result<()> {
        let mut v = [0u8; 9];
        v[..8].copy_from_slice(&entry.l_score.to_le_bytes());
        v[8] = entry.in_short_list as u8;
        self.tree.put(&doc.0.to_be_bytes(), &v)?;
        Ok(())
    }

    pub fn delete(&self, doc: DocId) -> Result<()> {
        self.tree.delete(&doc.0.to_be_bytes())?;
        Ok(())
    }

    pub fn len(&self) -> u64 {
        self.tree.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Remove every row (after an offline merge).
    pub fn clear(&self) -> Result<()> {
        let mut cursor = self.tree.cursor(&[])?;
        let mut keys = Vec::new();
        while let Some((k, _)) = cursor.next_entry()? {
            keys.push(k);
        }
        for k in keys {
            self.tree.delete(&k)?;
        }
        Ok(())
    }
}

/// A ListChunk row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListChunkEntry {
    /// Chunk where the document's postings currently live.
    pub l_chunk: ChunkId,
    pub in_short_list: bool,
}

/// B+-tree-backed ListChunk table (Chunk methods).
pub struct ListChunkTable {
    tree: BTree,
}

impl ListChunkTable {
    pub fn create(store: Arc<Store>) -> Result<ListChunkTable> {
        ListChunkTable::create_in(store, false)
    }

    /// Create, durable (reopenable) when requested.
    pub fn create_in(store: Arc<Store>, durable: bool) -> Result<ListChunkTable> {
        Ok(ListChunkTable {
            tree: crate::durable::create_tree(store, durable)?,
        })
    }

    /// Reattach a durable table.
    pub fn open(store: Arc<Store>) -> Result<ListChunkTable> {
        Ok(ListChunkTable {
            tree: crate::durable::open_tree(store)?,
        })
    }

    pub fn get(&self, doc: DocId) -> Result<Option<ListChunkEntry>> {
        match self.tree.get(&doc.0.to_be_bytes())? {
            Some(raw) => {
                let l_chunk = u32::from_le_bytes(raw[..4].try_into().map_err(|_| {
                    CoreError::Storage(svr_storage::StorageError::Corrupt("listchunk row"))
                })?);
                Ok(Some(ListChunkEntry {
                    l_chunk,
                    in_short_list: raw.get(4) == Some(&1),
                }))
            }
            None => Ok(None),
        }
    }

    pub fn put(&self, doc: DocId, entry: ListChunkEntry) -> Result<()> {
        let mut v = [0u8; 5];
        v[..4].copy_from_slice(&entry.l_chunk.to_le_bytes());
        v[4] = entry.in_short_list as u8;
        self.tree.put(&doc.0.to_be_bytes(), &v)?;
        Ok(())
    }

    pub fn delete(&self, doc: DocId) -> Result<()> {
        self.tree.delete(&doc.0.to_be_bytes())?;
        Ok(())
    }

    pub fn len(&self) -> u64 {
        self.tree.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Remove every row (after an offline merge).
    pub fn clear(&self) -> Result<()> {
        let mut cursor = self.tree.cursor(&[])?;
        let mut keys = Vec::new();
        while let Some((k, _)) = cursor.next_entry()? {
            keys.push(k);
        }
        for k in keys {
            self.tree.delete(&k)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svr_storage::MemDisk;

    fn store() -> Arc<Store> {
        Arc::new(Store::new(Arc::new(MemDisk::new(4096)), 64))
    }

    #[test]
    fn list_score_roundtrip() {
        let t = ListScoreTable::create(store()).unwrap();
        assert_eq!(t.get(DocId(15)).unwrap(), None);
        t.put(
            DocId(15),
            ListScoreEntry {
                l_score: 87.13,
                in_short_list: false,
            },
        )
        .unwrap();
        assert_eq!(
            t.get(DocId(15)).unwrap(),
            Some(ListScoreEntry {
                l_score: 87.13,
                in_short_list: false
            })
        );
        t.put(
            DocId(15),
            ListScoreEntry {
                l_score: 124.2,
                in_short_list: true,
            },
        )
        .unwrap();
        let e = t.get(DocId(15)).unwrap().unwrap();
        assert_eq!(e.l_score, 124.2);
        assert!(e.in_short_list);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn list_chunk_roundtrip_and_clear() {
        let t = ListChunkTable::create(store()).unwrap();
        for d in 0..50u32 {
            t.put(
                DocId(d),
                ListChunkEntry {
                    l_chunk: d % 7,
                    in_short_list: d % 2 == 0,
                },
            )
            .unwrap();
        }
        assert_eq!(
            t.get(DocId(6)).unwrap(),
            Some(ListChunkEntry {
                l_chunk: 6,
                in_short_list: true
            })
        );
        t.delete(DocId(6)).unwrap();
        assert_eq!(t.get(DocId(6)).unwrap(), None);
        t.clear().unwrap();
        assert!(t.is_empty());
    }
}
