//! Chunk assignment for the Chunk / Chunk-TermScore methods.
//!
//! "Set chunk boundaries so that for two adjacent chunks i+1 and i, the
//! ratio of the lowest score in i+1 to the lowest score in i is a constant c
//! (c > 1)... we also set a minimum size of a chunk so that each chunk has
//! at least 100 documents" (§4.3.2).
//!
//! Chunks are numbered 1..=N ascending by score; long-list postings are laid
//! out in *descending* chunk order. `thresholdValueOf(cid) = cid + 1`, so a
//! document's short-list postings move only when its score crosses two chunk
//! boundaries, and the query scans one extra chunk to compensate.

use crate::types::{ChunkId, Score};

/// Immutable chunk boundary table, built from the score distribution at
/// index-build (or offline-merge) time.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkMap {
    /// `lower[i]` is the lowest score of chunk `i + 1`; `lower[0] == 0.0`.
    /// Ascending. Chunk `N` is unbounded above.
    lower: Vec<Score>,
}

impl ChunkMap {
    /// Build from the live score distribution.
    ///
    /// Boundaries are derived from the maximum score downwards in factors of
    /// `ratio`; adjacent chunks holding fewer than `min_docs` documents are
    /// merged ("under very skewed score distributions, some chunks have only
    /// a few documents in them").
    pub fn from_scores(scores: &[Score], ratio: f64, min_docs: usize) -> ChunkMap {
        assert!(ratio > 1.0, "chunk ratio must be > 1");
        let max = scores.iter().copied().fold(0.0_f64, f64::max);
        let min_pos = scores
            .iter()
            .copied()
            .filter(|&s| s > 0.0)
            .fold(f64::INFINITY, f64::min);
        if scores.is_empty() || max <= 0.0 || !min_pos.is_finite() {
            return ChunkMap { lower: vec![0.0] };
        }
        // Candidate boundaries: max/ratio, max/ratio^2, ... down to the
        // smallest positive score.
        let mut bounds = Vec::new();
        let mut b = max / ratio;
        while b > min_pos {
            bounds.push(b);
            b /= ratio;
        }
        bounds.reverse(); // ascending
        let mut lower = vec![0.0];
        lower.extend(bounds);

        // Enforce the minimum chunk size by dropping boundaries whose chunk
        // (the docs between the previous kept boundary and this one) is too
        // small, merging it into the chunk below.
        if min_docs > 1 {
            let mut sorted: Vec<Score> = scores.to_vec();
            sorted.sort_by(f64::total_cmp);
            let mut kept = vec![0.0];
            let mut last_idx = 0usize; // docs strictly below the last kept boundary
            for &bound in &lower[1..] {
                let idx = sorted.partition_point(|&s| s < bound);
                if idx - last_idx >= min_docs {
                    kept.push(bound);
                    last_idx = idx;
                }
            }
            // The top chunk must also hold at least min_docs; drop boundaries
            // from the top until it does.
            while kept.len() > 1 {
                let Some(&top_lb) = kept.last() else { break };
                let top_count = sorted.len() - sorted.partition_point(|&s| s < top_lb);
                if top_count >= min_docs {
                    break;
                }
                kept.pop();
            }
            lower = kept;
        }
        ChunkMap { lower }
    }

    /// The raw ascending boundary list (`boundaries()[0] == 0.0`) — what a
    /// durable index persists so a reopen sees the exact map its long lists
    /// were laid out by.
    pub fn boundaries(&self) -> &[Score] {
        &self.lower
    }

    /// Rebuild from a persisted boundary list (inverse of
    /// [`ChunkMap::boundaries`]). Returns `None` for a list no
    /// [`ChunkMap`] could have produced (empty, non-ascending, not
    /// starting at 0, or non-finite) — a reopen must surface such
    /// corruption rather than silently run a map misaligned with the
    /// chunk-grouped long lists it laid out.
    pub fn from_boundaries(lower: Vec<Score>) -> Option<ChunkMap> {
        let valid = !lower.is_empty()
            && lower[0] == 0.0
            && lower.windows(2).all(|w| w[0] < w[1])
            && lower.iter().all(|b| b.is_finite());
        valid.then_some(ChunkMap { lower })
    }

    /// Number of chunks (>= 1).
    pub fn num_chunks(&self) -> ChunkId {
        self.lower.len() as ChunkId
    }

    /// Chunk id (1-based) for a score.
    pub fn chunk_of(&self, score: Score) -> ChunkId {
        // Last boundary <= score. lower[0] = 0 guarantees a match for any
        // non-negative score.
        self.lower.partition_point(|&b| b <= score).max(1) as ChunkId
    }

    /// Lowest score belonging to `chunk` (1-based). `None` when the chunk id
    /// exceeds the number of chunks.
    pub fn lower_bound(&self, chunk: ChunkId) -> Option<Score> {
        if chunk == 0 {
            return None;
        }
        self.lower.get(chunk as usize - 1).copied()
    }

    /// Exclusive upper bound on the *current* score of any document whose
    /// list chunk is at most `list_chunk`: a posting moves to the short list
    /// only when the score crosses two boundaries, so the score stays below
    /// the lower bound of chunk `list_chunk + 2` — i.e. below
    /// `upper_bound_after(list_chunk) = lower_bound(list_chunk + 1)`'s next
    /// boundary. Returns `f64::INFINITY` when unbounded.
    pub fn max_possible_score(&self, list_chunk: ChunkId) -> Score {
        self.lower_bound(list_chunk + 2).unwrap_or(f64::INFINITY)
    }

    /// Upper boundary of `chunk` (the lower bound of the next chunk), or
    /// infinity for the top chunk.
    pub fn upper_bound(&self, chunk: ChunkId) -> Score {
        self.lower_bound(chunk + 1).unwrap_or(f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_chunk_for_empty_or_zero_scores() {
        let m = ChunkMap::from_scores(&[], 6.12, 1);
        assert_eq!(m.num_chunks(), 1);
        assert_eq!(m.chunk_of(123.0), 1);
        let m = ChunkMap::from_scores(&[0.0, 0.0], 6.12, 1);
        assert_eq!(m.num_chunks(), 1);
    }

    #[test]
    fn ratio_spacing() {
        // Scores spread over [1, 1000] with ratio 10: boundaries at 100, 10.
        let scores: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let m = ChunkMap::from_scores(&scores, 10.0, 1);
        assert_eq!(m.num_chunks(), 3);
        assert_eq!(m.lower_bound(1), Some(0.0));
        assert!((m.lower_bound(2).unwrap() - 10.0).abs() < 1e-9);
        assert!((m.lower_bound(3).unwrap() - 100.0).abs() < 1e-9);
        assert_eq!(m.chunk_of(5.0), 1);
        assert_eq!(m.chunk_of(50.0), 2);
        assert_eq!(m.chunk_of(500.0), 3);
        assert_eq!(m.chunk_of(1e9), 3);
        // Adjacent lower bounds are in the configured ratio.
        let r = m.lower_bound(3).unwrap() / m.lower_bound(2).unwrap();
        assert!((r - 10.0).abs() < 1e-9);
    }

    #[test]
    fn chunk_of_zero_score() {
        let scores = vec![1.0, 10.0, 100.0];
        let m = ChunkMap::from_scores(&scores, 3.0, 1);
        assert_eq!(m.chunk_of(0.0), 1);
    }

    #[test]
    fn min_docs_merges_sparse_chunks() {
        // Extremely skewed: one huge score, many small ones. Without the
        // min-size rule the top chunks would hold a single document.
        let mut scores = vec![1.0; 1000];
        scores.push(1e9);
        let strict = ChunkMap::from_scores(&scores, 10.0, 1);
        let merged = ChunkMap::from_scores(&scores, 10.0, 100);
        assert!(merged.num_chunks() < strict.num_chunks());
        // Every chunk in the merged map has >= min_docs docs (the top chunk
        // absorbs the lone outlier into a bigger chunk).
        for c in 1..=merged.num_chunks() {
            let lb = merged.lower_bound(c).unwrap();
            let ub = merged.upper_bound(c);
            let count = scores.iter().filter(|&&s| s >= lb && s < ub).count();
            assert!(count >= 100 || count == 0, "chunk {c} has {count} docs");
        }
    }

    #[test]
    fn max_possible_score_two_chunk_rule() {
        let scores: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let m = ChunkMap::from_scores(&scores, 10.0, 1);
        // A doc listed in chunk 1 can have drifted anywhere below the lower
        // bound of chunk 3 without its postings moving.
        assert_eq!(m.max_possible_score(1), m.lower_bound(3).unwrap());
        // Top chunks are unbounded.
        assert_eq!(m.max_possible_score(2), f64::INFINITY);
        assert_eq!(m.max_possible_score(3), f64::INFINITY);
    }

    #[test]
    fn boundaries_ascending() {
        let scores: Vec<f64> = (0..5000).map(|i| (i as f64 * 37.0) % 100_000.0).collect();
        let m = ChunkMap::from_scores(&scores, 2.5, 50);
        for c in 1..m.num_chunks() {
            assert!(m.lower_bound(c).unwrap() < m.lower_bound(c + 1).unwrap());
        }
    }
}
