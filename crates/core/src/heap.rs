//! Bounded top-k result heap.
//!
//! "Since users are usually only interested in the top-k results, a result
//! heap is used to keep track of the top-k results during the scan"
//! (§4.2.1). A min-heap of size k; ties broken by ascending doc id so every
//! method (and the test oracle) ranks deterministically.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::types::{DocId, Score, SearchHit};

/// Heap element ordered so the *worst* hit is at the top of the
/// `BinaryHeap`: lower score first, then higher doc id.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Worst(SearchHit);

impl Eq for Worst {}

impl Ord for Worst {
    fn cmp(&self, other: &Self) -> Ordering {
        // Scores are validated finite; total_cmp keeps this a total order.
        // "Greater" means *worse*: lower score, then higher doc id.
        other
            .0
            .score
            .total_cmp(&self.0.score)
            .then_with(|| self.0.doc.0.cmp(&other.0.doc.0))
    }
}

impl PartialOrd for Worst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// True when `a` ranks strictly better than `b` (higher score, doc id as
/// tiebreak).
#[inline]
pub fn ranks_above(a: &SearchHit, b: &SearchHit) -> bool {
    match a.score.total_cmp(&b.score) {
        Ordering::Greater => true,
        Ordering::Less => false,
        Ordering::Equal => a.doc.0 < b.doc.0,
    }
}

/// A bounded top-k heap.
pub struct TopKHeap {
    k: usize,
    heap: BinaryHeap<Worst>,
}

impl TopKHeap {
    /// Heap keeping the best `k` hits.
    pub fn new(k: usize) -> TopKHeap {
        TopKHeap {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offer a hit; keeps only the best k. Returns true if the hit was
    /// retained.
    pub fn add(&mut self, doc: DocId, score: Score) -> bool {
        if self.k == 0 {
            return false;
        }
        let hit = SearchHit { doc, score };
        if self.heap.len() < self.k {
            self.heap.push(Worst(hit));
            return true;
        }
        let Some(&Worst(worst)) = self.heap.peek() else {
            // Unreachable (the heap holds k > 0 entries here); an empty
            // heap trivially retains the hit.
            self.heap.push(Worst(hit));
            return true;
        };
        if ranks_above(&hit, &worst) {
            self.heap.pop();
            self.heap.push(Worst(hit));
            true
        } else {
            false
        }
    }

    /// True once k hits are held.
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// Number of hits currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no hits are held.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Score of the current k-th (worst retained) hit, or `None` while the
    /// heap is not full. This is `resultHeap.minScore(k)` in Algorithm 3.
    pub fn min_score(&self) -> Option<Score> {
        if self.is_full() {
            self.heap.peek().map(|w| w.0.score)
        } else {
            None
        }
    }

    /// Consume the heap, returning hits ranked best-first.
    pub fn into_ranked(self) -> Vec<SearchHit> {
        let mut hits: Vec<SearchHit> = self.heap.into_iter().map(|w| w.0).collect();
        hits.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then_with(|| a.doc.0.cmp(&b.doc.0))
        });
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_best_k() {
        let mut h = TopKHeap::new(3);
        for (doc, score) in [(1, 10.0), (2, 50.0), (3, 30.0), (4, 40.0), (5, 5.0)] {
            h.add(DocId(doc), score);
        }
        let ranked = h.into_ranked();
        assert_eq!(
            ranked.iter().map(|h| h.doc.0).collect::<Vec<_>>(),
            vec![2, 4, 3]
        );
        assert_eq!(ranked[0].score, 50.0);
    }

    #[test]
    fn min_score_only_when_full() {
        let mut h = TopKHeap::new(2);
        h.add(DocId(1), 10.0);
        assert_eq!(h.min_score(), None);
        h.add(DocId(2), 20.0);
        assert_eq!(h.min_score(), Some(10.0));
        h.add(DocId(3), 15.0);
        assert_eq!(h.min_score(), Some(15.0));
    }

    #[test]
    fn ties_break_by_doc_id() {
        let mut h = TopKHeap::new(2);
        h.add(DocId(9), 10.0);
        h.add(DocId(1), 10.0);
        h.add(DocId(5), 10.0);
        let ranked = h.into_ranked();
        assert_eq!(
            ranked.iter().map(|h| h.doc.0).collect::<Vec<_>>(),
            vec![1, 5]
        );
    }

    #[test]
    fn zero_k() {
        let mut h = TopKHeap::new(0);
        assert!(!h.add(DocId(1), 1.0));
        assert!(h.is_full());
        assert!(h.into_ranked().is_empty());
    }

    #[test]
    fn rejects_worse_than_kth() {
        let mut h = TopKHeap::new(1);
        assert!(h.add(DocId(1), 10.0));
        assert!(!h.add(DocId(2), 9.0));
        assert!(h.add(DocId(3), 11.0));
        assert_eq!(h.into_ranked()[0].doc, DocId(3));
    }

    #[test]
    fn ranks_above_total() {
        let a = SearchHit {
            doc: DocId(1),
            score: 5.0,
        };
        let b = SearchHit {
            doc: DocId(2),
            score: 5.0,
        };
        assert!(ranks_above(&a, &b));
        assert!(!ranks_above(&b, &a));
        assert!(!ranks_above(&a, &a));
    }
}
