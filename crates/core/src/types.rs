//! Shared types for the index methods.

pub use svr_text::{DocId, Document, TermId};

/// A document's SVR score. Scores are non-negative finite reals (§4.1).
pub type Score = f64;

/// Chunk identifier for the Chunk / Chunk-TermScore methods. Chunk 1 holds
/// the lowest-scored documents; higher chunks hold higher scores.
pub type ChunkId = u32;

/// Conjunctive ("all keywords") vs. disjunctive ("any keyword") search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryMode {
    Conjunctive,
    Disjunctive,
}

/// A top-k keyword query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// Distinct query terms. Duplicates are removed by [`Query::new`].
    pub terms: Vec<TermId>,
    /// Number of desired results.
    pub k: usize,
    pub mode: QueryMode,
}

impl Query {
    /// Build a query, deduplicating terms (keeping first occurrence order).
    pub fn new(terms: impl IntoIterator<Item = TermId>, k: usize, mode: QueryMode) -> Query {
        let mut seen = std::collections::HashSet::new();
        let terms = terms.into_iter().filter(|t| seen.insert(*t)).collect();
        Query { terms, k, mode }
    }

    /// Conjunctive top-k helper.
    pub fn conjunctive(terms: impl IntoIterator<Item = TermId>, k: usize) -> Query {
        Query::new(terms, k, QueryMode::Conjunctive)
    }

    /// Disjunctive top-k helper.
    pub fn disjunctive(terms: impl IntoIterator<Item = TermId>, k: usize) -> Query {
        Query::new(terms, k, QueryMode::Disjunctive)
    }
}

/// One ranked result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    pub doc: DocId,
    /// The score the ranking is based on: the *latest* SVR score, plus the
    /// term-score component for the TermScore methods.
    pub score: Score,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_dedups_terms() {
        let q = Query::conjunctive([TermId(1), TermId(2), TermId(1)], 10);
        assert_eq!(q.terms, vec![TermId(1), TermId(2)]);
        assert_eq!(q.k, 10);
        assert_eq!(q.mode, QueryMode::Conjunctive);
    }
}
